"""Internal-node-control potential analysis (paper Sec. 4.3.3, Table 4).

IVC can only set the primary inputs; deep internal nodes follow the
logic and cannot be parked freely.  Internal node control [9], [10]
inserts control points so internal nodes can be forced directly.  The
paper quantifies its *potential* as the gap between

* the maximized degradation (every PMOS parked at gate = 0), and
* the minimized degradation (every PMOS parked at gate = 1),

relative to the worst case — "this potential can be a reference of the
largest performance saving by applying internal node control".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sta.degradation import ALL_ONE, ALL_ZERO, AgingAnalyzer


@dataclass(frozen=True)
class InternalNodePotential:
    """One Table 4 row.

    Attributes:
        circuit_name: benchmark name.
        t_standby: standby temperature (K).
        fresh_delay: unaged circuit delay (s).
        worst_degradation: relative delay degradation, all nodes at 0.
        best_degradation: relative delay degradation, all nodes at 1.
    """

    circuit_name: str
    t_standby: float
    fresh_delay: float
    worst_degradation: float
    best_degradation: float

    @property
    def potential(self) -> float:
        """(worst - best) / worst — the paper's "potential" column."""
        if self.worst_degradation == 0:
            return 0.0
        return 1.0 - self.best_degradation / self.worst_degradation


def internal_node_potential(circuit: Circuit, profile: OperatingProfile,
                            t_total: float = TEN_YEARS,
                            analyzer: Optional[AgingAnalyzer] = None,
                            context=None) -> InternalNodePotential:
    """Worst/best bounding degradations and their gap for one circuit.

    With ``context=`` the two bounding runs share one set of gate loads,
    stress duties, and fresh STA from the memoized evaluation layer.
    """
    if analyzer is None:
        analyzer = context.analyzer if context is not None else AgingAnalyzer()
    worst = analyzer.aged_timing(circuit, profile, t_total, standby=ALL_ZERO,
                                 context=context)
    best = analyzer.aged_timing(circuit, profile, t_total, standby=ALL_ONE,
                                context=context)
    return InternalNodePotential(
        circuit_name=circuit.name,
        t_standby=profile.t_standby,
        fresh_delay=worst.fresh_delay,
        worst_degradation=worst.relative_degradation,
        best_degradation=best.relative_degradation,
    )


def potential_sweep(circuit: Circuit, t_standby_values: Sequence[float],
                    ras: str = "1:9", t_total: float = TEN_YEARS,
                    analyzer: Optional[AgingAnalyzer] = None,
                    context=None) -> list:
    """Table 4's standby-temperature sweep for one circuit."""
    if analyzer is None:
        analyzer = context.analyzer if context is not None else AgingAnalyzer()
    rows = []
    for tst in t_standby_values:
        profile = OperatingProfile.from_ras(ras, t_standby=tst)
        rows.append(internal_node_potential(circuit, profile, t_total,
                                            analyzer, context=context))
    return rows
