"""The run-history plane: RunReports persisted as comparable records.

A traced run produces one :class:`~repro.obs.report.RunReport`; this
module wraps it in a **run record** — the report plus the identity
facts needed to compare runs over time (when it ran, on what host,
against which git revision, invoked how) — and files it in the
:class:`~repro.artifacts.store.ArtifactStore` under a new ``runs/``
namespace (atomic writes, like the ``jobs/`` plane).

``repro age/sweep/serve`` record automatically whenever ``--store`` is
active, and every ``benchmarks/test_perf_*`` harness appends a one-line
summary to ``benchmarks/BENCH_history.jsonl`` through
:func:`history_line` — so both the analysis CLI and the bench suite
grow a trajectory instead of overwriting point snapshots.

Record schema (:data:`RUN_SCHEMA`)::

    {"schema_version": 1, "run_id": "<sortable id>",
     "recorded_at": "<UTC ISO-8601>", "command": "repro age c432 ...",
     "host": {"hostname": ..., "machine": ..., "system": ...,
              "python": ..., "cpus": ..., "id": "<12-hex digest>"},
     "git_rev": "<sha or null>",
     "report": {<RunReport document>}}

Run ids are time-sortable (``YYYYmmddTHHMMSSZ-<8 hex>``), so
``ArtifactStore.list_runs()`` returns chronological history and
``repro report history`` needs no extra index.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import RunReport, schema_errors

#: Version stamp of the run-record envelope.
RUN_SCHEMA = 1


def host_fingerprint() -> Dict[str, Any]:
    """Stable facts identifying the machine/environment of a run.

    The ``id`` field is a short digest of the other fields, so two
    records are comparable-by-host with one string equality.
    """
    info = {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "cpus": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")).hexdigest()
    info["id"] = digest[:12]
    return info


_git_rev_cache: Dict[str, Optional[str]] = {}


def git_rev(cwd: Optional[str] = None) -> Optional[str]:
    """The current git HEAD sha, or ``None`` outside a repository.

    Best-effort and cached per directory: a missing ``git`` binary or
    a non-repo working directory must never fail a run record.
    """
    key = cwd or os.getcwd()
    if key not in _git_rev_cache:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"], cwd=cwd,
                capture_output=True, text=True, timeout=10.0)
            _git_rev_cache[key] = (out.stdout.strip()
                                   if out.returncode == 0 else None)
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache[key] = None
    return _git_rev_cache[key]


def new_run_id(now: Optional[float] = None) -> str:
    """A time-sortable unique run id (UTC stamp + 8 random hex)."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(now))
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def make_run_record(report_doc: Dict[str, Any], *, command: str = "",
                    run_id: Optional[str] = None,
                    now: Optional[float] = None) -> Dict[str, Any]:
    """Wrap one RunReport document in the run-record envelope."""
    now = time.time() if now is None else now
    return {
        "schema_version": RUN_SCHEMA,
        "run_id": run_id or new_run_id(now),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime(now)),
        "command": command,
        "host": host_fingerprint(),
        "git_rev": git_rev(),
        "report": report_doc,
    }


def record_run(store: Any, report: Any, *, command: str = "",
               run_id: Optional[str] = None) -> str:
    """Persist one run into the store's history; returns the run id.

    ``report`` is a :class:`RunReport` or an already-built document.
    """
    doc = report.to_dict() if isinstance(report, RunReport) else dict(report)
    record = make_run_record(doc, command=command, run_id=run_id)
    store.save_run(record["run_id"], record)
    return record["run_id"]


def is_run_record(doc: Any) -> bool:
    """Whether ``doc`` is a run-record envelope (vs a bare report)."""
    return isinstance(doc, dict) and "run_id" in doc and "report" in doc


def unwrap_report(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The RunReport document inside ``doc`` (records unwrap, reports
    pass through)."""
    return doc["report"] if is_run_record(doc) else doc


def resolve_report(source: str, store: Any = None
                   ) -> Tuple[Dict[str, Any], str]:
    """Load a RunReport from a file path, ``-`` (stdin), or a run id.

    Run ids resolve against ``store`` (exact id first, then a unique
    prefix of the stored history).  Returns ``(report_doc, label)``;
    raises ``ValueError`` with a human message when the source cannot
    be resolved or the document is not a schema-valid report.
    """
    doc: Optional[Dict[str, Any]] = None
    label = source
    if source == "-":
        doc = json.load(sys.stdin)
        label = "<stdin>"
    elif os.path.exists(source):
        with open(source, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    elif store is not None:
        record = store.load_run(source)
        if record is None:
            matches = [run_id for run_id in store.list_runs()
                       if run_id.startswith(source)]
            if len(matches) > 1:
                raise ValueError(
                    f"run id prefix {source!r} is ambiguous: "
                    + ", ".join(matches))
            if matches:
                record = store.load_run(matches[0])
                label = matches[0]
        if record is None:
            raise ValueError(f"no stored run matches {source!r}")
        doc = record
    else:
        raise ValueError(
            f"{source!r} is not a file (pass --store to resolve run ids)")
    report = unwrap_report(doc)
    errors = schema_errors(report)
    if errors:
        raise ValueError(f"{label}: not a valid RunReport ("
                         + "; ".join(errors[:3]) + ")")
    return report, label


def run_wall_seconds(report_doc: Dict[str, Any]) -> float:
    """Total wall time of a report's root spans (closed spans only)."""
    return sum(float(span.get("duration") or 0.0)
               for span in report_doc.get("spans", [])
               if isinstance(span, dict))


def summarize_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """One history row: the comparison-relevant facts of a record."""
    report = unwrap_report(record)
    git = record.get("git_rev")
    return {
        "run_id": record.get("run_id", "?"),
        "recorded_at": record.get("recorded_at", "?"),
        "command": record.get("command", ""),
        "label": report.get("label", ""),
        "host": (record.get("host") or {}).get("id", "?"),
        "git_rev": git[:12] if isinstance(git, str) else None,
        "wall_seconds": run_wall_seconds(report),
        "spans": len(report.get("spans", [])),
        "metrics": len(report.get("metrics", {})),
    }


def load_history(store: Any) -> List[Dict[str, Any]]:
    """Every stored run record, oldest first (ids are time-sortable)."""
    out = []
    for run_id in store.list_runs():
        record = store.load_run(run_id)
        if record is not None:
            out.append(record)
    return out


def history_line(suite: str, *, wall_seconds: float,
                 speedup: Optional[float] = None, smoke: bool = False,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One BENCH_history.jsonl entry for a benchmark suite run."""
    line = {
        "schema_version": RUN_SCHEMA,
        "suite": suite,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "wall_seconds": wall_seconds,
        "speedup": speedup,
        "smoke": smoke,
        "host": host_fingerprint()["id"],
        "git_rev": git_rev(),
    }
    if extra:
        line.update(extra)
    return line
