"""Series-parallel transistor networks and stacking-effect leakage solving.

A static CMOS cell stage is a pull-up PMOS network and a pull-down NMOS
network, each a series-parallel (SP) composition of transistors.  This
module provides:

* the SP algebra (:class:`Dev`, :class:`Series`, :class:`Parallel`),
* logic-level conduction queries (:func:`conducts`),
* the numerical solver for subthreshold leakage through a *blocking*
  network (:func:`network_leakage`), which resolves intermediate node
  voltages so the transistor-stacking effect — the physical basis of
  input vector control [34], [35] — emerges from the device equations
  rather than being tabulated.

Voltage convention: all solving happens in "drop space" measured from the
network's rail.  For a pull-down network the rail is GND and a drop ``x``
means an absolute node voltage of ``x``; for a pull-up network the rail is
Vdd and a drop ``x`` means an absolute voltage of ``Vdd - x``.  Series
children are listed **from the rail toward the output node**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Union

from repro.tech.mosfet import Mosfet, subthreshold_current
from repro.tech.ptm import Technology

#: Logic levels used throughout: ints 0/1.
Bit = int

#: Relative tolerance for the series current bisection.
_SOLVE_TOL = 1e-4
_MAX_BISECTIONS = 80


@dataclass(frozen=True)
class Dev:
    """A leaf: one transistor."""

    mosfet: Mosfet


@dataclass(frozen=True)
class Series:
    """Series composition; ``children`` ordered from rail to output."""

    children: tuple

    def __init__(self, children: Sequence["SPNode"]):
        if len(children) < 1:
            raise ValueError("Series requires at least one child")
        object.__setattr__(self, "children", tuple(children))


@dataclass(frozen=True)
class Parallel:
    """Parallel composition of two or more branches."""

    children: tuple

    def __init__(self, children: Sequence["SPNode"]):
        if len(children) < 1:
            raise ValueError("Parallel requires at least one child")
        object.__setattr__(self, "children", tuple(children))


SPNode = Union[Dev, Series, Parallel]


def devices(node: SPNode) -> List[Mosfet]:
    """All transistors in the network, in rail-to-output order."""
    if isinstance(node, Dev):
        return [node.mosfet]
    result: List[Mosfet] = []
    for child in node.children:
        result.extend(devices(child))
    return result


def _device_on(mosfet: Mosfet, gate_bits: Dict[str, Bit]) -> bool:
    """Logic-level ON test: NMOS on at gate=1, PMOS on at gate=0."""
    try:
        bit = gate_bits[mosfet.gate_pin]
    except KeyError:
        raise KeyError(
            f"no logic value for pin {mosfet.gate_pin!r} driving {mosfet.name}"
        ) from None
    if bit not in (0, 1):
        raise ValueError(f"logic value for {mosfet.gate_pin!r} must be 0/1, got {bit!r}")
    return bit == 1 if mosfet.polarity == "nmos" else bit == 0


def conducts(node: SPNode, gate_bits: Dict[str, Bit]) -> bool:
    """True when the network provides a fully-ON path rail-to-output."""
    if isinstance(node, Dev):
        return _device_on(node.mosfet, gate_bits)
    if isinstance(node, Series):
        return all(conducts(c, gate_bits) for c in node.children)
    return any(conducts(c, gate_bits) for c in node.children)


def _gate_abs_voltage(mosfet: Mosfet, gate_bits: Dict[str, Bit], vdd: float) -> float:
    return vdd if gate_bits[mosfet.gate_pin] == 1 else 0.0


def _device_current(mosfet: Mosfet, gate_bits: Dict[str, Bit], tech: Technology,
                    temperature: float, x_source: float, x_drain: float,
                    delta_vth: float) -> float:
    """Subthreshold current of one OFF device given drop-space terminals.

    ``x_source`` is the drop at the rail-side terminal, ``x_drain`` at the
    output-side terminal, ``x_drain >= x_source``.  The gate-source bias
    naturally becomes negative as the rail-side node drifts off the rail,
    which is the stacking effect.
    """
    params = tech.params(mosfet.polarity)
    gate_abs = _gate_abs_voltage(mosfet, gate_bits, tech.vdd)
    if mosfet.polarity == "nmos":
        # Absolute source voltage equals the drop.
        vgs = gate_abs - x_source
    else:
        # Pull-up rail is Vdd; absolute source voltage is Vdd - x_source.
        vgs = (tech.vdd - x_source) - gate_abs
    vds = x_drain - x_source
    return subthreshold_current(
        params, w=mosfet.w, l=mosfet.l, vgs=vgs, vds=vds,
        temperature=temperature, reference_temperature=tech.reference_temperature,
        delta_vth=delta_vth,
    )


def _current(node: SPNode, gate_bits: Dict[str, Bit], tech: Technology,
             temperature: float, x_source: float, x_drain: float,
             delta_vth: float) -> float:
    """Current through ``node`` with given terminal drops.

    ON devices are ideal shorts; a fully-ON node must not be queried here
    (callers collapse shorts first), so an ON leaf raises.
    """
    if x_drain < x_source:
        raise ValueError("drop-space terminals inverted")
    if isinstance(node, Dev):
        if _device_on(node.mosfet, gate_bits):
            raise RuntimeError(
                f"leakage query on conducting device {node.mosfet.name}"
            )
        return _device_current(node.mosfet, gate_bits, tech, temperature,
                               x_source, x_drain, delta_vth)
    if isinstance(node, Parallel):
        total = 0.0
        for child in node.children:
            if conducts(child, gate_bits):
                raise RuntimeError("leakage query on conducting parallel branch")
            total += _current(child, gate_bits, tech, temperature,
                              x_source, x_drain, delta_vth)
        return total
    # Series: ON children drop ~0 V; distribute the rest by current balance.
    blocking = [c for c in node.children if not conducts(c, gate_bits)]
    if not blocking:
        raise RuntimeError("leakage query on conducting series chain")
    if len(blocking) == 1:
        return _current(blocking[0], gate_bits, tech, temperature,
                        x_source, x_drain, delta_vth)
    return _solve_series(blocking, gate_bits, tech, temperature,
                         x_source, x_drain, delta_vth)


def _drop_for_current(node: SPNode, gate_bits: Dict[str, Bit], tech: Technology,
                      temperature: float, x_source: float, target: float,
                      x_max: float, delta_vth: float) -> float:
    """Invert a child's I(V): smallest drain drop carrying ``target`` amps.

    The child current is monotone non-decreasing in the drain drop, so a
    plain bisection in ``[x_source, x_max]`` suffices.  If even the full
    available drop cannot carry ``target``, returns ``x_max`` (the outer
    bisection interprets the overshoot).
    """
    hi_current = _current(node, gate_bits, tech, temperature, x_source, x_max, delta_vth)
    if hi_current <= target:
        return x_max
    lo, hi = x_source, x_max
    for _ in range(_MAX_BISECTIONS):
        mid = 0.5 * (lo + hi)
        if _current(node, gate_bits, tech, temperature, x_source, mid, delta_vth) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9:
            break
    return 0.5 * (lo + hi)


def _solve_series(blocking: List[SPNode], gate_bits: Dict[str, Bit],
                  tech: Technology, temperature: float, x_source: float,
                  x_drain: float, delta_vth: float) -> float:
    """Current through >= 2 blocking elements in series.

    Outer bisection on the chain current I: walking the chain from the
    rail and stacking each element's drop-for-I, the terminal drop is
    monotone increasing in I; find I where it meets ``x_drain``.
    """
    span = x_drain - x_source
    if span <= 0:
        return 0.0
    # Upper bound: no element can carry more than it would with the whole
    # span to itself (its I(V) is non-decreasing and its companions only
    # steal voltage).
    i_hi = min(
        _current(c, gate_bits, tech, temperature, x_source, x_drain, delta_vth)
        for c in blocking
    )
    if i_hi <= 0.0:
        return 0.0
    i_lo = 0.0

    def terminal_drop(i: float) -> float:
        x = x_source
        for child in blocking:
            x = _drop_for_current(child, gate_bits, tech, temperature,
                                  x, i, x_drain, delta_vth)
            if x >= x_drain:
                return x
        return x

    for _ in range(_MAX_BISECTIONS):
        mid = 0.5 * (i_lo + i_hi)
        if terminal_drop(mid) < x_drain:
            i_lo = mid
        else:
            i_hi = mid
        if i_hi - i_lo <= _SOLVE_TOL * i_hi:
            break
    return 0.5 * (i_lo + i_hi)


def network_leakage(node: SPNode, gate_bits: Dict[str, Bit], tech: Technology,
                    temperature: float, *, delta_vth: float = 0.0) -> float:
    """Subthreshold leakage through a blocking network with full Vdd across.

    Args:
        node: the blocking (non-conducting) pull-up or pull-down network.
        gate_bits: logic value per gate pin.
        tech: technology providing device parameters and Vdd.
        temperature: kelvin.
        delta_vth: aged threshold shift applied to every device
            (used in leakage-vs-aging coupling studies).

    Raises:
        RuntimeError: if the network actually conducts under ``gate_bits``
            (a static CMOS consistency violation).
    """
    if conducts(node, gate_bits):
        raise RuntimeError("network_leakage called on a conducting network")
    return _current(node, gate_bits, tech, temperature, 0.0, tech.vdd, delta_vth)


def stressed_pmos(node: SPNode, gate_bits: Dict[str, Bit]) -> Set[str]:
    """Names of PMOS devices under full NBTI stress for this input state.

    A PMOS is stressed when its gate is at 0 **and** its source is held at
    Vdd — i.e. the rail-side path up to the device conducts.  Devices whose
    source has floated away from Vdd (blocked further up the stack) are
    treated as unstressed, the same worst/best-case dichotomy the paper
    uses.
    """
    stressed: Set[str] = set()
    _walk_stress(node, gate_bits, True, stressed)
    return stressed


def _walk_stress(node: SPNode, gate_bits: Dict[str, Bit], src_hot: bool,
                 out: Set[str]) -> bool:
    """Recursive helper; returns whether ``node`` conducts."""
    if isinstance(node, Dev):
        on = _device_on(node.mosfet, gate_bits)
        if node.mosfet.polarity == "pmos" and src_hot and gate_bits[node.mosfet.gate_pin] == 0:
            out.add(node.mosfet.name)
        return on
    if isinstance(node, Series):
        hot = src_hot
        all_on = True
        for child in node.children:
            child_on = _walk_stress(child, gate_bits, hot, out)
            hot = hot and child_on
            all_on = all_on and child_on
        return all_on
    any_on = False
    for child in node.children:
        any_on |= _walk_stress(child, gate_bits, src_hot, out)
    return any_on


def stress_probabilities(node: SPNode, pin_zero_prob: Dict[str, float]) -> Dict[str, float]:
    """Per-PMOS stress probability given P(pin = 0) for each input pin.

    Inputs are assumed independent (the standard signal-probability
    approximation); a stacked PMOS is stressed only when the rail-side
    chain conducts *and* its own gate is 0, so its probability is the
    product along the stack.
    """
    result: Dict[str, float] = {}
    _walk_stress_prob(node, pin_zero_prob, 1.0, result)
    return result


def _walk_stress_prob(node: SPNode, pin_zero_prob: Dict[str, float],
                      p_hot: float, out: Dict[str, float]) -> float:
    """Returns P(node conducts); accumulates PMOS stress probabilities."""
    if isinstance(node, Dev):
        p0 = pin_zero_prob[node.mosfet.gate_pin]
        if not 0.0 <= p0 <= 1.0:
            raise ValueError(f"probability for {node.mosfet.gate_pin!r} out of range")
        if node.mosfet.polarity == "pmos":
            out[node.mosfet.name] = p_hot * p0
            return p0
        return 1.0 - p0
    if isinstance(node, Series):
        hot = p_hot
        p_all = 1.0
        for child in node.children:
            p_on = _walk_stress_prob(child, pin_zero_prob, hot, out)
            hot *= p_on
            p_all *= p_on
        return p_all
    p_none_on = 1.0
    for child in node.children:
        p_on = _walk_stress_prob(child, pin_zero_prob, p_hot, out)
        p_none_on *= 1.0 - p_on
    return 1.0 - p_none_on


def _walk_stress_prob_batch(node: SPNode, pin_zero_prob: Dict[str, "object"],
                            p_hot, out: Dict[str, "object"]):
    """Array-lane twin of :func:`_walk_stress_prob`.

    ``pin_zero_prob`` maps pins to equal-length float64 arrays (one lane
    per cell instance); the walk performs the exact same multiply/
    subtract sequence elementwise, so every lane is bit-identical to a
    scalar walk over that lane's probabilities.  Inputs are validated by
    the caller (the scalar leaf range check does not vectorize).
    """
    if isinstance(node, Dev):
        p0 = pin_zero_prob[node.mosfet.gate_pin]
        if node.mosfet.polarity == "pmos":
            out[node.mosfet.name] = p_hot * p0
            return p0
        return 1.0 - p0
    if isinstance(node, Series):
        hot = p_hot
        p_all = 1.0
        for child in node.children:
            p_on = _walk_stress_prob_batch(child, pin_zero_prob, hot, out)
            hot = hot * p_on
            p_all = p_all * p_on
        return p_all
    p_none_on = 1.0
    for child in node.children:
        p_on = _walk_stress_prob_batch(child, pin_zero_prob, p_hot, out)
        p_none_on = p_none_on * (1.0 - p_on)
    return 1.0 - p_none_on


def max_series_depth(node: SPNode) -> int:
    """Worst-case number of series devices between rail and output."""
    if isinstance(node, Dev):
        return 1
    if isinstance(node, Series):
        return sum(max_series_depth(c) for c in node.children)
    return max(max_series_depth(c) for c in node.children)
