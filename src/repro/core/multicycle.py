"""Multicycle AC stress model (paper eqs. 7-11, after Kumar et al. [6]).

Under AC stress with period ``tau`` and stress duty cycle ``c``, the trap
density after ``n`` cycles is written ``N_it(n tau) = S_n * A tau^(1/4)``
with the paper's recursion on the dimensionless ``S_n``:

    delta   = sqrt((1 - c) / 2)
    S_1     = c^(1/4) / (1 + delta)                               (eq. 9)
    S_{n+1} = S_n + c / (4 (1 + delta) S_n^3)                     (eq. 10)

Eq. (10) is the first-order form of the 4th-power accumulation
``S_{n+1}^4 = S_n^4 + c/(1+delta)``, so after many cycles

    S_n  ->  (n c / (1 + delta))^(1/4)

— long-term AC degradation equals DC degradation with the time scaled by
the duty cycle and divided by ``(1+delta)^(1/4)``; the ``S_1`` initial
condition only matters for the first handful of cycles.  Both the exact
recursion and the closed form are provided; ablation bench A2 quantifies
their difference.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.numerics import quarter_root


def delta_factor(duty: float) -> float:
    """The recovery factor ``delta = sqrt((1 - c)/2)``.

    0 at DC (no recovery), ~0.707 as the duty cycle vanishes.
    """
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty cycle must be in [0, 1], got {duty}")
    return math.sqrt((1.0 - duty) / 2.0)


def s_first(duty: float) -> float:
    """``S_1``, eq. (9)."""
    return duty ** 0.25 / (1.0 + delta_factor(duty))


def s_sequence(duty: float, n_cycles: int, exact_quartic: bool = True
               ) -> np.ndarray:
    """``S_1 .. S_n`` by the eq. (10) recursion.

    Args:
        duty: stress duty cycle in [0, 1].
        n_cycles: number of AC cycles (>= 1).
        exact_quartic: evolve the stable quartic form
            ``S^4 += c/(1+delta)`` (default).  ``False`` uses the paper's
            literal first-order update, which needs ``S_n > 0`` and is
            provided for the A2 ablation.
    """
    if n_cycles < 1:
        raise ValueError("need at least one cycle")
    delta = delta_factor(duty)
    step = duty / (1.0 + delta)
    out = np.empty(n_cycles)
    s = s_first(duty)
    out[0] = s
    if exact_quartic:
        s4 = s ** 4
        for i in range(1, n_cycles):
            s4 += step
            out[i] = s4 ** 0.25
    else:
        for i in range(1, n_cycles):
            if s <= 0.0:
                out[i] = 0.0
                continue
            s = s + step / (4.0 * s ** 3)
            out[i] = s
    return out


def s_closed_form(duty: float, n_cycles: float) -> float:
    """Asymptotic ``S_n = (n c / (1 + delta))^(1/4)``.

    Accepts non-integer ``n_cycles`` so callers can work directly in
    continuous time (``n = t / tau``).
    """
    if n_cycles < 0:
        raise ValueError("cycle count must be non-negative")
    # quarter_root so the vectorized aging kernel matches bit-for-bit.
    return quarter_root(n_cycles * duty / (1.0 + delta_factor(duty)))


def ac_to_dc_ratio(duty: float) -> float:
    """Long-term AC/DC degradation ratio at equal total time.

    ``(c/(1+delta))^(1/4)``: ~0.76 at 50 % duty, 1 at DC, 0 with no
    stress — the Fig. 1 gap.
    """
    return (duty / (1.0 + delta_factor(duty))) ** 0.25


def cycles_to_converge(duty: float, rel_tol: float = 0.01,
                       max_cycles: int = 200000) -> int:
    """Cycles until the exact recursion is within ``rel_tol`` of the
    closed form; used by tests and the A2 ablation."""
    if duty <= 0.0:
        return 1
    seq = s_sequence(duty, max_cycles)
    for n in range(1, max_cycles + 1):
        closed = s_closed_form(duty, n)
        if closed > 0 and abs(seq[n - 1] - closed) / closed <= rel_tol:
            return n
    raise RuntimeError(f"no convergence within {max_cycles} cycles")
