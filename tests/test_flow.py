"""Tests for the Fig. 6 analysis platform and the dual-Vth extension."""

import pytest

from repro.constants import TEN_YEARS
from repro.core import NbtiModel, OperatingProfile
from repro.flow import (
    AnalysisPlatform,
    assign_dual_vth,
    format_table,
    hvt_delay_factor,
    hvt_leakage_factor,
    mv,
    ns,
    pct,
    ua,
)
from repro.netlist import random_logic
from repro.sim import constant_vector
from repro.tech import PTM90


@pytest.fixture(scope="module")
def circuit():
    return random_logic("flow", n_inputs=14, n_outputs=4, n_gates=90, seed=31)


@pytest.fixture(scope="module")
def platform():
    return AnalysisPlatform()


PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


class TestAnalysisPlatform:
    def test_scenario_report_fields(self, platform, circuit):
        report = platform.analyze_scenario(circuit, PROFILE, TEN_YEARS)
        assert report.aged_delay > report.fresh_delay
        assert 0 < report.degradation < 0.2
        assert report.active_leakage_expected > 0
        assert report.standby_leakage is None

    def test_scenario_with_vector_reports_standby_leakage(self, platform, circuit):
        vec = constant_vector(circuit, 0)
        report = platform.analyze_scenario(circuit, PROFILE, TEN_YEARS,
                                           standby=vec)
        assert report.standby_leakage is not None
        assert report.standby_leakage > 0

    def test_summary_text(self, platform, circuit):
        report = platform.analyze_scenario(circuit, PROFILE, TEN_YEARS)
        text = report.summary()
        assert circuit.name in text
        assert "1:5" in text
        assert "uA" in text

    def test_leakage_table_cached(self, platform):
        assert platform.leakage_table is platform.leakage_table

    def test_co_optimize(self, platform, circuit):
        report = platform.co_optimize(circuit, PROFILE, TEN_YEARS,
                                      n_vectors=32, max_set_size=4, seed=2)
        assert report.chosen_leakage <= report.expected_leakage * 1.05
        assert 0 <= report.chosen_degradation < 0.2
        assert report.mlv_delay_spread >= 0
        # The chosen MLV is in the searched set.
        assert report.selection.chosen.bits in [
            r.bits for r in report.search.records]

    def test_custom_model_threaded_through(self, circuit):
        platform = AnalysisPlatform(model=NbtiModel(scale_recovery=True))
        report = platform.analyze_scenario(circuit, PROFILE, TEN_YEARS)
        assert report.degradation > 0


class TestDualVth:
    def test_factors(self):
        assert hvt_delay_factor(0.10) > 1.0
        assert hvt_leakage_factor(0.10) < 0.2
        with pytest.raises(ValueError):
            hvt_delay_factor(0.9)

    def test_assignment_meets_timing(self, circuit):
        res = assign_dual_vth(circuit, timing_budget=0.0)
        assert res.fresh_delay_dual <= res.fresh_delay_lvt * (1 + 1e-9)
        assert 0 < len(res.hvt_gates) < res.n_gates

    def test_budget_allows_more_hvt(self, circuit):
        tight = assign_dual_vth(circuit, timing_budget=0.0)
        loose = assign_dual_vth(circuit, timing_budget=0.10)
        assert len(loose.hvt_gates) >= len(tight.hvt_gates)

    def test_joint_benefit(self, circuit):
        """Section 4.1's claim: higher Vth cuts both leakage and aging."""
        res = assign_dual_vth(circuit, timing_budget=0.05)
        assert res.leakage_factor < 1.0
        assert res.degradation_dual <= res.degradation_lvt + 1e-12

    def test_result_properties(self, circuit):
        res = assign_dual_vth(circuit)
        assert 0 <= res.hvt_fraction <= 1
        assert res.degradation_lvt > 0


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_unit_formatters(self):
        assert pct(0.0425) == "4.25%"
        assert mv(0.0303) == "30.3"
        assert ns(3.6e-9) == "3.6000"
        assert ua(2.5e-6) == "2.50"
