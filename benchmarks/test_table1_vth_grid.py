"""Table 1 — dVth (mV) under different active:standby ratios.

Paper setting: total time 3.15e8 s, active SP = 0.5, standby input 0,
T_active = 400 K.  The published structure:

* T_standby = 400 K: dVth *increases* as the standby share grows (more
  total stress time);
* T_standby = 330 K: dVth *decreases* (more time spent cold);
* T_standby ~ 370 K: nearly RAS-insensitive (the crossover);
* the largest 330-vs-400 gap sits at RAS = 1:9 (paper: ~9.4 mV).
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import DEFAULT_MODEL, WORST_CASE_DEVICE, OperatingProfile

RAS_LIST = ("9:1", "5:1", "1:1", "1:5", "1:9")
T_STANDBY = (330.0, 350.0, 370.0, 400.0)


def run_table1():
    model = DEFAULT_MODEL
    grid = {}
    for tst in T_STANDBY:
        for ras in RAS_LIST:
            profile = OperatingProfile.from_ras(ras, t_standby=tst)
            grid[(tst, ras)] = model.delta_vth(profile, WORST_CASE_DEVICE,
                                               TEN_YEARS, 0.22)
    return grid


def check(grid):
    hot = [grid[(400.0, r)] for r in RAS_LIST]
    cold = [grid[(330.0, r)] for r in RAS_LIST]
    mid = [grid[(370.0, r)] for r in RAS_LIST]
    assert hot == sorted(hot)                    # rises with standby share
    assert cold == sorted(cold, reverse=True)    # falls with standby share
    spread_mid = (max(mid) - min(mid)) / max(mid)
    assert spread_mid < 0.08                     # ~insensitive near 370 K
    gap = grid[(400.0, "1:9")] - grid[(330.0, "1:9")]
    assert 5e-3 < gap < 20e-3                    # paper: ~9.4 mV


def report(grid):
    rows = []
    for tst in T_STANDBY:
        rows.append([f"{tst:.0f} K"]
                    + [f"{grid[(tst, r)] * 1e3:6.2f}" for r in RAS_LIST])
    emit("Table 1 — dVth (mV) at 10 years, T_active = 400 K",
         ["T_standby \\ RAS"] + list(RAS_LIST), rows)
    gap = (grid[(400.0, '1:9')] - grid[(330.0, '1:9')]) * 1e3
    print(f"largest 330K-vs-400K gap (RAS 1:9): {gap:.1f} mV "
          "(paper: ~9.4 mV)")


def test_table1_vth_grid(run_once):
    grid = run_once(run_table1)
    check(grid)
    report(grid)


if __name__ == "__main__":
    g = run_table1()
    check(g)
    report(g)
