"""Extension — NBTI-aware gate sizing vs guard-banding (Paul et al. [22]).

The paper's related work offers two ways to survive 10 years of NBTI:

* **guard-band**: accept the degradation and reserve timing margin
  (the paper notes NBTI "can be easily handled by simple guard-banding
  at a very low cost in the current technology"), or
* **size for aging**: upsize critical gates so the *aged* circuit still
  meets the fresh target, trading silicon area for margin.

This experiment quantifies the trade on our substrate: the margin the
guard-band must reserve, the area that sizing pays instead, and the
interaction with the standby temperature.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow import size_for_aging
from repro.netlist import iscas85
from repro.sta import ALL_ZERO, AgingAnalyzer

CIRCUITS = ("c432", "c880", "c1355")
T_STANDBY = (330.0, 400.0)


def run_ext():
    analyzer = AgingAnalyzer()
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        for tst in T_STANDBY:
            profile = OperatingProfile.from_ras("1:9", t_standby=tst)
            aged = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                        standby=ALL_ZERO)
            sized = size_for_aging(circuit, profile, TEN_YEARS)
            rows.append({
                "name": name,
                "tst": tst,
                "guard_band": aged.relative_degradation,
                "area": sized.area_overhead,
                "met": sized.met,
                "sized_gates": len(sized.sizes),
            })
    return rows


def check(rows):
    for r in rows:
        assert r["met"], r
        # Area cost scales with the width of the critical cone: a few
        # percent on narrow-cone circuits (c432), tens of percent on
        # balanced path swarms (c1355's parity trees).
        assert 0.0 < r["area"] < 0.60, r
    # Hotter standby needs a bigger guard-band and more sizing area.
    by_circuit = {}
    for r in rows:
        by_circuit.setdefault(r["name"], {})[r["tst"]] = r
    for name, pair in by_circuit.items():
        assert pair[400.0]["guard_band"] > pair[330.0]["guard_band"], name
        assert pair[400.0]["area"] >= pair[330.0]["area"] * 0.8, name


def report(rows):
    printable = [
        [r["name"], f"{r['tst']:.0f} K",
         f"{r['guard_band'] * 100:5.2f}",
         f"{r['area'] * 100:5.2f}",
         r["sized_gates"]]
        for r in rows
    ]
    emit("Extension — guard-band margin vs sizing-for-aging area "
         "(RAS 1:9, 10 years)",
         ["circuit", "T_standby", "guard-band (%)", "sizing area (%)",
          "gates touched"],
         printable)
    print("Sizing buys back the entire aged margin; its cost tracks the "
          "critical-cone\nwidth — a few percent of area on narrow-cone "
          "circuits (c432, c880), tens of\npercent on balanced path "
          "swarms (c1355's parity trees), where nearly every\ngate is "
          "critical and guard-banding is the cheaper option.")


def test_ext_sizing(run_once):
    rows = run_once(run_ext)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ext()
    check(r)
    report(r)
