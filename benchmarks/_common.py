"""Helpers shared by the experiment benchmarks."""

from __future__ import annotations

import sys

from repro.flow.report import format_table


def emit(title: str, headers, rows) -> None:
    """Print one paper-style table (visible with ``pytest -s``)."""
    print()
    print(format_table(headers, rows, title=title))
    sys.stdout.flush()
