"""Durable job queue over the content-addressed artifact store.

A :class:`JobQueue` owns the in-memory scheduling state (a FIFO of
eligible job ids plus an index of active jobs by ``(circuit_fp,
scenario_key)``) and mirrors **every** transition to disk as one
atomic JSON record per job (``<store>/jobs/<job_id>.json``).  The
on-disk records are the source of truth: a server that crashes or is
killed mid-run loses nothing but in-flight wall time — on restart
:meth:`JobQueue.recover` reloads every record, requeues orphaned
``running`` claims (attempts preserved), re-admits ``queued`` jobs,
and leaves terminal jobs untouched, so completed results are never
recomputed or duplicated.

Consistency contract (pinned by ``tests/test_properties_serve.py``):

* :meth:`complete` refuses to mark a job ``done`` unless the result
  payload is already readable from the store's result cache — a
  ``done`` job without a result body is structurally impossible.
* Transitions are only legal along ``queued -> running -> done |
  failed | queued(retry)``; anything else raises instead of
  corrupting the record.
* All mutating methods hold one re-entrant lock, so the HTTP handler
  threads and the scheduler thread observe serialized states.

Every transition is counted and spanned through the injected observer
(the service's :class:`~repro.serve.server.ServiceObs`), which is how
queue traffic lands in the ``/metrics`` RunReport.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.protocol import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    structured_error,
)


class _NullObserver:
    """Do-nothing observer for queue use outside a service."""

    def count(self, name: str, amount: int = 1, label: str = "") -> None:
        pass

    def span(self, name: str, **attributes: Any):
        from contextlib import nullcontext

        return nullcontext()


NULL_OBSERVER = _NullObserver()


class JobQueue:
    """Restart-safe FIFO of :class:`~repro.serve.protocol.JobRecord`.

    Args:
        store: an :class:`~repro.artifacts.store.ArtifactStore`; job
            records persist under its ``jobs/`` subtree.
        observer: optional span/counter sink (the service's obs hub).
    """

    def __init__(self, store: Any, observer: Any = None) -> None:
        self.store = store
        self.obs = observer or NULL_OBSERVER
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}
        self._pending: deque = deque()
        #: (circuit_fp, scenario_key) -> job_id of the queued/running job.
        self._active: Dict[Tuple[str, str], str] = {}

    # -- persistence ---------------------------------------------------------

    def _persist(self, record: JobRecord) -> None:
        self.store.save_job(record.job_id, record.to_dict())

    # -- recovery ------------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Reload every persisted record; requeue orphaned claims.

        ``running`` records belong to a dead server (this queue has no
        live claims yet), so they return to ``queued`` with their
        attempt count intact and a note in ``last_error``; ``queued``
        records re-enter the FIFO in creation order; terminal records
        load as-is.  Returns per-outcome counts.
        """
        counts = {"queued": 0, "recovered": 0, "terminal": 0, "invalid": 0}
        with self._lock, self.obs.span("serve.queue.recover"):
            loaded: List[JobRecord] = []
            for job_id in self.store.list_jobs():
                payload = self.store.load_job(job_id)
                try:
                    record = JobRecord.from_dict(payload or {})
                except (ValueError, KeyError, TypeError):
                    counts["invalid"] += 1
                    continue
                loaded.append(record)
            for record in sorted(loaded, key=lambda r: (r.created_at,
                                                        r.job_id)):
                if record.state == RUNNING:
                    record = record.touch()
                    record.state = QUEUED
                    record.pid = None
                    record.last_error = structured_error(
                        "orphaned",
                        "claim held by a dead server; requeued on "
                        "recovery", attempts=record.attempts)
                    self._persist(record)
                    counts["recovered"] += 1
                    self.obs.count("serve.jobs_recovered")
                elif record.state == QUEUED:
                    counts["queued"] += 1
                else:
                    counts["terminal"] += 1
                self._jobs[record.job_id] = record
                if record.state == QUEUED:
                    self._pending.append(record.job_id)
                    self._active[(record.circuit_fp,
                                  record.scenario_key)] = record.job_id
        return counts

    # -- submission ----------------------------------------------------------

    def submit(self, record: JobRecord) -> JobRecord:
        """Admit a new job (persist, then enqueue).

        Raises ``ValueError`` when a job with the same id exists or the
        record is not in the ``queued`` state.
        """
        with self._lock, self.obs.span("serve.queue.submit",
                                       job=record.job_id):
            if record.job_id in self._jobs:
                raise ValueError(f"job {record.job_id!r} already exists")
            if record.state != QUEUED:
                raise ValueError(
                    f"can only submit queued jobs, got {record.state!r}")
            record = record.touch()
            self._persist(record)
            self._jobs[record.job_id] = record
            self._pending.append(record.job_id)
            self._active[(record.circuit_fp,
                          record.scenario_key)] = record.job_id
            self.obs.count("serve.jobs_submitted")
        return record

    def admit_terminal(self, record: JobRecord) -> JobRecord:
        """Persist an already-terminal record (the cache-answer path).

        A warm ``(circuit, scenario)`` submission never touches the
        FIFO: the server materializes a ``done`` record pointing at
        the cached result and files it here for ``status``/``result``
        lookups.
        """
        with self._lock, self.obs.span("serve.queue.cache_answer",
                                       job=record.job_id):
            if not record.terminal:
                raise ValueError("admit_terminal needs a terminal record")
            record = record.touch()
            self._persist(record)
            self._jobs[record.job_id] = record
        return record

    def active_job_for(self, circuit_fp: str, scenario_key: str
                       ) -> Optional[JobRecord]:
        """The queued/running job answering this query, if any.

        Lets the server coalesce duplicate submissions onto one job
        instead of computing the same result twice.
        """
        with self._lock:
            job_id = self._active.get((circuit_fp, scenario_key))
            return self._jobs.get(job_id) if job_id else None

    # -- scheduling ----------------------------------------------------------

    def claim(self, now: Optional[float] = None) -> Optional[JobRecord]:
        """Pop the oldest eligible queued job and mark it running.

        Jobs whose retry backoff (``not_before``) has not elapsed are
        skipped (left in FIFO order).  Returns ``None`` when nothing
        is eligible.
        """
        now = time.time() if now is None else now
        with self._lock:
            eligible = None
            for job_id in self._pending:
                record = self._jobs[job_id]
                if record.not_before <= now:
                    eligible = job_id
                    break
            if eligible is None:
                return None
            self._pending.remove(eligible)
            record = self._jobs[eligible].touch()
            record.state = RUNNING
            record.attempts += 1
            record.pid = None
            with self.obs.span("serve.queue.claim", job=record.job_id,
                               attempt=record.attempts):
                self._persist(record)
            self._jobs[eligible] = record
            self.obs.count("serve.jobs_started")
            return record

    def mark_pid(self, job_id: str, pid: int) -> JobRecord:
        """Record the worker process id of a running claim."""
        with self._lock:
            record = self._require(job_id, RUNNING)
            record = record.touch()
            record.pid = pid
            self._persist(record)
            self._jobs[job_id] = record
            return record

    # -- transitions ---------------------------------------------------------

    def _require(self, job_id: str, *states: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        if states and record.state not in states:
            raise ValueError(
                f"job {job_id!r} is {record.state!r}, expected "
                f"{'/'.join(states)}")
        return record

    def complete(self, job_id: str) -> JobRecord:
        """running -> done.  The result must already be in the store.

        Refusing to transition without a readable result payload is
        what makes "done without a result" unobservable under any
        interleaving of submit/status/result.
        """
        with self._lock:
            record = self._require(job_id, RUNNING)
            if not self.store.has_result(record.circuit_fp,
                                         record.scenario_key):
                raise ValueError(
                    f"job {job_id!r} has no stored result; refusing to "
                    "mark it done")
            record = record.touch()
            record.state = DONE
            record.pid = None
            record.error = None
            with self.obs.span("serve.queue.complete", job=record.job_id,
                               attempts=record.attempts):
                self._persist(record)
            self._jobs[job_id] = record
            self._active.pop((record.circuit_fp, record.scenario_key),
                             None)
            self.obs.count("serve.jobs_done")
            return record

    def fail(self, job_id: str, error: Dict[str, Any]) -> JobRecord:
        """running -> failed (terminal, structured error attached)."""
        with self._lock:
            record = self._require(job_id, RUNNING)
            record = record.touch()
            record.state = FAILED
            record.pid = None
            record.error = dict(error, attempts=record.attempts)
            record.last_error = record.error
            with self.obs.span("serve.queue.fail", job=record.job_id,
                               attempts=record.attempts):
                self._persist(record)
            self._jobs[job_id] = record
            self._active.pop((record.circuit_fp, record.scenario_key),
                             None)
            self.obs.count("serve.jobs_failed")
            return record

    def requeue(self, job_id: str, error: Dict[str, Any], *,
                backoff_s: float = 0.0) -> JobRecord:
        """running -> queued (bounded retry, exponential backoff).

        The failed attempt's error is kept in ``last_error``;
        ``not_before`` delays the next claim by ``backoff_s *
        2**(attempts - 1)``.
        """
        with self._lock:
            record = self._require(job_id, RUNNING)
            record = record.touch()
            record.state = QUEUED
            record.pid = None
            record.last_error = dict(error, attempts=record.attempts)
            record.not_before = (time.time()
                                 + backoff_s * 2 ** max(0,
                                                        record.attempts - 1))
            with self.obs.span("serve.queue.requeue", job=record.job_id,
                               attempts=record.attempts):
                self._persist(record)
            self._jobs[job_id] = record
            self._pending.append(job_id)
            self.obs.count("serve.jobs_retried")
            return record

    def finish_attempt(self, job_id: str, error: Dict[str, Any], *,
                       backoff_s: float = 0.0) -> JobRecord:
        """Route a failed attempt: retry while budget remains, else fail."""
        with self._lock:
            record = self._require(job_id, RUNNING)
            if record.attempts > record.max_retries:
                return self.fail(job_id, error)
            return self.requeue(job_id, error, backoff_s=backoff_s)

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        """The live record of one job, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        """Every known record, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda r: (r.created_at, r.job_id))

    def counts(self) -> Dict[str, int]:
        """``{state: jobs in that state}`` over every known job."""
        with self._lock:
            out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for record in self._jobs.values():
                out[record.state] += 1
            return out

    def pending(self) -> int:
        """Jobs waiting in the FIFO (eligible or backing off)."""
        with self._lock:
            return len(self._pending)

    def retry_backlog(self) -> int:
        """Queued jobs that already burned at least one attempt."""
        with self._lock:
            return sum(1 for job_id in self._pending
                       if self._jobs[job_id].attempts > 0)

    def __repr__(self) -> str:
        counts = self.counts()
        return (f"JobQueue(jobs={len(self._jobs)}, "
                f"pending={counts[QUEUED]}, running={counts[RUNNING]})")
