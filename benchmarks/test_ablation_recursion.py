"""Ablation A2 — closed-form S_n vs the exact eq. (10) recursion.

The library evaluates the multicycle model through the asymptotic
closed form; this ablation quantifies the approximation error against
the cycle-exact recursion across duty cycles and cycle counts, and
reports how many cycles each duty needs to converge within 1 %.
"""

from _common import emit
from repro.core import cycles_to_converge, s_closed_form, s_sequence

DUTIES = (0.1, 0.3, 0.5, 0.7, 0.9)
CHECKPOINTS = (10, 100, 1000, 10000)


def run_ablation():
    table = {}
    for duty in DUTIES:
        seq = s_sequence(duty, max(CHECKPOINTS))
        errors = {}
        for n in CHECKPOINTS:
            closed = s_closed_form(duty, n)
            errors[n] = abs(seq[n - 1] - closed) / closed
        table[duty] = {
            "errors": errors,
            "converge": cycles_to_converge(duty, rel_tol=0.01),
        }
    return table


def check(table):
    for duty, entry in table.items():
        errs = [entry["errors"][n] for n in CHECKPOINTS]
        # Error shrinks with cycle count and is tiny by 10k cycles.
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < 0.01
        # A 10-year lifetime at a 1 s macro-period is ~3e8 cycles:
        # comfortably past convergence for every duty.
        assert entry["converge"] < 1e6


def report(table):
    rows = []
    for duty, entry in table.items():
        rows.append([f"{duty:.1f}"]
                    + [f"{entry['errors'][n] * 100:7.3f}" for n in CHECKPOINTS]
                    + [entry["converge"]])
    emit("Ablation A2 — closed-form error vs exact recursion (%)",
         ["duty"] + [f"n={n}" for n in CHECKPOINTS] + ["cycles to 1%"],
         rows)
    print("Conclusion: at lifetime scales (~3e8 macro-cycles) the closed "
          "form is exact\nto well under 0.1 %, justifying its use "
          "throughout the library.")


def test_ablation_recursion(run_once):
    table = run_once(run_ablation)
    check(table)
    report(table)


if __name__ == "__main__":
    t = run_ablation()
    check(t)
    report(t)
