"""Leakage-thermal feedback: self-consistent standby temperature.

The paper treats T_standby as a given steady state.  Physically the
standby power is *mostly leakage*, leakage grows steeply with
temperature, and temperature grows with power — a feedback loop that
this module closes:

    T = T_amb + R_th * (P_other + Vdd * I_leak(circuit, T))

solved by damped fixed-point iteration.  For the paper's small ISCAS
blocks the correction is tiny (their leakage is sub-mW); the module also
exposes a ``scale`` factor to model a die with many such blocks, where
the loop visibly raises T_standby — and with it the NBTI degradation —
above the naive estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.leakage.circuit import expected_leakage
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.thermal.rc import ThermalRC


@dataclass(frozen=True)
class FeedbackResult:
    """Converged standby operating point.

    Attributes:
        temperature: self-consistent standby temperature (K).
        leakage_current: circuit leakage at that temperature (A).
        leakage_power: scaled leakage power entering the thermal node (W).
        iterations: fixed-point iterations used.
        converged: True when the tolerance was met.
    """

    temperature: float
    leakage_current: float
    leakage_power: float
    iterations: int
    converged: bool


def solve_standby_temperature(circuit: Circuit, rc: ThermalRC, *,
                              other_power: float = 0.0,
                              scale: float = 1.0,
                              library: Optional[Library] = None,
                              tolerance: float = 0.01,
                              max_iterations: int = 50,
                              damping: float = 0.5) -> FeedbackResult:
    """Solve the leakage-temperature fixed point for standby mode.

    Args:
        rc: the thermal network (ambient + resistance).
        other_power: non-leakage standby power (clock gating residue,
            retention logic) in watts.
        scale: replication factor — how many copies of ``circuit`` share
            the thermal node (models a full die from one block).
        tolerance: convergence threshold in kelvin.
        damping: fixed-point damping in (0, 1]; 1 is undamped.

    Raises:
        RuntimeError: if the loop diverges past 500 K (thermal runaway
            for the given R_th and scale).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")
    if other_power < 0:
        raise ValueError("other_power must be non-negative")
    library = library or default_library()
    vdd = library.tech.vdd

    tables: Dict[float, LeakageTable] = {}

    def leak_at(temperature: float) -> float:
        key = round(temperature, 1)
        if key not in tables:
            tables[key] = LeakageTable.build(library, key)
        return expected_leakage(circuit, tables[key], library=library)

    t = rc.steady_state(other_power)
    converged = False
    current = leak_at(t)
    for iteration in range(1, max_iterations + 1):
        power = other_power + scale * vdd * current
        t_new = rc.steady_state(power)
        t_next = t + damping * (t_new - t)
        if t_next > 500.0:
            raise RuntimeError(
                f"thermal runaway: T exceeded 500 K at iteration {iteration} "
                f"(R_th={rc.r_th}, scale={scale})")
        moved = abs(t_next - t)
        t = t_next
        current = leak_at(t)
        if moved < tolerance:
            converged = True
            break
    return FeedbackResult(
        temperature=t,
        leakage_current=current,
        leakage_power=scale * vdd * current,
        iterations=iteration,
        converged=converged,
    )
