"""Fine-grain sleep-transistor insertion (FGSTI, [40]-[42]).

The block-based scheme (BBSTI, :mod:`repro.sleep.insertion`) shares one
large transistor across a block and relies on switching-current
estimates; FGSTI gives *every cell its own* sleep transistor, which
"guarantees circuit functionality and improves noise margins" at an
area cost, and — the paper's point — lets the per-cell delay budget
"be different according to different slack attributes of each gate".

This module implements slack-aware FGSTI sizing:

* each gate's allowed slowdown is the global budget ``beta`` plus a
  share of its own timing slack (found by binary search on the share so
  the whole circuit still meets ``(1 + beta) * D``),
* the allowed slowdown maps to a per-gate virtual-rail drop (eq. 26/28)
  and then to a per-gate ST size (eq. 30) for that gate's own worst
  switching current — no simultaneity discount, hence the guaranteed
  functionality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sleep.sizing import K_TRIODE_P
from repro.sta.analysis import analyze, gate_loads
from repro.variation.statistical import FastAgedTimer


@dataclass(frozen=True)
class FineGrainDesign:
    """A slack-aware per-gate sleep-transistor assignment.

    Attributes:
        beta: global delay budget the design verifies against.
        v_st: per-gate virtual-rail drop (V).
        aspect_ratio: per-gate ST (W/L).
        slack_share: fraction of per-gate slack converted into extra
            drop (the binary-search result).
        fresh_delay / gated_delay: circuit delay before/after insertion.
    """

    circuit_name: str
    beta: float
    vth_st: float
    v_st: Dict[str, float]
    aspect_ratio: Dict[str, float]
    slack_share: float
    fresh_delay: float
    gated_delay: float

    @property
    def total_aspect(self) -> float:
        """Total ST area in (W/L) units — the FGSTI cost metric."""
        return sum(self.aspect_ratio.values())

    @property
    def delay_penalty(self) -> float:
        return self.gated_delay / self.fresh_delay - 1.0


def _drop_for_slowdown(slowdown: float, overdrive: float, alpha: float
                       ) -> float:
    """Invert the alpha-power delay: drop giving ``1 + slowdown`` factor.

    ``(OD / (OD - v))^alpha = 1 + s  =>  v = OD (1 - (1+s)^(-1/alpha))``.
    """
    return overdrive * (1.0 - (1.0 + slowdown) ** (-1.0 / alpha))


def design_fine_grain(circuit: Circuit, beta: float, *,
                      vth_st: float = 0.22,
                      library: Optional[Library] = None,
                      search_steps: int = 20,
                      context=None) -> FineGrainDesign:
    """Size one PMOS header per gate, exploiting per-gate slack.

    Args:
        beta: global delay budget (the gated circuit must stay within
            ``(1 + beta)`` of the fresh delay).
        vth_st: threshold of the sleep devices.
        search_steps: binary-search iterations on the slack share.
        context: shared :class:`~repro.context.AnalysisContext`
            supplying the memoized loads, fresh STA, and compiled
            timing kernel.

    Raises:
        ValueError: for a non-positive budget or collapsed ST overdrive.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    tech = library.tech
    st_overdrive = tech.vdd - vth_st
    if st_overdrive <= 0:
        raise ValueError("sleep transistor has no overdrive")
    if context is not None and context.library is library:
        loads = context.gate_loads()
        base = context.fresh_timing()
    else:
        loads = gate_loads(circuit, library)
        base = analyze(circuit, library, loads=loads)
    timer = FastAgedTimer(circuit, library, context=context)
    overdrive = tech.vdd - tech.pmos.vth0
    budget_delay = base.circuit_delay * (1.0 + beta)

    # Per-gate fresh delay (worst edge) for the current estimate,
    # straight off the kernel's memoized base-delay vector (row 2i is
    # topo-gate i's rise delay, 2i+1 its fall — bit-identical to the
    # historic per-edge cell.delay loop).
    fresh = timer.compiled.base_delays()
    gate_index = timer.compiled.gate_index
    fresh_gate_delay: Dict[str, float] = {
        name: float(max(fresh[2 * gate_index[name]],
                        fresh[2 * gate_index[name] + 1]))
        for name in circuit.gates}

    def build(share: float) -> Tuple[Dict[str, float], float]:
        drops: Dict[str, float] = {}
        factors: Dict[str, float] = {}
        for name in circuit.gates:
            slowdown = beta + share * max(base.slack[name], 0.0) / base.circuit_delay
            drop = _drop_for_slowdown(slowdown, overdrive, tech.alpha)
            drops[name] = drop
            factors[name] = (overdrive / (overdrive - drop)) ** tech.alpha
        delay = timer.circuit_delay(delay_factors=factors)
        return drops, delay

    # Binary search the largest slack share that still meets timing.
    lo, hi = 0.0, 1.0
    drops, delay = build(0.0)
    if delay > budget_delay * (1 + 1e-9):
        raise RuntimeError("even zero slack share misses timing (bug)")
    best = (0.0, drops, delay)
    for _ in range(search_steps):
        mid = 0.5 * (lo + hi)
        drops_mid, delay_mid = build(mid)
        if delay_mid <= budget_delay * (1.0 + 1e-9):
            lo = mid
            best = (mid, drops_mid, delay_mid)
        else:
            hi = mid
    share, drops, gated_delay = best

    aspect: Dict[str, float] = {}
    for name, drop in drops.items():
        # Per-gate worst switching current: the full load recharged in
        # the gate's own delay — no block-level simultaneity discount.
        i_on = loads[name] * tech.vdd / fresh_gate_delay[name]
        aspect[name] = i_on / (K_TRIODE_P * st_overdrive * drop)
    return FineGrainDesign(
        circuit_name=circuit.name,
        beta=beta,
        vth_st=vth_st,
        v_st=drops,
        aspect_ratio=aspect,
        slack_share=share,
        fresh_delay=base.circuit_delay,
        gated_delay=gated_delay,
    )


def uniform_fine_grain_area(circuit: Circuit, beta: float, *,
                            vth_st: float = 0.22,
                            library: Optional[Library] = None,
                            context=None) -> float:
    """Total (W/L) of the naive uniform-beta FGSTI (no slack use).

    The baseline the slack-aware design is compared against.
    """
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    tech = library.tech
    if context is not None and context.library is library:
        loads = context.gate_loads()
        ct = context.compiled_timing()
    else:
        from repro.sta.compiled import CompiledTiming
        loads = gate_loads(circuit, library)
        ct = CompiledTiming(circuit, library, loads=loads)
    overdrive = tech.vdd - tech.pmos.vth0
    drop = _drop_for_slowdown(beta, overdrive, tech.alpha)
    st_overdrive = tech.vdd - vth_st
    fresh = ct.base_delays()
    gate_index = ct.gate_index
    total = 0.0
    # Accumulate in circuit.gates order: float addition is
    # order-sensitive, and this matches the historic per-gate loop.
    for name in circuit.gates:
        i = gate_index[name]
        d = max(fresh[2 * i], fresh[2 * i + 1])
        i_on = loads[name] * tech.vdd / d
        total += i_on / (K_TRIODE_P * st_overdrive * drop)
    return total
