"""Shared engine-equivalence oracle for the differential test suites.

Every vectorized kernel in this repo (compiled STA, bit-packed
simulation, the aging kernel) carries the same contract: given the same
inputs, ``engine="<kernel>"`` must return **bit-identical** results to
the scalar oracle — not approximately equal.  :func:`assert_engines_match`
runs one flow once per engine and compares the results *exactly*,
recursing through dicts (including key order — callers iterate them),
sequences, NumPy arrays, and dataclasses.

Usage::

    result = assert_engines_match(
        lambda engine: statistical_aging(circuit, profile, engine=engine))

    assert_engines_match(
        lambda engine: probability_based_mlv_search(circuit, table,
                                                    engine=engine),
        engines=("packed", "scalar"))

The first engine's result is returned so tests can make further
assertions on it.
"""

import dataclasses

import numpy as np


def assert_identical(a, b, path="result"):
    """Recursively assert exact equality; ``path`` labels failures."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, np.ndarray):
        assert a.shape == b.shape, f"{path}: shape {a.shape} != {b.shape}"
        assert np.array_equal(a, b), f"{path}: arrays differ"
    elif isinstance(a, dict):
        assert list(a) == list(b), f"{path}: dict keys/order differ"
        for key in a:
            assert_identical(a[key], b[key], f"{path}[{key!r}]")
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for f in dataclasses.fields(a):
            assert_identical(getattr(a, f.name), getattr(b, f.name),
                             f"{path}.{f.name}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_identical(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def assert_engines_match(fn, *, engines=("compiled", "scalar"), fields=None):
    """Run ``fn(engine=e)`` per engine and assert exact agreement.

    Args:
        fn: a callable taking an ``engine=`` keyword and returning the
            flow's result (any nesting of dicts / sequences / arrays /
            dataclasses / scalars).
        engines: engine names to compare; the first is the reference
            (by convention the kernel, with ``"scalar"`` last as the
            oracle).
        fields: optionally restrict the comparison to these attribute
            names of the results instead of full recursion — for
            results that legitimately carry engine-specific extras.

    Returns:
        The first engine's result.
    """
    if len(engines) < 2:
        raise ValueError("need at least two engines to compare")
    reference = fn(engine=engines[0])
    for engine in engines[1:]:
        other = fn(engine=engine)
        if fields is not None:
            for name in fields:
                assert_identical(getattr(reference, name),
                                 getattr(other, name),
                                 f"{engines[0]}-vs-{engine}.{name}")
        else:
            assert_identical(reference, other,
                             f"{engines[0]}-vs-{engine}")
    return reference
