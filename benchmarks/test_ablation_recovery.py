"""Ablation A1 — is recovery really temperature-insensitive?

The paper scales standby *stress* time by the diffusivity ratio but
leaves recovery time unscaled ("the temperature has negligible effect on
NBTI relaxation phase").  This ablation re-runs the Table 4 bounding
cases with recovery *also* diffusivity-scaled and quantifies how much
the published best-case flatness depends on that assumption.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import NbtiModel, OperatingProfile
from repro.netlist import iscas85
from repro.sta import ALL_ONE, ALL_ZERO, AgingAnalyzer

T_STANDBY = (330.0, 370.0, 400.0)


def run_ablation():
    circuit = iscas85.load("c432")
    paper = AgingAnalyzer(model=NbtiModel(scale_recovery=False))
    scaled = AgingAnalyzer(model=NbtiModel(scale_recovery=True))
    rows = []
    for tst in T_STANDBY:
        profile = OperatingProfile.from_ras("1:9", t_standby=tst)
        row = {"tst": tst}
        for label, analyzer in (("paper", paper), ("scaled", scaled)):
            best = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                        standby=ALL_ONE)
            worst = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                         standby=ALL_ZERO)
            row[f"best_{label}"] = best.relative_degradation
            row[f"worst_{label}"] = worst.relative_degradation
        rows.append(row)
    return rows


def check(rows):
    # Paper model: best case flat across temperatures.
    bests = [r["best_paper"] for r in rows]
    assert max(bests) - min(bests) < 1e-9
    # Scaled-recovery model: best case moves with temperature.
    bests_scaled = [r["best_scaled"] for r in rows]
    assert max(bests_scaled) - min(bests_scaled) > 1e-4
    # Cold standby with scaled recovery relaxes LESS (recovery slowed),
    # so the cold best case is worse than the paper model's.
    assert rows[0]["best_scaled"] > rows[0]["best_paper"]
    # The worst case barely changes (no standby recovery to scale).
    for r in rows:
        assert abs(r["worst_scaled"] - r["worst_paper"]) < 0.02 * r["worst_paper"]


def report(rows):
    printable = [
        [f"{r['tst']:.0f} K",
         f"{r['best_paper'] * 100:5.2f}", f"{r['best_scaled'] * 100:5.2f}",
         f"{r['worst_paper'] * 100:5.2f}", f"{r['worst_scaled'] * 100:5.2f}"]
        for r in rows
    ]
    emit("Ablation A1 — c432 degradation (%) with recovery "
         "temperature-scaling on/off",
         ["T_standby", "best (paper)", "best (scaled)",
          "worst (paper)", "worst (scaled)"],
         printable)
    print("The best-case flatness (Table 4's ~3.3 % column) is a direct "
          "consequence of\nthe unscaled-recovery assumption; the worst "
          "case is insensitive to it.")


def test_ablation_recovery(run_once):
    rows = run_once(run_ablation)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ablation()
    check(r)
    report(r)
