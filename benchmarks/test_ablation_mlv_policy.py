"""Ablation A5 — NBTI-aware MLV selection vs leakage-only selection.

The paper's co-optimization picks, among near-minimum-leakage vectors,
the one with the least aged delay.  This ablation measures what that
buys over the plain leakage-only policy (take the single lowest-leakage
vector, ignore aging), and against the worst member of the same MLV set
— bounding how much the selection policy can matter at all.
"""

from _common import emit
from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import probability_based_mlv_search, select_mlv_for_nbti
from repro.netlist import iscas85
from repro.sta import AgingAnalyzer

CIRCUITS = ("c432", "c880")
#: Cool and hot standby: the paper predicts the MLV choice "will be
#: larger with a higher standby mode temperature".
PROFILES = {330.0: OperatingProfile.from_ras("1:5", t_standby=330.0),
            400.0: OperatingProfile.from_ras("1:5", t_standby=400.0)}


def run_ablation():
    library = build_library()
    table = LeakageTable.build(library, 400.0)
    analyzer = AgingAnalyzer(library=library)
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        mlv = probability_based_mlv_search(circuit, table, seed=23,
                                           n_vectors=48, max_set_size=8,
                                           library=library)
        for tst, profile in PROFILES.items():
            sel = select_mlv_for_nbti(circuit, mlv, profile, TEN_YEARS,
                                      analyzer)
            # Leakage-only policy: the plain minimum-leakage vector.
            leakage_only = next(r for r in sel.records
                                if r.bits == mlv.best.bits)
            rows.append({
                "name": name,
                "tst": tst,
                "aware": sel.chosen.relative_degradation,
                "leakage_only": leakage_only.relative_degradation,
                "worst_in_set": sel.worst_in_set.relative_degradation,
                "spread": sel.mlv_delay_spread,
            })
    return rows


def check(rows):
    for r in rows:
        # The aware policy never loses to leakage-only...
        assert r["aware"] <= r["leakage_only"] + 1e-12
        # ...and its possible benefit is bounded by the set spread,
        # which the paper (and we) find small at cool standby.
        assert r["leakage_only"] - r["aware"] <= r["spread"] + 1e-12
        assert r["spread"] < 0.02
    # Hot standby raises the absolute degradation of every policy while
    # the tiny MLV-to-MLV spread persists: the near-minimum vectors park
    # the critical path almost identically at either temperature, so
    # even where the paper expects the IVC lever to grow with T_standby,
    # the *policy choice among MLVs* stays second-order.
    by_circuit = {}
    for r in rows:
        by_circuit.setdefault(r["name"], {})[r["tst"]] = r
    for name, pair in by_circuit.items():
        assert pair[400.0]["aware"] > pair[330.0]["aware"], name


def report(rows):
    printable = [
        [r["name"], f"{r['tst']:.0f} K", f"{r['aware'] * 100:5.3f}",
         f"{r['leakage_only'] * 100:5.3f}",
         f"{r['worst_in_set'] * 100:5.3f}",
         f"{r['spread'] * 100:6.4f}"]
        for r in rows
    ]
    emit("Ablation A5 — degradation (%) by MLV selection policy (RAS 1:5)",
         ["circuit", "T_standby", "NBTI-aware", "leakage-only",
          "worst in set", "set spread"],
         printable)
    print("At cool standby the policies nearly tie — consistent with the "
          "paper's\nconclusion that IVC is a weak NBTI knob; the aware "
          "policy costs nothing\nand is never worse.")


def test_ablation_mlv_policy(run_once):
    rows = run_once(run_ablation)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ablation()
    check(r)
    report(r)
