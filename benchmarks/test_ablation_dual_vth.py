"""Ablation A4 — dual-Vth assignment as a joint leakage/NBTI knob.

Section 4.1 argues that a higher Vth reduces both leakage and NBTI
degradation (eq. 23).  This ablation runs the greedy slack-driven
dual-Vth assignment at several timing budgets and reports the joint
benefit: fraction of gates swapped, leakage factor, and aged-delay
degradation relative to the all-low-Vth design.
"""

from _common import emit
from repro.flow import assign_dual_vth
from repro.netlist import iscas85

BUDGETS = (0.0, 0.05, 0.10)


def run_ablation():
    circuit = iscas85.load("c880")
    return [assign_dual_vth(circuit, timing_budget=b) for b in BUDGETS]


def check(results):
    fractions = [r.hvt_fraction for r in results]
    # More budget, more HVT gates.
    assert fractions == sorted(fractions)
    for r in results:
        assert r.leakage_factor < 1.0
        # The dual-Vth design ages no faster than the all-LVT one.
        assert r.degradation_dual <= r.degradation_lvt + 1e-12
    # A zero budget never slows the circuit.
    assert results[0].fresh_delay_dual <= results[0].fresh_delay_lvt * (1 + 1e-9)


def report(results):
    rows = []
    for budget, r in zip(BUDGETS, results):
        rows.append([
            f"{budget * 100:.0f} %",
            f"{r.hvt_fraction * 100:5.1f}",
            f"{r.leakage_factor:.3f}",
            f"{r.degradation_lvt * 100:5.2f}",
            f"{r.degradation_dual * 100:5.2f}",
        ])
    emit("Ablation A4 — dual-Vth on c880 (RAS 1:9, T_standby 330 K, 10 y)",
         ["timing budget", "HVT gates (%)", "leakage factor",
          "aging all-LVT (%)", "aging dual (%)"],
         rows)
    print("Higher Vth on slack-rich gates cuts subthreshold leakage "
          "multiplicatively\nand slows their aging — the joint benefit "
          "Sec. 4.1 predicts.")


def test_ablation_dual_vth(run_once):
    results = run_once(run_ablation)
    check(results)
    report(results)


if __name__ == "__main__":
    r = run_ablation()
    check(r)
    report(r)
