"""Plain-text table formatting shared by the benchmark harness.

Every bench prints the same rows/series the paper reports; this module
keeps that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Cells are stringified as-is; pre-format floats at the call site so
    each bench controls its own precision.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(x: float, digits: int = 2) -> str:
    """Format a fraction as a percent string."""
    return f"{x * 100:.{digits}f}%"


def mv(x: float, digits: int = 1) -> str:
    """Format volts as millivolts."""
    return f"{x * 1e3:.{digits}f}"


def ns(x: float, digits: int = 4) -> str:
    """Format seconds as nanoseconds."""
    return f"{x * 1e9:.{digits}f}"


def ua(x: float, digits: int = 2) -> str:
    """Format amperes as microamperes."""
    return f"{x * 1e6:.{digits}f}"
