"""Extension — BBSTI vs FGSTI sizing (paper Sec. 2.2's two ST families).

The paper evaluates block-based insertion; it cites fine-grain insertion
[40]-[42] as the alternative that "guarantees circuit functionality and
improves noise margins" with per-gate slack-dependent budgets.  This
experiment sizes both on the same circuits at the same delay budget:

* BBSTI: one shared header, block-current estimate with simultaneity;
* FGSTI-uniform: one header per cell, every cell at the global beta;
* FGSTI-slack-aware: per-cell budgets inflated by each gate's slack
  (binary-searched so the circuit still meets (1 + beta) D).
"""

from _common import emit
from repro.netlist import iscas85
from repro.sleep import (
    SleepStyle,
    design_fine_grain,
    design_sleep_transistor,
    uniform_fine_grain_area,
)

CIRCUITS = ("c432", "c880", "c1355")
BETA = 0.05


def run_ext():
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        bb = design_sleep_transistor(circuit, SleepStyle.HEADER, BETA)
        fg = design_fine_grain(circuit, BETA)
        uniform = uniform_fine_grain_area(circuit, BETA)
        rows.append({
            "name": name,
            "gates": circuit.n_gates(),
            "bbsti": bb.aspect_ratio,
            "fgsti_uniform": uniform,
            "fgsti_slack": fg.total_aspect,
            "slack_share": fg.slack_share,
            "penalty": fg.delay_penalty,
        })
    return rows


def check(rows):
    for r in rows:
        # FGSTI pays a large area premium over the shared block device.
        assert r["fgsti_slack"] > 5 * r["bbsti"], r["name"]
        # But slack-awareness claws back a solid fraction of it.
        assert r["fgsti_slack"] < 0.9 * r["fgsti_uniform"], r["name"]
        # And timing is verified, not estimated.
        assert r["penalty"] <= BETA * (1 + 1e-6), r["name"]


def report(rows):
    printable = [
        [r["name"], r["gates"], f"{r['bbsti']:8.0f}",
         f"{r['fgsti_uniform']:8.0f}", f"{r['fgsti_slack']:8.0f}",
         f"{(1 - r['fgsti_slack'] / r['fgsti_uniform']) * 100:5.1f}",
         f"{r['penalty'] * 100:4.2f}"]
        for r in rows
    ]
    emit(f"Extension — ST area (total W/L) at beta = {BETA:.0%}",
         ["circuit", "gates", "BBSTI", "FGSTI uniform", "FGSTI slack-aware",
          "slack saving (%)", "penalty (%)"],
         printable)
    print("BBSTI's shared device is far smaller (current sharing); "
          "slack-aware budgets\nrecover ~half of FGSTI's premium while "
          "keeping its guaranteed per-cell timing.")


def test_ext_fgsti(run_once):
    rows = run_once(run_ext)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ext()
    check(r)
    report(r)
