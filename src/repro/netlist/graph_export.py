"""NetworkX interop for circuit graphs.

Downstream users routinely want the timing DAG in a general graph
library — for drawing, centrality analysis, or custom traversals.  The
export carries enough attributes (cell, logic level, PI/PO flags) to be
useful standalone, and the importer lets graph-level transformations
round-trip back into a :class:`~repro.netlist.circuit.Circuit`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netlist.circuit import Circuit, Gate

if TYPE_CHECKING:  # pragma: no cover
    import networkx


def to_networkx(circuit: Circuit) -> "networkx.DiGraph":
    """Export the netlist as a ``networkx.DiGraph``.

    Nodes are nets; attributes:

    * ``kind``: ``"input"`` or ``"gate"``,
    * ``cell``: library cell name (gates only),
    * ``level``: logic level (PIs at 0),
    * ``is_output``: primary-output flag.

    Edges run driver -> consumer with a ``pin`` attribute giving the
    consumer's input position.
    """
    import networkx as nx

    graph = nx.DiGraph(name=circuit.name)
    levels = circuit.levels()
    outputs = set(circuit.primary_outputs)
    for pi in circuit.primary_inputs:
        graph.add_node(pi, kind="input", level=0, is_output=pi in outputs)
    for gate in circuit.gates.values():
        graph.add_node(gate.name, kind="gate", cell=gate.cell,
                       level=levels[gate.name],
                       is_output=gate.name in outputs)
        for position, net in enumerate(gate.inputs):
            graph.add_edge(net, gate.name, pin=position)
    return graph


def from_networkx(graph: "networkx.DiGraph", name: str = "") -> Circuit:
    """Rebuild a :class:`Circuit` from a graph produced by
    :func:`to_networkx` (attributes required).

    Raises:
        ValueError: if node/edge attributes are missing or inconsistent.
    """
    inputs = []
    gates = []
    outputs = []
    for node, data in graph.nodes(data=True):
        kind = data.get("kind")
        if kind == "input":
            inputs.append(node)
        elif kind == "gate":
            cell = data.get("cell")
            if cell is None:
                raise ValueError(f"gate node {node!r} lacks a 'cell' attribute")
            preds = sorted(graph.in_edges(node, data=True),
                           key=lambda e: e[2].get("pin", 0))
            pins = [src for src, _, _ in preds]
            if not pins:
                raise ValueError(f"gate node {node!r} has no inputs")
            gates.append(Gate(node, cell, pins))
        else:
            raise ValueError(f"node {node!r} lacks a valid 'kind' attribute")
        if data.get("is_output"):
            outputs.append(node)
    if not outputs:
        raise ValueError("graph marks no primary outputs")
    return Circuit(name or graph.graph.get("name", "from_networkx"),
                   inputs, outputs, gates)
