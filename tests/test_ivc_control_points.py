"""Tests for control-point insertion (realized internal node control)."""

import pytest

from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import (
    census_gain,
    count_stressed_devices,
    greedy_census_points,
    greedy_control_points,
    insert_control_points,
    select_stress_positive_nets,
)
from repro.netlist import iscas85, random_logic
from repro.sim import constant_vector, evaluate, random_vectors
from repro.sta import AgingAnalyzer


@pytest.fixture(scope="module")
def circuit():
    return random_logic("cp", n_inputs=12, n_outputs=3, n_gates=70, seed=42)


PROFILE = OperatingProfile.from_ras("1:9", t_standby=400.0)


class TestInsertion:
    def test_functional_transparency(self, circuit):
        """With SLEEP = 0 the controlled circuit computes the original
        function on every output."""
        targets = list(circuit.gates)[:10]
        controlled = insert_control_points(circuit, targets)
        for vec in random_vectors(circuit, 16, seed=3):
            original = evaluate(circuit, vec)
            vec_cp = dict(vec)
            vec_cp["SLEEP"] = 0
            modified = evaluate(controlled, vec_cp)
            for po in circuit.primary_outputs:
                assert modified[po] == original[po]

    def test_standby_forces_value_one(self, circuit):
        targets = list(circuit.gates)[:10]
        controlled = insert_control_points(circuit, targets)
        vec = constant_vector(circuit, 0)
        vec["SLEEP"] = 1
        states = evaluate(controlled, vec)
        for net in targets:
            assert states[net] == 1

    def test_standby_forces_value_zero(self, circuit):
        targets = list(circuit.gates)[:5]
        controlled = insert_control_points(circuit, targets, force_value=0)
        vec = constant_vector(circuit, 1)
        vec["SLEEP"] = 1
        states = evaluate(controlled, vec)
        for net in targets:
            assert states[net] == 0

    def test_area_accounting(self, circuit):
        targets = list(circuit.gates)[:7]
        controlled = insert_control_points(circuit, targets)
        assert controlled.n_gates() == circuit.n_gates() + 7
        # force_value=0 adds the shared inverter too.
        controlled0 = insert_control_points(circuit, targets, force_value=0)
        assert controlled0.n_gates() == circuit.n_gates() + 8

    def test_guards(self, circuit):
        with pytest.raises(ValueError, match="force_value"):
            insert_control_points(circuit, ["g1"], force_value=2)
        with pytest.raises(ValueError, match="not a gate output"):
            insert_control_points(circuit, ["i0"])
        with pytest.raises(ValueError, match="collides"):
            insert_control_points(circuit, ["g1"], sleep_net="g2")

    def test_duplicate_targets_deduplicated(self, circuit):
        controlled = insert_control_points(circuit, ["g1", "g1"])
        assert controlled.n_gates() == circuit.n_gates() + 1


class TestStressCensus:
    def test_selective_forcing_reduces_stressed_devices(self):
        """Forcing high-fanout zero nets relaxes more receivers than it
        stresses forcers: the census drops even though (see the bench)
        critical-path delay does not."""
        c = iscas85.load("c432")
        vec0 = constant_vector(c, 0)
        states = evaluate(c, vec0)
        fanout = c.fanout()
        targets = [g for g in c.gates
                   if states[g] == 0 and len(fanout[g]) >= 2]
        controlled = insert_control_points(c, targets)
        vec1 = dict(vec0)
        vec1["SLEEP"] = 1
        base = count_stressed_devices(c, vec0)
        after = count_stressed_devices(controlled, vec1)
        assert after < base

    def test_full_coverage_not_free(self):
        """Forcing every net adds one stressed output stage per forcing
        gate — the conservation effect documented in the module."""
        c = iscas85.load("c432")
        vec0 = constant_vector(c, 0)
        full = insert_control_points(c, list(c.gates))
        vec1 = dict(vec0)
        vec1["SLEEP"] = 1
        base = count_stressed_devices(c, vec0)
        after = count_stressed_devices(full, vec1)
        # Not dramatically better; may even be worse on AND/OR logic.
        assert after > 0.5 * base


class TestCensusGreedy:
    def test_greedy_census_never_worse(self):
        c = iscas85.load("c432")
        vec = constant_vector(c, 0)
        selected, base, final = greedy_census_points(c, vec, max_points=8)
        assert final <= base
        assert len(selected) <= 8

    def test_greedy_census_verified_against_direct_count(self):
        c = iscas85.load("c432")
        vec = constant_vector(c, 0)
        selected, base, final = greedy_census_points(c, vec, max_points=4)
        controlled = insert_control_points(c, selected)
        parked = dict(vec)
        parked["SLEEP"] = 1
        assert count_stressed_devices(controlled, parked) == final
        assert count_stressed_devices(c, vec) == base

    def test_zero_budget(self):
        c = iscas85.load("c432")
        vec = constant_vector(c, 0)
        selected, base, final = greedy_census_points(c, vec, max_points=0)
        assert selected == []
        assert base == final

    def test_negative_budget_rejected(self):
        c = iscas85.load("c432")
        with pytest.raises(ValueError):
            greedy_census_points(c, constant_vector(c, 0), max_points=-1)

    def test_census_gain_on_one_net_is_useless(self):
        """Forcing a net already at 1 relieves nobody and costs the
        forcer's own stressed stage."""
        c = iscas85.load("c432")
        states = evaluate(c, constant_vector(c, 0))
        one_nets = [g for g in c.gates if states[g] == 1]
        assert one_nets
        assert census_gain(c, states, one_nets[0]) < 0

    def test_select_stress_positive_nets_all_gain_locally(self):
        c = iscas85.load("c432")
        vec = constant_vector(c, 0)
        states = evaluate(c, vec)
        for net in select_stress_positive_nets(c, vec):
            assert census_gain(c, states, net) > 0


class TestGreedy:
    def test_result_invariants(self, circuit):
        res = greedy_control_points(circuit, PROFILE, TEN_YEARS, max_points=6)
        assert res.area_overhead_gates == len(res.controlled)
        assert 0.0 <= res.potential_realized <= 1.0
        assert res.best_bound < res.base_degradation
        # The realizable result stays at or above the Table 4 bound.
        assert res.achieved_degradation >= res.best_bound - 1e-12

    def test_zero_points_identity(self, circuit):
        res = greedy_control_points(circuit, PROFILE, TEN_YEARS, max_points=0)
        assert res.controlled == ()
        assert res.fresh_overhead == 0.0
        assert res.achieved_degradation == pytest.approx(res.base_degradation)

    def test_respects_budget(self, circuit):
        res = greedy_control_points(circuit, PROFILE, TEN_YEARS, max_points=3)
        assert len(res.controlled) <= 3

    def test_negative_budget_rejected(self, circuit):
        with pytest.raises(ValueError):
            greedy_control_points(circuit, PROFILE, max_points=-1)
