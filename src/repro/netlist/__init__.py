"""Gate-level netlist substrate (S3): circuit DAG, bench I/O, benchmarks."""

from repro.netlist.circuit import Circuit, CircuitError, Gate
from repro.netlist.bench import (
    BenchParseError,
    load_bench,
    load_packaged,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.netlist.generators import (
    alu_circuit,
    array_multiplier,
    ecc_circuit,
    expand_xors,
    priority_controller,
    random_logic,
    scale_circuit,
)
from repro.netlist.graph_export import from_networkx, to_networkx
from repro.netlist import iscas85

__all__ = [
    "Circuit", "CircuitError", "Gate",
    "BenchParseError", "load_bench", "load_packaged", "parse_bench", "save_bench", "write_bench",
    "alu_circuit", "array_multiplier", "ecc_circuit", "expand_xors",
    "priority_controller", "random_logic", "scale_circuit",
    "from_networkx", "to_networkx",
    "iscas85",
]
