"""Perf harness — bit-packed vs scalar MLV search (the tentpole number).

Times ``probability_based_mlv_search`` twice on the same circuit and
seed — once on the scalar per-vector path, once on the bit-packed batch
kernel — asserts the results are *identical* (records, iterations,
convergence, evaluation count) and that the packed engine clears the
acceptance bar, then writes the measurements to ``BENCH_mlv.json`` next
to this file.

Default configuration is the acceptance-criterion run (c880, 64 vectors
per round, >= 10x).  Set ``BENCH_SMOKE=1`` for a seconds-scale CI smoke
run (c432, 16 vectors, speedup merely > 1x) that still exercises the
whole harness and emits the artifact.
"""

import json
import os
import time
from pathlib import Path

from _common import emit, record_history
from repro.cells.leakage import LeakageTable
from repro.ivc.mlv import probability_based_mlv_search
from repro.netlist import iscas85
from repro.sim.logic import default_library

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CIRCUIT = "c432" if SMOKE else "c880"
N_VECTORS = 16 if SMOKE else 64
MIN_SPEEDUP = 1.0 if SMOKE else 10.0
ARTIFACT = Path(__file__).with_name("BENCH_mlv.json")


def _timed_search(circuit, table, engine):
    start = time.perf_counter()
    result = probability_based_mlv_search(
        circuit, table, n_vectors=N_VECTORS, max_set_size=8,
        range_fraction=0.04, seed=17, engine=engine)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_perf_mlv():
    circuit = iscas85.load(CIRCUIT)
    table = LeakageTable.build(default_library(), 400.0)
    scalar, t_scalar = _timed_search(circuit, table, "scalar")
    packed, t_packed = _timed_search(circuit, table, "packed")
    return {
        "circuit": CIRCUIT,
        "n_vectors": N_VECTORS,
        "smoke": SMOKE,
        "scalar_seconds": t_scalar,
        "packed_seconds": t_packed,
        "speedup": t_scalar / t_packed,
        "scalar_vectors_per_second": scalar.evaluated / t_scalar,
        "packed_vectors_per_second": packed.evaluated / t_packed,
        "evaluated": packed.evaluated,
        "iterations": packed.iterations,
        "identical_records": packed.records == scalar.records
        and (packed.iterations, packed.converged, packed.evaluated)
        == (scalar.iterations, scalar.converged, scalar.evaluated),
    }


def check(row):
    assert row["identical_records"], \
        "packed engine diverged from the scalar reference"
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"packed engine only {row['speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP:.0f}x)")


def report(row):
    emit(f"MLV search perf — {row['circuit']}, "
         f"n_vectors={row['n_vectors']}",
         ["engine", "wall (s)", "vectors/s"],
         [["scalar", f"{row['scalar_seconds']:.3f}",
           f"{row['scalar_vectors_per_second']:,.0f}"],
          ["packed", f"{row['packed_seconds']:.3f}",
           f"{row['packed_vectors_per_second']:,.0f}"]])
    print(f"speedup: {row['speedup']:.1f}x "
          f"(bar: {MIN_SPEEDUP:.0f}x), records identical: "
          f"{row['identical_records']}")
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    record_history("perf_mlv", wall_seconds=row["packed_seconds"],
                   speedup=row["speedup"], smoke=row["smoke"])


def test_perf_mlv(run_once):
    row = run_once(run_perf_mlv)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_mlv()
    check(r)
    report(r)
