"""Content-addressed artifact plane: fingerprints, bundles, store,
bundle-shipping sweeps — plus the satellite guarantees (vectorized
variation sampling, batched sleep lifetime grid)."""

import os
import pickle
import random
import subprocess
import sys
import unittest
from pathlib import Path

import numpy as np

from repro import obs
from repro.artifacts import (
    ArtifactBundle,
    ArtifactStore,
    bundle_key,
    scenario_key,
)
from repro.cells.library import build_library
from repro.constants import TEN_YEARS
from repro.context import AnalysisContext
from repro.core.aging import NbtiModel
from repro.core.profiles import OperatingProfile
from repro.flow.parallel import (
    CoOptimizationJob,
    co_optimize_circuit,
    load_circuit,
    run_co_optimization_sweep,
    run_potential_sweep,
)
from repro.netlist.circuit import Circuit, Gate
from repro.tech.ptm import PTM90_HVT

PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)

#: The lowering artifacts a hydrated context must never rebuild.
LOWERINGS = ("gate_loads", "compiled_timing", "packed_simulator",
             "stress_duties", "aging_plan", "leakage_table")


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _counter_total(snapshot, name) -> float:
    entry = snapshot.get(name)
    if not entry:
        return 0
    return sum(entry.get("values", {}).values())


def _run_py(code: str) -> str:
    out = subprocess.run([sys.executable, "-c", code], env=_env(),
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


class TestFingerprints(unittest.TestCase):
    def test_stable_across_reloads(self):
        a = load_circuit("c432").content_fingerprint()
        b = load_circuit("c432").content_fingerprint()
        self.assertEqual(a, b)

    def test_name_independent(self):
        c = load_circuit("c17")
        renamed = Circuit(name="totally-else",
                          primary_inputs=c.primary_inputs,
                          primary_outputs=c.primary_outputs,
                          gates=list(c.gates.values()))
        self.assertEqual(c.content_fingerprint(),
                         renamed.content_fingerprint())

    def test_stable_across_processes(self):
        local = load_circuit("c432").content_fingerprint()
        remote = _run_py(
            "from repro.flow.parallel import load_circuit\n"
            "print(load_circuit('c432').content_fingerprint())")
        self.assertEqual(local, remote)

    def test_changed_by_replace_gate(self):
        c = load_circuit("c17")
        before = c.content_fingerprint()
        name = next(iter(c.gates))
        old = c.gates[name]
        c.replace_gate(Gate(name=name, cell="NOR2", inputs=old.inputs))
        self.assertNotEqual(before, c.content_fingerprint())

    def test_library_fingerprint_structural(self):
        self.assertEqual(build_library().content_fingerprint(),
                         build_library().content_fingerprint())
        self.assertNotEqual(build_library().content_fingerprint(),
                            build_library(PTM90_HVT).content_fingerprint())

    def test_model_fingerprint(self):
        self.assertEqual(NbtiModel().content_fingerprint(),
                         NbtiModel().content_fingerprint())
        self.assertNotEqual(
            NbtiModel().content_fingerprint(),
            NbtiModel(scale_recovery=True).content_fingerprint())

    def test_bundle_key_covers_temperature(self):
        ctx = AnalysisContext(load_circuit("c17"))
        fps = ctx.content_fingerprints()
        self.assertNotEqual(
            bundle_key(fps["circuit"], fps["library"], fps["model"], 400.0),
            bundle_key(fps["circuit"], fps["library"], fps["model"], 330.0))

    def test_scenario_key_order_insensitive(self):
        self.assertEqual(scenario_key({"a": 1, "b": 2.5}),
                         scenario_key({"b": 2.5, "a": 1}))
        self.assertNotEqual(scenario_key({"a": 1}), scenario_key({"a": 2}))


class TestArtifactBundle(unittest.TestCase):
    def _warm_context(self, name="c17"):
        ctx = AnalysisContext(load_circuit(name))
        ctx.aged_timing(PROFILE, TEN_YEARS)
        return ctx

    def test_pickle_round_trip_equality(self):
        bundle = ArtifactBundle.snapshot(self._warm_context())
        clone = pickle.loads(pickle.dumps(bundle))
        self.assertEqual(clone, bundle)

    def test_hydrated_matches_fresh_bit_for_bit(self):
        fresh = self._warm_context("c432")
        hydrated = ArtifactBundle.snapshot(fresh).hydrate()
        a = fresh.aged_timing(PROFILE, TEN_YEARS)
        b = hydrated.aged_timing(PROFILE, TEN_YEARS)
        self.assertEqual(a.fresh_delay, b.fresh_delay)
        self.assertEqual(a.aged_delay, b.aged_delay)
        self.assertEqual(a.max_shift, b.max_shift)
        self.assertTrue(np.array_equal(
            fresh.compiled_timing().base_delays(),
            hydrated.compiled_timing().base_delays()))
        pop = np.array([[0] * 36, [1] * 36, [0, 1] * 18], dtype=np.uint8)
        self.assertTrue(np.array_equal(fresh.population_leakage(pop),
                                       hydrated.population_leakage(pop)))

    def test_hydrated_context_recomputes_nothing(self):
        hydrated = ArtifactBundle.snapshot(self._warm_context()).hydrate()
        hydrated.aged_timing(PROFILE, TEN_YEARS)
        for name in LOWERINGS:
            self.assertEqual(hydrated.stats.misses(name), 0, name)

    def test_hydration_skips_lowering_kernels(self):
        bundle = ArtifactBundle.snapshot(self._warm_context())
        registry = obs.MetricsRegistry()
        tracer = obs.Tracer()
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            ctx = bundle.hydrate()
            ctx.aged_timing(PROFILE, TEN_YEARS)
        snapshot = registry.snapshot()
        for kernel in ("sta.compiled.lowerings", "sim.packed.compiles",
                       "aging.plan.lowerings"):
            self.assertEqual(_counter_total(snapshot, kernel), 0, kernel)
        self.assertGreaterEqual(
            _counter_total(snapshot, "artifacts.hydrations"), 1)

    def test_cross_process_round_trip(self):
        import tempfile

        ctx = self._warm_context()
        expected = ctx.aged_timing(PROFILE, TEN_YEARS).aged_delay
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "bundle.pkl"
            path.write_bytes(pickle.dumps(ArtifactBundle.snapshot(ctx)))
            remote = _run_py(
                "import pickle\n"
                "from repro.core.profiles import OperatingProfile\n"
                "from repro.constants import TEN_YEARS\n"
                f"bundle = pickle.loads(open({str(path)!r}, 'rb').read())\n"
                "ctx = bundle.hydrate()\n"
                "profile = OperatingProfile.from_ras('1:5', t_standby=330.0)\n"
                "res = ctx.aged_timing(profile, TEN_YEARS)\n"
                "print(repr(res.aged_delay))")
        self.assertEqual(float(remote), expected)

    def test_seed_rejects_mismatched_circuit(self):
        bundle = ArtifactBundle.snapshot(self._warm_context())
        other = load_circuit("c17")
        name = next(iter(other.gates))
        old = other.gates[name]
        other.replace_gate(Gate(name=name, cell="NOR2", inputs=old.inputs))
        with self.assertRaises(ValueError):
            bundle.seed(AnalysisContext(other))

    def test_payload_schema_version_checked(self):
        bundle = ArtifactBundle.snapshot(self._warm_context())
        manifest, arrays = bundle.to_payload()
        manifest = dict(manifest, schema_version=999)
        with self.assertRaises(ValueError):
            ArtifactBundle.from_payload(manifest, arrays)


class TestArtifactStore(unittest.TestCase):
    def setUp(self):
        import tempfile

        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def test_bundle_round_trip_and_counters(self):
        store = ArtifactStore(self.root)
        ctx = AnalysisContext(load_circuit("c17"), store=store)
        self.assertEqual(store.stats.misses("bundle"), 1)
        bundle = ctx.save_to_store()
        self.assertTrue(store.has_bundle(bundle.bundle_key))
        loaded = store.load_bundle(bundle.bundle_key)
        self.assertEqual(loaded, bundle)
        self.assertEqual(store.stats.hits("bundle"), 1)

    def test_warm_context_hydrates_from_store(self):
        store = ArtifactStore(self.root)
        cold = AnalysisContext(load_circuit("c17"), store=store)
        expected = cold.aged_timing(PROFILE, TEN_YEARS).aged_delay
        cold.save_to_store()
        warm = AnalysisContext(load_circuit("c17"), store=store)
        got = warm.aged_timing(PROFILE, TEN_YEARS).aged_delay
        self.assertEqual(got, expected)
        for name in LOWERINGS:
            self.assertEqual(warm.stats.misses(name), 0, name)

    def test_result_cache(self):
        store = ArtifactStore(self.root)
        self.assertIsNone(store.load_result("fp", "key"))
        store.save_result("fp", "key", {"x": 0.12345678901234567})
        self.assertEqual(store.load_result("fp", "key"),
                         {"x": 0.12345678901234567})
        self.assertEqual(store.stats.hits("result"), 1)
        self.assertEqual(store.stats.misses("result"), 1)

    def test_orphan_arrays_are_invisible(self):
        # A crash between the .npz and its manifest leaves an orphan
        # array file; the manifest-last protocol means it reads as a
        # clean miss.
        store = ArtifactStore(self.root)
        ctx = AnalysisContext(load_circuit("c17"))
        bundle = ArtifactBundle.snapshot(ctx)
        store.save_bundle(bundle)
        store._manifest_path(bundle.bundle_key).unlink()
        self.assertFalse(store.has_bundle(bundle.bundle_key))
        self.assertIsNone(store.load_bundle(bundle.bundle_key))

    def test_info_and_clear(self):
        store = ArtifactStore(self.root)
        ctx = AnalysisContext(load_circuit("c17"), store=store)
        ctx.save_to_store()
        store.save_result("fp", "key", {"x": 1})
        store.save_shard("sweepkey", 0, {"schema": 1})
        info = store.info()
        self.assertEqual(info["bundles"], 1)
        self.assertEqual(info["results"], 1)
        self.assertEqual(info["shards"], 1)
        self.assertGreater(info["bytes"], 0)
        removed = store.clear()
        self.assertGreaterEqual(removed, 4)  # npz + manifest + result...
        self.assertEqual(store.info()["bundles"], 0)
        self.assertEqual(store.info()["results"], 0)
        self.assertEqual(store.info()["shards"], 0)

    def test_shard_checkpoints_round_trip(self):
        store = ArtifactStore(self.root)
        self.assertIsNone(store.load_shard("swp", 0))
        self.assertEqual(store.list_shards("swp"), [])
        store.save_shard("swp", 2, {"results": [0.1234567890123457]})
        store.save_shard("swp", 0, {"results": []})
        self.assertEqual(store.list_shards("swp"), [0, 2])
        self.assertEqual(store.load_shard("swp", 2),
                         {"results": [0.1234567890123457]})
        self.assertEqual(store.stats.hits("shard"), 1)
        self.assertEqual(store.stats.misses("shard"), 1)
        self.assertEqual(store.clear_sweep("swp"), 2)
        self.assertEqual(store.list_shards("swp"), [])
        self.assertEqual(store.clear_sweep("swp"), 0)

    def test_concurrent_same_key_bundle_writers(self):
        # Satellite requirement: the store stays consistent when many
        # shard workers save the same bundle at once.  Threads exercise
        # the same lock/atomic-replace code paths as processes.
        import threading

        store = ArtifactStore(self.root)
        ctx = AnalysisContext(load_circuit("c17"))
        bundle = ArtifactBundle.snapshot(ctx)
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    store.save_bundle(bundle)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self.assertEqual(errors, [])
        self.assertTrue(store.has_bundle(bundle.bundle_key))
        self.assertEqual(store.load_bundle(bundle.bundle_key), bundle)
        # No stray lock or temp files survive the stampede.
        leftovers = [p for p in self.root.rglob("*")
                     if p.is_file() and (p.suffix == ".lock"
                                         or p.name.startswith("."))]
        self.assertEqual(leftovers, [])

    def test_stale_lock_is_broken(self):
        import time as _time

        from repro.artifacts import store as store_mod

        store = ArtifactStore(self.root)
        ctx = AnalysisContext(load_circuit("c17"))
        bundle = ArtifactBundle.snapshot(ctx)
        key = bundle.bundle_key
        lock = store._bundle_dir(key) / f"{key}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.touch()
        stale = _time.time() - 10 * store_mod.LOCK_STALE_SECONDS
        os.utime(lock, (stale, stale))
        store.save_bundle(bundle)  # breaks the orphan lock, no hang
        self.assertTrue(store.has_bundle(key))
        self.assertFalse(lock.exists())


class TestBundledSweeps(unittest.TestCase):
    CIRCUITS = ["c17", "c17"]

    def test_bundled_equals_rebuilt_co_optimization(self):
        kw = dict(n_vectors=8, max_set_size=3, seed=1, max_workers=1)
        shipped = run_co_optimization_sweep(self.CIRCUITS, PROFILE,
                                            TEN_YEARS, **kw)
        rebuilt = run_co_optimization_sweep(self.CIRCUITS, PROFILE,
                                            TEN_YEARS, ship_bundles=False,
                                            **kw)
        self.assertEqual(shipped, rebuilt)

    def test_pooled_bundled_equals_serial_bundled(self):
        kw = dict(n_vectors=8, max_set_size=3, seed=1)
        serial = run_co_optimization_sweep(self.CIRCUITS, PROFILE,
                                           TEN_YEARS, max_workers=1, **kw)
        pooled = run_co_optimization_sweep(self.CIRCUITS, PROFILE,
                                           TEN_YEARS, max_workers=2, **kw)
        self.assertEqual(serial, pooled)

    def test_direct_worker_without_bundle_matches(self):
        job = CoOptimizationJob(circuit="c17", profile=PROFILE,
                                lifetime=TEN_YEARS, n_vectors=8,
                                max_set_size=3, seed=1)
        direct = co_optimize_circuit(job)
        [row] = run_co_optimization_sweep(["c17"], PROFILE, TEN_YEARS,
                                          n_vectors=8, max_set_size=3,
                                          seed=1, max_workers=1)
        self.assertEqual(direct, row)

    def test_bundled_equals_rebuilt_potential_sweep(self):
        temps = (330.0, 400.0)
        shipped = run_potential_sweep(["c17"], temps, max_workers=1)
        rebuilt = run_potential_sweep(["c17"], temps, max_workers=1,
                                      ship_bundles=False)
        self.assertEqual(shipped, rebuilt)

    def test_sweep_with_store_round_trip(self):
        import tempfile

        kw = dict(n_vectors=8, max_set_size=3, seed=1, max_workers=1)
        plain = run_co_optimization_sweep(["c17"], PROFILE, TEN_YEARS, **kw)
        with tempfile.TemporaryDirectory() as d:
            s1 = ArtifactStore(d)
            cold = run_co_optimization_sweep(["c17"], PROFILE, TEN_YEARS,
                                             store=s1, **kw)
            self.assertEqual(s1.stats.misses("bundle"), 1)
            s2 = ArtifactStore(d)
            warm = run_co_optimization_sweep(["c17"], PROFILE, TEN_YEARS,
                                             store=s2, **kw)
            self.assertEqual(s2.stats.hits("bundle"), 1)
            self.assertEqual(s2.stats.misses("bundle"), 0)
        self.assertEqual(cold, plain)
        self.assertEqual(warm, plain)


class TestVectorizedSampling(unittest.TestCase):
    """Satellite: one RNG call per population, bit-identical draws."""

    def _oracle(self, model, circuit, n, seed):
        rng = random.Random(seed)
        return [model.sample(circuit, rng) for _ in range(n)]

    def test_bit_identical_to_scalar_loop(self):
        from repro.variation.sampling import VariationModel

        circuit = load_circuit("c432")
        models = [VariationModel(),
                  VariationModel(sigma_local=0.01, sigma_global=0.02),
                  VariationModel(sigma_local=0.0, sigma_global=0.02),
                  VariationModel(sigma_local=0.0, sigma_global=0.0),
                  VariationModel(sigma_local=0.5, sigma_global=0.3,
                                 truncate_sigmas=1.0)]
        for model in models:
            for seed in (0, 7, 12345):
                for n in (1, 2, 3, 17):
                    self.assertEqual(
                        model.sample_many(circuit, n, seed),
                        self._oracle(model, circuit, n, seed),
                        (model, seed, n))

    def test_returns_plain_floats(self):
        from repro.variation.sampling import VariationModel

        dies = VariationModel().sample_many(load_circuit("c17"), 3, seed=2)
        for die in dies:
            for value in die.values():
                self.assertIs(type(value), float)


class TestGatedLifetimeSeries(unittest.TestCase):
    """Satellite: the (year, drop) grid through one delays_batch call."""

    def test_bit_identical_to_per_point_calls(self):
        from repro.sleep import (SleepStyle, design_sleep_transistor,
                                 gated_aged_delay, gated_lifetime_series)

        circuit = load_circuit("c432")
        ctx = AnalysisContext(circuit)
        times = [0.0, TEN_YEARS * 0.25, TEN_YEARS]
        for style in (SleepStyle.HEADER, SleepStyle.FOOTER, SleepStyle.BOTH):
            design = design_sleep_transistor(circuit, style, beta=0.05,
                                             context=ctx)
            series = gated_lifetime_series(circuit, design, PROFILE, times,
                                           context=ctx)
            oracle = [gated_aged_delay(circuit, design, PROFILE, t,
                                       context=ctx) for t in times]
            self.assertEqual(series, oracle, style)

    def test_single_propagation_for_whole_grid(self):
        from repro.sleep import (SleepStyle, design_sleep_transistor,
                                 gated_lifetime_series)

        circuit = load_circuit("c17")
        ctx = AnalysisContext(circuit)
        design = design_sleep_transistor(circuit, SleepStyle.HEADER,
                                         beta=0.05, context=ctx)
        registry = obs.MetricsRegistry()
        tracer = obs.Tracer()
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            gated_lifetime_series(circuit, design, PROFILE,
                                  [0.0, TEN_YEARS * 0.5, TEN_YEARS],
                                  context=ctx)
        snapshot = registry.snapshot()
        self.assertEqual(
            _counter_total(snapshot, "sta.compiled.batch_calls"), 1)
        self.assertEqual(_counter_total(snapshot, "sleep.gated_points"), 3)


if __name__ == "__main__":
    unittest.main()
