"""Tests for the thermal substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import celsius_to_kelvin
from repro.thermal import (
    Task,
    ThermalRC,
    mode_temperatures,
    profile_from_powers,
    random_task_set,
    simulate_trace,
    task_set_trace,
    trace_statistics,
)

RC = ThermalRC()


class TestThermalRC:
    def test_steady_state_linear_in_power(self):
        assert RC.steady_state(0.0) == RC.t_ambient
        assert (RC.steady_state(100.0) - RC.t_ambient
                == pytest.approx(100.0 * RC.r_th))

    def test_paper_temperature_band(self):
        """10-130 W must span roughly the paper's 60-110 degC band."""
        lo = RC.steady_state(10.0) - 273.15
        hi = RC.steady_state(130.0) - 273.15
        assert 55.0 < lo < 65.0
        assert 105.0 < hi < 115.0

    def test_millisecond_settling(self):
        """The paper: temperature converges 'in the order of
        milliseconds'."""
        assert 1e-3 < RC.settling_time(0.99) < 100e-3

    def test_step_converges_to_steady_state(self):
        t = RC.step(300.0, 100.0, 15.0 * RC.time_constant)
        assert t == pytest.approx(RC.steady_state(100.0), abs=1e-3)

    def test_step_zero_time_identity(self):
        assert RC.step(350.0, 100.0, 0.0) == pytest.approx(350.0)

    def test_step_exact_exponential(self):
        dt = RC.time_constant
        target = RC.steady_state(50.0)
        t = RC.step(300.0, 50.0, dt)
        assert t == pytest.approx(target + (300.0 - target) * math.exp(-1.0))

    def test_guards(self):
        with pytest.raises(ValueError):
            ThermalRC(r_th=-1.0)
        with pytest.raises(ValueError):
            RC.steady_state(-5.0)
        with pytest.raises(ValueError):
            RC.step(300.0, 10.0, -1.0)
        with pytest.raises(ValueError):
            RC.settling_time(1.5)

    @given(st.floats(min_value=0.0, max_value=200.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_property_step_bounded_by_endpoints(self, power, dt_factor):
        t0 = 320.0
        target = RC.steady_state(power)
        t = RC.step(t0, power, dt_factor * RC.time_constant)
        lo, hi = min(t0, target), max(t0, target)
        assert lo - 1e-9 <= t <= hi + 1e-9


class TestTrace:
    def test_two_phase_trace_moves_between_steady_states(self):
        times, temps = simulate_trace(
            RC, [(0.5, 130.0), (0.5, 10.0)], samples_per_phase=50)
        stats = trace_statistics(temps)
        assert stats["max_k"] == pytest.approx(RC.steady_state(130.0), abs=0.5)
        assert stats["min_k"] == pytest.approx(RC.steady_state(10.0), abs=0.5)

    def test_trace_lengths(self):
        times, temps = simulate_trace(RC, [(0.1, 50.0)], samples_per_phase=10)
        assert len(times) == len(temps) == 11
        assert times[0] == 0.0

    def test_trace_guards(self):
        with pytest.raises(ValueError):
            simulate_trace(RC, [])
        with pytest.raises(ValueError):
            simulate_trace(RC, [(0.0, 10.0)])
        with pytest.raises(ValueError):
            simulate_trace(RC, [(1.0, 10.0)], samples_per_phase=0)

    def test_initial_temperature_override(self):
        times, temps = simulate_trace(RC, [(0.001, 100.0)], t_initial=300.0)
        assert temps[0] == 300.0


class TestTaskSets:
    def test_random_task_set_deterministic(self):
        a = random_task_set(seed=4)
        b = random_task_set(seed=4)
        assert a == b

    def test_power_band_respected(self):
        tasks = random_task_set(n_tasks=50, seed=1)
        assert all(10.0 <= t.power <= 130.0 for t in tasks)

    def test_fig2_trace_band(self):
        """A random task set's trace sits inside the paper's 60-110 degC
        corridor."""
        tasks = random_task_set(n_tasks=30, seed=7)
        _, temps = task_set_trace(tasks)
        stats = trace_statistics(temps)
        assert stats["min_c"] > 55.0
        assert stats["max_c"] < 115.0
        # And actually exercises a wide band, not a flat line.
        assert stats["max_c"] - stats["min_c"] > 20.0

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task("t", duration=0.0, power=10.0)
        with pytest.raises(ValueError):
            Task("t", duration=1.0, power=-1.0)
        with pytest.raises(ValueError):
            random_task_set(n_tasks=0)
        with pytest.raises(ValueError):
            random_task_set(power_range=(50.0, 40.0))


class TestModeBridge:
    def test_mode_temperatures_ordered(self):
        t_act, t_st = mode_temperatures(170.0, 4.0)
        assert t_act > t_st
        # The canonical pair lands near the paper's 400 K / 330 K.
        assert t_act == pytest.approx(400.0, abs=3.0)
        assert t_st == pytest.approx(330.0, abs=3.0)

    def test_profile_from_powers(self):
        profile = profile_from_powers(0.2, 170.0, 4.0)
        assert profile.active_fraction == pytest.approx(0.2)
        assert profile.t_active > profile.t_standby

    def test_empty_trace_stats(self):
        with pytest.raises(ValueError):
            trace_statistics(np.array([]))
