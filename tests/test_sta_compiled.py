"""Compiled STA kernel vs the scalar oracle: bit-for-bit equivalence.

The contract of :mod:`repro.sta.compiled` is not "close" — it is
float-identical to ``analyze(engine="scalar")``: same accumulation
order, same tie-breaks, same dict iteration orders.  Every comparison
here is exact (``==`` / ``array_equal``), never ``approx``.
"""

import numpy as np
import pytest

from tests._engines import assert_engines_match
from repro import AnalysisContext
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.dual_vth import assign_dual_vth
from repro.flow.sizing import size_for_aging
from repro.netlist import Gate, iscas85, random_logic
from repro.netlist.generators import (array_multiplier, ecc_circuit,
                                      priority_controller)
from repro.sta.analysis import analyze
from repro.sta.compiled import CompiledTiming
from repro.variation.statistical import FastAgedTimer, statistical_aging

PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)

ISCAS85 = ["c432", "c499", "c880", "c1355", "c1908", "c2670",
           "c3540", "c5315", "c6288", "c7552"]

_BENCH_CACHE = {}


def bench(name):
    if name not in _BENCH_CACHE:
        _BENCH_CACHE[name] = iscas85.load(name)
    return _BENCH_CACHE[name]


def random_dvth(circuit, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return {g: float(dv) for g, dv in
            zip(circuit.gates, rng.uniform(0.0, scale, len(circuit.gates)))}


def assert_results_identical(a, b):
    """Every public field of two TimingResults, compared exactly."""
    assert a.circuit_delay == b.circuit_delay
    assert a.critical_output == b.critical_output
    assert a.critical_edge == b.critical_edge
    assert a.required_time == b.required_time
    assert list(a.arrival) == list(b.arrival)
    assert a.arrival == b.arrival
    assert a.slack == b.slack
    assert a.worst_path() == b.worst_path()
    assert a._pred == b._pred
    assert a._is_gate == b._is_gate


class TestScalarEquivalence:
    @pytest.mark.parametrize("name", ISCAS85)
    def test_iscas85_fresh_and_aged(self, name):
        circuit = bench(name)
        compiled = CompiledTiming(circuit)
        for dvth in (None, random_dvth(circuit, seed=hash(name) % 1000)):
            scalar = analyze(circuit, delta_vth=dvth, engine="scalar")
            fast = compiled.analyze(dvth)
            assert_results_identical(scalar, fast)

    @pytest.mark.parametrize("make", [
        lambda: random_logic("rnd1", n_inputs=10, n_outputs=4, n_gates=60,
                             seed=3),
        lambda: random_logic("rnd2", n_inputs=16, n_outputs=8, n_gates=200,
                             seed=11),
        lambda: array_multiplier(bits=6),
        lambda: priority_controller(channels=12),
        lambda: ecc_circuit(data_bits=16, check_bits=6),
    ])
    def test_generator_circuits(self, make):
        circuit = make()
        compiled = CompiledTiming(circuit)
        dvth = random_dvth(circuit, seed=5)
        for kwargs in ({}, {"supply_drop": 0.05}, {"temperature": 400.0},
                       {"supply_drop": 0.03, "temperature": 380.0}):
            scalar = analyze(circuit, delta_vth=dvth, engine="scalar",
                             **kwargs)
            fast = compiled.analyze(dvth, **kwargs)
            assert_results_identical(scalar, fast)

    def test_explicit_required_time(self):
        circuit = bench("c432")
        compiled = CompiledTiming(circuit)
        target = analyze(circuit).circuit_delay * 1.25
        scalar = analyze(circuit, required_time=target, engine="scalar")
        fast = compiled.analyze(required_time=target)
        assert_results_identical(scalar, fast)

    def test_engine_auto_routes_through_context(self):
        circuit = bench("c880")
        ctx = AnalysisContext(circuit)
        auto = analyze(circuit, context=ctx, engine="auto")
        scalar = analyze(circuit, context=ctx, engine="scalar")
        assert_results_identical(auto, scalar)
        assert ctx.stats.misses("compiled_timing") == 1

    def test_engine_compiled_without_context(self):
        circuit = bench("c432")
        fast = analyze(circuit, engine="compiled")
        scalar = analyze(circuit, engine="scalar")
        assert_results_identical(fast, scalar)

    def test_per_edge_mode_rejects_compiled(self):
        circuit = bench("c432")
        with pytest.raises(ValueError, match="per_edge"):
            analyze(circuit, aging_mode="per_edge", engine="compiled")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            analyze(bench("c432"), engine="turbo")


class TestBatchedEvaluation:
    def test_batch_matches_per_scenario_delay(self):
        circuit = bench("c1908")
        compiled = CompiledTiming(circuit)
        rng = np.random.default_rng(42)
        matrix = rng.uniform(0.0, 0.06, (compiled.n_gates, 16))
        batched = compiled.delays_batch(matrix)
        assert batched.shape == (16,)
        for b in range(16):
            assert batched[b] == compiled.delay(matrix[:, b])

    def test_batch_matches_scalar_analyze(self):
        circuit = bench("c499")
        compiled = CompiledTiming(circuit)
        rng = np.random.default_rng(7)
        matrix = rng.uniform(0.0, 0.06, (compiled.n_gates, 8))
        batched = compiled.delays_batch(matrix)
        for b in range(8):
            dvth = {g: float(matrix[i, b])
                    for i, g in enumerate(compiled.gate_names)}
            assert batched[b] == analyze(circuit, delta_vth=dvth,
                                         engine="scalar").circuit_delay

    def test_year_series_as_batch(self):
        """A lifetime sweep (the Fig. 11 shape) in one kernel call."""
        circuit = bench("c432")
        ctx = AnalysisContext(circuit)
        compiled = ctx.compiled_timing()
        shifts = [ctx.gate_shifts(PROFILE, t)
                  for t in (TEN_YEARS / 10, TEN_YEARS / 2, TEN_YEARS)]
        matrix = np.stack([[s[g] for s in shifts]
                           for g in compiled.gate_names])
        batched = compiled.delays_batch(matrix)
        for k, s in enumerate(shifts):
            assert batched[k] == analyze(circuit, delta_vth=s,
                                         engine="scalar").circuit_delay

    def test_delay_rejects_batch_input(self):
        compiled = CompiledTiming(bench("c432"))
        matrix = np.zeros((compiled.n_gates, 3))
        with pytest.raises(ValueError, match="delays_batch"):
            compiled.delay(matrix)

    def test_gate_vector_shape_errors(self):
        compiled = CompiledTiming(bench("c432"))
        with pytest.raises(ValueError, match="shape"):
            compiled.gate_vector(np.zeros(compiled.n_gates + 1))
        with pytest.raises(ValueError, match="shape"):
            compiled.gate_vector(np.zeros((3, compiled.n_gates)),
                                 batch=False)


class TestIncrementalTimer:
    def test_mutation_sequence_matches_from_scratch(self):
        """Random single-gate delay edits: trial == update == rebuild."""
        circuit = bench("c880")
        compiled = CompiledTiming(circuit)
        delays = compiled.base_delays().copy()
        inc = compiled.incremental(delays=delays)
        rng = np.random.default_rng(1)
        names = compiled.gate_names
        for _ in range(40):
            gate = names[int(rng.integers(len(names)))]
            i = compiled.gate_index[gate]
            rise = float(delays[2 * i] * rng.uniform(0.5, 2.0))
            fall = float(delays[2 * i + 1] * rng.uniform(0.5, 2.0))
            changes = {gate: (rise, fall)}
            trial = inc.trial(changes)
            committed = inc.update(changes)
            assert trial == committed
            delays[2 * i] = rise
            delays[2 * i + 1] = fall
            assert committed == float(
                compiled.circuit_delays(compiled.propagate(delays)))
        assert np.array_equal(inc.arrival_rows(),
                              compiled.propagate(delays))
        assert np.array_equal(inc.delay_rows(), delays)

    def test_trial_does_not_mutate_state(self):
        compiled = CompiledTiming(bench("c432"))
        inc = compiled.incremental()
        before = inc.arrival_rows().copy()
        gate = compiled.gate_names[0]
        r, f = inc.delays_of(gate)
        inc.trial({gate: (r * 3.0, f * 3.0)})
        assert np.array_equal(inc.arrival_rows(), before)

    def test_required_rows_track_updates(self):
        circuit = bench("c499")
        compiled = CompiledTiming(circuit)
        target = compiled.delay() * 1.1
        inc = compiled.incremental(required_time=target)
        rng = np.random.default_rng(9)
        names = compiled.gate_names
        inc.required_rows()  # prime the backward cache
        for _ in range(25):
            gate = names[int(rng.integers(len(names)))]
            r, f = inc.delays_of(gate)
            inc.update({gate: (r * float(rng.uniform(0.7, 1.4)),
                               f * float(rng.uniform(0.7, 1.4)))})
            fresh = compiled.required(inc.arrival_rows(), inc.delay_rows(),
                                      target)
            assert np.array_equal(inc.required_rows(), fresh)

    def test_gate_slacks_and_critical_gates_match_analyze(self):
        circuit = bench("c432")
        compiled = CompiledTiming(circuit)
        inc = compiled.incremental(required_time=None)
        result = compiled.analyze()
        assert inc.circuit_delay == result.circuit_delay
        # The incremental walk goes endpoint-first; analyze() reports
        # PI-to-PO.  With the analyze() tie-break seed they agree.
        assert inc.critical_gates(initial_best=-1.0) == list(
            reversed(result.critical_gates()))
        slacks = inc.gate_slacks()
        for i, name in enumerate(compiled.gate_names):
            if np.isfinite(slacks[i]):
                assert slacks[i] == result.slack[name]

    def test_arrival_accessor_matches_analyze(self):
        circuit = bench("c432")
        compiled = CompiledTiming(circuit)
        inc = compiled.incremental()
        result = compiled.analyze()
        for net, edges in result.arrival.items():
            for edge, value in edges.items():
                assert inc.arrival(net, edge) == value


class TestNetlistMutation:
    def test_replace_gate_recompile_matches_from_scratch(self):
        circuit = random_logic("mut", n_inputs=8, n_outputs=3, n_gates=40,
                               seed=21)
        ctx = AnalysisContext(circuit)
        stale = ctx.compiled_timing()
        # Swap a cell variant in place, as a sizing commit would.
        victim = next(iter(circuit.gates))
        old = circuit.gates[victim]
        swap = {"NAND2": "AND2", "NOR2": "OR2", "AND2": "NAND2",
                "OR2": "NOR2", "INV": "BUF", "BUF": "INV",
                "XOR2": "XNOR2", "XNOR2": "XOR2"}
        circuit.replace_gate(Gate(victim, swap.get(old.cell, "INV"),
                                  list(old.inputs)[:1]
                                  if swap.get(old.cell, "INV") in
                                  ("INV", "BUF") else list(old.inputs)))
        ctx.invalidate()
        rebuilt = ctx.compiled_timing()
        assert rebuilt is not stale
        fresh = CompiledTiming(circuit)
        assert_results_identical(rebuilt.analyze(), fresh.analyze())
        assert_results_identical(rebuilt.analyze(),
                                 analyze(circuit, engine="scalar"))

    def test_context_cache_accounting(self):
        ctx = AnalysisContext(bench("c432"))
        a = ctx.compiled_timing()
        assert ctx.compiled_timing() is a
        assert ctx.stats.misses("compiled_timing") == 1
        assert ctx.stats.hits("compiled_timing") == 1
        ctx.invalidate()
        assert ctx.compiled_timing() is not a
        assert ctx.stats.misses("compiled_timing") == 2

    def test_mismatched_loads_fall_back_to_scalar(self):
        """Caller-supplied loads that differ from the kernel's baked
        loads must reject the compiled artifact, not silently reuse it."""
        circuit = bench("c432")
        ctx = AnalysisContext(circuit)
        doubled = {g: load * 2.0 for g, load in ctx.gate_loads().items()}
        routed = analyze(circuit, loads=doubled, context=ctx, engine="auto")
        direct = analyze(circuit, loads=doubled, engine="scalar")
        assert_results_identical(routed, direct)
        # Matching loads (same values, new dict) do reuse the kernel.
        same = dict(ctx.gate_loads())
        reused = analyze(circuit, loads=same, context=ctx, engine="auto")
        assert reused.circuit_delay == analyze(
            circuit, engine="scalar").circuit_delay


class TestFastAgedTimerShim:
    def test_engines_bit_identical(self):
        circuit = bench("c1355")
        dvth = random_dvth(circuit, seed=13)
        factors = {g: 1.0 + 0.01 * (i % 7)
                   for i, g in enumerate(circuit.gates)}
        fast = FastAgedTimer(circuit, engine="compiled")
        slow = FastAgedTimer(circuit, engine="scalar")
        for kwargs in ({}, {"delta_vth": dvth}, {"delay_factors": factors},
                       {"delta_vth": dvth, "delay_factors": factors}):
            assert fast.circuit_delay(**kwargs) == slow.circuit_delay(**kwargs)

    def test_matches_scalar_analyze(self):
        circuit = bench("c432")
        dvth = random_dvth(circuit, seed=2)
        timer = FastAgedTimer(circuit)
        assert timer.circuit_delay(delta_vth=dvth) == analyze(
            circuit, delta_vth=dvth, engine="scalar").circuit_delay

    def test_reuses_context_kernel(self):
        circuit = bench("c432")
        ctx = AnalysisContext(circuit)
        timer = FastAgedTimer(circuit, context=ctx)
        assert timer.compiled is ctx.compiled_timing()


class TestMemoryHygiene:
    """Batch/scale flows never materialize O(gates) Python containers.

    The list mirrors exist only for the incremental cone walk; the
    lowering, batched evaluation, surfaces, and the aged-delay summary
    must leave them unbuilt (``_mirrors is None``), and the incremental
    timer's own state must be ndarray-backed.
    """

    def test_batch_and_surface_leave_mirrors_unbuilt(self):
        from repro import obs

        circuit = bench("c880")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            ct = CompiledTiming(circuit)
            vec = ct.gate_vector(random_dvth(circuit, seed=3), 0.0)
            ct.delays_batch(vec[:, None] * np.linspace(0.5, 1.5, 8))
            ct.surface(delta_vth=random_dvth(circuit, seed=4)).circuit_delay
        assert ct._mirrors is None
        assert tracer.find("sta.compiled.mirrors") == []

    def test_aged_delay_summary_leaves_mirrors_unbuilt(self):
        circuit = bench("c432")
        context = AnalysisContext(circuit)
        context.aged_delays(PROFILE, TEN_YEARS)
        assert context.compiled_timing()._mirrors is None

    def test_incremental_walk_builds_mirrors_once(self):
        from repro import obs

        circuit = bench("c432")
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            ct = CompiledTiming(circuit)
            timer = ct.incremental()
            gate = ct.gate_names[0]
            timer.update({gate: (1e-11, 1e-11)})
            timer.update({gate: (2e-11, 2e-11)})
        assert ct._mirrors is not None
        assert len(tracer.find("sta.compiled.mirrors")) == 1

    def test_incremental_timer_state_is_ndarray(self):
        ct = CompiledTiming(bench("c432"))
        timer = ct.incremental()
        assert isinstance(timer._d, np.ndarray)
        assert isinstance(timer._arr, np.ndarray)
        assert timer._d.dtype == np.float64
        assert timer._arr.dtype == np.float64


class TestEngineEquivalenceFlows:
    def test_statistical_aging_engines_identical(self):
        circuit = bench("c432")
        kwargs = dict(times=(0.0, TEN_YEARS), n_samples=20, seed=4)
        assert_engines_match(
            lambda engine: statistical_aging(circuit, PROFILE,
                                             engine=engine, **kwargs))

    def test_sizing_engines_identical(self):
        circuit = bench("c432")
        assert_engines_match(
            lambda engine: size_for_aging(circuit, PROFILE, engine=engine))

    def test_dual_vth_engines_identical(self):
        circuit = bench("c880")
        assert_engines_match(
            lambda engine: assign_dual_vth(circuit, engine=engine))
