"""Vectorized temperature-aware NBTI kernel (batched eqs. 9-19, 23).

:class:`CompiledNbtiModel` evaluates the same closed-form ΔVth model as
:class:`~repro.core.aging.NbtiModel`, but over *arrays* of devices and
scenarios in one shot: the per-device stress description arrives as two
float arrays (active stress duty, standby stress fraction) instead of
one :class:`~repro.core.profiles.DeviceStress` at a time, and every
argument broadcasts, so a trailing batch axis carries year-series, RAS
sweeps, or per-die Vth0 offsets for free.

Exactness contract
------------------
The kernel is **bit-identical** to the scalar model, which stays the
oracle (``engine="scalar"`` everywhere).  Three ingredients make that
hold rather than merely approximately true:

* every arithmetic step keeps the scalar path's operand order — IEEE 754
  ``+ - * /`` and ``sqrt`` are exact given identical operands;
* both paths route ``exp`` and ``x**0.25`` through the same NumPy ufunc
  inner loops via :mod:`repro.core.numerics` (libm and NumPy disagree in
  the last bit);
* the one transcendental that stays scalar — the per-profile
  diffusivity ratio of eq. (17) — is literally the same
  :func:`~repro.core.temperature.diffusivity_ratio` call in both paths.

``tests/test_aging_compiled.py`` asserts the equality with ``==``, never
``approx``, across the ISCAS85 suite and the paper's scenario grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.numerics import quarter_root, uexp
from repro.core.profiles import OperatingProfile
from repro.core.temperature import diffusivity_ratio

ArrayLike = Union[float, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class CompiledNbtiModel:
    """Array-evaluating twin of one :class:`~repro.core.aging.NbtiModel`.

    Stateless beyond the wrapped model: construction is free, so callers
    may build one per call or share one instance — the
    :class:`~repro.context.AnalysisContext` does the latter through its
    ``aging_plan`` memo.
    """

    model: NbtiModel = DEFAULT_MODEL

    # -- calibration products ----------------------------------------------

    def field_factors(self, vth0: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`NbtiCalibration.field_factor` (eq. 23).

        Accepts any broadcastable Vth0 array — e.g. ``vth0 + offsets``
        for a per-die (gates, samples) matrix — and validates the same
        ``(0, Vdd)`` range the scalar method enforces.
        """
        cal = self.model.calibration
        arr = np.asarray(vth0, dtype=float)
        if np.any(arr <= 0.0) or np.any(arr >= cal.vdd):
            raise ValueError(f"vth0 outside (0, Vdd): "
                             f"[{arr.min()}, {arr.max()}]")
        overdrive = cal.vdd - arr
        ref_overdrive = cal.vdd - cal.vth_ref
        return np.sqrt(overdrive / ref_overdrive) * uexp(
            (cal.vth_ref - arr) / cal.e0_volts)

    def kv(self, vth0: Optional[ArrayLike], temperature: float) -> np.ndarray:
        """Vectorized ``K_V``: ``kv_ref * field * temperature`` factors."""
        cal = self.model.calibration
        if vth0 is None:
            vth0 = cal.vth_ref
        return (cal.kv_ref * self.field_factors(vth0)
                * cal.temperature_factor(temperature))

    # -- equivalent-time transformation ------------------------------------

    def equivalent_duty(self, profile: OperatingProfile, duties: ArrayLike,
                        fractions: ArrayLike
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized eqs. (17)-(19) over per-device stress arrays.

        Args:
            duties: active-mode stress duty per device, in [0, 1].
            fractions: standby stress fraction per device, in [0, 1].

        Returns:
            (c_eq, tau_eq) arrays; stress-free devices get ``(0, 0)``
            exactly like the scalar path.
        """
        duties = np.asarray(duties, dtype=float)
        fractions = np.asarray(fractions, dtype=float)
        if np.any(duties < 0.0) or np.any(duties > 1.0):
            raise ValueError("active_stress_duty must be in [0, 1]")
        if np.any(fractions < 0.0) or np.any(fractions > 1.0):
            raise ValueError("standby stress fraction must be in [0, 1]")
        # DeviceStress.mode_times + equivalent_times, operand for operand.
        t_act = profile.active_fraction * profile.period
        t_st = profile.standby_fraction * profile.period
        stress_active = duties * t_act
        recovery_active = (1.0 - duties) * t_act
        stress_standby = fractions * t_st
        recovery_standby = (1.0 - fractions) * t_st
        ratio = diffusivity_ratio(profile.t_standby, profile.t_active,
                                  self.model.calibration.ed)
        t_s = stress_active + stress_standby * ratio
        if self.model.scale_recovery:
            t_r = recovery_active + recovery_standby * ratio
        else:
            t_r = recovery_active + recovery_standby
        tau_eq = t_s + t_r
        dead = tau_eq <= 0.0
        c_eq = t_s / np.where(dead, 1.0, tau_eq)
        return np.where(dead, 0.0, c_eq), np.where(dead, 0.0, tau_eq)

    # -- core evaluations ---------------------------------------------------

    def delta_vth(self, profile: OperatingProfile, duties: ArrayLike,
                  fractions: ArrayLike, t_total: ArrayLike,
                  vth0: Optional[ArrayLike] = None) -> np.ndarray:
        """Batched :meth:`NbtiModel.delta_vth` (volts).

        All array arguments broadcast together: pass per-device
        ``duties``/``fractions`` of shape ``(n,)`` with a scalar
        ``t_total`` for one scenario, or shape ``(n, 1)`` against a
        ``(B,)`` batch of times / Vth0 offsets for an ``(n, B)`` sweep.
        """
        t = np.asarray(t_total, dtype=float)
        if np.any(t < 0.0):
            raise ValueError("time must be non-negative")
        with obs.span("aging.kernel.delta_vth"):
            c_eq, tau_eq = self.equivalent_duty(profile, duties, fractions)
            n_cycles = t / profile.period
            # s_closed_form on the equivalent duty; sqrt is exact, the
            # quarter root shares the scalar path's ufunc loop.
            s = quarter_root(n_cycles * c_eq / (1.0 + np.sqrt((1.0 - c_eq)
                                                              / 2.0)))
            kv = self.kv(vth0, profile.t_active)
            dv = kv * s * quarter_root(tau_eq)
            out = np.where((c_eq <= 0.0) | (tau_eq <= 0.0), 0.0, dv)
            obs.annotate(devices=int(out.size))
        obs.count("aging.kernel.calls")
        obs.observe("aging.kernel.devices", out.size)
        return out

    def delta_vth_series(self, profile: OperatingProfile, duties: ArrayLike,
                         fractions: ArrayLike, times: Sequence[float],
                         vth0: Optional[ArrayLike] = None) -> np.ndarray:
        """ΔVth over a lifetime series: shape ``(n_devices, n_times)``."""
        duties = np.asarray(duties, dtype=float)
        fractions = np.asarray(fractions, dtype=float)
        t = np.asarray(times, dtype=float)
        return self.delta_vth(profile, duties[..., None],
                              fractions[..., None], t, vth0)

    def delta_vth_dc(self, t: ArrayLike, temperature: float,
                     vth0: Optional[ArrayLike] = None) -> np.ndarray:
        """Batched DC-stress bound ``K_V(T) t^(1/4)`` (volts)."""
        arr = np.asarray(t, dtype=float)
        if np.any(arr < 0.0):
            raise ValueError("time must be non-negative")
        return self.kv(vth0, temperature) * quarter_root(arr)


#: Kernel twin of the shared default model.
DEFAULT_COMPILED_MODEL = CompiledNbtiModel(DEFAULT_MODEL)
