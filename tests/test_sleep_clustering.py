"""Tests for BBSTI gate clustering."""

import pytest

from repro.netlist import iscas85, random_logic
from repro.sleep import cluster_gates, clustered_design


@pytest.fixture(scope="module")
def circuit():
    return random_logic("cl", n_inputs=12, n_outputs=4, n_gates=100, seed=77)


class TestClusterGates:
    def test_partition_is_complete_and_disjoint(self, circuit):
        for policy in ("level", "stripe"):
            clusters = cluster_gates(circuit, 5, policy)
            union = [g for c in clusters for g in c]
            assert sorted(union) == sorted(circuit.gates)
            assert len(union) == len(set(union))

    def test_single_cluster_is_everything(self, circuit):
        clusters = cluster_gates(circuit, 1)
        assert len(clusters) == 1
        assert len(clusters[0]) == circuit.n_gates()

    def test_level_policy_bands_are_level_ordered(self, circuit):
        levels = circuit.levels()
        clusters = cluster_gates(circuit, 4, "level")
        maxima = [max(levels[g] for g in c) for c in clusters]
        minima = [min(levels[g] for g in c) for c in clusters]
        for prev_max, next_min in zip(maxima, minima[1:]):
            assert prev_max <= next_min

    def test_stripe_policy_mixes_levels(self, circuit):
        levels = circuit.levels()
        clusters = cluster_gates(circuit, 4, "stripe")
        spans = [max(levels[g] for g in c) - min(levels[g] for g in c)
                 for c in clusters]
        assert max(spans) > 2

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            cluster_gates(circuit, 0)
        with pytest.raises(ValueError):
            cluster_gates(circuit, 2, "magic")


class TestClusteredDesign:
    def test_deterministic(self, circuit):
        a = clustered_design(circuit, 4, 0.05, seed=2)
        b = clustered_design(circuit, 4, 0.05, seed=2)
        assert a.aspect_ratios == b.aspect_ratios

    def test_splitting_costs_area(self, circuit):
        """Blocks lose current sharing: more clusters, more total ST."""
        one = clustered_design(circuit, 1, 0.05, seed=2)
        eight = clustered_design(circuit, 8, 0.05, seed=2)
        assert eight.total_aspect >= one.total_aspect

    def test_stripe_beats_level_banding(self):
        """Temporal interleaving (mutual exclusion in time, Kao [37])
        needs smaller devices than same-level banding."""
        c = iscas85.load("c880")
        level = clustered_design(c, 6, 0.05, policy="level", seed=3)
        stripe = clustered_design(c, 6, 0.05, policy="stripe", seed=3)
        assert stripe.total_aspect < level.total_aspect

    def test_all_blocks_sized(self, circuit):
        d = clustered_design(circuit, 5, 0.05, seed=1)
        assert len(d.aspect_ratios) == d.n_clusters
        assert all(a > 0 for a in d.aspect_ratios)
        assert all(p > 0 for p in d.peak_currents)

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            clustered_design(circuit, 2, 0.0)
        with pytest.raises(ValueError):
            clustered_design(circuit, 2, 0.05, vth_st=1.2)
