"""Circuit-level leakage estimation (S8)."""

from repro.leakage.circuit import (
    expected_leakage,
    leakage_bounds_sampled,
    leakage_for_states,
    leakage_for_vector,
    leakage_for_vectors,
)

__all__ = [
    "expected_leakage",
    "leakage_bounds_sampled",
    "leakage_for_states",
    "leakage_for_vector",
    "leakage_for_vectors",
]
