"""Lifetime and guard-band solvers: inverting the aging model.

Design questions run the model backwards: *how long* until the circuit
eats its timing margin, or *how much* margin must be reserved for a
target lifetime?  The closed-form model makes the inversion exact:

    dVth(t) = K (c_eq * r * t / (1 + delta))^(1/4)
    =>  t   = (dVth / K')^4

so both solvers are algebraic, with a bisection fallback for any
future model whose closed form is not invertible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import TEN_YEARS, seconds_to_years
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import DeviceStress, OperatingProfile

#: Search ceiling for the bisection fallback: 1000 years.
_MAX_LIFETIME = 1000 * 3.1536e7


def time_to_vth_shift(target_shift: float, profile: OperatingProfile,
                      device: DeviceStress, vth0: Optional[float] = None,
                      model: NbtiModel = DEFAULT_MODEL) -> float:
    """Seconds of operation until dVth reaches ``target_shift`` volts.

    Returns ``inf`` if the device never stresses (zero duty everywhere).

    The t^(1/4) law makes this exact: if one second produces x, then
    ``target`` needs ``(target/x)^4`` seconds.
    """
    if target_shift <= 0:
        raise ValueError("target shift must be positive")
    unit = model.delta_vth(profile, device, 1.0, vth0)
    if unit <= 0.0:
        return float("inf")
    return (target_shift / unit) ** 4


def time_to_degradation(target_fraction: float, profile: OperatingProfile,
                        device: DeviceStress, *,
                        vth0: Optional[float] = None,
                        model: NbtiModel = DEFAULT_MODEL,
                        vdd: float = 1.0, alpha: float = 2.0) -> float:
    """Seconds until the eq. (22) gate-delay degradation reaches
    ``target_fraction`` (e.g. 0.05 for a 5 % timing margin).

    Uses the worst-device view: the gate's degradation equals
    ``alpha * dVth / (Vdd - Vth0)``, so the margin maps to a dVth budget
    and then to a time via :func:`time_to_vth_shift`.
    """
    if target_fraction <= 0:
        raise ValueError("target degradation must be positive")
    vth = model.calibration.vth_ref if vth0 is None else vth0
    overdrive = vdd - vth
    if overdrive <= 0:
        raise ValueError("no gate overdrive")
    budget = target_fraction * overdrive / alpha
    return time_to_vth_shift(budget, profile, device, vth0, model)


@dataclass(frozen=True)
class GuardBand:
    """A timing guard-band recommendation.

    Attributes:
        lifetime: target lifetime (seconds).
        vth_shift: worst-device dVth at that lifetime (volts).
        delay_margin: fractional delay margin to reserve (eq. 22 on the
            worst device — conservative for full circuits, whose
            critical path mixes stressed and relaxed gates).
    """

    lifetime: float
    vth_shift: float
    delay_margin: float

    def summary(self) -> str:
        """One-line human-readable recommendation."""
        return (f"{seconds_to_years(self.lifetime):.1f}-year lifetime: "
                f"reserve {self.delay_margin * 100:.2f} % delay margin "
                f"(worst device dVth {self.vth_shift * 1e3:.1f} mV)")


def guard_band(profile: OperatingProfile, device: DeviceStress, *,
               lifetime: float = TEN_YEARS,
               vth0: Optional[float] = None,
               model: NbtiModel = DEFAULT_MODEL,
               vdd: float = 1.0, alpha: float = 2.0) -> GuardBand:
    """The margin a designer should reserve for ``lifetime`` seconds."""
    if lifetime < 0:
        raise ValueError("lifetime must be non-negative")
    vth = model.calibration.vth_ref if vth0 is None else vth0
    shift = model.delta_vth(profile, device, lifetime, vth)
    margin = alpha * shift / (vdd - vth)
    return GuardBand(lifetime=lifetime, vth_shift=shift, delay_margin=margin)


def bisect_lifetime(predicate, lo: float = 1.0, hi: float = _MAX_LIFETIME,
                    tolerance: float = 0.01, max_iterations: int = 200
                    ) -> float:
    """Generic fallback: smallest t in [lo, hi] where ``predicate(t)``.

    ``predicate`` must be monotone (False below the crossing, True
    above), as every aging metric here is.  Returns ``inf`` when the
    predicate never fires inside the window.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if predicate(lo):
        return lo
    if not predicate(hi):
        return float("inf")
    for _ in range(max_iterations):
        mid = (lo * hi) ** 0.5  # geometric: lifetimes span decades
        if predicate(mid):
            hi = mid
        else:
            lo = mid
        if hi / lo <= 1.0 + tolerance:
            break
    return hi
