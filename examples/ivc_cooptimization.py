#!/usr/bin/env python3
"""Leakage/NBTI co-optimization with input vector control (Sec. 4.3).

Scenario: a block spends most of its life in standby.  Picking the
standby input vector controls *both* the leakage (transistor stacking)
and which PMOS devices sit under NBTI stress for years.  This example:

1. searches for a minimum-leakage-vector (MLV) set with the paper's
   Fig. 7 probability-based algorithm,
2. evaluates the 10-year aged delay of each candidate,
3. co-selects the vector minimizing degradation at near-minimum leakage,
4. compares single-vector parking against Abella-style MLV alternation,
5. shows the internal-node-control headroom beyond any input vector.

Run:  python examples/ivc_cooptimization.py
"""

from repro import AnalysisPlatform, OperatingProfile, iscas85
from repro.constants import TEN_YEARS
from repro.flow import format_table, ns, pct, ua
from repro.ivc import compare_alternation, internal_node_potential


def main() -> None:
    platform = AnalysisPlatform()
    circuit = iscas85.load("c432")
    profile = OperatingProfile.from_ras("1:5", t_standby=330.0)

    print(f"Co-optimizing {circuit.name}: RAS {profile.ras_label()}, "
          f"T_standby {profile.t_standby:.0f} K, horizon 10 years\n")

    report = platform.co_optimize(circuit, profile, TEN_YEARS,
                                  n_vectors=64, max_set_size=6, seed=1)

    rows = []
    for rec in report.selection.records:
        marker = " <- chosen" if rec.bits == report.selection.chosen.bits else ""
        rows.append([ua(rec.leakage), ns(rec.aged_delay),
                     pct(rec.relative_degradation) + marker])
    print(format_table(["leakage (uA)", "aged delay (ns)", "degradation"],
                       rows, title="MLV set (near-minimum leakage)"))
    print(f"\nexpected (unparked) leakage : {ua(report.expected_leakage)} uA")
    print(f"chosen MLV leakage          : {ua(report.chosen_leakage)} uA "
          f"({pct(report.leakage_reduction)} saved)")
    print(f"chosen MLV degradation      : {pct(report.chosen_degradation)}")
    print(f"MLV-to-MLV delay spread     : {pct(report.mlv_delay_spread, 3)} "
          "of fresh delay")
    print("\nAs the paper observes, the spread is small at a low standby "
          "temperature:\nIVC alone barely moves the NBTI needle.")

    # Abella-style alternation: rotate the best vector and its complement.
    best = report.selection.chosen.bits
    complement = tuple(1 - b for b in best)
    cmp = compare_alternation(circuit, [best, complement], profile, TEN_YEARS,
                              platform.analyzer)
    print(f"\nAlternating 2 vectors: worst device shift "
          f"{cmp.single_max_shift * 1e3:.2f} mV -> "
          f"{cmp.alternating_max_shift * 1e3:.2f} mV "
          f"({pct(cmp.shift_benefit)} flatter)")

    # The internal-node-control ceiling.
    pot = internal_node_potential(circuit, profile, TEN_YEARS,
                                  platform.analyzer)
    print(f"\nInternal-node-control potential at "
          f"{profile.t_standby:.0f} K: {pct(pot.potential)} "
          f"(worst {pct(pot.worst_degradation)} -> "
          f"best {pct(pot.best_degradation)})")


if __name__ == "__main__":
    main()
