"""Extension — how much of the Table 4 potential is *realizable*?

Table 4's internal-node-control potential assumes every PMOS can be
parked at Vgs = 0 for free.  This experiment inserts actual control
points (OR-with-SLEEP forcing gates, per [9], [10]) and measures:

* the aged critical-path delay (greedy insertion on the critical path),
* the device-level stressed-PMOS census (selective high-fanout forcing),
* the fresh-delay and area overheads.

Measured finding: the delay-metric potential is NOT realizable by
output-forcing — a net held at 1 is held by an ON PMOS whose gate is 0,
so each forcing gate absorbs the stress it removes — while the
device-census *does* improve.  This quantifies why the paper reports
the potential only as a reference ceiling.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import (
    count_stressed_devices,
    greedy_census_points,
    greedy_control_points,
)
from repro.netlist import iscas85
from repro.sim import constant_vector

CIRCUITS = ("c432", "c880")
PROFILE = OperatingProfile.from_ras("1:9", t_standby=400.0)


def run_ext():
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        greedy = greedy_control_points(circuit, PROFILE, TEN_YEARS,
                                       max_points=8)
        # Census experiment: verified greedy stressed-device reduction.
        vec0 = constant_vector(circuit, 0)
        selected, census_base, census_after = greedy_census_points(
            circuit, vec0, max_points=12)
        rows.append({
            "name": name,
            "base": greedy.base_degradation,
            "achieved": greedy.achieved_degradation,
            "bound": greedy.best_bound,
            "realized": greedy.potential_realized,
            "overhead": greedy.fresh_overhead,
            "census_base": census_base,
            "census_after": census_after,
            "census_points": len(selected),
        })
    return rows


def check(rows):
    for r in rows:
        # Delay metric: essentially none of the bound is realizable.
        assert r["realized"] < 0.25, r["name"]
        assert r["achieved"] >= r["bound"] - 1e-12
        # Device census: selective forcing genuinely reduces stress.
        assert r["census_after"] < r["census_base"], r["name"]


def report(rows):
    printable = [
        [r["name"], f"{r['base'] * 100:5.2f}", f"{r['achieved'] * 100:5.2f}",
         f"{r['bound'] * 100:5.2f}", f"{r['realized'] * 100:5.1f}",
         f"{r['overhead'] * 100:5.2f}"]
        for r in rows
    ]
    emit("Extension — greedy control points on the aged critical path "
         "(8 points)",
         ["circuit", "base (%)", "achieved (%)", "Table4 bound (%)",
          "realized (%)", "fresh overhead (%)"],
         printable)
    printable = [
        [r["name"], r["census_base"], r["census_after"],
         f"{(1 - r['census_after'] / r['census_base']) * 100:5.1f}",
         r["census_points"]]
        for r in rows
    ]
    emit("Extension — stressed-PMOS census with verified greedy forcing "
         "(<= 12 points)",
         ["circuit", "stressed (base)", "stressed (forced)",
          "reduction (%)", "control points"],
         printable)
    print("Delay potential is a ceiling (forcing gates absorb the stress "
          "they remove);\nthe device-level stress census, and hence "
          "margin on non-critical paths,\ndoes improve.")


def test_ext_control_points(run_once):
    rows = run_once(run_ext)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ext()
    check(r)
    report(r)
