"""Lumped-RC thermal model (substrate S6).

The paper motivates its two-temperature model with a HotSpot-flavoured
thermal simulation of a Montecito-class processor under "a typical air
cooling condition" [28]: power varies from tens of watts to ~130 W, the
die temperature swings 60-110 degC, and it "converges to steady state
very fast (in the order of milliseconds)".  A single-node RC model
captures exactly those statements:

    C_th dT/dt = P(t) - (T - T_amb) / R_th

with closed-form exponential segments for piecewise-constant power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.constants import celsius_to_kelvin


@dataclass(frozen=True)
class ThermalRC:
    """Single-node thermal network.

    Attributes:
        r_th: junction-to-ambient thermal resistance (K/W).  0.42 K/W
            with a 328 K ambient maps the paper's 10-130 W power range
            onto its 60-110 degC band.
        c_th: thermal capacitance (J/K); with ``r_th`` it sets the
            millisecond-scale settling the paper assumes.
        t_ambient: ambient (heatsink inlet) temperature in kelvin.
    """

    r_th: float = 0.42
    c_th: float = 0.024
    t_ambient: float = celsius_to_kelvin(55.0)

    def __post_init__(self) -> None:
        if self.r_th <= 0 or self.c_th <= 0:
            raise ValueError("thermal R and C must be positive")
        if self.t_ambient <= 0:
            raise ValueError("ambient temperature must be positive kelvin")

    @property
    def time_constant(self) -> float:
        """RC settling constant in seconds."""
        return self.r_th * self.c_th

    def steady_state(self, power: float) -> float:
        """Steady-state junction temperature for constant ``power`` (W)."""
        if power < 0:
            raise ValueError("power must be non-negative")
        return self.t_ambient + power * self.r_th

    def step(self, t_now: float, power: float, dt: float) -> float:
        """Exact temperature after holding ``power`` for ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        t_target = self.steady_state(power)
        return t_target + (t_now - t_target) * math.exp(-dt / self.time_constant)

    def settling_time(self, fraction: float = 0.99) -> float:
        """Time to close ``fraction`` of any temperature step."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        return -self.time_constant * math.log(1.0 - fraction)


def simulate_trace(rc: ThermalRC, schedule: Sequence[Tuple[float, float]],
                   samples_per_phase: int = 20,
                   t_initial: float = None) -> Tuple[np.ndarray, np.ndarray]:
    """Temperature trace for a piecewise-constant power schedule.

    Args:
        schedule: list of ``(duration_seconds, power_watts)`` phases.
        samples_per_phase: sample count within each phase (exact
            exponential evaluation, no integration error).
        t_initial: starting temperature; defaults to the steady state of
            the first phase's power (the paper's Fig. 2 starts settled).

    Returns:
        (times, temperatures) arrays including t = 0.
    """
    if not schedule:
        raise ValueError("empty power schedule")
    if samples_per_phase < 1:
        raise ValueError("need at least one sample per phase")
    t_now = rc.steady_state(schedule[0][1]) if t_initial is None else t_initial
    times: List[float] = [0.0]
    temps: List[float] = [t_now]
    clock = 0.0
    for duration, power in schedule:
        if duration <= 0:
            raise ValueError("phase durations must be positive")
        for k in range(1, samples_per_phase + 1):
            dt = duration / samples_per_phase
            t_now = rc.step(t_now, power, dt)
            times.append(clock + k * dt)
            temps.append(t_now)
        clock += duration
    return np.asarray(times), np.asarray(temps)
