"""Analytical MOSFET models: leakage, drive current, delay primitives.

These replace SPICE evaluation of the PTM 90 nm models.  Three mechanisms
matter for the paper's experiments:

* **Subthreshold conduction** — BSIM-style exponential with DIBL and
  temperature dependence.  This is what the transistor-stacking effect
  (and hence input vector control) modulates.
* **Gate tunneling** — strongly asymmetric between NMOS (electron
  conduction-band tunneling) and PMOS (hole valence-band tunneling); the
  asymmetry decides which input vector minimizes *total* leakage for an
  inverter (Table 2).
* **Alpha-power-law drive current** — Sakurai–Newton model [50], the basis
  of the gate delay expression (eq. 20) and of the sleep-transistor sizing
  equations (eqs. 25–31).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import thermal_voltage
from repro.tech.ptm import MosfetParams, Technology


def threshold_at_temperature(params: MosfetParams, temperature: float,
                             reference_temperature: float = 300.0) -> float:
    """Threshold-voltage magnitude at ``temperature``.

    |Vth| shrinks linearly with temperature (classic ~0.5–1 mV/K slope),
    which is one of the two drivers of the exponential leakage increase
    at the paper's 400 K active temperature.
    """
    vth = params.vth0 - params.vth_temp_coefficient * (temperature - reference_temperature)
    return max(vth, 0.0)


def subthreshold_current(params: MosfetParams, *, w: float, l: float,
                         vgs: float, vds: float, temperature: float,
                         reference_temperature: float = 300.0,
                         delta_vth: float = 0.0) -> float:
    """Subthreshold (weak-inversion) drain current magnitude in amperes.

    Args:
        params: polarity parameters.
        w, l: transistor width/length in meters.
        vgs: gate-source overdrive *magnitude* (>= 0 turns the device on;
            pass 0 for an OFF device).
        vds: drain-source voltage magnitude across the device.
        temperature: junction temperature in kelvin.
        delta_vth: NBTI-induced |Vth| increase to superimpose (volts).

    The pre-factor scales as T^2 (through vT^2) and the exponent uses the
    temperature-reduced Vth, so leakage grows steeply with temperature as
    the paper assumes for its 400 K active mode.
    """
    if w <= 0 or l <= 0:
        raise ValueError("transistor dimensions must be positive")
    if vds <= 0:
        return 0.0
    vt = thermal_voltage(temperature)
    vt_ref = thermal_voltage(reference_temperature)
    vth = threshold_at_temperature(params, temperature, reference_temperature) + delta_vth
    vth_eff = vth - params.dibl * vds
    n = params.subthreshold_swing_factor
    # i0_density is quoted at Vgs == Vth at the reference temperature.
    prefactor = params.i0_density * (w / l) * (vt / vt_ref) ** 2
    exponent = (vgs - vth_eff) / (n * vt)
    # Clamp so a strongly-on device queried through this model does not
    # overflow; callers use drive_current() for the on state.
    exponent = min(exponent, 40.0)
    return prefactor * math.exp(exponent) * (1.0 - math.exp(-vds / vt))


def gate_leakage_current(params: MosfetParams, *, w: float, l: float,
                         vox: float) -> float:
    """Gate tunneling current magnitude in amperes.

    Scales with gate area ``w * l`` and exponentially with the oxide
    voltage ``vox`` (magnitude).  The ON state (channel formed,
    |Vox| ~ Vdd) dominates; OFF-state edge tunneling is folded into the
    same expression at the smaller OFF-state Vox the caller computes.
    The NMOS density is roughly an order of magnitude above PMOS
    (electron conduction-band vs hole valence-band tunneling), which is
    what makes an ON NMOS the most expensive gate-leakage state and
    drives the Table 2 input-vector orderings.
    """
    if w <= 0 or l <= 0:
        raise ValueError("gate dimensions must be positive")
    if vox <= 0:
        return 0.0
    area = w * l
    return params.gate_leak_density * area * math.exp(
        (vox - 1.0) / params.gate_leak_voltage_scale
    )


def drive_current(tech: Technology, polarity: str, *, w: float, l: float,
                  vgs: float, temperature: float = 300.0,
                  delta_vth: float = 0.0) -> float:
    """Saturation drive current via the alpha-power law, in amperes.

    ``I_on = k (W/L) (Vgs - Vth)^alpha`` with ``k`` folding mobility and
    Cox.  Returns 0 for a device at or below threshold.
    """
    params = tech.params(polarity)
    if w <= 0 or l <= 0:
        raise ValueError("transistor dimensions must be positive")
    vth = threshold_at_temperature(params, temperature, tech.reference_temperature) + delta_vth
    overdrive = vgs - vth
    if overdrive <= 0:
        return 0.0
    # k chosen to give ~0.6 mA/um NMOS drive at Vdd for the nominal node.
    k = 9.0e-4 * params.mobility_factor / (tech.wmin / tech.lmin)
    return k * (w / l) * overdrive ** tech.alpha


def alpha_power_delay(tech: Technology, polarity: str, *, load_cap: float,
                      w: float, l: float, vth: float,
                      series_stack: int = 1,
                      supply_drop: float = 0.0) -> float:
    """Gate propagation delay per eq. (20): ``d = K C_L Vdd / (Vg - Vth)^alpha``.

    Args:
        load_cap: output load in farads.
        vth: the (possibly aged) threshold magnitude to use, in volts.
        series_stack: number of series devices sharing the drive (a
            NAND2 pull-down has 2); divides the effective drive.
        supply_drop: virtual-rail voltage drop (sleep transistor
            insertion, eq. 26) subtracted from the gate overdrive.

    The absolute constant ``K`` is folded so a minimum inverter driving
    4x its input cap lands in the tens-of-ps range at 90 nm; all paper
    results are relative degradations, so only consistency matters.
    """
    if load_cap < 0:
        raise ValueError("load capacitance must be non-negative")
    denom = alpha_power_delay_denominator(
        tech, polarity, w=w, l=l, vth=vth, series_stack=series_stack,
        supply_drop=supply_drop)
    return load_cap * tech.vdd / denom


def alpha_power_delay_denominator(tech: Technology, polarity: str, *,
                                  w: float, l: float, vth: float,
                                  series_stack: int = 1,
                                  supply_drop: float = 0.0) -> float:
    """The load-independent denominator of :func:`alpha_power_delay`.

    :func:`alpha_power_delay` is exactly affine in the load:
    ``d = load_cap * Vdd / denom`` with this denominator.  Exposing it
    lets the compiled STA lowering evaluate the closed form once per
    cell class and broadcast over a load vector while staying
    bit-identical to the scalar call (same operand grouping: Python
    parses the original expression as ``(load*Vdd) / ((k*drive)*od^a)``).
    """
    params = tech.params(polarity)
    overdrive = tech.vdd - supply_drop - vth
    if overdrive <= 0:
        raise ValueError(
            f"gate overdrive collapsed: Vdd={tech.vdd} drop={supply_drop} vth={vth}"
        )
    drive = (w / l) * params.mobility_factor / series_stack
    k = 0.5e-3
    return k * drive * overdrive ** tech.alpha


@dataclass(frozen=True)
class Mosfet:
    """A sized transistor instance inside a cell.

    Attributes:
        name: instance name unique within the cell (e.g. ``"MP1"``).
        polarity: ``"nmos"`` or ``"pmos"``.
        gate_pin: name of the cell input pin driving this gate terminal.
        w, l: dimensions in meters.
    """

    name: str
    polarity: str
    gate_pin: str
    w: float
    l: float

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"bad polarity {self.polarity!r}")
        if self.w <= 0 or self.l <= 0:
            raise ValueError(f"transistor {self.name}: dimensions must be positive")

    @property
    def aspect(self) -> float:
        """W/L ratio."""
        return self.w / self.l
