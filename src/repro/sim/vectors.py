"""Input-vector utilities shared by IVC search and simulation."""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.netlist.circuit import Circuit


def random_vector(circuit: Circuit, rng: random.Random) -> Dict[str, int]:
    """One uniformly random primary-input assignment."""
    return {pi: rng.randint(0, 1) for pi in circuit.primary_inputs}


def random_vectors(circuit: Circuit, count: int, seed: int = 0
                   ) -> List[Dict[str, int]]:
    """``count`` seeded random input assignments."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    return [random_vector(circuit, rng) for _ in range(count)]


def constant_vector(circuit: Circuit, value: int) -> Dict[str, int]:
    """All primary inputs tied to ``value`` (0 or 1)."""
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    return {pi: value for pi in circuit.primary_inputs}


def all_vectors(circuit: Circuit) -> Iterator[Dict[str, int]]:
    """Exhaustive enumeration of input assignments (small circuits only).

    Raises:
        ValueError: above 2^20 assignments, where enumeration is a bug.
    """
    n = len(circuit.primary_inputs)
    if n > 20:
        raise ValueError(f"{n} inputs: exhaustive enumeration is infeasible")
    for index in range(2 ** n):
        yield {pi: (index >> k) & 1
               for k, pi in enumerate(circuit.primary_inputs)}


def vector_to_bits(circuit: Circuit, vector: Dict[str, int]) -> Tuple[int, ...]:
    """Canonical tuple form of an assignment, ordered like the PIs."""
    return tuple(vector[pi] for pi in circuit.primary_inputs)


def bits_to_vector(circuit: Circuit, bits: Sequence[int]) -> Dict[str, int]:
    """Inverse of :func:`vector_to_bits`."""
    if len(bits) != len(circuit.primary_inputs):
        raise ValueError("bit-vector length does not match PI count")
    return dict(zip(circuit.primary_inputs, bits))
