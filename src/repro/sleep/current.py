"""Simulation-based block-current estimation for ST sizing.

"To find the optimum size of the ST, it is necessary to find the vector
that causes the worst-case current in that group of gates.  This
requires simulating the circuit under all possible input values, which
is impossible for large circuits" (Sec. 4.4.1).  The BBSTI literature
answers with heuristics [37]-[39]; this module implements the sampled
version:

* draw random vector *pairs* (v1 -> v2) and logic-simulate both,
* every toggling gate draws its switching current during its own
  arrival window,
* bin the windows over the clock period and take the maximum bin — the
  peak simultaneous current for that transition,
* the estimate is the max over all sampled pairs.

Compared with the flat simultaneity factor of
:func:`repro.sleep.insertion.estimate_block_current`, the sampled
estimate reflects the circuit's real wave of activity, usually shrinking
the ST for deep circuits (switching is spread over many levels) and
growing it for shallow wide ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate_batch
from repro.sta.analysis import _EDGES, analyze, gate_loads


@dataclass(frozen=True)
class PeakCurrentEstimate:
    """Result of the sampled peak-current analysis.

    Attributes:
        peak: worst per-bin simultaneous current over all pairs (A).
        mean_transition: average total charge current per transition (A),
            i.e. the flat-average a simultaneity factor approximates.
        worst_pair: index of the vector pair achieving the peak.
        pairs: number of transitions sampled.
    """

    peak: float
    mean_transition: float
    worst_pair: int
    pairs: int

    @property
    def effective_simultaneity(self) -> float:
        """The flat factor that would reproduce ``peak`` — calibrates
        the simple estimator against the sampled one."""
        if self.mean_transition == 0:
            return 0.0
        return self.peak / self.mean_transition


def estimate_peak_current(circuit: Circuit, *, n_pairs: int = 128,
                          bins: int = 25, seed: int = 0,
                          library: Optional[Library] = None,
                          context=None) -> PeakCurrentEstimate:
    """Sampled worst-case simultaneous switching current of a block.

    Args:
        n_pairs: random transitions to sample.
        bins: time bins across the critical delay; the peak is read per
            bin, so more bins = sharper (and larger) peaks.
        context: shared :class:`~repro.context.AnalysisContext`
            supplying the memoized gate loads and fresh STA.
    """
    if n_pairs < 1:
        raise ValueError("need at least one vector pair")
    if bins < 1:
        raise ValueError("need at least one time bin")
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    tech = library.tech
    if context is not None and context.library is library:
        loads = context.gate_loads()
        timing = context.fresh_timing()
    else:
        loads = gate_loads(circuit, library)
        timing = analyze(circuit, library, loads=loads)
    period = timing.circuit_delay

    bin_width = period / bins
    names = list(circuit.gates)
    # Each toggling gate moves its load charge inside its arrival bin;
    # the bin's average current is the binned charge over the bin width.
    gate_charge = np.empty(len(names))
    gate_bin = np.empty(len(names), dtype=np.int64)
    for idx, name in enumerate(names):
        gate_charge[idx] = loads[name] * tech.vdd
        arr = max(timing.arrival[name].values())
        gate_bin[idx] = min(bins - 1, int(arr / period * bins))

    rng = np.random.default_rng(seed)
    # Row-major draw: sampling more pairs with the same seed extends the
    # sequence instead of reshuffling it, so the peak is monotone in
    # n_pairs (a running max over a growing prefix-stable sample).
    draws = rng.integers(0, 2, (2 * n_pairs, len(circuit.primary_inputs)),
                         dtype=np.uint8)
    pi_matrix = {pi: draws[:, i].copy()
                 for i, pi in enumerate(circuit.primary_inputs)}
    values = evaluate_batch(circuit, pi_matrix, library)
    toggles = np.stack([values[name][0::2] != values[name][1::2]
                        for name in names])  # (gates, pairs)

    peak = 0.0
    worst_pair = 0
    total_charge = 0.0
    for k in range(n_pairs):
        mask = toggles[:, k]
        if not mask.any():
            continue
        per_bin = np.bincount(gate_bin[mask], weights=gate_charge[mask],
                              minlength=bins) / bin_width
        pair_peak = float(per_bin.max())
        total_charge += float(gate_charge[mask].sum())
        if pair_peak > peak:
            peak = pair_peak
            worst_pair = k
    mean_transition = total_charge / n_pairs / period
    return PeakCurrentEstimate(peak=peak, mean_transition=mean_transition,
                               worst_pair=worst_pair, pairs=n_pairs)
