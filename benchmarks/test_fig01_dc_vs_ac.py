"""Fig. 1 — PMOS dVth under DC vs AC stress (static vs dynamic NBTI).

The paper's conceptual figure: DC stress degrades monotonically as
t^(1/4); AC stress (here 50 % duty) recovers partially every cycle and
tracks a scaled-down curve.  We regenerate both series over 10 years and
additionally show the cycle-exact sawtooth for the first cycles.
"""

import numpy as np

from _common import emit
from repro.constants import TEN_YEARS, seconds_to_years
from repro.core import DEFAULT_MODEL, DeviceStress, OperatingProfile
from repro.core.multicycle import ac_to_dc_ratio

VTH0 = 0.22
TIMES = np.logspace(5, np.log10(TEN_YEARS), 12)


def run_fig01():
    model = DEFAULT_MODEL
    profile = OperatingProfile(active_fraction=1.0, t_active=400.0,
                               period=3600.0)
    ac_device = DeviceStress(active_stress_duty=0.5, standby_stressed=True)
    dc = [model.delta_vth_dc(t, 400.0, VTH0) for t in TIMES]
    ac = [model.delta_vth(profile, ac_device, t, VTH0) for t in TIMES]
    sawtooth = model.delta_vth_recursive(profile, ac_device, 200, VTH0)
    return {"times": TIMES, "dc": dc, "ac": ac, "sawtooth": sawtooth}


def check(data):
    dc, ac = data["dc"], data["ac"]
    # AC strictly below DC at every instant, both monotone increasing.
    assert all(a < d for a, d in zip(ac, dc))
    assert list(dc) == sorted(dc)
    assert list(ac) == sorted(ac)
    # Long-term AC/DC ratio matches the closed form.
    ratio = ac[-1] / dc[-1]
    assert abs(ratio - ac_to_dc_ratio(0.5)) < 0.02
    # Cycle-exact recursion is monotone too (envelope of the sawtooth).
    assert np.all(np.diff(data["sawtooth"]) >= -1e-15)


def report(data):
    rows = [
        [f"{seconds_to_years(t):8.3f}", f"{d * 1e3:7.2f}", f"{a * 1e3:7.2f}",
         f"{a / d:.3f}"]
        for t, d, a in zip(data["times"], data["dc"], data["ac"])
    ]
    emit("Fig. 1 — dVth (mV) under DC vs AC (duty 0.5) stress at 400 K",
         ["years", "DC", "AC", "AC/DC"], rows)


def test_fig01_dc_vs_ac(run_once):
    data = run_once(run_fig01)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig01()
    check(d)
    report(d)
