"""Input vector control and internal node control (S9)."""

from repro.ivc.mlv import (
    MLVRecord,
    MLVSearchResult,
    MLVTimingRecord,
    NbtiAwareSelection,
    exhaustive_mlv_search,
    probability_based_mlv_search,
    select_mlv_for_nbti,
)
from repro.ivc.internal_node import (
    InternalNodePotential,
    internal_node_potential,
    potential_sweep,
)
from repro.ivc.alternation import AlternationComparison, compare_alternation
from repro.ivc.nbti_vector import (
    TradeoffPoint,
    VectorSearchResult,
    leakage_aging_tradeoff,
    probability_search,
    search_min_degradation_vector,
)
from repro.ivc.control_points import (
    ControlPointResult,
    census_gain,
    count_stressed_devices,
    greedy_census_points,
    greedy_control_points,
    insert_control_points,
    select_stress_positive_nets,
)

__all__ = [
    "MLVRecord", "MLVSearchResult", "MLVTimingRecord", "NbtiAwareSelection",
    "exhaustive_mlv_search", "probability_based_mlv_search",
    "select_mlv_for_nbti",
    "InternalNodePotential", "internal_node_potential", "potential_sweep",
    "AlternationComparison", "compare_alternation",
    "TradeoffPoint", "VectorSearchResult", "leakage_aging_tradeoff",
    "probability_search", "search_min_degradation_vector",
    "ControlPointResult", "census_gain", "count_stressed_devices",
    "greedy_census_points", "greedy_control_points",
    "insert_control_points", "select_stress_positive_nets",
]
