"""Numerical finite-difference solution of the full R-D system (eqs. 2-4).

The analytical models in :mod:`repro.core.rd_model` rest on the
quasi-equilibrium t^(1/4) solution.  This module integrates the coupled
system directly —

    dN_it/dt = k_f (N_0 - N_it) - k_r N_it C_H(0, t)              (eq. 2)
    dN_it/dt = -D_H dC_H/dx |_{x=0}                               (eq. 3)
    dC_H/dt  = D_H d^2C_H/dx^2                                    (eq. 4)

— with an explicit scheme on a 1-D oxide grid, so the t^(1/4) law and
the relaxation transient can be *verified* rather than assumed.  It is a
validation and ablation tool, not the production model (it is orders of
magnitude slower).

Units here are self-consistent "simulation units" (lengths in nm,
densities normalized to N_0); only dimensionless shapes (slopes, ratios)
are meaningful, which is all the validation needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RDNumericalConfig:
    """Grid and rate configuration for the explicit solver.

    Attributes:
        kf: dissociation rate (1/s) during stress; 0 during recovery.
        kr: re-passivation rate constant.
        dh: hydrogen diffusivity (nm^2/s).
        n0: initial Si-H density (normalized; 1.0 is fine).
        x_max: oxide depth simulated (nm); acts as "infinitely thick"
            while the diffusion front stays shorter than this.
        n_cells: spatial cells.
    """

    kf: float = 0.024
    kr: float = 32.0
    dh: float = 40.0
    n0: float = 1.0
    x_max: float = 2000.0
    n_cells: int = 400


def simulate_rd(stress_schedule: Sequence[Tuple[float, bool]],
                config: RDNumericalConfig = RDNumericalConfig(),
                samples_per_phase: int = 60,
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Integrate the R-D system through a stress/recovery schedule.

    Args:
        stress_schedule: list of ``(duration_seconds, stressed)`` phases.
        samples_per_phase: how many (t, N_it) samples to record per phase.

    Returns:
        (times, nit): arrays of sample instants and trap densities.
    """
    if not stress_schedule:
        raise ValueError("empty stress schedule")
    dx = config.x_max / config.n_cells
    # Explicit diffusion stability: D dt / dx^2 <= 0.5 (keep margin).
    dt_max = 0.4 * dx * dx / config.dh
    c_h = np.zeros(config.n_cells)
    nit = 0.0
    t_now = 0.0
    times: List[float] = [0.0]
    values: List[float] = [0.0]
    for duration, stressed in stress_schedule:
        if duration <= 0:
            raise ValueError("phase durations must be positive")
        record_at = [t_now + duration * (k + 1) / samples_per_phase
                     for k in range(samples_per_phase)]
        next_record = 0
        t_end = t_now + duration
        while t_now < t_end - 1e-12:
            dt = min(dt_max, t_end - t_now)
            # Semi-implicit reaction at the interface (unconditionally
            # stable for the stiff k_r N_it C_H term):
            #   N' = (N + dt k_f N_0) / (1 + dt (k_f + k_r C_0)).
            kf = config.kf if stressed else 0.0
            nit_new = (nit + dt * kf * config.n0) / (
                1.0 + dt * (kf + config.kr * c_h[0]))
            generation = (nit_new - nit) / dt
            # Diffusion with flux boundary: dN_it/dt = -D dC/dx|0 means
            # the interface injects `generation` H into cell 0.
            lap = np.empty_like(c_h)
            lap[1:-1] = c_h[2:] - 2 * c_h[1:-1] + c_h[:-2]
            lap[0] = c_h[1] - c_h[0]
            lap[-1] = c_h[-2] - c_h[-1]
            c_h = c_h + config.dh * dt / (dx * dx) * lap
            c_h[0] += dt * generation / dx
            nit = max(nit_new, 0.0)
            c_h = np.maximum(c_h, 0.0)
            t_now += dt
            while (next_record < len(record_at)
                   and t_now >= record_at[next_record] - 1e-12):
                times.append(record_at[next_record])
                values.append(nit)
                next_record += 1
        t_now = t_end
    return np.asarray(times), np.asarray(values)


def fit_power_law_exponent(times: np.ndarray, nit: np.ndarray,
                           skip_fraction: float = 0.5) -> float:
    """Least-squares slope of log N_it vs log t over the late samples.

    The quasi-equilibrium prediction is 0.25 (eq. 5); early transients
    are excluded via ``skip_fraction``.
    """
    mask = (times > 0) & (nit > 0)
    t, n = times[mask], nit[mask]
    if len(t) < 4:
        raise ValueError("not enough positive samples to fit")
    start = int(len(t) * skip_fraction)
    lt, ln = np.log(t[start:]), np.log(n[start:])
    slope = np.polyfit(lt, ln, 1)[0]
    return float(slope)
