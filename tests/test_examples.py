"""Smoke tests: every example script runs and prints its key results.

Examples are the de-facto integration surface users copy from, so each
one is imported and executed with output captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "c432" in out
        assert "Bounding standby states" in out
        assert "worst" in out and "best" in out

    def test_ivc_cooptimization(self, capsys):
        out = run_example("ivc_cooptimization.py", capsys)
        assert "MLV set" in out
        assert "Internal-node-control potential" in out

    def test_sleep_transistor_signoff(self, capsys):
        out = run_example("sleep_transistor_signoff.py", capsys)
        assert "Header sizing sign-off" in out
        assert "Gating style comparison" in out
        assert "footer" in out and "header" in out

    def test_thermal_aging_scenario(self, capsys):
        out = run_example("thermal_aging_scenario.py", capsys)
        assert "Mode steady states" in out
        assert "overdesign" in out

    def test_statistical_aging_signoff(self, capsys):
        out = run_example("statistical_aging_signoff.py", capsys)
        assert "Delay distribution vs lifetime" in out
        assert "guard-band" in out

    def test_lifetime_signoff(self, capsys):
        out = run_example("lifetime_signoff.py", capsys)
        assert "Sign-off options compared" in out
        assert "power gating" in out

    def test_every_example_has_a_smoke_test(self):
        """Guard against examples being added without coverage."""
        tested = {"quickstart.py", "ivc_cooptimization.py",
                  "sleep_transistor_signoff.py", "thermal_aging_scenario.py",
                  "statistical_aging_signoff.py", "lifetime_signoff.py"}
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert present == tested
