"""Perf harness — the 100k-gate scale axis.

Measures wall-time and peak RSS for the full single-circuit pipeline
(array-native construction, lowering to :class:`CompiledTiming`, and
the surface-based aged-delay analysis) at 10k / 30k / 100k gates, and
asserts the scaling contract:

* **Near-linear time** — lower+analyze wall-time grows no faster than
  ``gate_ratio x 1.5`` between adjacent points (a 3.3x gate step may
  cost at most 5x the time).
* **O(gates) memory** — the 100k-gate point completes inside a fixed
  RSS budget; every per-net dict and Python-list mirror on the hot
  path would blow through it.
* **Bit-identical numbers** — at the smallest point the surface-based
  ``aged_delays`` summary is compared field-for-field against the
  scalar ``aged_timing`` oracle, in-run.

Each gate-count point runs in a fresh child interpreter so
``ru_maxrss`` reflects that point alone (peak RSS never shrinks inside
one process).  Results land in ``BENCH_scale.json``.  Set
``BENCH_SMOKE=1`` for a seconds-scale CI run (2k/4k/8k gates, relaxed
bars) that still exercises the whole harness.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
GATE_POINTS = (2_000, 4_000, 8_000) if SMOKE else (10_000, 30_000, 100_000)
#: time ratio between adjacent points may exceed the gate ratio by
#: at most this factor (the near-linear-scaling bar).
RATIO_SLACK = 3.0 if SMOKE else 1.5
#: peak-RSS budget for the largest point (MiB).
MAX_RSS_MIB = 512.0 if SMOKE else 1024.0
ARTIFACT = Path(__file__).with_name("BENCH_scale.json")


def _measure_point(n_gates: int, check_identity: bool) -> dict:
    """Build, lower, and age one scale-corpus circuit (child side)."""
    import resource

    from repro import AnalysisContext
    from repro.constants import TEN_YEARS
    from repro.core import OperatingProfile
    from repro.netlist.generators import scale_circuit

    profile = OperatingProfile.from_ras("1:9", t_standby=330.0)

    start = time.perf_counter()
    circuit = scale_circuit(n_gates)
    t_build = time.perf_counter() - start

    # Two repetitions per phase, min taken: the ratio check compares
    # adjacent points, so per-point noise multiplies straight into it.
    # Each rep uses a fresh context — nothing is memoized across reps.
    t_lower = t_analyze = None
    summary = None
    for _ in range(2):
        start = time.perf_counter()
        ctx = AnalysisContext(circuit)
        ctx.compiled_timing()
        t = time.perf_counter() - start
        t_lower = t if t_lower is None else min(t_lower, t)

        start = time.perf_counter()
        summary = ctx.aged_delays(profile, TEN_YEARS)
        t = time.perf_counter() - start
        t_analyze = t if t_analyze is None else min(t_analyze, t)
        del ctx

    row = {
        "target_gates": n_gates,
        "n_gates": circuit.n_gates(),
        "build_seconds": t_build,
        "lower_seconds": t_lower,
        "analyze_seconds": t_analyze,
        "lower_analyze_seconds": t_lower + t_analyze,
        "fresh_delay": summary.fresh_delay,
        "aged_delay": summary.aged_delay,
        "max_shift": summary.max_shift,
        "peak_rss_mib":
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    }
    if check_identity:
        from repro.sta import AgingAnalyzer

        oracle = AgingAnalyzer().aged_timing(circuit, profile, TEN_YEARS)
        row["identical"] = (
            oracle.fresh_delay == summary.fresh_delay
            and oracle.aged_delay == summary.aged_delay
            and max(oracle.shifts.values()) == summary.max_shift)
    return row


def _run_point(n_gates: int, check_identity: bool) -> dict:
    """Measure one point in a fresh interpreter; return its row."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.run(
        [sys.executable, __file__, "--child", str(n_gates),
         "1" if check_identity else "0"],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {n_gates} failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def run_perf_scale():
    points = [_run_point(n, check_identity=(i == 0))
              for i, n in enumerate(GATE_POINTS)]
    return {"smoke": SMOKE, "ratio_slack": RATIO_SLACK,
            "max_rss_mib": MAX_RSS_MIB, "points": points}


def check(row):
    points = row["points"]
    assert points[0]["identical"], (
        "surface aged_delays diverged from the scalar aged_timing "
        f"oracle at {points[0]['n_gates']} gates")
    for prev, cur in zip(points, points[1:]):
        gate_ratio = cur["n_gates"] / prev["n_gates"]
        time_ratio = (cur["lower_analyze_seconds"]
                      / prev["lower_analyze_seconds"])
        bar = gate_ratio * row["ratio_slack"]
        assert time_ratio <= bar, (
            f"lower+analyze scaled {time_ratio:.2f}x over a "
            f"{gate_ratio:.2f}x gate step (bar: {bar:.2f}x)")
    top = points[-1]
    assert top["peak_rss_mib"] <= row["max_rss_mib"], (
        f"{top['n_gates']}-gate point peaked at "
        f"{top['peak_rss_mib']:.0f} MiB "
        f"(budget: {row['max_rss_mib']:.0f} MiB)")


def report(row):
    from _common import emit, record_history

    rows = []
    for p in row["points"]:
        rows.append([
            str(p["n_gates"]), f"{p['build_seconds']:.2f}",
            f"{p['lower_seconds']:.2f}", f"{p['analyze_seconds']:.2f}",
            f"{p['peak_rss_mib']:.0f}",
            str(p.get("identical", "-")),
        ])
    emit("Scale axis — wall-time and peak RSS per gate-count point",
         ["gates", "build (s)", "lower (s)", "analyze (s)",
          "peak RSS (MiB)", "identical"], rows)
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    top = row["points"][-1]
    record_history("perf_scale", wall_seconds=top["analyze_seconds"],
                   smoke=row["smoke"],
                   extra={"n_gates": top["n_gates"],
                          "peak_rss_mib": top["peak_rss_mib"]})


def test_perf_scale(run_once):
    row = run_once(run_perf_scale)
    check(row)
    report(row)


if __name__ == "__main__":
    if len(sys.argv) >= 2 and sys.argv[1] == "--child":
        result = _measure_point(int(sys.argv[2]), sys.argv[3] == "1")
        print(json.dumps(result))
    else:
        r = run_perf_scale()
        check(r)
        report(r)
