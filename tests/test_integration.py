"""Cross-module integration tests.

These exercise consistency properties that only hold when the
substrates compose correctly: probability estimators vs Monte-Carlo,
fast timers vs full STA, platform reports vs their ingredients, bounds
and orderings across techniques.
"""

import numpy as np
import pytest

from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile, guard_band, WORST_CASE_DEVICE
from repro.flow import AnalysisPlatform
from repro.ivc import exhaustive_mlv_search, internal_node_potential
from repro.leakage import expected_leakage, leakage_for_vector
from repro.netlist import iscas85, load_packaged, random_logic
from repro.sim import (
    all_vectors,
    constant_vector,
    estimate_probabilities,
    propagate_probabilities,
)
from repro.sleep import SleepStyle, design_sleep_transistor, gated_aged_delay
from repro.sta import ALL_ONE, ALL_ZERO, AgingAnalyzer, analyze
from repro.variation import FastAgedTimer


@pytest.fixture(scope="module")
def platform():
    return AnalysisPlatform()


@pytest.fixture(scope="module")
def small():
    return random_logic("int", n_inputs=10, n_outputs=3, n_gates=45, seed=55)


PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)


class TestPackagedNetlist:
    def test_c17_loads_and_validates(self):
        c = load_packaged("c17")
        c.validate(build_library())
        assert c.stats() == {"inputs": 5, "outputs": 2, "gates": 6, "depth": 3}

    def test_unknown_packaged(self):
        with pytest.raises(FileNotFoundError, match="c17"):
            load_packaged("c6288_real")

    def test_c17_full_pipeline(self, platform):
        """The real c17 netlist goes through the whole platform."""
        c = load_packaged("c17")
        report = platform.analyze_scenario(c, PROFILE, TEN_YEARS)
        assert 0 < report.degradation < 0.2
        co = platform.co_optimize(c, PROFILE, TEN_YEARS, n_vectors=16, seed=0)
        assert co.chosen_leakage <= co.expected_leakage * 1.1


class TestExpectedLeakageConsistency:
    def test_expectation_matches_enumeration(self, small):
        """Eq. (24) with 0.5 inputs equals the uniform average over all
        vectors when gate inputs are probability-independent; with
        reconvergence it stays within a few percent."""
        lib = build_library()
        table = LeakageTable.build(lib, 400.0)
        exp = expected_leakage(small, table)
        sampled = [leakage_for_vector(small, v, table)
                   for v in all_vectors(small)]
        assert exp == pytest.approx(float(np.mean(sampled)), rel=0.05)

    def test_exhaustive_minimum_bounds_everything(self, small):
        lib = build_library()
        table = LeakageTable.build(lib, 400.0)
        res = exhaustive_mlv_search(small, table)
        exp = expected_leakage(small, table)
        assert res.best.leakage <= exp


class TestProbabilityConsistency:
    def test_analytic_vs_monte_carlo_on_suite(self):
        c = iscas85.load("c880")
        analytic = propagate_probabilities(c)
        mc = estimate_probabilities(c, n_vectors=8192, seed=11)
        diffs = [abs(analytic[g] - mc[g]) for g in c.gates]
        assert float(np.mean(diffs)) < 0.05


class TestTimerConsistency:
    @pytest.mark.parametrize("name", ["c432", "c1355"])
    def test_fast_timer_equals_sta_per_gate_mode(self, name):
        c = iscas85.load(name)
        analyzer = AgingAnalyzer()
        shifts = analyzer.gate_shifts(c, PROFILE, TEN_YEARS)
        fast = FastAgedTimer(c).circuit_delay(shifts)
        full = analyze(c, delta_vth=shifts).circuit_delay
        assert fast == pytest.approx(full, rel=1e-12)


class TestTechniqueOrdering:
    """The paper's qualitative ranking of mitigation techniques must
    emerge from the composed system."""

    def test_ranking_at_hot_standby(self):
        c = iscas85.load("c432")
        hot = OperatingProfile.from_ras("1:9", t_standby=400.0)
        analyzer = AgingAnalyzer()
        worst = analyzer.aged_timing(c, hot, TEN_YEARS, standby=ALL_ZERO)
        best = analyzer.aged_timing(c, hot, TEN_YEARS, standby=ALL_ONE)
        mlv = analyzer.aged_timing(c, hot, TEN_YEARS,
                                   standby=constant_vector(c, 0))
        design = design_sleep_transistor(c, SleepStyle.FOOTER, beta=0.01)
        st = gated_aged_delay(c, design, hot, TEN_YEARS)
        # IVC sits between the bounds; ST (footer) approaches the best
        # case plus its rail-drop overhead.
        assert best.aged_delay <= mlv.aged_delay <= worst.aged_delay
        assert st.circuit_delay < worst.aged_delay
        assert st.circuit_delay >= best.aged_delay

    def test_guard_band_covers_measured_circuit_degradation(self):
        """The single-device guard band upper-bounds the circuit-level
        worst case (critical paths mix stressed and unstressed arcs)."""
        c = iscas85.load("c880")
        analyzer = AgingAnalyzer()
        for tst in (330.0, 400.0):
            profile = OperatingProfile.from_ras("1:9", t_standby=tst)
            gb = guard_band(profile, WORST_CASE_DEVICE, vth0=0.22)
            measured = analyzer.aged_timing(c, profile, TEN_YEARS,
                                            standby=ALL_ZERO)
            assert measured.relative_degradation <= gb.delay_margin * 1.10


class TestPlatformConsistency:
    def test_report_matches_ingredients(self, platform, small):
        report = platform.analyze_scenario(small, PROFILE, TEN_YEARS)
        analyzer = platform.analyzer
        direct = analyzer.aged_timing(small, PROFILE, TEN_YEARS)
        assert report.aged_delay == pytest.approx(direct.aged_delay)
        table = platform.leakage_table
        assert report.active_leakage_expected == pytest.approx(
            expected_leakage(small, table))

    def test_co_optimize_chosen_exists_in_search(self, platform, small):
        co = platform.co_optimize(small, PROFILE, TEN_YEARS, n_vectors=16,
                                  seed=3)
        bits = [r.bits for r in co.search.records]
        assert co.selection.chosen.bits in bits
