"""Tests for the .bench parser/writer."""

import pytest

from repro.cells import build_library
from repro.netlist import (
    BenchParseError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)

C17_BENCH = """
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParsing:
    def test_c17(self):
        c = parse_bench(C17_BENCH, name="c17")
        assert c.stats() == {"inputs": 5, "outputs": 2, "gates": 6, "depth": 3}
        assert c.cell_histogram() == {"NAND2": 6}

    def test_comments_and_blanks_ignored(self):
        c = parse_bench("# hi\nINPUT(a)\n\nOUTPUT(y)\ny = NOT(a) # trailing\n")
        assert c.n_gates() == 1
        assert c.gates["y"].cell == "INV"

    def test_gate_type_aliases(self):
        c = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nb = BUFF(a)\nc = BUF(b)\ny = INV(c)\n")
        assert [c.gates[g].cell for g in ("b", "c", "y")] == ["BUF", "BUF", "INV"]

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n")

    def test_dff_rejected(self):
        with pytest.raises(BenchParseError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_structural_error_wrapped(self):
        with pytest.raises(BenchParseError, match="structural"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n")


class TestWideGateDecomposition:
    def test_five_input_nand(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
            "OUTPUT(y)\ny = NAND(a, b, c, d, e)\n")
        c.validate(build_library())
        # Functionally NAND5: all-ones -> 0, else 1.
        from repro.sim import evaluate
        assert evaluate(c, {"a": 1, "b": 1, "c": 1, "d": 1, "e": 1})["y"] == 0
        assert evaluate(c, {"a": 1, "b": 1, "c": 1, "d": 1, "e": 0})["y"] == 1

    def test_nine_input_or(self):
        pis = [f"i{k}" for k in range(9)]
        text = "".join(f"INPUT({p})\n" for p in pis)
        text += "OUTPUT(y)\ny = OR(" + ", ".join(pis) + ")\n"
        c = parse_bench(text)
        c.validate(build_library())
        from repro.sim import evaluate
        zeros = {p: 0 for p in pis}
        assert evaluate(c, zeros)["y"] == 0
        assert evaluate(c, {**zeros, "i7": 1})["y"] == 1

    def test_three_input_xor(self):
        c = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n")
        c.validate(build_library())
        from repro.sim import evaluate
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    got = evaluate(c, {"a": va, "b": vb, "c": vc})["y"]
                    assert got == va ^ vb ^ vc

    def test_single_input_and_becomes_buffer(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n")
        assert c.gates["y"].cell == "BUF"

    def test_single_input_nor_becomes_inverter(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOR(a)\n")
        assert c.gates["y"].cell == "INV"


class TestRoundTrip:
    def test_write_then_parse(self):
        c = parse_bench(C17_BENCH, name="c17")
        text = write_bench(c)
        c2 = parse_bench(text, name="c17")
        assert c2.stats() == c.stats()
        assert c2.cell_histogram() == c.cell_histogram()
        assert set(c2.primary_inputs) == set(c.primary_inputs)

    def test_file_roundtrip(self, tmp_path):
        c = parse_bench(C17_BENCH, name="c17")
        path = tmp_path / "c17.bench"
        save_bench(c, path)
        c2 = load_bench(path)
        assert c2.name == "c17"
        assert c2.stats() == c.stats()

    def test_generated_suite_roundtrips(self):
        from repro.netlist import iscas85
        c = iscas85.load("c432")
        c2 = parse_bench(write_bench(c), name=c.name)
        assert c2.stats() == c.stats()

    def test_complex_cells_decomposed_on_write(self):
        from repro.netlist import Circuit, Gate
        from repro.sim import evaluate
        c = Circuit("x", ["a", "b", "c"], ["g"],
                    [Gate("g", "AOI21", ["a", "b", "c"])])
        clone = parse_bench(write_bench(c), name="x")
        assert "AOI21" not in clone.cell_histogram()
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    vec = {"a": va, "b": vb, "c": vc}
                    assert (evaluate(clone, vec)["g"]
                            == evaluate(c, vec)["g"])

    @pytest.mark.parametrize("cell,n", [("AOI21", 3), ("AOI22", 4),
                                        ("OAI21", 3), ("OAI22", 4)])
    def test_all_complex_cells_roundtrip(self, cell, n):
        from repro.netlist import Circuit, Gate
        from repro.sim import all_vectors, evaluate
        pins = ["a", "b", "c", "d"][:n]
        c = Circuit("x", pins, ["g"], [Gate("g", cell, pins)])
        clone = parse_bench(write_bench(c), name="x")
        for vec in all_vectors(c):
            assert evaluate(clone, vec)["g"] == evaluate(c, vec)["g"]
