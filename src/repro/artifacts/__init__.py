"""Content-addressed artifact plane.

Three layers, bottom-up:

- :mod:`repro.artifacts.fingerprint` — stable structural hashes for
  circuits, libraries, and NBTI models, composed into content-hash
  bundle/scenario keys.
- :mod:`repro.artifacts.bundle` — :class:`ArtifactBundle`, a picklable
  snapshot of one :class:`~repro.context.AnalysisContext`'s compiled
  artifacts that hydrates into a warm context without recompiling.
- :mod:`repro.artifacts.store` — :class:`ArtifactStore`, an on-disk
  content-hash-keyed bundle directory plus a (circuit, scenario)
  result cache.
"""

from repro.artifacts.bundle import BUNDLE_VERSION, ArtifactBundle
from repro.artifacts.fingerprint import (
    SCHEMA_VERSION,
    bundle_key,
    circuit_fingerprint,
    library_fingerprint,
    model_fingerprint,
    scenario_key,
)
from repro.artifacts.store import STORE_VERSION, ArtifactStore

__all__ = [
    "SCHEMA_VERSION",
    "BUNDLE_VERSION",
    "STORE_VERSION",
    "ArtifactBundle",
    "ArtifactStore",
    "bundle_key",
    "circuit_fingerprint",
    "library_fingerprint",
    "model_fingerprint",
    "scenario_key",
]
