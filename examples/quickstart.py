#!/usr/bin/env python3
"""Quickstart: age a benchmark circuit under a realistic duty cycle.

Walks the library's main path end to end:

1. load an ISCAS85-profile benchmark circuit,
2. describe the operating scenario (RAS ratio + mode temperatures),
3. run the temperature-aware NBTI analysis (Fig. 6 flow),
4. inspect the result: fresh vs 10-year delay, leakage, worst devices.

Run:  python examples/quickstart.py
"""

from repro import AnalysisPlatform, OperatingProfile, iscas85
from repro.constants import TEN_YEARS, seconds_to_years
from repro.flow import format_table, mv, ns, pct
from repro.sta import ALL_ONE, ALL_ZERO


def main() -> None:
    platform = AnalysisPlatform()
    circuit = iscas85.load("c432")
    print(f"Loaded {circuit!r}")
    print(f"Cell mix: {circuit.cell_histogram()}\n")

    # The paper's canonical scenario: 10 % active at 400 K, 90 % standby
    # at 330 K, for 10 years.
    profile = OperatingProfile.from_ras("1:9", t_active=400.0,
                                        t_standby=330.0)
    report = platform.analyze_scenario(circuit, profile, TEN_YEARS)
    print(report.summary())

    # How much of that degradation is controllable?  Compare the paper's
    # two bounding standby states.
    rows = []
    for label, standby in (("all PMOS stressed (worst)", ALL_ZERO),
                           ("all PMOS relaxing (best)", ALL_ONE)):
        timing = platform.analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                               standby=standby)
        rows.append([label, ns(timing.fresh_delay), ns(timing.aged_delay),
                     pct(timing.relative_degradation),
                     mv(timing.max_shift) + " mV"])
    print()
    print(format_table(
        ["standby state", "fresh (ns)", f"{seconds_to_years(TEN_YEARS):.0f}y (ns)",
         "degradation", "worst dVth"],
        rows, title="Bounding standby states"))

    print("\nNext steps: examples/ivc_cooptimization.py (input vector "
          "control),\nexamples/sleep_transistor_signoff.py (power gating), "
          "examples/statistical_aging_signoff.py (variation-aware "
          "guard-bands).")


if __name__ == "__main__":
    main()
