#!/usr/bin/env python3
"""End-to-end lifetime sign-off: margin, sizing, or gating?

A design team must guarantee 10-year operation.  This example walks the
three levers the library provides and prices each one on the same
circuit and scenario:

1. **guard-band** — accept aging, reserve delay margin (lifetime solver),
2. **size for aging** — spend area on the critical cone instead,
3. **power-gate** — a sleep transistor removes the standby stress and
   the leakage in one move (priced with the sampled peak-current
   estimator rather than a flat simultaneity guess).

Run:  python examples/lifetime_signoff.py
"""

from repro import OperatingProfile, iscas85
from repro.constants import TEN_YEARS, seconds_to_years
from repro.core import WORST_CASE_DEVICE, guard_band, time_to_degradation
from repro.flow import format_table, pct, size_for_aging
from repro.sleep import (
    SleepStyle,
    design_sleep_transistor,
    estimate_peak_current,
    gated_aged_delay,
    st_vth_shift,
)
from repro.sta import ALL_ZERO, AgingAnalyzer


def main() -> None:
    circuit = iscas85.load("c880")
    profile = OperatingProfile.from_ras("1:9", t_standby=400.0)
    analyzer = AgingAnalyzer()
    aged = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                standby=ALL_ZERO)
    print(f"{circuit.name}, RAS {profile.ras_label()}, hot standby "
          f"({profile.t_standby:.0f} K):")
    print(f"  measured 10-year worst-case degradation: "
          f"{pct(aged.relative_degradation)}\n")

    # Option 1 — guard-band.
    gb = guard_band(profile, WORST_CASE_DEVICE, vth0=0.22)
    print(f"option 1, guard-band: {gb.summary()}")
    half_life = time_to_degradation(gb.delay_margin / 2, profile,
                                    WORST_CASE_DEVICE, vth0=0.22)
    print(f"  (half that margin would be eaten in "
          f"{seconds_to_years(half_life):.2f} years — the t^1/4 law "
          "front-loads the wear)\n")

    # Option 2 — NBTI-aware sizing.
    sized = size_for_aging(circuit, profile, TEN_YEARS)
    print(f"option 2, size for aging: met={sized.met}, "
          f"{pct(sized.area_overhead)} area on "
          f"{len(sized.sizes)} gates\n")

    # Option 3 — power gating with honest current sizing.
    est = estimate_peak_current(circuit, n_pairs=128, seed=4)
    margin = st_vth_shift(0.22, profile.ras_label())
    design = design_sleep_transistor(circuit, SleepStyle.HEADER, beta=0.01,
                                     nbti_margin=margin)
    point = gated_aged_delay(circuit, design, profile, TEN_YEARS)
    fresh = aged.fresh_delay
    print("option 3, power gating (beta = 1% header, NBTI-aware):")
    print(f"  sampled peak block current {est.peak * 1e3:.1f} mA "
          f"(effective simultaneity {est.effective_simultaneity:.1f}, vs "
          "the flat 0.2 guess)")
    print(f"  10-year delay vs fresh: "
          f"{pct(point.circuit_delay / fresh - 1)} — and the standby "
          "leakage is gated off entirely\n")

    rows = [
        ["guard-band", pct(gb.delay_margin), "none", "none"],
        ["size for aging", pct(0.0), pct(sized.area_overhead), "none"],
        ["power gating",
         pct(point.circuit_delay / fresh - 1),
         f"ST (W/L) {design.aspect_ratio:.0f}",
         "standby leakage ~0"],
    ]
    print(format_table(["lever", "delay cost @10y", "area cost",
                        "leakage benefit"], rows,
                       title="Sign-off options compared"))


if __name__ == "__main__":
    main()
