"""Tests for logic simulation and signal-probability estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Circuit, Gate, array_multiplier, iscas85
from repro.sim import (
    all_vectors,
    bits_to_vector,
    constant_vector,
    estimate_activity,
    estimate_probabilities,
    evaluate,
    evaluate_batch,
    gate_input_probabilities,
    outputs_for,
    propagate_probabilities,
    random_vectors,
    vector_to_bits,
)


def c17():
    return Circuit(
        "c17", ["1", "2", "3", "6", "7"], ["22", "23"],
        [
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


def c17_reference(v1, v2, v3, v6, v7):
    g10 = 1 - (v1 & v3)
    g11 = 1 - (v3 & v6)
    g16 = 1 - (v2 & g11)
    g19 = 1 - (g11 & v7)
    return 1 - (g10 & g16), 1 - (g16 & g19)


class TestEvaluate:
    def test_c17_exhaustive(self):
        c = c17()
        for vec in all_vectors(c):
            values = evaluate(c, vec)
            exp22, exp23 = c17_reference(*(vec[p] for p in c.primary_inputs))
            assert values["22"] == exp22
            assert values["23"] == exp23

    def test_missing_input_raises(self):
        with pytest.raises(KeyError, match="primary input"):
            evaluate(c17(), {"1": 0})

    def test_non_binary_raises(self):
        c = c17()
        vec = constant_vector(c, 0)
        vec["1"] = 2
        with pytest.raises(ValueError):
            evaluate(c, vec)

    def test_outputs_for(self):
        c = c17()
        values = evaluate(c, constant_vector(c, 1))
        outs = outputs_for(c, values)
        assert set(outs) == {"22", "23"}

    def test_multiplier_computes_products(self):
        c = array_multiplier(4, "m4")
        for a in range(16):
            for b in range(16):
                vec = {f"a{i}": (a >> i) & 1 for i in range(4)}
                vec.update({f"b{i}": (b >> i) & 1 for i in range(4)})
                values = evaluate(c, vec)
                got = sum(values[f"p{i}"] << i for i in range(8))
                assert got == a * b, f"{a}*{b}"


class TestEvaluateBatch:
    def test_matches_scalar_path(self):
        c = iscas85.load("c432")
        vectors = random_vectors(c, 32, seed=7)
        pi_matrix = {pi: np.array([v[pi] for v in vectors], dtype=np.uint8)
                     for pi in c.primary_inputs}
        batch = evaluate_batch(c, pi_matrix)
        for k, vec in enumerate(vectors):
            scalar = evaluate(c, vec)
            for po in c.primary_outputs:
                assert batch[po][k] == scalar[po]

    def test_length_mismatch_raises(self):
        c = c17()
        mat = {pi: np.zeros(4, dtype=np.uint8) for pi in c.primary_inputs}
        mat["1"] = np.zeros(5, dtype=np.uint8)
        with pytest.raises(ValueError, match="same length"):
            evaluate_batch(c, mat)

    def test_missing_pi_raises(self):
        c = c17()
        with pytest.raises(KeyError):
            evaluate_batch(c, {"1": np.zeros(4, dtype=np.uint8)})


class TestProbabilities:
    def test_analytic_inverter_chain(self):
        c = Circuit("chain", ["a"], ["g2"], [
            Gate("g1", "INV", ["a"]),
            Gate("g2", "INV", ["g1"]),
        ])
        probs = propagate_probabilities(c, {"a": 0.3})
        assert probs["g1"] == pytest.approx(0.7)
        assert probs["g2"] == pytest.approx(0.3)

    def test_analytic_nand(self):
        c = Circuit("n", ["a", "b"], ["g"], [Gate("g", "NAND2", ["a", "b"])])
        probs = propagate_probabilities(c, {"a": 0.5, "b": 0.5})
        assert probs["g"] == pytest.approx(0.75)

    def test_default_half_probability(self):
        c = c17()
        probs = propagate_probabilities(c)
        assert probs["1"] == 0.5
        # NAND of two 0.5 inputs -> 0.75; feeding NAND(0.5, 0.75) -> 0.625.
        assert probs["11"] == pytest.approx(0.75)
        assert probs["16"] == pytest.approx(1 - 0.5 * 0.75)

    def test_analytic_close_to_monte_carlo_on_tree(self):
        # The multiplier's partial-product ANDs form trees at the first
        # level; deeper nets reconverge, so compare loosely circuit-wide.
        c = iscas85.load("c432")
        analytic = propagate_probabilities(c)
        mc = estimate_probabilities(c, n_vectors=4096, seed=3)
        diffs = [abs(analytic[n] - mc[n]) for n in c.gates]
        assert np.mean(diffs) < 0.06

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            propagate_probabilities(c17(), {"1": 1.5})

    def test_mc_probabilities_bounded(self):
        probs = estimate_probabilities(c17(), n_vectors=256, seed=1)
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_mc_needs_vectors(self):
        with pytest.raises(ValueError):
            estimate_probabilities(c17(), n_vectors=0)

    def test_activity_bounded_and_positive_somewhere(self):
        act = estimate_activity(c17(), n_vectors=512, seed=2)
        assert all(0.0 <= a <= 1.0 for a in act.values())
        assert max(act.values()) > 0.1

    def test_gate_input_probabilities_adapter(self):
        c = c17()
        probs = propagate_probabilities(c)
        per_gate = gate_input_probabilities(c, probs)
        assert per_gate["10"] == {"A": 0.5, "B": 0.5}
        assert per_gate["16"]["B"] == pytest.approx(0.75)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_probabilities_in_unit_interval(self, p):
        probs = propagate_probabilities(c17(), {pi: p for pi in c17().primary_inputs})
        assert all(-1e-9 <= q <= 1 + 1e-9 for q in probs.values())


class TestVectors:
    def test_random_vectors_deterministic(self):
        c = c17()
        assert random_vectors(c, 5, seed=42) == random_vectors(c, 5, seed=42)
        assert random_vectors(c, 5, seed=42) != random_vectors(c, 5, seed=43)

    def test_constant_vector(self):
        c = c17()
        assert set(constant_vector(c, 1).values()) == {1}
        with pytest.raises(ValueError):
            constant_vector(c, 2)

    def test_bits_roundtrip(self):
        c = c17()
        vec = random_vectors(c, 1, seed=9)[0]
        assert bits_to_vector(c, vector_to_bits(c, vec)) == vec

    def test_bits_length_check(self):
        with pytest.raises(ValueError):
            bits_to_vector(c17(), (0, 1))

    def test_all_vectors_count(self):
        assert len(list(all_vectors(c17()))) == 32

    def test_all_vectors_infeasible_guard(self):
        c = iscas85.load("c2670")
        with pytest.raises(ValueError, match="infeasible"):
            list(all_vectors(c))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_vectors(c17(), -1)
