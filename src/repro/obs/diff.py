"""Report diffing: align two RunReports and gate on regressions.

:func:`diff_reports` aligns the spans, counters, gauges, histograms,
and cache-stats of two RunReport documents and classifies every pair:

* **spans** are aggregated by slash path (``repro.age/flow.run_sweep``)
  into (count, total seconds) and compared as wall-time deltas.  A
  span that got *slower* beyond the tolerance band is a
  ``regression``; faster, added, and removed paths are informational.
* **counters / gauges / histograms / cache hit rates** are reported as
  ``drift`` entries by default — a warm run legitimately has different
  hit counts than a cold one — and only gate when the tolerance is
  explicitly tightened (``counter_rel`` / ``hit_rate_drop``).

The verdict is binary: a diff **fails** iff it contains at least one
``regression`` entry.  CI's ``perf-diff-smoke`` job runs two identical
stored runs through this (expects pass) and an inflated fixture
(expects fail), making the diff engine the perf-regression gate.

:func:`canonicalize_report` strips the volatile parts of a report
(wall-clock times, worker pids, job ids, timing-histogram values) so
tests can assert that repeated pooled/served runs produce
byte-identical canonical documents.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Entry statuses that fail the gate.
REGRESSION = "regression"

#: Attribute keys stripped by canonicalize_report (run-unique values).
VOLATILE_ATTRIBUTES = ("pid", "job", "key", "sweep")


@dataclass(frozen=True)
class Tolerance:
    """The regression gate's tolerance bands.

    A span path regresses only when it is slower by **both** more than
    ``span_rel`` (relative) and ``span_abs_s`` (absolute) — the
    absolute floor keeps microsecond-scale spans from tripping the
    relative band on scheduler noise.  ``counter_rel`` and
    ``hit_rate_drop`` default to ``None`` (informational drift only).
    """

    span_rel: float = 0.5
    span_abs_s: float = 0.02
    counter_rel: Optional[float] = None
    hit_rate_drop: Optional[float] = None
    fail_on_added: bool = False


@dataclass
class DiffEntry:
    """One aligned pair (or singleton) in a report diff."""

    kind: str        # "span" | "counter" | "gauge" | "histogram" | "cache"
    name: str
    a: Optional[float]
    b: Optional[float]
    status: str      # "ok" | "faster" | "slower" | "drift" |
                     # "added" | "removed" | "regression"
    detail: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    def to_dict(self) -> Dict[str, Any]:
        """This entry as a JSON-ready dict (``delta`` included)."""
        return {"kind": self.kind, "name": self.name, "a": self.a,
                "b": self.b, "delta": self.delta, "status": self.status,
                "detail": self.detail}


@dataclass
class ReportDiff:
    """The aligned diff of two reports plus its pass/fail verdict."""

    label_a: str
    label_b: str
    entries: List[DiffEntry] = field(default_factory=list)
    tolerance: Tolerance = field(default_factory=Tolerance)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == REGRESSION]

    @property
    def passed(self) -> bool:
        return not self.regressions

    @property
    def verdict(self) -> str:
        return "pass" if self.passed else "fail"

    def to_dict(self) -> Dict[str, Any]:
        """The whole diff as a JSON-ready document (``--json`` output).

        ``regressions`` is the regression *count*; the entries
        themselves (with per-entry status) are under ``entries``.
        """
        return {
            "a": self.label_a,
            "b": self.label_b,
            "verdict": self.verdict,
            "regressions": len(self.regressions),
            "entries": [e.to_dict() for e in self.entries],
        }


def span_totals(report_doc: Dict[str, Any]
                ) -> Dict[str, Tuple[int, float]]:
    """``{slash path: (count, total seconds)}`` over a report's spans."""
    totals: Dict[str, Tuple[int, float]] = {}

    def walk(spans: List[Dict[str, Any]], prefix: str) -> None:
        for span in spans:
            if not isinstance(span, dict):
                continue
            name = str(span.get("name", ""))
            path = f"{prefix}/{name}" if prefix else name
            count, total = totals.get(path, (0, 0.0))
            totals[path] = (count + 1,
                            total + float(span.get("duration") or 0.0))
            walk(span.get("children", []), path)

    walk(report_doc.get("spans", []), "")
    return totals


def _metric_values(report_doc: Dict[str, Any], kinds: Tuple[str, ...]
                   ) -> Dict[str, float]:
    """Flatten ``(name, label)`` series of the given metric kinds."""
    out: Dict[str, float] = {}
    for name, metric in report_doc.get("metrics", {}).items():
        if not isinstance(metric, dict) or metric.get("type") not in kinds:
            continue
        for label, value in metric.get("values", {}).items():
            series = f"{name}{{{label}}}" if label else name
            out[series] = float(value)
    return out


def _histogram_stats(report_doc: Dict[str, Any]) -> Dict[str, float]:
    """``{name.count / name.mean: value}`` for every histogram."""
    out: Dict[str, float] = {}
    for name, metric in report_doc.get("metrics", {}).items():
        if not isinstance(metric, dict) or metric.get("type") != "histogram":
            continue
        count = int(metric.get("count", 0))
        out[f"{name}.count"] = float(count)
        if count:
            out[f"{name}.mean"] = float(metric.get("sum", 0.0)) / count
    return out


def _hit_rates(report_doc: Dict[str, Any]) -> Dict[str, float]:
    """``{scope: hits / (hits + misses)}`` per cache-stats entry."""
    out: Dict[str, float] = {}
    for entry in report_doc.get("cache_stats", []):
        if not isinstance(entry, dict):
            continue
        hits = int(entry.get("hits", 0))
        misses = int(entry.get("misses", 0))
        if hits + misses:
            out[str(entry.get("scope", ""))] = hits / (hits + misses)
    return out


def _diff_spans(a: Dict[str, Tuple[int, float]],
                b: Dict[str, Tuple[int, float]], tol: Tolerance,
                entries: List[DiffEntry]) -> None:
    for path in sorted(set(a) | set(b)):
        in_a, in_b = path in a, path in b
        if in_a and in_b:
            ta, tb = a[path][1], b[path][1]
            delta = tb - ta
            slower = delta > tol.span_abs_s
            beyond_rel = (delta > tol.span_rel * ta if ta > 0 else slower)
            if slower and beyond_rel:
                status = REGRESSION
                detail = (f"+{delta:.3f}s "
                          f"({delta / ta:+.0%})" if ta > 0
                          else f"+{delta:.3f}s")
            elif slower:
                status, detail = "slower", f"+{delta:.3f}s"
            elif -delta > tol.span_abs_s:
                status, detail = "faster", f"{delta:.3f}s"
            else:
                status, detail = "ok", ""
            entries.append(DiffEntry("span", path, ta, tb, status, detail))
        elif in_a:
            entries.append(DiffEntry("span", path, a[path][1], None,
                                     "removed"))
        else:
            status = (REGRESSION if tol.fail_on_added
                      and b[path][1] > tol.span_abs_s else "added")
            entries.append(DiffEntry("span", path, None, b[path][1],
                                     status))


def _diff_values(kind: str, a: Dict[str, float], b: Dict[str, float],
                 rel_gate: Optional[float],
                 entries: List[DiffEntry]) -> None:
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None or vb is None:
            entries.append(DiffEntry(kind, name, va, vb,
                                     "removed" if vb is None else "added"))
            continue
        if va == vb:
            entries.append(DiffEntry(kind, name, va, vb, "ok"))
            continue
        status = "drift"
        detail = f"{va:g} -> {vb:g}"
        if rel_gate is not None and va:
            if abs(vb - va) / abs(va) > rel_gate:
                status = REGRESSION
        entries.append(DiffEntry(kind, name, va, vb, status, detail))


def _diff_hit_rates(a: Dict[str, float], b: Dict[str, float],
                    tol: Tolerance, entries: List[DiffEntry]) -> None:
    for scope in sorted(set(a) | set(b)):
        ra, rb = a.get(scope), b.get(scope)
        if ra is None or rb is None:
            entries.append(DiffEntry("cache", scope, ra, rb,
                                     "removed" if rb is None else "added"))
            continue
        if ra == rb:
            entries.append(DiffEntry("cache", scope, ra, rb, "ok"))
            continue
        status = "drift"
        if tol.hit_rate_drop is not None and rb < ra - tol.hit_rate_drop:
            status = REGRESSION
        entries.append(DiffEntry("cache", scope, ra, rb, status,
                                 f"hit rate {ra:.1%} -> {rb:.1%}"))


def diff_reports(a_doc: Dict[str, Any], b_doc: Dict[str, Any], *,
                 tolerance: Optional[Tolerance] = None,
                 label_a: str = "A", label_b: str = "B") -> ReportDiff:
    """Align report ``a_doc`` (baseline) against ``b_doc`` (candidate).

    Only span wall-time regressions (and, when the tolerance asks,
    counter/hit-rate moves) set the ``fail`` verdict; everything else
    is informational.
    """
    tol = tolerance or Tolerance()
    diff = ReportDiff(label_a, label_b, tolerance=tol)
    _diff_spans(span_totals(a_doc), span_totals(b_doc), tol, diff.entries)
    _diff_values("counter", _metric_values(a_doc, ("counter",)),
                 _metric_values(b_doc, ("counter",)), tol.counter_rel,
                 diff.entries)
    _diff_values("gauge", _metric_values(a_doc, ("gauge",)),
                 _metric_values(b_doc, ("gauge",)), None, diff.entries)
    _diff_values("histogram", _histogram_stats(a_doc),
                 _histogram_stats(b_doc), None, diff.entries)
    _diff_hit_rates(_hit_rates(a_doc), _hit_rates(b_doc), tol,
                    diff.entries)
    return diff


def format_diff(diff: ReportDiff, *, verbose: bool = False) -> str:
    """Human-readable diff: regressions first, then notable drift.

    ``verbose`` includes the ``ok`` entries too.
    """
    lines = [f"diff {diff.label_a} -> {diff.label_b}"]
    order = {REGRESSION: 0, "slower": 1, "added": 2, "removed": 3,
             "drift": 4, "faster": 5, "ok": 6}
    shown = [e for e in diff.entries
             if verbose or e.status != "ok"]
    for entry in sorted(shown, key=lambda e: (order.get(e.status, 9),
                                              e.kind, e.name)):
        a = "-" if entry.a is None else f"{entry.a:.6g}"
        b = "-" if entry.b is None else f"{entry.b:.6g}"
        line = (f"  [{entry.status:>10}] {entry.kind:<9} {entry.name}: "
                f"{a} -> {b}")
        if entry.detail:
            line += f"  ({entry.detail})"
        lines.append(line)
    n_ok = sum(1 for e in diff.entries if e.status == "ok")
    lines.append(f"  {len(diff.entries)} aligned entries, {n_ok} ok, "
                 f"{len(diff.regressions)} regression(s)")
    lines.append(f"verdict: {diff.verdict.upper()}")
    return "\n".join(lines)


def canonicalize_report(doc: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``doc`` with every run-unique value normalized out.

    * span ``start``/``duration`` zeroed (closed spans stay closed);
    * attributes named in :data:`VOLATILE_ATTRIBUTES` (worker pids,
      job ids, content keys) replaced with ``"*"``;
    * histograms and gauges whose name ends in ``seconds`` keep only
      their type and count (the values are wall-clock measurements);
    * ``meta`` keys measuring time (``uptime``...) dropped.

    Two runs of the same deterministic workload canonicalize to
    byte-identical JSON — the cross-process merge-order tests
    serialize this with ``json.dumps(..., sort_keys=True)``.
    """
    out = copy.deepcopy(doc)

    def scrub_span(span: Dict[str, Any]) -> None:
        span["start"] = 0.0
        if span.get("duration") is not None:
            span["duration"] = 0.0
        attrs = span.get("attributes")
        if isinstance(attrs, dict):
            for key in VOLATILE_ATTRIBUTES:
                if key in attrs:
                    attrs[key] = "*"
        for child in span.get("children", []):
            if isinstance(child, dict):
                scrub_span(child)

    for span in out.get("spans", []):
        if isinstance(span, dict):
            scrub_span(span)
    metrics = out.get("metrics", {})
    for name in list(metrics):
        metric = metrics[name]
        if not isinstance(metric, dict):
            continue
        timing = name.endswith("seconds")
        if metric.get("type") == "histogram" and timing:
            metrics[name] = {"type": "histogram",
                             "count": metric.get("count", 0)}
        elif metric.get("type") == "gauge" and timing:
            metrics[name] = {"type": "gauge",
                             "series": sorted(metric.get("values", {}))}
    meta = out.get("meta")
    if isinstance(meta, dict):
        for key in list(meta):
            if "uptime" in key or "seconds" in key:
                del meta[key]
    return out


def canonical_json(doc: Dict[str, Any]) -> str:
    """The canonical form serialized deterministically."""
    return json.dumps(canonicalize_report(doc), sort_keys=True)
