"""Persistent content-addressed artifact/result store.

Layout (all writes atomic: temp file in the target directory, then
``os.replace``)::

    <root>/store.json                          # {"schema_version": 1}
    <root>/bundles/<k[:2]>/<key>.npz           # bundle arrays
    <root>/bundles/<k[:2]>/<key>.json          # bundle manifest
    <root>/results/<circuit_fp>/<scenario>.json  # cached result payloads
    <root>/sweeps/<sweep_key>/shard-NNNN.json  # sweep shard checkpoints
    <root>/jobs/<job_id>.json                  # service job records
    <root>/runs/<run_id>.json                  # run-history records

The manifest is written *after* the ``.npz`` it references, so a
manifest on disk marks a complete bundle — a crash between the two
writes leaves an orphan array file that is simply never read (and is
swept by :meth:`ArtifactStore.clear`).  Same-key bundle writers are
additionally serialized by a per-key ``.lock`` file (O_CREAT|O_EXCL,
with stale-lock breaking), so concurrent sweep shards sharing one
store never interleave an array/manifest pair.

Invalidation is purely by content address: a structural change to the
circuit, library, or model produces a different
:func:`~repro.artifacts.fingerprint.bundle_key`, so stale bundles are
never *wrong*, only unreferenced.  Bumping the fingerprint or bundle
schema version changes every key/payload check the same way.

Hit/miss counters live in a :class:`~repro.context.CacheStats` (the
same class the in-memory contexts use) registered with the obs layer
under ``store:<root name>`` — store traffic shows up in RunReports
next to the per-circuit context stats with zero schema changes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.artifacts.bundle import ArtifactBundle

#: On-disk layout version (checked against ``store.json``).
STORE_VERSION = 1

#: A ``.lock`` older than this is presumed orphaned (a writer that died
#: between acquiring and releasing) and is broken by the next writer.
LOCK_STALE_SECONDS = 60.0

#: How long a writer waits on a live lock before giving up and writing
#: anyway — content-addressed payloads make the duplicate write benign.
LOCK_WAIT_SECONDS = 10.0


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-directory replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_write_json(path: Path, payload: Any) -> None:
    _atomic_write_bytes(path, json.dumps(payload, indent=1).encode("utf-8"))


class ArtifactStore:
    """A content-hash-keyed directory of bundles plus a result cache.

    Args:
        root: store directory; created lazily on the first write.

    The store never deletes on read and never overwrites an existing
    bundle (content-addressed payloads are immutable), so concurrent
    readers and writers on one directory are safe: the worst race is
    two processes writing the same bytes.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        from repro.context import CacheStats

        self.stats = CacheStats()
        obs.register_cache_stats(f"store:{self.root.name}", self.stats)

    # -- paths ---------------------------------------------------------------

    def _bundle_dir(self, key: str) -> Path:
        return self.root / "bundles" / key[:2]

    def _manifest_path(self, key: str) -> Path:
        return self._bundle_dir(key) / f"{key}.json"

    def _arrays_path(self, key: str) -> Path:
        return self._bundle_dir(key) / f"{key}.npz"

    def _result_path(self, circuit_fp: str, scenario_key: str) -> Path:
        return self.root / "results" / circuit_fp / f"{scenario_key}.json"

    def _shard_path(self, sweep_key: str, shard: int) -> Path:
        return self.root / "sweeps" / sweep_key / f"shard-{shard:04d}.json"

    def _ensure_marker(self) -> None:
        marker = self.root / "store.json"
        if not marker.exists():
            _atomic_write_json(marker, {"schema_version": STORE_VERSION})

    # -- bundles -------------------------------------------------------------

    def has_bundle(self, key: str) -> bool:
        """Whether a complete bundle for ``key`` is on disk."""
        return self._manifest_path(key).exists()

    def _acquire_lock(self, lock: Path) -> bool:
        """Best-effort exclusive ``.lock`` acquisition.

        Returns True when this process owns the lock.  A lock held past
        :data:`LOCK_STALE_SECONDS` is presumed orphaned and broken; a
        live lock is waited on up to :data:`LOCK_WAIT_SECONDS`, after
        which False is returned and the caller may proceed unlocked —
        every store write is atomic and content-addressed, so the worst
        outcome of a lost race is two processes writing the same bytes.
        """
        lock.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + LOCK_WAIT_SECONDS
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > LOCK_STALE_SECONDS:
                    obs.count("store.stale_locks_broken")
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    obs.count("store.lock_timeouts")
                    return False
                time.sleep(0.01)

    @staticmethod
    def _release_lock(lock: Path) -> None:
        try:
            lock.unlink()
        except OSError:
            pass

    def save_bundle(self, bundle: ArtifactBundle) -> None:
        """Persist a bundle (no-op when its key is already stored).

        Safe under concurrent shard writers: a per-key ``.lock`` file
        (O_CREAT|O_EXCL) serializes same-key writers, the key is
        re-checked after acquisition (double-checked), and stale locks
        from dead writers are broken after :data:`LOCK_STALE_SECONDS`.
        """
        key = bundle.bundle_key
        if self.has_bundle(key):
            return
        lock = self._bundle_dir(key) / f"{key}.lock"
        owned = self._acquire_lock(lock)
        try:
            if self.has_bundle(key):
                return  # another writer finished while we waited
            with obs.span("artifacts.store.save", key=key[:12]):
                self._ensure_marker()
                manifest, arrays = bundle.to_payload()
                arrays_path = self._arrays_path(key)
                arrays_path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=arrays_path.parent,
                                           prefix=f".{arrays_path.name}.")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        np.savez(fh, **arrays)
                    os.replace(tmp, arrays_path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                # Manifest last: its presence marks the bundle complete.
                _atomic_write_json(self._manifest_path(key), manifest)
            obs.count("store.bundle_saves")
        finally:
            if owned:
                self._release_lock(lock)

    def load_bundle(self, key: str) -> Optional[ArtifactBundle]:
        """The stored bundle for ``key``, or ``None`` (counted miss)."""
        path = self._manifest_path(key)
        if not path.exists():
            self.stats.record_miss("bundle")
            obs.count("store.bundle_misses")
            return None
        with obs.span("artifacts.store.load", key=key[:12]):
            manifest = json.loads(path.read_text("utf-8"))
            with np.load(self._arrays_path(key)) as npz:
                arrays = {name: npz[name] for name in npz.files}
            bundle = ArtifactBundle.from_payload(manifest, arrays)
        self.stats.record_hit("bundle")
        obs.count("store.bundle_hits")
        return bundle

    # -- results -------------------------------------------------------------

    def save_result(self, circuit_fp: str, scenario_key: str,
                    payload: Dict[str, Any]) -> None:
        """Cache a JSON-able result payload under (circuit, scenario)."""
        self._ensure_marker()
        _atomic_write_json(self._result_path(circuit_fp, scenario_key),
                           payload)
        obs.count("store.result_saves")

    def has_result(self, circuit_fp: str, scenario_key: str) -> bool:
        """Whether a cached result exists (no hit/miss accounting).

        The uncounted peek used for consistency checks (e.g. the serve
        queue's done-implies-result invariant) — cache *traffic* stays
        measured by :meth:`load_result` alone.
        """
        return self._result_path(circuit_fp, scenario_key).exists()

    def load_result(self, circuit_fp: str, scenario_key: str
                    ) -> Optional[Dict[str, Any]]:
        """The cached payload, or ``None`` (counted miss)."""
        path = self._result_path(circuit_fp, scenario_key)
        if not path.exists():
            self.stats.record_miss("result")
            obs.count("store.result_misses")
            return None
        payload = json.loads(path.read_text("utf-8"))
        self.stats.record_hit("result")
        obs.count("store.result_hits")
        return payload

    # -- service job records --------------------------------------------------

    def _job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def save_job(self, job_id: str, payload: Dict[str, Any]) -> None:
        """Persist one job record (atomic tmp + replace).

        The service rewrites the whole record on every state
        transition, so any record on disk is a complete, consistent
        snapshot — a killed server never leaves a half-written job.
        """
        self._ensure_marker()
        _atomic_write_json(self._job_path(job_id), payload)
        obs.count("store.job_saves")

    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job record's payload, or ``None`` when unknown."""
        path = self._job_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text("utf-8"))

    def list_jobs(self) -> List[str]:
        """Sorted ids of every persisted job record."""
        jobs_dir = self.root / "jobs"
        if not jobs_dir.is_dir():
            return []
        return sorted(p.stem for p in jobs_dir.glob("*.json"))

    # -- run-history records --------------------------------------------------

    def _run_path(self, run_id: str) -> Path:
        return self.root / "runs" / f"{run_id}.json"

    def save_run(self, run_id: str, payload: Dict[str, Any]) -> None:
        """Persist one run-history record (atomic tmp + replace).

        Written by :func:`repro.obs.perf.record_run` whenever a
        ``--store``-active ``age``/``sweep``/``serve`` run finishes;
        ``repro report history/diff`` reads them back.
        """
        self._ensure_marker()
        _atomic_write_json(self._run_path(run_id), payload)
        obs.count("store.run_saves")

    def load_run(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One run record's payload, or ``None`` (counted miss)."""
        path = self._run_path(run_id)
        if not path.exists():
            self.stats.record_miss("run")
            obs.count("store.run_misses")
            return None
        payload = json.loads(path.read_text("utf-8"))
        self.stats.record_hit("run")
        obs.count("store.run_hits")
        return payload

    def list_runs(self) -> List[str]:
        """Sorted ids of every run record (ids are time-sortable)."""
        runs_dir = self.root / "runs"
        if not runs_dir.is_dir():
            return []
        return sorted(p.stem for p in runs_dir.glob("*.json"))

    # -- sweep shard checkpoints ----------------------------------------------

    def save_shard(self, sweep_key: str, shard: int,
                   payload: Dict[str, Any]) -> None:
        """Checkpoint one completed sweep shard (atomic tmp + replace).

        A shard file either exists complete or not at all — a sweep
        killed mid-shard simply re-runs that shard on resume.
        """
        self._ensure_marker()
        _atomic_write_json(self._shard_path(sweep_key, shard), payload)
        obs.count("store.shard_saves")

    def load_shard(self, sweep_key: str, shard: int
                   ) -> Optional[Dict[str, Any]]:
        """One shard's checkpoint payload, or ``None`` (counted miss)."""
        path = self._shard_path(sweep_key, shard)
        if not path.exists():
            self.stats.record_miss("shard")
            obs.count("store.shard_misses")
            return None
        payload = json.loads(path.read_text("utf-8"))
        self.stats.record_hit("shard")
        obs.count("store.shard_hits")
        return payload

    def list_shards(self, sweep_key: str) -> List[int]:
        """Sorted indices of the checkpointed shards of one sweep."""
        sweep_dir = self.root / "sweeps" / sweep_key
        out = []
        for path in sweep_dir.glob("shard-*.json"):
            try:
                out.append(int(path.stem.split("-", 1)[1]))
            except ValueError:
                continue
        return sorted(out)

    def clear_sweep(self, sweep_key: str) -> int:
        """Drop every checkpoint of one sweep; returns files removed."""
        import shutil

        sweep_dir = self.root / "sweeps" / sweep_key
        if not sweep_dir.is_dir():
            return 0
        removed = sum(1 for p in sweep_dir.rglob("*") if p.is_file())
        shutil.rmtree(sweep_dir)
        return removed

    # -- maintenance ---------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Inventory summary: bundle/result counts and on-disk bytes."""
        bundles = sorted(p for p in self.root.glob("bundles/*/*.json"))
        results = sorted(self.root.glob("results/*/*.json"))
        shards = sorted(self.root.glob("sweeps/*/shard-*.json"))
        jobs = sorted(self.root.glob("jobs/*.json"))
        runs = sorted(self.root.glob("runs/*.json"))
        total = 0
        for pattern in ("bundles/*/*", "results/*/*", "sweeps/*/*",
                        "jobs/*", "runs/*", "store.json"):
            for path in self.root.glob(pattern):
                if path.is_file():
                    total += path.stat().st_size
        return {
            "root": str(self.root),
            "schema_version": STORE_VERSION,
            "bundles": len(bundles),
            "results": len(results),
            "shards": len(shards),
            "jobs": len(jobs),
            "runs": len(runs),
            "bytes": total,
            "bundle_keys": [p.stem for p in bundles],
        }

    def clear(self) -> int:
        """Delete every stored bundle and result; returns files removed.

        Only touches the store's own subtrees (``bundles/``,
        ``results/``, ``sweeps/``, ``jobs/``, ``runs/``,
        ``store.json``) — a mistyped ``--store`` pointing at a source
        directory cannot lose anything else.
        """
        import shutil

        removed = 0
        for sub in ("bundles", "results", "sweeps", "jobs", "runs"):
            path = self.root / sub
            if path.is_dir():
                removed += sum(1 for p in path.rglob("*") if p.is_file())
                shutil.rmtree(path)
        marker = self.root / "store.json"
        if marker.exists():
            marker.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"
