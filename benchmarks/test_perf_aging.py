"""Perf harness — vectorized NBTI aging kernel vs the scalar oracle.

Two measurements, both asserting bit-identical results in-run:

* **Statistical aging** (the acceptance headline): the full Fig. 12
  pipeline — per-die Vth0 offsets, field-factor scaling, per-gate shift
  series, batched aged STA — with ``engine="compiled"`` (one
  ``(gates, dies)`` kernel call per lifetime point) against
  ``engine="scalar"`` (per-die dict loops and one STA per die).
* **Gate-shift series** (the kernel in isolation): the per-gate
  10-year ΔVth series via the flattened
  :class:`~repro.sta.degradation.CompiledShiftPlan` + one
  :class:`~repro.core.aging_compiled.CompiledNbtiModel` call per point,
  against the historic per-gate/per-PMOS Python loop, on a shared
  pre-primed context so duty tables are excluded from both.

Default configuration is the acceptance-criterion run (c7552, 200
Monte-Carlo dies, an 11-point 10-year lifetime series, >= 5x).  Set
``BENCH_SMOKE=1`` for a seconds-scale CI smoke run (c432, 32 dies,
3 points, speedup merely > 0.5x) that still exercises the whole harness
and emits ``BENCH_aging.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import emit, record_history
from repro import AnalysisContext
from repro.constants import TEN_YEARS, years
from repro.core import OperatingProfile
from repro.netlist import iscas85
from repro.variation import VariationModel, statistical_aging

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CIRCUIT = "c432" if SMOKE else "c7552"
N_SAMPLES = 32 if SMOKE else 200
MIN_SPEEDUP_STAT = 0.5 if SMOKE else 5.0
MIN_SPEEDUP_SHIFTS = 0.5 if SMOKE else 2.0
PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
#: Fresh + a log-spaced 10-year lifetime series.
TIMES = ((0.0, years(3.0), TEN_YEARS) if SMOKE else
         (0.0,) + tuple(np.logspace(np.log10(years(0.25)),
                                    np.log10(TEN_YEARS), 10)))
ARTIFACT = Path(__file__).with_name("BENCH_aging.json")


def run_perf_statistical():
    """Fig. 12 statistical aging, batched kernel vs per-die scalar loop."""
    circuit = iscas85.load(CIRCUIT)
    variation = VariationModel(sigma_local=0.015)
    kwargs = dict(times=TIMES, n_samples=N_SAMPLES, variation=variation,
                  seed=12)

    # Separate contexts so neither engine rides the other's memo; each
    # is pre-primed with the timing artifacts (shared by both engines)
    # so the measurement isolates the aging-model + per-die work.
    ctx_c = AnalysisContext(circuit)
    ctx_s = AnalysisContext(circuit)
    ctx_c.compiled_timing().base_delays()
    ctx_s.compiled_timing().base_delays()

    start = time.perf_counter()
    compiled = statistical_aging(circuit, PROFILE, context=ctx_c,
                                 engine="compiled", **kwargs)
    t_compiled = time.perf_counter() - start

    start = time.perf_counter()
    scalar = statistical_aging(circuit, PROFILE, context=ctx_s,
                               engine="scalar", **kwargs)
    t_scalar = time.perf_counter() - start

    n_evals = N_SAMPLES * len(TIMES)
    return {
        "circuit": CIRCUIT,
        "n_samples": N_SAMPLES,
        "n_times": len(TIMES),
        "scalar_seconds": t_scalar,
        "compiled_seconds": t_compiled,
        "speedup": t_scalar / t_compiled,
        "scalar_die_points_per_second": n_evals / t_scalar,
        "compiled_die_points_per_second": n_evals / t_compiled,
        "identical": bool(np.array_equal(compiled.delays, scalar.delays)
                          and np.array_equal(compiled.times, scalar.times)),
    }


def run_perf_gate_shifts():
    """Per-gate ΔVth series: flattened kernel vs per-PMOS Python loop."""
    circuit = iscas85.load(CIRCUIT)
    ctx = AnalysisContext(circuit)
    ctx.aging_plan()  # prime duty tables / plan: excluded from both
    lifetimes = [t for t in TIMES if t > 0]

    start = time.perf_counter()
    compiled = [ctx.analyzer.gate_shifts(circuit, PROFILE, t, context=ctx,
                                         engine="compiled")
                for t in lifetimes]
    t_compiled = time.perf_counter() - start

    start = time.perf_counter()
    scalar = [ctx.analyzer.gate_shifts(circuit, PROFILE, t, context=ctx,
                                       engine="scalar")
              for t in lifetimes]
    t_scalar = time.perf_counter() - start

    return {
        "circuit": CIRCUIT,
        "n_gates": circuit.n_gates(),
        "n_times": len(lifetimes),
        "scalar_seconds": t_scalar,
        "compiled_seconds": t_compiled,
        "speedup": t_scalar / t_compiled,
        "identical": compiled == scalar,
    }


def run_perf_aging():
    return {"smoke": SMOKE, "statistical": run_perf_statistical(),
            "gate_shifts": run_perf_gate_shifts()}


def check(row):
    st, gs = row["statistical"], row["gate_shifts"]
    assert st["identical"], \
        "compiled statistical aging diverged from the scalar engine"
    assert gs["identical"], \
        "compiled gate shifts diverged from the scalar loop"
    assert st["speedup"] >= MIN_SPEEDUP_STAT, (
        f"statistical aging only {st['speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_STAT:.1f}x)")
    assert gs["speedup"] >= MIN_SPEEDUP_SHIFTS, (
        f"gate-shift kernel only {gs['speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_SHIFTS:.1f}x)")


def report(row):
    st, gs = row["statistical"], row["gate_shifts"]
    emit(f"Statistical aging — {st['circuit']}, {st['n_samples']} dies, "
         f"{st['n_times']} lifetime points",
         ["engine", "wall (s)", "die-points/s"],
         [["scalar loop", f"{st['scalar_seconds']:.3f}",
           f"{st['scalar_die_points_per_second']:,.0f}"],
          ["batched kernel", f"{st['compiled_seconds']:.3f}",
           f"{st['compiled_die_points_per_second']:,.0f}"]])
    print(f"statistical speedup: {st['speedup']:.1f}x "
          f"(bar: {MIN_SPEEDUP_STAT:.1f}x), bit-identical: "
          f"{st['identical']}")
    emit(f"Gate-shift series — {gs['circuit']}, {gs['n_gates']} gates, "
         f"{gs['n_times']} lifetime points",
         ["engine", "wall (s)"],
         [["per-PMOS loop", f"{gs['scalar_seconds']:.3f}"],
          ["flattened kernel", f"{gs['compiled_seconds']:.3f}"]])
    print(f"gate-shift speedup: {gs['speedup']:.1f}x "
          f"(bar: {MIN_SPEEDUP_SHIFTS:.1f}x), identical: "
          f"{gs['identical']}")
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    record_history("perf_aging", wall_seconds=st["compiled_seconds"],
                   speedup=st["speedup"], smoke=row["smoke"],
                   extra={"gate_shift_speedup": gs["speedup"]})


def test_perf_aging(run_once):
    row = run_once(run_perf_aging)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_aging()
    check(r)
    report(r)
