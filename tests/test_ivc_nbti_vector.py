"""Tests for the generic probability search and the aging-optimal
standby-vector search."""

import pytest

from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import (
    leakage_aging_tradeoff,
    probability_search,
    search_min_degradation_vector,
)
from repro.netlist import random_logic
from repro.sim import bits_to_vector
from repro.sta import AgingAnalyzer


@pytest.fixture(scope="module")
def circuit():
    return random_logic("nv", n_inputs=10, n_outputs=3, n_gates=50, seed=13)


PROFILE = OperatingProfile.from_ras("1:9", t_standby=400.0)


class TestProbabilitySearch:
    def test_minimizes_simple_objective(self, circuit):
        """With popcount as the target, the search must find all-zeros."""
        res = probability_search(circuit, lambda bits: sum(bits),
                                 n_vectors=32, max_iterations=15, seed=1)
        assert res.best.bits == tuple([0] * len(circuit.primary_inputs))
        assert res.best.objective == 0

    def test_deterministic(self, circuit):
        a = probability_search(circuit, sum, n_vectors=16, seed=4)
        b = probability_search(circuit, sum, n_vectors=16, seed=4)
        assert [r.bits for r in a.records] == [r.bits for r in b.records]

    def test_records_sorted(self, circuit):
        res = probability_search(circuit, sum, n_vectors=16, seed=4)
        objs = [r.objective for r in res.records]
        assert objs == sorted(objs)

    def test_never_reevaluates(self, circuit):
        calls = []

        def counting(bits):
            calls.append(bits)
            return sum(bits)

        res = probability_search(circuit, counting, n_vectors=16, seed=2)
        assert len(calls) == len(set(calls)) == res.evaluated

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            probability_search(circuit, sum, n_vectors=1)
        with pytest.raises(ValueError):
            probability_search(circuit, sum, keep_fraction=0.0)


class TestAgingOptimalVector:
    def test_beats_or_ties_random_baseline(self, circuit):
        analyzer = AgingAnalyzer()
        res = search_min_degradation_vector(circuit, PROFILE, TEN_YEARS,
                                            analyzer=analyzer,
                                            n_vectors=12, seed=6)
        # Its objective value is a real aged delay for that vector.
        vector = bits_to_vector(circuit, res.best.bits)
        direct = analyzer.aged_timing(circuit, PROFILE, TEN_YEARS,
                                      standby=vector)
        assert res.best.objective == pytest.approx(direct.aged_delay)

    def test_tradeoff_points(self, circuit):
        lib = build_library()
        table = LeakageTable.build(lib, 400.0)
        points = leakage_aging_tradeoff(circuit, PROFILE, table, TEN_YEARS,
                                        seed=3)
        assert [p.label for p in points] == ["leakage-optimal",
                                             "aging-optimal"]
        leak_opt, aging_opt = points
        # Each optimum wins (or ties) on its own axis.
        assert leak_opt.leakage <= aging_opt.leakage + 1e-15
        assert aging_opt.degradation <= leak_opt.degradation + 1e-12
