"""Circuit-level standby leakage (substrate S8, paper eq. 24).

Sums per-gate leakage-table lookups over the standby state of the whole
netlist.  Two views:

* :func:`leakage_for_states` — one concrete standby state (a parked MLV),
* :func:`expected_leakage` — probability-weighted over input statistics,
  eq. (24)'s ``sum I_l(v, IN) Prob(v, IN)``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate
from repro.sim.probability import propagate_probabilities


def leakage_for_states(circuit: Circuit, states: Dict[str, int],
                       table: LeakageTable) -> float:
    """Total leakage (amperes) with every net parked at ``states``.

    Raises:
        KeyError: if a gate input net has no state.
    """
    total = 0.0
    for gate in circuit.gates.values():
        bits = tuple(states[net] for net in gate.inputs)
        total += table.lookup(gate.cell, bits)
    return total


def leakage_for_vector(circuit: Circuit, pi_vector: Dict[str, int],
                       table: LeakageTable,
                       library: Optional[Library] = None, *,
                       context=None) -> float:
    """Total leakage with the circuit parked at a primary-input vector.

    Thin wrapper over the memoized evaluation layer: with ``context=``
    both the logic simulation and the summed lookup are cached per
    distinct vector (and the simulation is shared with aged-timing
    standby queries); a transient context is built otherwise.
    """
    if context is not None:
        context.adopt_leakage_table(table)
        if context.leakage_table is table:
            return context.leakage_for_vector(pi_vector)
    states = evaluate(circuit, pi_vector, library or default_library())
    return leakage_for_states(circuit, states, table)


def leakage_for_vectors(circuit: Circuit, population, table: LeakageTable,
                        library: Optional[Library] = None, *,
                        context=None) -> np.ndarray:
    """Total leakage of a whole population of PI vectors in one pass.

    The batch counterpart of :func:`leakage_for_vector`, running the
    bit-packed kernel (:mod:`repro.sim.packed`): 64 vectors per machine
    word through the logic network, then a vectorized per-gate leakage
    gather.  Values are bit-identical to calling
    :func:`leakage_for_vector` per row.

    Args:
        population: ``(n_vectors, n_pis)`` 0/1 matrix (or nested
            sequence of bit tuples), PI columns ordered like
            ``circuit.primary_inputs``.
        context: with a context, results interoperate with the scalar
            per-vector cache (see
            :meth:`~repro.context.AnalysisContext.population_leakage`).

    Returns:
        float64 array of totals (amperes), one per population row.
    """
    if context is not None:
        context.adopt_leakage_table(table)
        if context.leakage_table is table:
            return context.population_leakage(population)
    from repro.sim.packed import PackedSimulator

    sim = PackedSimulator(circuit, library or default_library())
    return sim.population_leakage(population, table)


def expected_leakage(circuit: Circuit, table: LeakageTable,
                     pi_one_prob: Optional[Dict[str, float]] = None,
                     library: Optional[Library] = None, *,
                     context=None) -> float:
    """Probability-weighted circuit leakage, eq. (24).

    Uses analytically propagated signal probabilities and per-gate pin
    independence — the paper's lookup-table estimator.  With
    ``context=`` the propagation and the weighted sum are memoized.
    """
    if context is not None:
        context.adopt_leakage_table(table)
        if context.leakage_table is table:
            return context.expected_leakage(pi_one_prob)
    library = library or default_library()
    probs = propagate_probabilities(circuit, pi_one_prob, library)
    total = 0.0
    for gate in circuit.gates.values():
        pin_probs = [probs[net] for net in gate.inputs]
        total += table.expected_leakage(gate.cell, pin_probs)
    return total


def leakage_bounds_sampled(circuit: Circuit, table: LeakageTable,
                           n_vectors: int = 256, seed: int = 0,
                           library: Optional[Library] = None, *,
                           context=None) -> Dict[str, float]:
    """Min/max/mean leakage over a random vector sample.

    A quick profiling helper used in reports: the min is an upper bound
    on the true MLV leakage.  A thin wrapper over the population kernel
    (:func:`leakage_for_vectors`); with ``context=`` each sampled vector
    joins the shared per-vector cache.
    """
    from repro.sim.vectors import random_vectors
    if n_vectors < 1:
        raise ValueError("need at least one vector")
    pis = circuit.primary_inputs
    vectors = random_vectors(circuit, n_vectors, seed)
    population = np.array([[v[pi] for pi in pis] for v in vectors],
                          dtype=np.uint8)
    values = leakage_for_vectors(circuit, population, table, library,
                                 context=context)
    # Sequential sum keeps the mean bit-identical to the historical
    # per-vector accumulation (np.sum pairwise-sums, which differs in ulps).
    return {"min": float(values.min()), "max": float(values.max()),
            "mean": sum(values.tolist()) / len(values)}
