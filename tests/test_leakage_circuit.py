"""Tests for circuit-level leakage estimation (eq. 24)."""

import pytest

from repro.cells import LeakageTable, build_library
from repro.leakage import (
    expected_leakage,
    leakage_bounds_sampled,
    leakage_for_states,
    leakage_for_vector,
)
from repro.netlist import Circuit, Gate, iscas85
from repro.sim import constant_vector, evaluate


@pytest.fixture(scope="module")
def lib():
    return build_library()


@pytest.fixture(scope="module")
def table(lib):
    return LeakageTable.build(lib, 400.0)


@pytest.fixture(scope="module")
def table_cold(lib):
    return LeakageTable.build(lib, 330.0)


def c17():
    return Circuit(
        "c17", ["1", "2", "3", "6", "7"], ["22", "23"],
        [
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


class TestLeakageForStates:
    def test_matches_manual_sum(self, table):
        c = c17()
        vec = constant_vector(c, 0)
        states = evaluate(c, vec)
        total = leakage_for_states(c, states, table)
        manual = sum(
            table.lookup(g.cell, tuple(states[n] for n in g.inputs))
            for g in c.gates.values())
        assert total == pytest.approx(manual)

    def test_vector_form_equivalent(self, table):
        c = c17()
        vec = constant_vector(c, 1)
        via_states = leakage_for_states(c, evaluate(c, vec), table)
        via_vector = leakage_for_vector(c, vec, table)
        assert via_vector == pytest.approx(via_states)

    def test_missing_state_raises(self, table):
        c = c17()
        with pytest.raises(KeyError):
            leakage_for_states(c, {"1": 0}, table)

    def test_different_vectors_differ(self, table):
        c = c17()
        l0 = leakage_for_vector(c, constant_vector(c, 0), table)
        l1 = leakage_for_vector(c, constant_vector(c, 1), table)
        assert l0 != pytest.approx(l1, rel=1e-6)

    def test_temperature_dependence(self, table, table_cold):
        c = c17()
        vec = constant_vector(c, 0)
        assert (leakage_for_vector(c, vec, table)
                > leakage_for_vector(c, vec, table_cold))


class TestExpectedLeakage:
    def test_between_sampled_bounds(self, table):
        c = c17()
        exp = expected_leakage(c, table)
        bounds = leakage_bounds_sampled(c, table, n_vectors=32, seed=0)
        # Expectation sits inside (or extremely near) the sampled range.
        assert bounds["min"] * 0.9 <= exp <= bounds["max"] * 1.1

    def test_degenerate_probabilities_match_vector(self, table):
        c = c17()
        exp = expected_leakage(c, table, {pi: 1.0 for pi in c.primary_inputs})
        direct = leakage_for_vector(c, constant_vector(c, 1), table)
        assert exp == pytest.approx(direct, rel=1e-9)

    def test_scales_with_circuit_size(self, table):
        small = expected_leakage(c17(), table)
        large = expected_leakage(iscas85.load("c880"), table)
        assert large > 10 * small

    def test_bounds_guard(self, table):
        with pytest.raises(ValueError):
            leakage_bounds_sampled(c17(), table, n_vectors=0)

    def test_iscas_magnitude(self, table):
        """c432-scale leakage should land in the 100 uA band at 400 K —
        the order the paper's 90 nm tables imply."""
        leak = expected_leakage(iscas85.load("c432"), table)
        assert 1e-5 < leak < 1e-2
