"""Fig. 8 — PMOS sleep-transistor dVth vs initial Vth and RAS.

Published anchors (exact in our calibration): the largest shift is
30.3 mV at Vth0 = 0.20 V, RAS = 9:1; the smallest is 6.7 mV at
Vth0 = 0.40 V, RAS = 1:9.  The shift grows with the active share (the
header is DC-stressed while the circuit runs) and shrinks with the
initial threshold (lower oxide field, eq. 23).
"""

from _common import emit
from repro.sleep import FIG8_RAS_VALUES, FIG8_VTH_VALUES, fig8_grid


def run_fig08():
    return fig8_grid()


def check(grid):
    assert abs(grid[(0.20, "9:1")] - 30.3e-3) < 1e-6
    assert abs(grid[(0.40, "1:9")] - 6.7e-3) < 1e-6
    for ras in FIG8_RAS_VALUES:
        col = [grid[(v, ras)] for v in FIG8_VTH_VALUES]
        assert col == sorted(col, reverse=True)
    for vth in FIG8_VTH_VALUES:
        row = [grid[(vth, r)] for r in FIG8_RAS_VALUES]
        assert row == sorted(row)


def report(grid):
    rows = []
    for vth in FIG8_VTH_VALUES:
        rows.append([f"{vth:.2f} V"]
                    + [f"{grid[(vth, r)] * 1e3:5.2f}" for r in FIG8_RAS_VALUES])
    emit("Fig. 8 — sleep transistor dVth (mV) at 10 years",
         ["Vth0 \\ RAS"] + list(FIG8_RAS_VALUES), rows)
    print("paper anchors: 30.3 mV at (0.20 V, 9:1); 6.7 mV at (0.40 V, 1:9)")


def test_fig08_st_vth(run_once):
    grid = run_once(run_fig08)
    check(grid)
    report(grid)


if __name__ == "__main__":
    g = run_fig08()
    check(g)
    report(g)
