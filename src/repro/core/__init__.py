"""The paper's primary contribution (S5): temperature-aware NBTI modeling.

Layering, bottom-up:

* :mod:`repro.core.rd_model` — reaction-diffusion device physics
  (eqs. 1-6) and :mod:`repro.core.rd_numerical`, a finite-difference
  validation solver for the full system (eqs. 2-4).
* :mod:`repro.core.multicycle` — Kumar-style multicycle AC recursion and
  its closed form (eqs. 7-11).
* :mod:`repro.core.temperature` — the active/standby equivalent-time
  transformation (eqs. 13-19).
* :mod:`repro.core.profiles` — RAS ratios and per-device stress specs.
* :mod:`repro.core.calibration` — K_V pinned to the paper's Fig. 8
  anchors (eqs. 12, 23).
* :mod:`repro.core.aging` — the :class:`NbtiModel` facade.
* :mod:`repro.core.numerics` — shared ufunc-exact ``exp`` / ``x**0.25``
  primitives keeping scalar and vectorized paths bit-identical.
* :mod:`repro.core.aging_compiled` — the batched
  :class:`CompiledNbtiModel` kernel (``engine="compiled"``).
"""

from repro.core.rd_model import (
    DEFAULT_RD,
    RDParameters,
    interface_traps_after_recovery,
    interface_traps_dc,
    nit_prefactor,
    recovery_fraction,
)
from repro.core.multicycle import (
    ac_to_dc_ratio,
    cycles_to_converge,
    delta_factor,
    s_closed_form,
    s_first,
    s_sequence,
)
from repro.core.temperature import (
    ModeTimes,
    diffusivity_ratio,
    equivalent_duty,
    equivalent_times,
)
from repro.core.profiles import (
    BEST_CASE_DEVICE,
    WORST_CASE_DEVICE,
    DeviceStress,
    OperatingProfile,
)
from repro.core.calibration import (
    DEFAULT_CALIBRATION,
    NbtiCalibration,
    calibrate_from_anchors,
)
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.aging_compiled import DEFAULT_COMPILED_MODEL, CompiledNbtiModel
from repro.core.numerics import quarter_root, uexp
from repro.core.lifetime import (
    GuardBand,
    bisect_lifetime,
    guard_band,
    time_to_degradation,
    time_to_vth_shift,
)

__all__ = [
    "DEFAULT_RD", "RDParameters",
    "interface_traps_after_recovery", "interface_traps_dc",
    "nit_prefactor", "recovery_fraction",
    "ac_to_dc_ratio", "cycles_to_converge", "delta_factor",
    "s_closed_form", "s_first", "s_sequence",
    "ModeTimes", "diffusivity_ratio", "equivalent_duty", "equivalent_times",
    "BEST_CASE_DEVICE", "WORST_CASE_DEVICE", "DeviceStress", "OperatingProfile",
    "DEFAULT_CALIBRATION", "NbtiCalibration", "calibrate_from_anchors",
    "DEFAULT_MODEL", "NbtiModel",
    "DEFAULT_COMPILED_MODEL", "CompiledNbtiModel",
    "quarter_root", "uexp",
    "GuardBand", "bisect_lifetime", "guard_band",
    "time_to_degradation", "time_to_vth_shift",
]
