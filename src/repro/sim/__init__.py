"""Logic simulation + signal-probability substrate (S4)."""

from repro.sim.logic import default_library, evaluate, evaluate_batch, outputs_for
from repro.sim.packed import PackedSimulator, pack_matrix, unpack_matrix
from repro.sim.probability import (
    estimate_activity,
    estimate_probabilities,
    gate_input_probabilities,
    propagate_probabilities,
)
from repro.sim.vectors import (
    all_vectors,
    bits_to_vector,
    constant_vector,
    random_vector,
    random_vectors,
    vector_to_bits,
)

__all__ = [
    "default_library", "evaluate", "evaluate_batch", "outputs_for",
    "PackedSimulator", "pack_matrix", "unpack_matrix",
    "estimate_activity", "estimate_probabilities",
    "gate_input_probabilities", "propagate_probabilities",
    "all_vectors", "bits_to_vector", "constant_vector",
    "random_vector", "random_vectors", "vector_to_bits",
]
