"""Extension — the standby-vector leakage/aging trade-off, both ends.

The paper's co-selection picks the best-aging vector inside the
minimum-leakage set.  Here both single-objective optima are searched
directly (the Fig. 7 loop with each objective) and scored on both axes,
at cool and hot standby — measuring how much aging the leakage-optimal
vector gives away and what the aging-optimal vector costs in leakage.
"""

from _common import emit
from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.ivc import leakage_aging_tradeoff
from repro.netlist import iscas85
from repro.sta import AgingAnalyzer

CIRCUIT = "c432"
T_STANDBY = (330.0, 400.0)


def run_ext():
    library = build_library()
    table = LeakageTable.build(library, 400.0)
    analyzer = AgingAnalyzer(library=library)
    circuit = iscas85.load(CIRCUIT)
    rows = []
    for tst in T_STANDBY:
        profile = OperatingProfile.from_ras("1:9", t_standby=tst)
        points = leakage_aging_tradeoff(circuit, profile, table, TEN_YEARS,
                                        analyzer=analyzer, seed=5)
        rows.append({"tst": tst, "points": points})
    return rows


def check(rows):
    for r in rows:
        leak_opt, aging_opt = r["points"]
        assert leak_opt.leakage <= aging_opt.leakage + 1e-15
        assert aging_opt.degradation <= leak_opt.degradation + 1e-12
        # The whole lever is small relative to the degradation itself —
        # the paper's "not that effective" verdict on IVC.
        gap = leak_opt.degradation - aging_opt.degradation
        assert gap < 0.01
    # Hot standby: larger absolute degradation at both corners.
    assert (rows[1]["points"][0].degradation
            > rows[0]["points"][0].degradation)


def report(rows):
    printable = []
    for r in rows:
        for p in r["points"]:
            printable.append([
                f"{r['tst']:.0f} K", p.label,
                f"{p.leakage * 1e6:7.2f}", f"{p.degradation * 100:6.3f}"])
    emit(f"Extension — {CIRCUIT} standby-vector trade-off corners "
         "(RAS 1:9, 10 years)",
         ["T_standby", "optimum", "leakage (uA)", "degradation (%)"],
         printable)
    for r in rows:
        leak_opt, aging_opt = r["points"]
        gap = (leak_opt.degradation - aging_opt.degradation) * 100
        cost = (aging_opt.leakage / leak_opt.leakage - 1) * 100
        print(f"T_standby {r['tst']:.0f} K: aging-optimal buys "
              f"{gap:.3f} pp of degradation for +{cost:.2f} % leakage")
    print("Even unconstrained, the vector lever moves degradation by "
          "well under a point\n— input-state control is a weak NBTI "
          "knob, the paper's central IVC verdict.")


def test_ext_tradeoff(run_once):
    rows = run_once(run_ext)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ext()
    check(r)
    report(r)
