"""Unit + property tests for series-parallel networks and stack leakage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells.network import (
    Dev,
    Parallel,
    Series,
    conducts,
    devices,
    max_series_depth,
    network_leakage,
    stress_probabilities,
    stressed_pmos,
)
from repro.tech import PTM90, Mosfet


def nmos(pin, name, w=240e-9):
    return Dev(Mosfet(name=name, polarity="nmos", gate_pin=pin, w=w, l=90e-9))


def pmos(pin, name, w=480e-9):
    return Dev(Mosfet(name=name, polarity="pmos", gate_pin=pin, w=w, l=90e-9))


class TestConduction:
    def test_single_nmos(self):
        net = nmos("A", "MN1")
        assert conducts(net, {"A": 1})
        assert not conducts(net, {"A": 0})

    def test_single_pmos(self):
        net = pmos("A", "MP1")
        assert conducts(net, {"A": 0})
        assert not conducts(net, {"A": 1})

    def test_series_requires_all(self):
        net = Series([nmos("A", "MN1"), nmos("B", "MN2")])
        assert conducts(net, {"A": 1, "B": 1})
        assert not conducts(net, {"A": 1, "B": 0})
        assert not conducts(net, {"A": 0, "B": 0})

    def test_parallel_requires_any(self):
        net = Parallel([nmos("A", "MN1"), nmos("B", "MN2")])
        assert conducts(net, {"A": 0, "B": 1})
        assert not conducts(net, {"A": 0, "B": 0})

    def test_missing_pin_raises(self):
        with pytest.raises(KeyError, match="MN1"):
            conducts(nmos("A", "MN1"), {})

    def test_bad_bit_raises(self):
        with pytest.raises(ValueError):
            conducts(nmos("A", "MN1"), {"A": 2})

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            Series([])
        with pytest.raises(ValueError):
            Parallel([])


class TestStructure:
    def test_devices_order(self):
        net = Series([nmos("A", "MN1"), Parallel([nmos("B", "MN2"), nmos("C", "MN3")])])
        assert [m.name for m in devices(net)] == ["MN1", "MN2", "MN3"]

    def test_max_series_depth(self):
        net = Series([nmos("A", "MN1"),
                      Parallel([Series([nmos("B", "MN2"), nmos("C", "MN3")]),
                                nmos("D", "MN4")])])
        assert max_series_depth(net) == 3


class TestStackLeakage:
    T = 400.0

    def test_single_off_device(self):
        net = nmos("A", "MN1")
        i = network_leakage(net, {"A": 0}, PTM90, self.T)
        assert i > 0

    def test_conducting_network_rejected(self):
        with pytest.raises(RuntimeError):
            network_leakage(nmos("A", "MN1"), {"A": 1}, PTM90, self.T)

    def test_stacking_effect_two_off_devices(self):
        """The core IVC physics: two OFF devices leak far less than one."""
        single = network_leakage(nmos("A", "MN1"), {"A": 0}, PTM90, self.T)
        stack = network_leakage(
            Series([nmos("A", "MN1"), nmos("B", "MN2")]), {"A": 0, "B": 0},
            PTM90, self.T)
        assert stack < 0.4 * single

    def test_stack_with_one_on_device_equals_single(self):
        """An ON device in the chain drops ~0 V: same as the lone OFF device."""
        single = network_leakage(nmos("A", "MN1"), {"A": 0}, PTM90, self.T)
        mixed = network_leakage(
            Series([nmos("A", "MN1"), nmos("B", "MN2")]), {"A": 0, "B": 1},
            PTM90, self.T)
        assert mixed == pytest.approx(single, rel=1e-6)

    def test_three_stack_below_two_stack(self):
        two = network_leakage(
            Series([nmos("A", "MN1"), nmos("B", "MN2")]), {"A": 0, "B": 0},
            PTM90, self.T)
        three = network_leakage(
            Series([nmos("A", "MN1"), nmos("B", "MN2"), nmos("C", "MN3")]),
            {"A": 0, "B": 0, "C": 0}, PTM90, self.T)
        assert three < two

    def test_parallel_adds(self):
        one = network_leakage(nmos("A", "MN1"), {"A": 0}, PTM90, self.T)
        two = network_leakage(
            Parallel([nmos("A", "MN1"), nmos("B", "MN2")]), {"A": 0, "B": 0},
            PTM90, self.T)
        assert two == pytest.approx(2 * one, rel=1e-6)

    def test_pmos_stack_also_suppressed(self):
        single = network_leakage(pmos("A", "MP1"), {"A": 1}, PTM90, self.T)
        stack = network_leakage(
            Series([pmos("A", "MP1"), pmos("B", "MP2")]), {"A": 1, "B": 1},
            PTM90, self.T)
        assert 0 < stack < 0.4 * single

    def test_leakage_increases_with_temperature(self):
        net = Series([nmos("A", "MN1"), nmos("B", "MN2")])
        bits = {"A": 0, "B": 0}
        assert (network_leakage(net, bits, PTM90, 400.0)
                > network_leakage(net, bits, PTM90, 330.0))

    def test_aged_devices_leak_less(self):
        net = nmos("A", "MN1")
        fresh = network_leakage(net, {"A": 0}, PTM90, self.T)
        aged = network_leakage(net, {"A": 0}, PTM90, self.T, delta_vth=0.03)
        assert aged < fresh

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_property_stack_monotone_in_depth(self, depth):
        """Leakage is non-increasing in series stack depth."""
        def build(k):
            ds = [nmos(f"I{j}", f"MN{j}") for j in range(k)]
            return ds[0] if k == 1 else Series(ds)
        bits = {f"I{j}": 0 for j in range(depth + 1)}
        shallow = network_leakage(build(depth), bits, PTM90, self.T)
        deep = network_leakage(build(depth + 1), bits, PTM90, self.T)
        assert deep <= shallow * (1 + 1e-6)


class TestStressExtraction:
    def nor2_pullup(self):
        # Rail(Vdd)-to-output: A on top.
        return Series([pmos("A", "MPA"), pmos("B", "MPB")])

    def test_both_stressed_when_all_zero(self):
        assert stressed_pmos(self.nor2_pullup(), {"A": 0, "B": 0}) == {"MPA", "MPB"}

    def test_stack_blocks_stress_below(self):
        # A=1 blocks the rail: B's source floats, so B is NOT stressed.
        assert stressed_pmos(self.nor2_pullup(), {"A": 1, "B": 0}) == set()

    def test_top_stressed_bottom_high(self):
        assert stressed_pmos(self.nor2_pullup(), {"A": 0, "B": 1}) == {"MPA"}

    def test_parallel_both_see_rail(self):
        net = Parallel([pmos("A", "MPA"), pmos("B", "MPB")])
        assert stressed_pmos(net, {"A": 0, "B": 0}) == {"MPA", "MPB"}
        assert stressed_pmos(net, {"A": 1, "B": 0}) == {"MPB"}

    def test_nmos_never_reported(self):
        net = Series([nmos("A", "MN1"), nmos("B", "MN2")])
        assert stressed_pmos(net, {"A": 0, "B": 0}) == set()


class TestStressProbabilities:
    def test_single_pmos_probability_is_zero_prob(self):
        probs = stress_probabilities(pmos("A", "MPA"), {"A": 0.3})
        assert probs["MPA"] == pytest.approx(0.3)

    def test_series_multiplies_upstream_on_probability(self):
        net = Series([pmos("A", "MPA"), pmos("B", "MPB")])
        probs = stress_probabilities(net, {"A": 0.5, "B": 0.4})
        assert probs["MPA"] == pytest.approx(0.5)
        # B stressed only when A conducts (gate 0, p=0.5) and B gate 0.
        assert probs["MPB"] == pytest.approx(0.5 * 0.4)

    def test_parallel_independent(self):
        net = Parallel([pmos("A", "MPA"), pmos("B", "MPB")])
        probs = stress_probabilities(net, {"A": 0.5, "B": 0.4})
        assert probs["MPA"] == pytest.approx(0.5)
        assert probs["MPB"] == pytest.approx(0.4)

    def test_out_of_range_probability_raises(self):
        with pytest.raises(ValueError):
            stress_probabilities(pmos("A", "MPA"), {"A": 1.5})

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_property_probabilities_bounded(self, pa, pb):
        net = Series([pmos("A", "MPA"), pmos("B", "MPB")])
        probs = stress_probabilities(net, {"A": pa, "B": pb})
        assert all(0.0 <= p <= 1.0 for p in probs.values())
        # Stacked device can never be stressed more often than its driver
        # chain conducts.
        assert probs["MPB"] <= pa + 1e-12
