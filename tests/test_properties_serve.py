"""Property-based tests for the service protocol layer.

Three families of invariants, each over hypothesis-generated inputs:

* fingerprint stability — ``scenario_key`` is insensitive to dict
  ordering and survives JSON round-trips (the property the shared
  CLI/service result cache rests on), and ``bundle_key`` is a pure
  function of its inputs through job-record-style serialization;
* record round-trips — ``JobRecord``/``AgeScenario`` rebuild exactly
  from their JSON forms;
* interleaving consistency — arbitrary sequences of queue operations
  (submit / claim / complete / fail / requeue / recover) against a
  real store never observe an inconsistent state: ``done`` always has
  a readable result payload, states stay within the machine, and no
  admitted job is ever lost.
"""

import json
import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts import ArtifactStore
from repro.artifacts.fingerprint import bundle_key, scenario_key
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    AgeScenario,
    JobQueue,
    JobRecord,
    new_job_id,
    structured_error,
)

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

#: JSON-safe scalar values for scenario payload fuzzing.
scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
)

scenario_dicts = st.dictionaries(
    st.text(min_size=1, max_size=16), scalars, min_size=1, max_size=8)

scenarios = st.builds(
    AgeScenario,
    ras=st.sampled_from(["1:9", "1:5", "1:1", "5:1", "9:1"]),
    t_active=st.floats(min_value=300.0, max_value=450.0,
                       allow_nan=False),
    t_standby=st.floats(min_value=300.0, max_value=450.0,
                        allow_nan=False),
    years=st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    standby=st.sampled_from(["worst", "best"]),
)

hex_fps = st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)


class TestFingerprintStability:
    @given(payload=scenario_dicts, seed=st.integers(0, 2**32 - 1))
    @settings(**_SETTINGS)
    def test_scenario_key_order_insensitive(self, payload, seed):
        items = list(payload.items())
        random.Random(seed).shuffle(items)
        assert scenario_key(dict(items)) == scenario_key(payload)

    @given(payload=scenario_dicts)
    @settings(**_SETTINGS)
    def test_scenario_key_survives_json_round_trip(self, payload):
        round_tripped = json.loads(json.dumps(payload))
        assert scenario_key(round_tripped) == scenario_key(payload)

    @given(scenario=scenarios)
    @settings(**_SETTINGS)
    def test_age_scenario_key_stable_through_record_json(self, scenario):
        record = JobRecord(
            job_id=new_job_id(), circuit="c17", circuit_name="c17",
            circuit_fp="fp", scenario=scenario,
            scenario_key=scenario.key())
        wire = json.loads(json.dumps(record.to_dict()))
        rebuilt = JobRecord.from_dict(wire)
        assert rebuilt.scenario == scenario
        assert rebuilt.scenario.key() == scenario.key()
        assert rebuilt.scenario_key == record.scenario_key

    @given(circuit_fp=hex_fps, library_fp=hex_fps, model_fp=hex_fps,
           temp=st.floats(min_value=250.0, max_value=450.0,
                          allow_nan=False))
    @settings(**_SETTINGS)
    def test_bundle_key_stable_through_json(self, circuit_fp,
                                            library_fp, model_fp, temp):
        key = bundle_key(circuit_fp, library_fp, model_fp, temp)
        doc = json.loads(json.dumps(
            {"bundle_key": key, "circuit_fp": circuit_fp, "temp": temp}))
        assert doc["bundle_key"] == key
        assert bundle_key(doc["circuit_fp"], library_fp, model_fp,
                          doc["temp"]) == key

    @given(scenario=scenarios)
    @settings(**_SETTINGS)
    def test_payload_matches_cli_hash(self, scenario):
        # The service must hash the exact dict the CLI hashes.
        cli_payload = {"command": "age", "ras": scenario.ras,
                       "t_active": scenario.t_active,
                       "t_standby": scenario.t_standby,
                       "years": scenario.years,
                       "standby": scenario.standby}
        assert scenario.key() == scenario_key(cli_payload)


class TestRecordRoundTrip:
    @given(scenario=scenarios,
           state=st.sampled_from(STATES),
           attempts=st.integers(0, 5),
           cached=st.booleans())
    @settings(**_SETTINGS)
    def test_job_record_round_trips_exactly(self, scenario, state,
                                            attempts, cached):
        record = JobRecord(
            job_id=new_job_id(), circuit="c17", circuit_name="c17",
            circuit_fp="fp", scenario=scenario,
            scenario_key=scenario.key(), state=state,
            attempts=attempts, cached=cached,
            error=structured_error("timeout", "x") if state == FAILED
            else None)
        rebuilt = JobRecord.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert rebuilt == record


#: One queue operation per element; arguments are drawn indices so the
#: same sequence is replayable against the model.
ops = st.lists(
    st.tuples(st.sampled_from(["submit", "claim", "finish_ok",
                               "finish_err", "status", "recover"]),
              st.integers(0, 7)),
    min_size=1, max_size=30)


class TestInterleavings:
    @given(sequence=ops, seed=st.integers(0, 2**16))
    @settings(**_SETTINGS)
    def test_no_inconsistent_state_observable(self, sequence, seed):
        rng = random.Random(seed)
        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            queue = JobQueue(store)
            submitted = []
            running = []
            counter = 0
            for op, _arg in sequence:
                if op == "submit":
                    scenario = AgeScenario(years=float(counter + 1))
                    counter += 1
                    record = JobRecord(
                        job_id=new_job_id(), circuit="c17",
                        circuit_name="c17",
                        circuit_fp=f"fp{counter % 3}",
                        scenario=scenario,
                        scenario_key=scenario.key(), max_retries=1)
                    queue.submit(record)
                    submitted.append(record.job_id)
                elif op == "claim":
                    record = queue.claim()
                    if record is not None:
                        running.append(record.job_id)
                elif op == "finish_ok" and running:
                    job_id = running.pop(rng.randrange(len(running)))
                    record = queue.get(job_id)
                    store.save_result(record.circuit_fp,
                                      record.scenario_key,
                                      {"x": 1.0})
                    queue.complete(job_id)
                elif op == "finish_err" and running:
                    job_id = running.pop(rng.randrange(len(running)))
                    queue.finish_attempt(
                        job_id, structured_error("injected", "err"))
                elif op == "status":
                    for job_id in submitted:
                        assert queue.get(job_id) is not None
                elif op == "recover":
                    # A "restart": rebuild the queue from disk only.
                    queue = JobQueue(store)
                    queue.recover()
                    running = []  # all claims were orphaned

                # Global invariants after every step:
                for record in queue.jobs():
                    assert record.state in STATES
                    if record.state == DONE:
                        assert store.has_result(record.circuit_fp,
                                                record.scenario_key)
                        payload = store.load_result(record.circuit_fp,
                                                    record.scenario_key)
                        assert payload is not None
                    if record.state == FAILED:
                        assert record.error is not None
                        assert "type" in record.error
                    on_disk = store.load_job(record.job_id)
                    assert on_disk is not None
                    assert on_disk["state"] == record.state

            # No admitted job is ever lost.
            known = {record.job_id for record in queue.jobs()}
            assert set(submitted) <= known

    @given(sequence=ops)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_double_terminal_transitions_raise(self, sequence):
        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            queue = JobQueue(store)
            scenario = AgeScenario()
            record = JobRecord(
                job_id=new_job_id(), circuit="c17", circuit_name="c17",
                circuit_fp="fp", scenario=scenario,
                scenario_key=scenario.key())
            queue.submit(record)
            claimed = queue.claim()
            store.save_result(record.circuit_fp, record.scenario_key,
                              {"x": 1.0})
            queue.complete(claimed.job_id)
            for op, _arg in sequence:
                if op == "finish_ok":
                    try:
                        queue.complete(record.job_id)
                        raise AssertionError("double complete allowed")
                    except ValueError:
                        pass
                elif op == "finish_err":
                    try:
                        queue.fail(record.job_id,
                                   structured_error("x", "y"))
                        raise AssertionError("fail after done allowed")
                    except ValueError:
                        pass
            assert queue.get(record.job_id).state == DONE
