"""Gate clustering for block-based sleep-transistor insertion [37], [38].

"The existing literatures on BBSTI techniques present some details in
clustering gates into blocks in order to optimize the leakage current
and ST size" (Sec. 2.2).  The win comes from temporal discharge
patterns: gates at different logic depths switch at different times, so
a block made of same-level gates sees its whole current at once, while
a block mixing levels spreads it — mutual exclusion in time lets a
smaller shared device carry the same logic.

This module implements two clustering policies and prices each with the
sampled peak-current machinery of :mod:`repro.sleep.current`:

* ``"level"``   — contiguous logic-level bands (temporally aligned, the
  pessimal case: good for contrast);
* ``"stripe"``  — round-robin across levels (temporally interleaved,
  approximating the mutual-exclusion clustering of Kao [37]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate_batch
from repro.sleep.sizing import K_TRIODE_P, max_virtual_rail_drop
from repro.sta.analysis import analyze, gate_loads


@dataclass(frozen=True)
class ClusteredDesign:
    """A multi-block BBSTI assignment.

    Attributes:
        clusters: gate-name tuples, one per block.
        peak_currents: sampled per-block worst window current (A).
        aspect_ratios: per-block ST (W/L) at the shared drop budget.
    """

    circuit_name: str
    policy: str
    beta: float
    clusters: Tuple[Tuple[str, ...], ...]
    peak_currents: Tuple[float, ...]
    aspect_ratios: Tuple[float, ...]

    @property
    def total_aspect(self) -> float:
        return sum(self.aspect_ratios)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


def cluster_gates(circuit: Circuit, n_clusters: int,
                  policy: str = "stripe") -> List[List[str]]:
    """Partition gates into ``n_clusters`` blocks by logic level.

    ``"level"`` slices the level-sorted gate list into contiguous bands;
    ``"stripe"`` deals it round-robin so every block mixes all depths.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if policy not in ("level", "stripe"):
        raise ValueError(f"unknown clustering policy {policy!r}")
    levels = circuit.levels()
    ordered = sorted(circuit.gates, key=lambda g: (levels[g], g))
    clusters: List[List[str]] = [[] for _ in range(n_clusters)]
    if policy == "stripe":
        for idx, gate in enumerate(ordered):
            clusters[idx % n_clusters].append(gate)
    else:
        size = -(-len(ordered) // n_clusters)  # ceil division
        for idx, gate in enumerate(ordered):
            clusters[min(idx // size, n_clusters - 1)].append(gate)
    return [c for c in clusters if c]


def clustered_design(circuit: Circuit, n_clusters: int, beta: float, *,
                     policy: str = "stripe", vth_st: float = 0.22,
                     n_pairs: int = 64, bins: int = 25, seed: int = 0,
                     library: Optional[Library] = None,
                     context=None) -> ClusteredDesign:
    """Size one ST per cluster from its own sampled peak current.

    All clusters share the eq. (28) drop budget (they gate the same
    logic, so the worst per-gate slowdown bound applies uniformly).
    With ``context=`` the gate loads and the fresh STA come from the
    shared memo instead of being rebuilt per call.
    """
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    tech = library.tech
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    st_overdrive = tech.vdd - vth_st
    if st_overdrive <= 0:
        raise ValueError("sleep transistor has no overdrive")
    clusters = cluster_gates(circuit, n_clusters, policy)
    if context is not None and context.library is library:
        loads = context.gate_loads()
        timing = context.fresh_timing()
    else:
        loads = gate_loads(circuit, library)
        timing = analyze(circuit, library, loads=loads)
    period = timing.circuit_delay
    bin_width = period / bins

    names = list(circuit.gates)
    index = {name: i for i, name in enumerate(names)}
    charge = np.array([loads[n] * tech.vdd for n in names])
    gate_bin = np.array([
        min(bins - 1, int(max(timing.arrival[n].values()) / period * bins))
        for n in names], dtype=np.int64)

    rng = np.random.default_rng(seed)
    draws = rng.integers(0, 2, (2 * n_pairs, len(circuit.primary_inputs)),
                         dtype=np.uint8)
    pi_matrix = {pi: draws[:, i].copy()
                 for i, pi in enumerate(circuit.primary_inputs)}
    values = evaluate_batch(circuit, pi_matrix, library)
    toggles = np.stack([values[n][0::2] != values[n][1::2] for n in names])

    v_st = max_virtual_rail_drop(beta, tech)
    peaks: List[float] = []
    aspects: List[float] = []
    for cluster in clusters:
        rows = np.array([index[g] for g in cluster])
        peak = 0.0
        for k in range(n_pairs):
            mask = toggles[rows, k]
            if not mask.any():
                continue
            sub = rows[mask]
            per_bin = np.bincount(gate_bin[sub], weights=charge[sub],
                                  minlength=bins) / bin_width
            peak = max(peak, float(per_bin.max()))
        # A block that never toggled in the sample still gets a minimal
        # device (it must sink at least one gate's switching current).
        if peak == 0.0:
            peak = float(charge[rows].max()) / bin_width
        peaks.append(peak)
        aspects.append(peak / (K_TRIODE_P * st_overdrive * v_st))
    return ClusteredDesign(
        circuit_name=circuit.name,
        policy=policy,
        beta=beta,
        clusters=tuple(tuple(c) for c in clusters),
        peak_currents=tuple(peaks),
        aspect_ratios=tuple(aspects),
    )
