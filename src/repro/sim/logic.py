"""Levelized logic simulation (substrate S4).

Two evaluation paths share one cell-semantics source (the library truth
tables):

* :func:`evaluate` — single-vector, pure-Python; used for standby-state
  derivation during IVC analysis ("logic simulator is used to generate
  the voltage level of each internal node", paper Fig. 6).
* :func:`evaluate_batch` — NumPy LUT-vectorized over a whole vector set;
  used for Monte-Carlo signal-probability estimation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cells.library import Library, build_library
from repro.netlist.circuit import Circuit


@lru_cache(maxsize=1)
def default_library() -> Library:
    """The shared PTM90 library instance used when none is passed."""
    return build_library()


def _cell_lut(library: Library, cell_name: str) -> np.ndarray:
    """Truth table of a cell as a LUT indexed by the packed input word.

    Memoized on the :class:`Library` instance itself (a dict living in
    the library's ``__dict__``), so the cache lives and dies with the
    library object.  A module-level ``id()``-keyed registry would serve
    a stale LUT if a collected library's id were reused.
    """
    cache = library.__dict__.get("_cell_lut_cache")
    if cache is None:
        cache = {}
        library._cell_lut_cache = cache
    lut = cache.get(cell_name)
    if lut is None:
        cell = library.get(cell_name)
        lut = np.zeros(2 ** cell.n_inputs, dtype=np.uint8)
        for vec, out in cell.truth_table().items():
            index = sum(bit << k for k, bit in enumerate(vec))
            lut[index] = out
        cache[cell_name] = lut
    return lut


def evaluate(circuit: Circuit, pi_values: Dict[str, int],
             library: Optional[Library] = None, *,
             context=None) -> Dict[str, int]:
    """Evaluate every net of ``circuit`` for one input assignment.

    Args:
        circuit: the netlist.
        pi_values: value (0/1) per primary input name.
        library: cell library (defaults to the shared PTM90 library).
        context: an :class:`~repro.context.AnalysisContext` to memoize
            the simulation in (one sim per distinct vector, shared with
            leakage and aged-timing standby queries).

    Returns:
        net name -> logic value for all PIs and gate outputs.

    Raises:
        KeyError: if a primary input is missing from ``pi_values``.
        ValueError: on non-binary values.
    """
    if context is not None:
        return dict(context.standby_states(pi_values))
    library = library or default_library()
    values: Dict[str, int] = {}
    for pi in circuit.primary_inputs:
        try:
            v = pi_values[pi]
        except KeyError:
            raise KeyError(f"missing value for primary input {pi!r}") from None
        if v not in (0, 1):
            raise ValueError(f"primary input {pi!r} must be 0/1, got {v!r}")
        values[pi] = v
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        lut = _cell_lut(library, gate.cell)
        index = 0
        for k, net in enumerate(gate.inputs):
            index |= values[net] << k
        values[name] = int(lut[index])
    return values


def evaluate_batch(circuit: Circuit, pi_matrix: Dict[str, np.ndarray],
                   library: Optional[Library] = None) -> Dict[str, np.ndarray]:
    """Evaluate the circuit over a batch of input vectors at once.

    Args:
        pi_matrix: primary input name -> uint8 array of shape (n_vectors,).

    Returns:
        net name -> uint8 array of values for every vector.
    """
    library = library or default_library()
    if not pi_matrix:
        raise ValueError("empty input matrix")
    lengths = {len(v) for v in pi_matrix.values()}
    if len(lengths) != 1:
        raise ValueError("all PI arrays must have the same length")
    values: Dict[str, np.ndarray] = {}
    for pi in circuit.primary_inputs:
        try:
            values[pi] = np.asarray(pi_matrix[pi], dtype=np.uint8)
        except KeyError:
            raise KeyError(f"missing array for primary input {pi!r}") from None
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        lut = _cell_lut(library, gate.cell)
        index = np.zeros_like(values[gate.inputs[0]], dtype=np.uint16)
        for k, net in enumerate(gate.inputs):
            index |= values[net].astype(np.uint16) << k
        values[name] = lut[index]
    return values


def outputs_for(circuit: Circuit, values: Dict[str, int]) -> Dict[str, int]:
    """Project a full net-value map down to the primary outputs."""
    return {po: values[po] for po in circuit.primary_outputs}
