"""Fig. 4 — dVth vs time for different standby temperatures.

Paper setting: RAS = 1:5, active SP = 0.5, standby input 0.  Higher
T_standby accelerates the standby-mode stress (the diffusivity ratio of
eq. 17), so the curves order by temperature.
"""

import numpy as np

from _common import emit
from repro.constants import TEN_YEARS, seconds_to_years
from repro.core import DEFAULT_MODEL, WORST_CASE_DEVICE, OperatingProfile

TIMES = np.logspace(5, np.log10(TEN_YEARS), 10)
T_STANDBY = (330.0, 350.0, 370.0, 400.0)


def run_fig04():
    model = DEFAULT_MODEL
    curves = {}
    for tst in T_STANDBY:
        profile = OperatingProfile.from_ras("1:5", t_standby=tst)
        curves[tst] = model.delta_vth_series(profile, WORST_CASE_DEVICE,
                                             TIMES, 0.22)
    return {"times": TIMES, "curves": curves}


def check(data):
    curves = data["curves"]
    for tst, series in curves.items():
        assert np.all(np.diff(series) >= 0)
    finals = [curves[t][-1] for t in T_STANDBY]
    # Monotone in standby temperature ("degradation is faster ... under
    # higher temperature").
    assert finals == sorted(finals)
    # 10-year span between 330 K and 400 K is mV-scale, as in Fig. 4.
    assert 3e-3 < finals[-1] - finals[0] < 25e-3


def report(data):
    rows = []
    for k, t in enumerate(data["times"]):
        rows.append([f"{seconds_to_years(t):8.3f}"]
                    + [f"{data['curves'][tst][k] * 1e3:6.2f}"
                       for tst in T_STANDBY])
    emit("Fig. 4 — dVth (mV) vs time, RAS 1:5, varying T_standby",
         ["years"] + [f"{t:.0f}K" for t in T_STANDBY], rows)


def test_fig04_tstandby_sweep(run_once):
    data = run_once(run_fig04)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig04()
    check(d)
    report(d)
