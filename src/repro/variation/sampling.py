"""Process-variation sampling (substrate S11).

Per-gate threshold-voltage variation with two components:

* **local** (random, within-die): independent per gate; averages out
  along long paths;
* **global** (die-to-die): one shared offset per sample.

The paper's Fig. 12 treats the circuit delay as a distribution under
such Vth variation; [51] observes that NBTI *compensates* part of the
static spread because low-Vth devices age faster (higher oxide field),
which our calibration's ``field_factor`` reproduces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.netlist.circuit import Circuit


def _gauss_stream(rng: random.Random, n: int) -> np.ndarray:
    """First ``n`` draws of ``rng.gauss(0, 1)``, bit-identical, vectorized.

    CPython's ``gauss`` is a paired Box-Muller over ``random()`` doubles,
    and each ``random()`` consumes exactly two 32-bit Mersenne-Twister
    words — so one ``getrandbits`` call captures the whole word stream
    and the transform vectorizes.  The only libm/numpy ulp mismatch is
    ``log``, which stays scalar; ``cos``/``sin``/``sqrt`` and the
    ``2*pi`` product match ``math`` exactly.  Consumes the same RNG
    state as ``n`` (rounded up to even) scalar ``gauss`` calls.
    """
    if n <= 0:
        return np.empty(0)
    npairs = (n + 1) // 2
    nwords = 4 * npairs
    big = rng.getrandbits(32 * nwords)
    raw = big.to_bytes(4 * nwords, "little")
    w = np.frombuffer(raw, dtype="<u4").astype(np.uint64)
    # random(): (a >> 5) * 2^26 + (b >> 6), scaled by 2^-53.
    u = ((w[0::2] >> np.uint64(5)).astype(np.float64) * 67108864.0
         + (w[1::2] >> np.uint64(6)).astype(np.float64)) / 9007199254740992.0
    x2pi = u[0::2] * (2.0 * math.pi)
    logs = np.array([math.log(v) for v in (1.0 - u[1::2])])
    g2rad = np.sqrt(-2.0 * logs)
    z = np.empty(2 * npairs)
    z[0::2] = np.cos(x2pi) * g2rad
    z[1::2] = np.sin(x2pi) * g2rad
    return z[:n]


@dataclass(frozen=True)
class VariationModel:
    """Gaussian Vth0 variation parameters (volts).

    Attributes:
        sigma_local: per-gate independent standard deviation.
        sigma_global: die-wide shared standard deviation.
        truncate_sigmas: samples are clipped to +/- this many sigmas so a
            pathological draw cannot push a device past the rails.
    """

    sigma_local: float = 0.010
    sigma_global: float = 0.0
    truncate_sigmas: float = 4.0

    def __post_init__(self) -> None:
        if self.sigma_local < 0 or self.sigma_global < 0:
            raise ValueError("sigmas must be non-negative")
        if self.truncate_sigmas <= 0:
            raise ValueError("truncation must be positive")

    def _draw(self, rng: random.Random, sigma: float) -> float:
        if sigma == 0.0:
            return 0.0
        bound = self.truncate_sigmas * sigma
        value = rng.gauss(0.0, sigma)
        return max(-bound, min(bound, value))

    def sample(self, circuit: Circuit, rng: random.Random) -> Dict[str, float]:
        """One die: per-gate Vth0 offset (volts)."""
        shared = self._draw(rng, self.sigma_global)
        return {name: shared + self._draw(rng, self.sigma_local)
                for name in circuit.gates}

    def sample_many(self, circuit: Circuit, n_samples: int, seed: int = 0
                    ) -> List[Dict[str, float]]:
        """``n_samples`` independent dies, deterministic in ``seed``.

        Bit-identical to ``[self.sample(circuit, Random(seed))...]``
        run sequentially, but the whole population's Gaussian draws come
        from **one** vectorized RNG call (:func:`_gauss_stream`) instead
        of one ``gauss`` call per device — a zero-sigma component
        consumes no draws, exactly like :meth:`_draw`.
        """
        if n_samples < 1:
            raise ValueError("need at least one sample")
        rng = random.Random(seed)
        names = list(circuit.gates)
        per_die = ((1 if self.sigma_global > 0.0 else 0)
                   + (len(names) if self.sigma_local > 0.0 else 0))
        if per_die == 0:
            return [{name: 0.0 for name in names}
                    for _ in range(n_samples)]
        z = _gauss_stream(rng, per_die * n_samples)
        g_bound = self.truncate_sigmas * self.sigma_global
        l_bound = self.truncate_sigmas * self.sigma_local
        dies: List[Dict[str, float]] = []
        pos = 0
        for _ in range(n_samples):
            if self.sigma_global > 0.0:
                value = 0.0 + float(z[pos]) * self.sigma_global
                shared = max(-g_bound, min(g_bound, value))
                pos += 1
            else:
                shared = 0.0
            if self.sigma_local > 0.0:
                die = {}
                for name in names:
                    value = 0.0 + float(z[pos]) * self.sigma_local
                    die[name] = shared + max(-l_bound, min(l_bound, value))
                    pos += 1
            else:
                die = {name: shared + 0.0 for name in names}
            dies.append(die)
        return dies

    def sample_matrix(self, circuit: Circuit, n_samples: int, seed: int = 0,
                      *, gate_order: Optional[Sequence[str]] = None
                      ) -> np.ndarray:
        """``(gates, samples)`` Vth0 offset matrix, deterministic in ``seed``.

        The array-native form of :meth:`sample_many`: column ``s`` holds
        die ``s``'s offsets, every entry bit-identical to
        ``sample_many(circuit, n_samples, seed)[s][gate]`` (same RNG
        word stream, same clip arithmetic), but assembled without any
        per-die dict walk.  Rows follow ``gate_order`` when given (e.g.
        ``CompiledTiming.gate_names``, so the matrix aligns with the
        compiled kernel's gate axis), else ``circuit.gates`` order.

        Raises:
            ValueError: on an empty population or an unknown gate name
                in ``gate_order``.
        """
        if n_samples < 1:
            raise ValueError("need at least one sample")
        rng = random.Random(seed)
        names = list(circuit.gates)
        n_gates = len(names)
        per_die = self._draws_per_die(n_gates)
        if per_die == 0:
            matrix = np.zeros((n_gates, n_samples))
        else:
            # Dies are draw-major: die s consumed z[s*per_die:(s+1)*per_die]
            # in the scalar loop, so one C-order reshape recovers the
            # per-die rows.
            z = _gauss_stream(rng, per_die * n_samples)
            matrix = self._matrix_from_z(z, n_gates, n_samples, per_die)
        perm = self._gate_perm(names, gate_order)
        return matrix if perm is None else matrix[perm]

    def iter_sample_matrix(self, circuit: Circuit, n_samples: int,
                           seed: int = 0, *, chunk_samples: int,
                           gate_order: Optional[Sequence[str]] = None):
        """Stream :meth:`sample_matrix` in ``(start, matrix)`` chunks.

        Yields ``(s0, m)`` pairs where ``m`` is bit-identical to
        ``sample_matrix(...)[:, s0:s0 + m.shape[1]]`` — the same
        Mersenne-Twister word stream, cut at die boundaries — while only
        ever holding ``(gates, chunk_samples)`` in memory.  This is the
        Monte-Carlo memory-budget primitive: ``chunk_samples`` is
        rounded up to even when the per-die draw count is odd, so every
        chunk consumes whole Box-Muller word pairs and the stream stays
        aligned with the one-shot call.
        """
        if n_samples < 1:
            raise ValueError("need at least one sample")
        if chunk_samples < 1:
            raise ValueError("need a positive chunk size")
        names = list(circuit.gates)
        n_gates = len(names)
        perm = self._gate_perm(names, gate_order)
        per_die = self._draws_per_die(n_gates)
        if per_die % 2 and chunk_samples % 2:
            chunk_samples += 1
        rng = random.Random(seed)
        for s0 in range(0, n_samples, chunk_samples):
            count = min(chunk_samples, n_samples - s0)
            if per_die == 0:
                matrix = np.zeros((n_gates, count))
            else:
                z = _gauss_stream(rng, per_die * count)
                matrix = self._matrix_from_z(z, n_gates, count, per_die)
            yield s0, (matrix if perm is None else matrix[perm])

    def _draws_per_die(self, n_gates: int) -> int:
        return ((1 if self.sigma_global > 0.0 else 0)
                + (n_gates if self.sigma_local > 0.0 else 0))

    def _matrix_from_z(self, z: np.ndarray, n_gates: int, n_samples: int,
                       per_die: int) -> np.ndarray:
        """Gaussian stream -> clipped ``(gates, samples)`` offsets.

        The one arithmetic path shared by :meth:`sample_matrix` and
        :meth:`iter_sample_matrix` — the leading ``0.0 +`` mirrors the
        scalar normalization of ``-0.0`` products before clipping.
        """
        has_global = self.sigma_global > 0.0
        z = z.reshape(n_samples, per_die)
        if has_global:
            g_bound = self.truncate_sigmas * self.sigma_global
            vals = 0.0 + z[:, 0] * self.sigma_global
            shared = np.maximum(-g_bound, np.minimum(g_bound, vals))
        else:
            shared = np.zeros(n_samples)
        if self.sigma_local > 0.0:
            l_bound = self.truncate_sigmas * self.sigma_local
            vals = 0.0 + z[:, 1 if has_global else 0:] * self.sigma_local
            local = np.maximum(-l_bound, np.minimum(l_bound, vals))
            return (shared[:, None] + local).T
        return np.broadcast_to(shared + 0.0, (n_gates, n_samples)).copy()

    @staticmethod
    def _gate_perm(names: Sequence[str],
                   gate_order: Optional[Sequence[str]]
                   ) -> Optional[np.ndarray]:
        if gate_order is None:
            return None
        pos = {name: i for i, name in enumerate(names)}
        try:
            perm = [pos[g] for g in gate_order]
        except KeyError as exc:
            raise ValueError(
                f"unknown gate {exc.args[0]!r} in gate_order") from None
        return np.asarray(perm, dtype=np.intp)
