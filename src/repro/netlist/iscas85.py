"""The ISCAS85 benchmark suite used throughout the paper's evaluation.

Each entry records the published profile of the original circuit and a
generator producing a stand-in with that profile (DESIGN.md
substitution 1).  ``load("c432")`` returns the stand-in; if you have the
original ``.bench`` files, :func:`repro.netlist.bench.load_bench` loads
them into the identical data model and every analysis accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.generators import (
    DEFAULT_MIX,
    XOR_HEAVY_MIX,
    alu_circuit,
    array_multiplier,
    ecc_circuit,
    priority_controller,
    random_logic,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published profile of one ISCAS85 circuit.

    ``inputs``/``outputs``/``gates`` are the original counts (Hansen et
    al.'s function descriptions); ``description`` names the function
    family the stand-in mimics.
    """

    name: str
    inputs: int
    outputs: int
    gates: int
    description: str
    build: Callable[[], Circuit]


def _c432() -> Circuit:
    return priority_controller(channels=36, name="c432")


def _c499() -> Circuit:
    return ecc_circuit(data_bits=32, check_bits=8, name="c499")


def _c880() -> Circuit:
    return alu_circuit(width=16, control_bits=12, name="c880", n_outputs=26)


def _c1355() -> Circuit:
    return ecc_circuit(data_bits=32, check_bits=8, name="c1355",
                       expand_xor_to_nand=True)


def _c1908() -> Circuit:
    return random_logic("c1908", n_inputs=33, n_outputs=25, n_gates=880,
                        seed=1908, mix=XOR_HEAVY_MIX, locality=48.0)


def _c2670() -> Circuit:
    return random_logic("c2670", n_inputs=233, n_outputs=140, n_gates=1193,
                        seed=2670, locality=96.0)


def _c3540() -> Circuit:
    return random_logic("c3540", n_inputs=50, n_outputs=22, n_gates=1669,
                        seed=3540, locality=64.0)


def _c5315() -> Circuit:
    return random_logic("c5315", n_inputs=178, n_outputs=123, n_gates=2307,
                        seed=5315, locality=96.0)


def _c6288() -> Circuit:
    return array_multiplier(bits=16, name="c6288")


def _c7552() -> Circuit:
    return random_logic("c7552", n_inputs=207, n_outputs=108, n_gates=3512,
                        seed=7552, locality=96.0)


SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in (
        BenchmarkSpec("c432", 36, 7, 160, "27-channel interrupt controller", _c432),
        BenchmarkSpec("c499", 41, 32, 202, "32-bit SEC circuit", _c499),
        BenchmarkSpec("c880", 60, 26, 383, "8-bit ALU", _c880),
        BenchmarkSpec("c1355", 41, 32, 546, "32-bit SEC circuit (NAND form)", _c1355),
        BenchmarkSpec("c1908", 33, 25, 880, "16-bit SEC/DED circuit", _c1908),
        BenchmarkSpec("c2670", 233, 140, 1193, "12-bit ALU and controller", _c2670),
        BenchmarkSpec("c3540", 50, 22, 1669, "8-bit ALU", _c3540),
        BenchmarkSpec("c5315", 178, 123, 2307, "9-bit ALU", _c5315),
        BenchmarkSpec("c6288", 32, 32, 2416, "16x16 multiplier", _c6288),
        BenchmarkSpec("c7552", 207, 108, 3512, "32-bit adder/comparator", _c7552),
    )
}

#: Circuit names in the suite's canonical (size) order.
NAMES: Tuple[str, ...] = tuple(SPECS)

#: The smaller half of the suite, used where experiments would otherwise
#: be slow (MLV search repeats full aged-STA runs per vector).
SMALL_SUITE: Tuple[str, ...] = ("c432", "c499", "c880", "c1355")


@lru_cache(maxsize=None)
def load(name: str) -> Circuit:
    """Build (and memoize) the stand-in circuit for ``name``.

    Raises:
        KeyError: for names outside the ISCAS85 suite.
    """
    try:
        spec = SPECS[name]
    except KeyError:
        known = ", ".join(NAMES)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return spec.build()


def load_suite(names: Tuple[str, ...] = NAMES) -> List[Circuit]:
    """Load several benchmarks at once."""
    return [load(n) for n in names]
