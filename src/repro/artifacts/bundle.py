"""Compiled-artifact bundles: snapshot, ship, hydrate.

An :class:`ArtifactBundle` freezes every expensive compiled artifact of
one :class:`~repro.context.AnalysisContext` — the fanin-CSR timing
arrays and base delays, the packed simulator's opcode program, the
flattened aging plan, the stress-duty table, the leakage lookup table —
as plain ndarrays/lists/dicts.  Bundles are picklable (the pool runner
ships them to workers, which *hydrate* instead of re-lowering) and
round-trip losslessly through the on-disk
:class:`~repro.artifacts.store.ArtifactStore` (``to_payload`` /
``from_payload`` split the arrays out for ``.npz``).

Hydration invariant: a context seeded from a bundle produces results
bit-identical to one that compiled everything from the netlist — the
exported states are the exact arrays the original artifacts held, and
the cheap derived structures are rebuilt by the same code that built
them the first time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.artifacts.fingerprint import (
    SCHEMA_VERSION,
    bundle_key,
)

#: Bundle layout version; stored in every payload and checked on load.
#: v2: the base-delay memo ships as one stacked ``base_delay_matrix``
#: npz member instead of one member per (drop, temperature) key.
BUNDLE_VERSION = 2


def encode_leakage_entries(entries: Dict[str, Dict[Tuple[int, ...], float]]
                           ) -> Dict[str, Dict[str, float]]:
    """``{cell: {(0,1): A}}`` -> ``{cell: {"01": A}}`` (JSON-able)."""
    return {cell: {"".join(str(b) for b in vec): leak
                   for vec, leak in per_vector.items()}
            for cell, per_vector in entries.items()}


def decode_leakage_entries(encoded: Dict[str, Dict[str, float]]
                           ) -> Dict[str, Dict[Tuple[int, ...], float]]:
    """Inverse of :func:`encode_leakage_entries`, order-preserving."""
    return {cell: {tuple(int(c) for c in key): float(leak)
                   for key, leak in per_vector.items()}
            for cell, per_vector in encoded.items()}


@dataclass
class ArtifactBundle:
    """Every compiled artifact of one content key, as plain data.

    Attributes:
        bundle_key: content address (see
            :func:`repro.artifacts.fingerprint.bundle_key`).
        fingerprints: the circuit/library/model component hashes.
        circuit_spec: enough structure to rebuild the netlist
            (pis, pos, ``[name, cell, inputs]`` gate rows in order).
        model_spec: NBTI calibration constants + recovery flag.
        load_key: the ``(wire_cap, po_cap)`` the timing state was
            lowered against (the context default).
        timing_state / packed_state / plan_state: the artifact
            ``export_state()`` payloads.
        stress_duties: the default-probability stress-duty table
            (bundled so a warm run never re-propagates probabilities).
        leakage_entries: encoded leakage table
            (see :func:`encode_leakage_entries`).
    """

    schema_version: int
    bundle_key: str
    circuit_name: str
    tech_name: str
    leakage_temperature: float
    fingerprints: Dict[str, str]
    circuit_spec: Dict[str, Any]
    model_spec: Dict[str, Any]
    load_key: Tuple[float, float]
    timing_state: Dict[str, Any]
    packed_state: Dict[str, Any]
    plan_state: Dict[str, Any]
    stress_duties: Dict[str, Dict[str, float]]
    leakage_entries: Dict[str, Dict[str, float]] = field(repr=False,
                                                         default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def snapshot(cls, context) -> "ArtifactBundle":
        """Freeze a context's compiled artifacts (building any missing).

        Forces the default-key build of every bundled artifact first, so
        a snapshot taken from a cold context is complete: timing (with
        the default base-delay vector warmed), packed program, aging
        plan, stress duties, leakage table.
        """
        from repro.sta.analysis import PO_CAP, WIRE_CAP

        with obs.span("artifacts.snapshot", circuit=context.circuit.name):
            timing = context.compiled_timing()
            timing.base_delays()
            packed = context.packed_simulator()
            plan = context.aging_plan()
            duties = context.stress_duties()
            table = context.leakage_table
            fps = context.content_fingerprints()
            circuit = context.circuit
            cal = context.model.calibration
            bundle = cls(
                schema_version=BUNDLE_VERSION,
                bundle_key=context.content_key(),
                circuit_name=circuit.name,
                tech_name=context.library.tech.name,
                leakage_temperature=float(context.leakage_temperature),
                fingerprints=dict(fps),
                circuit_spec={
                    "name": circuit.name,
                    "primary_inputs": list(circuit.primary_inputs),
                    "primary_outputs": list(circuit.primary_outputs),
                    "gates": [[g.name, g.cell, list(g.inputs)]
                              for g in circuit.gates.values()],
                },
                model_spec={
                    "kv_ref": cal.kv_ref, "vth_ref": cal.vth_ref,
                    "e0_volts": cal.e0_volts, "t_ref": cal.t_ref,
                    "ed": cal.ed, "vdd": cal.vdd,
                    "scale_recovery": bool(context.model.scale_recovery),
                },
                load_key=(WIRE_CAP, PO_CAP),
                timing_state=timing.export_state(),
                packed_state=packed.export_state(),
                plan_state=plan.export_state(),
                stress_duties={g: dict(d) for g, d in duties.items()},
                leakage_entries=encode_leakage_entries(table.entries),
            )
        obs.count("artifacts.snapshots")
        return bundle

    # -- reconstruction ------------------------------------------------------

    def build_circuit(self):
        """A fresh :class:`~repro.netlist.circuit.Circuit` from the spec."""
        from repro.netlist.circuit import Circuit, Gate

        spec = self.circuit_spec
        return Circuit(
            name=spec["name"],
            primary_inputs=list(spec["primary_inputs"]),
            primary_outputs=list(spec["primary_outputs"]),
            gates=[Gate(name=n, cell=c, inputs=tuple(ins))
                   for n, c, ins in spec["gates"]],
        )

    def build_library(self):
        """The library this bundle was compiled against.

        The nominal technology resolves to the process-wide shared
        :func:`~repro.sim.logic.default_library` instance so identity
        checks (``context.library is library``) keep holding in a
        hydrating worker; other registered technologies rebuild.
        """
        from repro.cells.library import build_library
        from repro.sim.logic import default_library
        from repro.tech.ptm import PTM90, get_technology

        if self.tech_name == PTM90.name:
            return default_library()
        return build_library(get_technology(self.tech_name))

    def build_model(self):
        """The :class:`~repro.core.aging.NbtiModel` from the spec."""
        from repro.core.aging import NbtiModel
        from repro.core.calibration import NbtiCalibration

        spec = self.model_spec
        cal = NbtiCalibration(kv_ref=spec["kv_ref"],
                              vth_ref=spec["vth_ref"],
                              e0_volts=spec["e0_volts"],
                              t_ref=spec["t_ref"], ed=spec["ed"],
                              vdd=spec["vdd"])
        return NbtiModel(calibration=cal,
                         scale_recovery=spec["scale_recovery"])

    def build_leakage_table(self, library):
        """The bundled :class:`~repro.cells.leakage.LeakageTable`."""
        from repro.cells.leakage import LeakageTable

        return LeakageTable(tech=library.tech,
                            temperature=float(self.leakage_temperature),
                            entries=decode_leakage_entries(
                                self.leakage_entries))

    def seed(self, context) -> None:
        """Inject the bundled artifacts into an existing context.

        Verifies the content fingerprints first — seeding a context
        whose circuit/library/model differ from the snapshot would
        silently corrupt results.  Seeded entries count as neither hits
        nor misses, so CacheStats keeps measuring the *run's* work.
        """
        from repro.sim.packed import PackedSimulator
        from repro.sta.compiled import CompiledTiming
        from repro.sta.degradation import CompiledShiftPlan

        fps = context.content_fingerprints()
        if fps != self.fingerprints:
            mismatched = sorted(k for k in fps
                                if fps[k] != self.fingerprints.get(k))
            raise ValueError(
                f"bundle does not match the context: fingerprint mismatch "
                f"on {mismatched}")
        with obs.span("artifacts.hydrate", circuit=context.circuit.name):
            circuit, library = context.circuit, context.library
            wc, pc = self.load_key
            loads = dict(zip(self.timing_state["load_names"],
                             (float(v)
                              for v in self.timing_state["load_values"])))
            context.seed_artifact("gate_loads", (wc, pc), loads)
            context.seed_artifact(
                "compiled_timing", (wc, pc),
                CompiledTiming.from_state(circuit, library,
                                          self.timing_state))
            context.seed_artifact(
                "packed_simulator", (),
                PackedSimulator.from_state(circuit, library,
                                           self.packed_state))
            context.seed_artifact(
                "stress_duties", None,
                {g: dict(d) for g, d in self.stress_duties.items()})
            context.seed_artifact(
                "aging_plan", None,
                CompiledShiftPlan.from_state(circuit, library,
                                             self.plan_state))
            context.seed_artifact(
                "leakage_table", (float(self.leakage_temperature),),
                self.build_leakage_table(library))
        obs.count("artifacts.hydrations")

    def hydrate(self, library=None):
        """A warm :class:`~repro.context.AnalysisContext`, no recompiling.

        Rebuilds the circuit/library/model from the bundled specs (the
        cheap part), then seeds every compiled artifact.
        """
        from repro.context import AnalysisContext

        circuit = self.build_circuit()
        library = library or self.build_library()
        context = AnalysisContext(
            circuit, library, self.build_model(),
            leakage_temperature=float(self.leakage_temperature))
        self.seed(context)
        return context

    # -- store payload -------------------------------------------------------

    #: Arrays split out of the JSON manifest into the ``.npz`` member.
    _ARRAY_FIELDS = (
        ("timing_state", "load_values"),
        ("timing_state", "fanin_idx"),
        ("timing_state", "seg_ptr"),
        ("timing_state", "base_delay_matrix"),
        ("plan_state", "duties"),
        ("plan_state", "starts"),
        ("plan_state", "sentinels"),
    )

    def to_payload(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Split into ``(json-able manifest, named arrays)`` for disk."""
        manifest: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "fingerprint_schema": SCHEMA_VERSION,
            "bundle_key": self.bundle_key,
            "circuit_name": self.circuit_name,
            "tech_name": self.tech_name,
            "leakage_temperature": self.leakage_temperature,
            "fingerprints": dict(self.fingerprints),
            "circuit_spec": self.circuit_spec,
            "model_spec": self.model_spec,
            "load_key": list(self.load_key),
            "timing_state": dict(self.timing_state),
            "packed_state": dict(self.packed_state),
            "plan_state": dict(self.plan_state),
            "stress_duties": self.stress_duties,
            "leakage_entries": self.leakage_entries,
        }
        arrays: Dict[str, np.ndarray] = {}
        for section, name in self._ARRAY_FIELDS:
            arrays[f"{section}.{name}"] = np.asarray(
                manifest[section].pop(name))
        return manifest, arrays

    @classmethod
    def from_payload(cls, manifest: Dict[str, Any],
                     arrays: Dict[str, np.ndarray]) -> "ArtifactBundle":
        """Rebuild from :meth:`to_payload` output (e.g. JSON + npz)."""
        if manifest.get("schema_version") != BUNDLE_VERSION:
            raise ValueError(
                f"unsupported bundle schema "
                f"{manifest.get('schema_version')!r} "
                f"(expected {BUNDLE_VERSION})")
        timing_state = dict(manifest["timing_state"])
        plan_state = dict(manifest["plan_state"])
        for section, name in cls._ARRAY_FIELDS:
            target = timing_state if section == "timing_state" else plan_state
            target[name] = np.asarray(arrays[f"{section}.{name}"])
        return cls(
            schema_version=int(manifest["schema_version"]),
            bundle_key=manifest["bundle_key"],
            circuit_name=manifest["circuit_name"],
            tech_name=manifest["tech_name"],
            leakage_temperature=float(manifest["leakage_temperature"]),
            fingerprints=dict(manifest["fingerprints"]),
            circuit_spec=manifest["circuit_spec"],
            model_spec=manifest["model_spec"],
            load_key=(float(manifest["load_key"][0]),
                      float(manifest["load_key"][1])),
            timing_state=timing_state,
            packed_state=manifest["packed_state"],
            plan_state=plan_state,
            stress_duties=manifest["stress_duties"],
            leakage_entries=manifest["leakage_entries"],
        )

    #: Fields compared by the cross-process round-trip tests.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArtifactBundle):
            return NotImplemented
        a, _ = self.to_payload()
        b, _ = other.to_payload()
        arrays_a = self.to_payload()[1]
        arrays_b = other.to_payload()[1]
        if a != b or arrays_a.keys() != arrays_b.keys():
            return False
        return all(np.array_equal(arrays_a[k], arrays_b[k])
                   for k in arrays_a)
