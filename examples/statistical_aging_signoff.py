#!/usr/bin/env python3
"""Variation-aware aging sign-off (the paper's Fig. 12 discussion).

With process variation, circuit delay is a distribution; with NBTI, the
whole distribution drifts upward over the product lifetime.  A correct
timing guard-band covers the aged upper tail, not the fresh one.  This
example:

1. Monte-Carlo samples per-gate Vth variation over a benchmark,
2. ages every sample to 3 and 10 years (low-Vth devices age faster,
   which *compresses* the spread — the [51] compensation effect),
3. reports mu/sigma per lifetime point and checks the paper's Fig. 12
   observation: the aged lower 3-sigma bound can exceed the fresh upper
   3-sigma bound,
4. derives the guard-band a designer should actually sign off against.

Run:  python examples/statistical_aging_signoff.py
"""

from repro import OperatingProfile, VariationModel, iscas85, statistical_aging
from repro.constants import TEN_YEARS, years
from repro.flow import format_table, ns, pct


def main() -> None:
    circuit = iscas85.load("c880")
    profile = OperatingProfile.from_ras("1:9", t_standby=400.0)
    variation = VariationModel(sigma_local=0.010)
    times = (0.0, years(3.0), TEN_YEARS)

    print(f"Circuit {circuit.name}, RAS {profile.ras_label()}, "
          f"T_standby {profile.t_standby:.0f} K, "
          f"sigma(Vth) = {variation.sigma_local * 1e3:.0f} mV local\n")

    result = statistical_aging(circuit, profile, times=times,
                               n_samples=150, variation=variation, seed=11)

    rows = []
    labels = ["fresh", "3 years", "10 years"]
    for k, label in enumerate(labels):
        rows.append([
            label,
            ns(result.mean()[k]),
            f"{result.std()[k] * 1e12:.2f}",
            ns(result.lower_3sigma()[k]),
            ns(result.upper_3sigma()[k]),
        ])
    print(format_table(
        ["lifetime", "mean (ns)", "sigma (ps)", "mu-3s (ns)", "mu+3s (ns)"],
        rows, title="Delay distribution vs lifetime"))

    aged_idx = 1  # 3 years, as in the paper's Fig. 12 anecdote
    if result.aging_dominates_variation(0, aged_idx):
        print("\nFig. 12 reproduced: the 3-year mu-3sigma delay already "
              "exceeds the fresh\nmu+3sigma delay — aging dominates "
              "process variation; a fresh-silicon\nguard-band is unsafe.")
    else:
        print("\nAging does not yet dominate variation at 3 years in this "
              "configuration.")

    compression = result.variance_compression(0, -1)
    print(f"\nSpread compression over 10 years: sigma ratio "
          f"{compression:.2f} (< 1: fast, low-Vth dies age hardest and "
          "regress toward the mean, per [51]).")

    guard = result.upper_3sigma()[-1] / result.mean()[0] - 1.0
    print(f"\nRecommended sign-off guard-band vs fresh mean delay: "
          f"{pct(guard)} (aged 10-year mu+3sigma).")


if __name__ == "__main__":
    main()
