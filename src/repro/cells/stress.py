"""Per-cell NBTI stress extraction.

NBTI stresses a PMOS whenever its gate sits at 0 with its source at Vdd
(Vgs = -Vdd).  Two views are needed:

* **Standby** — the circuit holds one static state; each PMOS is either
  fully stressed or fully relaxed (:func:`stress_under_vector`).
* **Active** — inputs toggle; each PMOS is stressed for a *fraction* of
  the time equal to the probability its gate input is 0 (and, for
  stacked devices, that its source is held at Vdd), which becomes the
  stress duty cycle of the multicycle AC model
  (:func:`stress_probabilities_for_cell`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.cells.cell import Cell
from repro.cells.network import (
    Bit,
    stress_probabilities,
    stressed_pmos,
    _walk_stress_prob,
    _walk_stress_prob_batch,
)


def stress_under_vector(cell: Cell, bits: Sequence[Bit]) -> Set[str]:
    """Names of PMOS devices stressed when ``cell`` holds ``bits``."""
    values = cell.node_values(bits)
    stressed: Set[str] = set()
    for stage in cell.stages:
        stressed |= stressed_pmos(stage.pull_up, values)
    return stressed


def worst_case_vector(cell: Cell) -> Sequence[Bit]:
    """The input vector stressing the most PMOS devices (ties: lowest)."""
    best_vec = None
    best_count = -1
    for vec in cell.all_vectors():
        count = len(stress_under_vector(cell, vec))
        if count > best_count:
            best_count = count
            best_vec = vec
    return best_vec


def best_case_vector(cell: Cell) -> Sequence[Bit]:
    """The input vector stressing the fewest PMOS devices (ties: lowest)."""
    best_vec = None
    best_count = None
    for vec in cell.all_vectors():
        count = len(stress_under_vector(cell, vec))
        if best_count is None or count < best_count:
            best_count = count
            best_vec = vec
    return best_vec


def stress_probabilities_for_cell(
        cell: Cell, pin_one_prob: Dict[str, float]) -> Dict[str, float]:
    """Stress probability of every PMOS in ``cell`` during active mode.

    Args:
        cell: the library cell.
        pin_one_prob: P(pin = 1) for each *external* input pin.

    Internal stage outputs get their signal probability from the stage's
    pull-up conduction probability under the independence assumption, the
    same approximation the paper's flow uses for internal-node signal
    probabilities.
    """
    p_one: Dict[str, float] = dict(pin_one_prob)
    missing = [p for p in cell.inputs if p not in p_one]
    if missing:
        raise ValueError(f"cell {cell.name}: missing probabilities for {missing}")
    result: Dict[str, float] = {}
    for stage in cell.stages:
        zero_prob = {pin: 1.0 - p_one[pin] for pin in stage.input_pins()}
        result.update(stress_probabilities(stage.pull_up, zero_prob))
        # Stage output signal probability = P(pull-up conducts).
        scratch: Dict[str, float] = {}
        p_out_one = _walk_stress_prob(stage.pull_up, zero_prob, 0.0, scratch)
        # Clamp float drift before it feeds the next stage.
        p_one[stage.output] = min(1.0, max(0.0, p_out_one))
    return result


def stress_probabilities_for_cell_batch(cell: Cell, pin_one_prob):
    """Vectorized twin of :func:`stress_probabilities_for_cell`.

    ``pin_one_prob`` maps each external input pin to a float64 array of
    per-instance probabilities; returns device name -> array of stress
    probabilities.  Each lane runs the exact scalar operation sequence
    elementwise, so lane ``i`` is bit-identical to
    ``stress_probabilities_for_cell(cell, {pin: probs[pin][i]})`` —
    circuits instantiate a handful of cells 10^4-10^5 times, and one
    walk per *cell* replaces one walk per *gate*.
    """
    import numpy as np

    p_one = dict(pin_one_prob)
    missing = [p for p in cell.inputs if p not in p_one]
    if missing:
        raise ValueError(f"cell {cell.name}: missing probabilities for {missing}")
    for pin in cell.inputs:
        p0 = p_one[pin]
        if ((p0 < 0.0) | (p0 > 1.0)).any():
            raise ValueError(f"probability for {pin!r} out of range")
    result = {}
    for stage in cell.stages:
        zero_prob = {pin: 1.0 - p_one[pin] for pin in stage.input_pins()}
        _walk_stress_prob_batch(stage.pull_up, zero_prob, 1.0, result)
        scratch = {}
        p_out_one = _walk_stress_prob_batch(stage.pull_up, zero_prob, 0.0,
                                            scratch)
        # Clamp float drift before it feeds the next stage (elementwise
        # twin of the scalar min/max clamp).
        p_one[stage.output] = np.minimum(1.0, np.maximum(0.0, p_out_one))
    return result


def max_stress_probability(cell: Cell, pin_one_prob: Dict[str, float]) -> float:
    """Largest per-PMOS stress probability in the cell (paper Sec. 3.3:
    the gate's degradation uses its worst device)."""
    probs = stress_probabilities_for_cell(cell, pin_one_prob)
    return max(probs.values()) if probs else 0.0
