"""Physical constants and unit helpers shared across the library.

All internal quantities use SI units unless a suffix says otherwise:
volts, amperes, seconds, kelvin, meters.  A few EDA-friendly helpers
convert to the units the paper reports (mV, nA, ns, years).
"""

from __future__ import annotations

#: Boltzmann constant in eV/K (used for Arrhenius factors).
BOLTZMANN_EV = 8.617333262e-5

#: Elementary charge in coulombs.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Vacuum permittivity in F/m.
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPSILON_SIO2 = 3.9

#: Reference room temperature in kelvin.
ROOM_TEMPERATURE = 300.0

#: Seconds in one Julian year.
SECONDS_PER_YEAR = 3.1536e7

#: The paper's nominal lifetime horizon: ~10 years, quoted as 3.15e8 s.
TEN_YEARS = 3.15e8


def thermal_voltage(temperature: float) -> float:
    """Return kT/q in volts at ``temperature`` kelvin."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature!r}")
    return BOLTZMANN_EV * temperature


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return celsius + 273.15


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return kelvin - 273.15


def years(n: float) -> float:
    """Return ``n`` years expressed in seconds."""
    return n * SECONDS_PER_YEAR


def volts_to_millivolts(v: float) -> float:
    """Convert volts to millivolts."""
    return v * 1e3


def amps_to_nanoamps(i: float) -> float:
    """Convert amperes to nanoamperes."""
    return i * 1e9


def seconds_to_years(t: float) -> float:
    """Convert seconds to Julian years."""
    return t / SECONDS_PER_YEAR
