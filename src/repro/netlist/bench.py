"""ISCAS ``.bench`` format parser and writer.

The published ISCAS85 benchmarks circulate in the ``.bench`` netlist
format::

    # c17
    INPUT(1)
    ...
    OUTPUT(22)
    10 = NAND(1, 3)

This module parses that format into a :class:`~repro.netlist.circuit.Circuit`
and maps the generic ISCAS gate types onto our standard-cell library,
tree-decomposing gates whose fan-in exceeds the library maximum of 4
(real ISCAS85 circuits contain up to 9-input gates).  A writer emits the
same format so generated circuits round-trip.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.netlist.circuit import Circuit, CircuitError, Gate

#: ISCAS gate keyword -> (library cell stem, inverting?).
_GATE_TYPES = {
    "AND": ("AND", False),
    "NAND": ("NAND", True),
    "OR": ("OR", False),
    "NOR": ("NOR", True),
    "XOR": ("XOR", False),
    "XNOR": ("XNOR", False),
    "NOT": ("INV", True),
    "INV": ("INV", True),
    "BUF": ("BUF", False),
    "BUFF": ("BUF", False),
}

_MAX_FANIN = 4

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]]+)\s*=\s*(?P<type>[A-Za-z]+)\s*\((?P<ins>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<net>[\w.\[\]]+)\s*\)\s*$",
                    re.IGNORECASE)


class BenchParseError(Exception):
    """Raised on malformed ``.bench`` input, with a line number."""


def _decompose_wide(out: str, stem: str, inverting: bool, ins: List[str],
                    gates: List[Gate], counter: List[int]) -> None:
    """Map one possibly-wide ISCAS gate onto library cells.

    Fan-in <= 4 maps directly.  Wider gates become a balanced reduction:
    the non-inverting core (AND/OR) absorbs chunks of 4, and the final
    cell carries the inversion if the gate was NAND/NOR.  XOR/XNOR wider
    than 2 become XOR chains (XNOR chain parity handled by a final XNOR).
    """
    if stem in ("INV", "BUF"):
        if len(ins) != 1:
            raise BenchParseError(f"{out}: {stem} takes exactly one input")
        gates.append(Gate(out, stem, ins))
        return
    if stem in ("XOR", "XNOR"):
        if len(ins) < 2:
            raise BenchParseError(f"{out}: {stem} needs >= 2 inputs")
        nets = list(ins)
        while len(nets) > 2:
            counter[0] += 1
            mid = f"{out}_x{counter[0]}"
            gates.append(Gate(mid, "XOR2", nets[:2]))
            nets = [mid] + nets[2:]
        gates.append(Gate(out, f"{stem}2", nets))
        return
    if len(ins) < 2:
        # Single-input AND/OR degenerate to a buffer (NAND/NOR to INV).
        gates.append(Gate(out, "INV" if inverting else "BUF", ins))
        return
    base = "AND" if stem in ("AND", "NAND") else "OR"
    nets = list(ins)
    while len(nets) > _MAX_FANIN:
        chunk, nets = nets[:_MAX_FANIN], nets[_MAX_FANIN:]
        counter[0] += 1
        mid = f"{out}_r{counter[0]}"
        gates.append(Gate(mid, f"{base}{len(chunk)}", chunk))
        nets.insert(0, mid)
    final_stem = stem if stem in ("AND", "OR", "NAND", "NOR") else base
    gates.append(Gate(out, f"{final_stem}{len(nets)}", nets))


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` text into a :class:`Circuit`.

    Raises:
        BenchParseError: on syntax errors (message carries line number).
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    counter = [0]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = _IO_RE.match(line)
        if io:
            (inputs if io.group("kind").upper() == "INPUT" else outputs).append(
                io.group("net"))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise BenchParseError(f"line {lineno}: cannot parse {raw.strip()!r}")
        gtype = m.group("type").upper()
        if gtype == "DFF":
            raise BenchParseError(
                f"line {lineno}: sequential element DFF not supported "
                "(ISCAS85 circuits are combinational)")
        if gtype not in _GATE_TYPES:
            raise BenchParseError(f"line {lineno}: unknown gate type {gtype!r}")
        ins = [s.strip() for s in m.group("ins").split(",") if s.strip()]
        if not ins:
            raise BenchParseError(f"line {lineno}: gate with no inputs")
        stem, inverting = _GATE_TYPES[gtype]
        _decompose_wide(m.group("out"), stem, inverting, ins, gates, counter)
    try:
        return Circuit(name, inputs, outputs, gates)
    except CircuitError as exc:
        raise BenchParseError(f"structural error: {exc}") from exc


def load_bench(path: Union[str, Path]) -> Circuit:
    """Parse a ``.bench`` file; circuit named after the file stem."""
    p = Path(path)
    return parse_bench(p.read_text(), name=p.stem)


def load_packaged(name: str) -> Circuit:
    """Load a ``.bench`` netlist bundled with the package.

    Currently ships ``c17`` (the original, public-domain smallest
    ISCAS85 circuit); drop further originals into
    ``repro/netlist/data/`` and they become loadable by stem.

    Raises:
        FileNotFoundError: for names without a bundled netlist.
    """
    data_dir = Path(__file__).parent / "data"
    path = data_dir / f"{name}.bench"
    if not path.exists():
        available = sorted(p.stem for p in data_dir.glob("*.bench"))
        raise FileNotFoundError(
            f"no bundled netlist {name!r}; available: {available}")
    return load_bench(path)


#: Library cell -> ``.bench`` keyword for the writer.
_CELL_TO_BENCH = {
    "INV": "NOT", "BUF": "BUFF",
    "AND2": "AND", "AND3": "AND", "AND4": "AND",
    "OR2": "OR", "OR3": "OR", "OR4": "OR",
    "NAND2": "NAND", "NAND3": "NAND", "NAND4": "NAND",
    "NOR2": "NOR", "NOR3": "NOR", "NOR4": "NOR",
    "XOR2": "XOR", "XNOR2": "XNOR",
}


def _complex_cell_lines(gate: Gate) -> List[str]:
    """Decompose an AOI/OAI instance into ``.bench``-writable logic.

    The decomposition is logically exact; it is only used for export
    (the in-memory circuit keeps the complex cell and its timing).
    """
    ins = gate.inputs
    w = f"{gate.name}_w"
    if gate.cell == "AOI21":
        return [f"{w}1 = AND({ins[0]}, {ins[1]})",
                f"{gate.name} = NOR({w}1, {ins[2]})"]
    if gate.cell == "AOI22":
        return [f"{w}1 = AND({ins[0]}, {ins[1]})",
                f"{w}2 = AND({ins[2]}, {ins[3]})",
                f"{gate.name} = NOR({w}1, {w}2)"]
    if gate.cell == "OAI21":
        return [f"{w}1 = OR({ins[0]}, {ins[1]})",
                f"{gate.name} = NAND({w}1, {ins[2]})"]
    if gate.cell == "OAI22":
        return [f"{w}1 = OR({ins[0]}, {ins[1]})",
                f"{w}2 = OR({ins[2]}, {ins[3]})",
                f"{gate.name} = NAND({w}1, {w}2)"]
    raise ValueError(
        f"cell {gate.cell!r} of gate {gate.name!r} has no .bench keyword")


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text.

    Complex cells (AOI/OAI) have no ``.bench`` keyword and are exported
    as their exact AND/OR + NOR/NAND decomposition.
    """
    lines = [f"# {circuit.name}", ""]
    lines += [f"INPUT({pi})" for pi in circuit.primary_inputs]
    lines.append("")
    lines += [f"OUTPUT({po})" for po in circuit.primary_outputs]
    lines.append("")
    for gname in circuit.topological_order():
        gate = circuit.gates[gname]
        keyword = _CELL_TO_BENCH.get(gate.cell)
        if keyword is None:
            lines.extend(_complex_cell_lines(gate))
        else:
            lines.append(f"{gate.name} = {keyword}({', '.join(gate.inputs)})")
    lines.append("")
    return "\n".join(lines)


def save_bench(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write ``circuit`` to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench(circuit))
