"""Minimum-leakage-vector (MLV) search: the paper's Fig. 7 algorithm.

Finding the true MLV is NP-complete [31-33]; the paper uses a
probability-based heuristic:

0. generate N random input vectors;
1. keep an *MLV set*: vectors whose leakage is within a given range of
   the set's minimum (the paper uses 4 % of total circuit leakage);
2. for each primary input, estimate P(1) as its frequency of 1s inside
   the MLV set;
3. generate new vectors from those probabilities;
4. evaluate and merge them into the MLV set;
5. stop when every probability has converged to ~0 or ~1.

An exhaustive search is provided for small circuits (used to validate
the heuristic), plus the NBTI-aware final selection of Sec. 4.3: among
the near-minimum-leakage MLV set, pick the vector whose *aged* circuit
delay is smallest — the leakage/NBTI co-optimization.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.leakage.circuit import (
    expected_leakage,
    leakage_for_vector,
    leakage_for_vectors,
)
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sim.vectors import all_vectors, bits_to_vector, vector_to_bits
from repro.sta.degradation import AgingAnalyzer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MLVRecord:
    """One candidate standby vector and its leakage."""

    bits: Tuple[int, ...]
    leakage: float


@dataclass
class MLVSearchResult:
    """Outcome of an MLV-set search.

    Attributes:
        records: near-minimum vectors, ascending by leakage.
        iterations: probability-update rounds executed.
        converged: whether every PI probability reached ~0/1.
        evaluated: total number of leakage evaluations.
    """

    records: List[MLVRecord]
    iterations: int
    converged: bool
    evaluated: int

    @property
    def best(self) -> MLVRecord:
        return self.records[0]

    def leakage_spread(self) -> float:
        """(max - min) leakage inside the returned set, amperes."""
        return self.records[-1].leakage - self.records[0].leakage


def _filter_set(records: Dict[Tuple[int, ...], float],
                range_fraction: float, max_keep: int, *,
                reference: Optional[float] = None) -> List[MLVRecord]:
    """Keep vectors within the leakage window above the set minimum.

    Without ``reference`` the window is *relative* to the set minimum
    (``leak <= min * (1 + range_fraction)``); with a ``reference``
    leakage (the paper's "total circuit leakage") it is *absolute*:
    ``leak <= min + range_fraction * reference``.
    """
    best = min(records.values())
    if reference is None:
        cutoff = best * (1.0 + range_fraction)
    else:
        cutoff = best + range_fraction * reference
    kept = [(leak, bits) for bits, leak in records.items() if leak <= cutoff]
    kept.sort()
    return [MLVRecord(bits, leak) for leak, bits in kept[:max_keep]]


def _batch_evaluator(circuit: Circuit, table: LeakageTable,
                     library: Library, context,
                     seen: Dict[Tuple[int, ...], float]
                     ) -> Callable[[Sequence[Tuple[int, ...]]], None]:
    """A closure evaluating a whole round's candidates in one packed pass.

    Preserves the scalar path's ``seen`` dedup exactly: each distinct
    bit tuple is evaluated once, first occurrence wins.  Leakage values
    are bit-identical to :func:`leakage_for_vector` (the kernel
    accumulates gates in the same order).
    """
    if context is None:
        from repro.sim.packed import PackedSimulator

        sim = PackedSimulator(circuit, library)
        kernel = lambda pop: sim.population_leakage(pop, table)  # noqa: E731
    else:
        kernel = lambda pop: leakage_for_vectors(  # noqa: E731
            circuit, pop, table, library, context=context)

    def evaluate_all(batch: Sequence[Tuple[int, ...]]) -> None:
        fresh = [bits for bits in dict.fromkeys(batch) if bits not in seen]
        if not fresh:
            return
        leaks = kernel(np.array(fresh, dtype=np.uint8))
        for bits, leak in zip(fresh, leaks):
            seen[bits] = float(leak)

    return evaluate_all


def probability_based_mlv_search(
        circuit: Circuit, table: LeakageTable, *,
        n_vectors: int = 64,
        range_fraction: float = 0.04,
        max_iterations: int = 30,
        convergence_margin: float = 0.05,
        max_set_size: int = 16,
        seed: int = 0,
        library: Optional[Library] = None,
        context=None,
        engine: str = "packed",
        window_policy: str = "relative") -> MLVSearchResult:
    """The Fig. 7 probability-based MLV-set selection.

    Args:
        n_vectors: vectors generated per round (the paper's N).
        range_fraction: width of the MLV-set leakage window.  The
            default ``window_policy="relative"`` keeps vectors whose
            leakage is within ``range_fraction`` *of the set minimum*
            (``leak <= min * 1.04`` at the default 4 %); the paper's
            wording — "within four percent of the total circuit
            leakage" — is the ``"absolute"`` policy, an additive window
            of ``range_fraction * expected_leakage`` above the minimum.
            See MODEL.md for why the relative reading is the default.
        convergence_margin: a PI probability within this margin of 0 or
            1 counts as converged (line 5 of the pseudocode).
        max_set_size: cap on the returned MLV set.
        context: an :class:`~repro.context.AnalysisContext` memoizing
            per-vector simulations and leakage sums; the NBTI-aware
            selection pass then reuses the very same standby states.
        engine: ``"packed"`` evaluates each round's whole population in
            one bit-parallel pass (:mod:`repro.sim.packed`);
            ``"scalar"`` keeps the historical per-vector path.  Both
            produce identical results (same RNG stream, same dedup,
            bit-identical leakage).
        window_policy: ``"relative"`` or ``"absolute"`` (see
            ``range_fraction``).

    Returns:
        :class:`MLVSearchResult` with the MLV set ascending by leakage.
    """
    if n_vectors < 2:
        raise ValueError("need at least two vectors per round")
    if not 0.0 < range_fraction < 1.0:
        raise ValueError("range_fraction must be in (0, 1)")
    if engine not in ("packed", "scalar"):
        raise ValueError(f"engine must be 'packed' or 'scalar', "
                         f"got {engine!r}")
    obs.count("ivc.mlv.searches")
    with obs.span("ivc.mlv.search", circuit=circuit.name, engine=engine):
        library = library or default_library()
        reference = _window_reference(circuit, table, library, context,
                                      window_policy)
        rng = random.Random(seed)
        pis = circuit.primary_inputs

        seen: Dict[Tuple[int, ...], float] = {}

        if engine == "packed":
            evaluate_all = _batch_evaluator(circuit, table, library, context,
                                            seen)
        else:
            def evaluate_all(batch: Sequence[Tuple[int, ...]]) -> None:
                for bits in batch:
                    if bits not in seen:
                        seen[bits] = leakage_for_vector(
                            circuit, bits_to_vector(circuit, bits), table,
                            library, context=context)

        # Line 0: initial random population.  The whole round is
        # generated before evaluation (evaluation draws no randomness),
        # so the RNG stream is identical between engines.
        randint = rng.randint
        random_draw = rng.random
        n_pis = len(pis)
        evaluate_all([tuple([randint(0, 1) for _ in range(n_pis)])
                      for _ in range(n_vectors)])

        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):
            with obs.span("ivc.mlv.round", iteration=iterations):
                mlv_set = _filter_set(seen, range_fraction,
                                      max_keep=max(n_vectors, 64),
                                      reference=reference)
                # Line 2: per-PI probability of 1 inside the MLV set.
                # Integer column sums divided by the set size — the
                # numpy division yields the exact same floats as the
                # historical per-column ``sum(...) / len`` division.
                counts = np.array([r.bits for r in mlv_set],
                                  dtype=np.int64).sum(axis=0)
                probs = (counts / len(mlv_set)).tolist()
                # Line 5/6: convergence when all probabilities are
                # saturated.
                if all(p <= convergence_margin
                       or p >= 1.0 - convergence_margin for p in probs):
                    converged = True
                else:
                    # Lines 3-4: new vectors from the learned
                    # distribution.
                    evaluate_all([tuple([1 if random_draw() < p else 0
                                         for p in probs])
                                  for _ in range(n_vectors)])
            logger.debug("mlv round %d: %d vectors evaluated, set=%d",
                         iterations, len(seen), len(mlv_set))
            if converged:
                break

        final = _filter_set(seen, range_fraction, max_keep=max_set_size,
                            reference=reference)
        obs.annotate(iterations=iterations, converged=converged,
                     evaluated=len(seen))
    return MLVSearchResult(records=final, iterations=iterations,
                           converged=converged, evaluated=len(seen))


def _window_reference(circuit: Circuit, table: LeakageTable,
                      library: Library, context,
                      window_policy: str) -> Optional[float]:
    """The absolute-window reference leakage, or ``None`` for relative."""
    if window_policy == "relative":
        return None
    if window_policy == "absolute":
        return expected_leakage(circuit, table, library=library,
                                context=context)
    raise ValueError(f"window_policy must be 'relative' or 'absolute', "
                     f"got {window_policy!r}")


def exhaustive_mlv_search(circuit: Circuit, table: LeakageTable,
                          range_fraction: float = 0.04,
                          max_set_size: int = 16,
                          library: Optional[Library] = None,
                          context=None, *,
                          engine: str = "packed",
                          window_policy: str = "relative"
                          ) -> MLVSearchResult:
    """Exact MLV set by full enumeration (small circuits only).

    With the default ``engine="packed"`` the whole truth-input space is
    evaluated in one bit-parallel population pass.
    """
    library = library or default_library()
    with obs.span("ivc.mlv.exhaustive", circuit=circuit.name, engine=engine):
        reference = _window_reference(circuit, table, library, context,
                                      window_policy)
        seen: Dict[Tuple[int, ...], float] = {}
        if engine == "packed":
            evaluate_all = _batch_evaluator(circuit, table, library, context,
                                            seen)
            evaluate_all([vector_to_bits(circuit, v)
                          for v in all_vectors(circuit)])
        elif engine == "scalar":
            for vector in all_vectors(circuit):
                bits = vector_to_bits(circuit, vector)
                seen[bits] = leakage_for_vector(circuit, vector, table,
                                                library, context=context)
        else:
            raise ValueError(f"engine must be 'packed' or 'scalar', "
                             f"got {engine!r}")
        final = _filter_set(seen, range_fraction, max_set_size,
                            reference=reference)
        obs.annotate(evaluated=len(seen))
    return MLVSearchResult(records=final, iterations=1, converged=True,
                           evaluated=len(seen))


@dataclass(frozen=True)
class MLVTimingRecord:
    """Aged-timing evaluation of one MLV (one Table 3 candidate)."""

    bits: Tuple[int, ...]
    leakage: float
    aged_delay: float
    relative_degradation: float


@dataclass
class NbtiAwareSelection:
    """Result of the leakage/NBTI co-selection over an MLV set.

    ``chosen`` minimizes aged delay among near-minimum-leakage vectors —
    "MLV that simultaneously achieves the minimum circuit performance
    degradation and the maximum leakage reduction rate" (Sec. 4.3.1).
    """

    circuit_name: str
    fresh_delay: float
    records: List[MLVTimingRecord]

    @property
    def chosen(self) -> MLVTimingRecord:
        return min(self.records, key=lambda r: (r.aged_delay, r.bits))

    @property
    def worst_in_set(self) -> MLVTimingRecord:
        return max(self.records, key=lambda r: (r.aged_delay, r.bits))

    @property
    def mlv_delay_spread(self) -> float:
        """Table 3's "MLV diff": degradation spread across the MLV set,
        as a fraction of the fresh circuit delay."""
        return ((self.worst_in_set.aged_delay - self.chosen.aged_delay)
                / self.fresh_delay)


def select_mlv_for_nbti(circuit: Circuit, mlv: MLVSearchResult,
                        profile: OperatingProfile,
                        t_total: float = TEN_YEARS,
                        analyzer: Optional[AgingAnalyzer] = None,
                        context=None) -> NbtiAwareSelection:
    """Evaluate aged timing for every MLV in the set and co-select.

    Each vector is logic-simulated to fix the standby internal state,
    then the temperature-aware aged STA runs with that state.  With
    ``context=`` the candidate simulations done during the MLV search,
    the stress-duty tables, the gate loads, and the fresh STA are all
    reused; only one aged arrival propagation runs per candidate.
    """
    if not mlv.records:
        raise ValueError("empty MLV set")
    if analyzer is None:
        analyzer = context.analyzer if context is not None else AgingAnalyzer()
    records: List[MLVTimingRecord] = []
    fresh_delay = None
    for record in mlv.records:
        vector = bits_to_vector(circuit, record.bits)
        result = analyzer.aged_timing(circuit, profile, t_total,
                                      standby=vector, context=context)
        fresh_delay = result.fresh_delay
        records.append(MLVTimingRecord(
            bits=record.bits, leakage=record.leakage,
            aged_delay=result.aged_delay,
            relative_degradation=result.relative_degradation))
    return NbtiAwareSelection(circuit_name=circuit.name,
                              fresh_delay=fresh_delay, records=records)
