"""Signal-probability and activity estimation.

The paper derives gate signal probabilities "statistically by simulating
a large number of input vectors" (Sec. 3.3) and uses them both for the
NBTI stress duty cycles and for expected standby leakage.  We provide
that Monte-Carlo estimator plus the standard analytic propagation
(topological, independence-assumed), which is exact on trees and a good
cross-check elsewhere.

The public functions are thin wrappers over the shared memoized
evaluation layer (:mod:`repro.context`): pass ``context=`` to join an
existing :class:`~repro.context.AnalysisContext` and reuse its caches;
without one a transient context is built so behavior (and signatures)
stay exactly as before.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate_batch


def _propagate_impl(circuit: Circuit,
                    pi_one_prob: Optional[Dict[str, float]],
                    library: Library) -> Dict[str, float]:
    """The raw analytic propagation (no caching; see the wrapper below)."""
    probs: Dict[str, float] = {}
    for pi in circuit.primary_inputs:
        p = 0.5 if pi_one_prob is None else pi_one_prob.get(pi, 0.5)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"P({pi!r}=1) out of range: {p}")
        probs[pi] = p
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        cell = library.get(gate.cell)
        p_one = 0.0
        pin_probs = [probs[net] for net in gate.inputs]
        for vec, out in cell.truth_table().items():
            if out != 1:
                continue
            p = 1.0
            for bit, p1 in zip(vec, pin_probs):
                p *= p1 if bit else (1.0 - p1)
            p_one += p
        # Clamp float drift: sums of 2^n products can exceed 1 by ulps.
        probs[name] = min(1.0, max(0.0, p_one))
    return probs


def _estimate_impl(circuit: Circuit, n_vectors: int, seed: int,
                   pi_one_prob: Optional[Dict[str, float]],
                   library: Library, *, simulator=None) -> Dict[str, float]:
    """The raw Monte-Carlo estimator (no caching).

    With ``simulator`` (a :class:`~repro.sim.packed.PackedSimulator`
    compiled for this circuit/library) the batch runs bit-packed and the
    means come from per-word popcounts — exactly equal to the unpacked
    ``float(arr.mean())`` since both sum the same 0/1 integers.
    """
    if n_vectors < 1:
        raise ValueError("need at least one vector")
    rng = np.random.default_rng(seed)
    pi_matrix = {}
    for pi in circuit.primary_inputs:
        p = 0.5 if pi_one_prob is None else pi_one_prob.get(pi, 0.5)
        pi_matrix[pi] = (rng.random(n_vectors) < p).astype(np.uint8)
    if simulator is not None:
        return simulator.mean_ones(pi_matrix)
    values = evaluate_batch(circuit, pi_matrix, library)
    return {net: float(arr.mean()) for net, arr in values.items()}


def _activity_impl(circuit: Circuit, n_vectors: int, seed: int,
                   library: Optional[Library]) -> Dict[str, float]:
    """The raw toggle-rate estimator (no caching)."""
    if n_vectors < 2:
        raise ValueError("need at least two vectors to observe toggles")
    rng = np.random.default_rng(seed)
    pi_matrix = {pi: rng.integers(0, 2, n_vectors, dtype=np.uint8)
                 for pi in circuit.primary_inputs}
    values = evaluate_batch(circuit, pi_matrix, library)
    return {net: float(np.mean(arr[1:] != arr[:-1]))
            for net, arr in values.items()}


def propagate_probabilities(circuit: Circuit,
                            pi_one_prob: Optional[Dict[str, float]] = None,
                            library: Optional[Library] = None, *,
                            context=None) -> Dict[str, float]:
    """Analytic P(net = 1) for every net, assuming input independence.

    Args:
        pi_one_prob: P(pi = 1) per primary input; defaults to 0.5
            everywhere (the paper's active-mode setting).
        context: an :class:`~repro.context.AnalysisContext` whose
            memoized probabilities should be used; a transient one is
            built otherwise.

    For each gate, P(out = 1) = Σ over truth-table rows with output 1 of
    the product of per-pin probabilities.  Reconvergent fan-out makes
    this approximate, exactly as in the paper's flow.
    """
    if context is None:
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    return dict(context.probabilities(pi_one_prob))


def estimate_probabilities(circuit: Circuit, n_vectors: int = 2048,
                           seed: int = 0,
                           pi_one_prob: Optional[Dict[str, float]] = None,
                           library: Optional[Library] = None, *,
                           context=None) -> Dict[str, float]:
    """Monte-Carlo P(net = 1): the paper's statistical estimator."""
    if context is None:
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    return dict(context.probabilities(pi_one_prob, method="monte_carlo",
                                      n_vectors=n_vectors, seed=seed))


def estimate_activity(circuit: Circuit, n_vectors: int = 2048, seed: int = 0,
                      library: Optional[Library] = None, *,
                      context=None) -> Dict[str, float]:
    """Toggle rate per net: fraction of consecutive random vectors that
    flip the net.  Used for dynamic-power-flavoured reports.

    With ``context=`` the estimate is memoized per ``(n_vectors, seed)``
    in the shared :class:`~repro.context.AnalysisContext`; a transient
    context is built otherwise, matching the other wrappers here.
    """
    if context is None:
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    return dict(context.activity(n_vectors=n_vectors, seed=seed))


def gate_input_probabilities(circuit: Circuit, probs: Dict[str, float],
                             library: Optional[Library] = None,
                             ) -> Dict[str, Dict[str, float]]:
    """Per-gate map: cell pin name -> P(pin = 1), from net probabilities.

    This is the adapter between circuit-level signal probabilities and
    the per-cell stress-duty machinery in :mod:`repro.cells.stress`.
    """
    library = library or default_library()
    result: Dict[str, Dict[str, float]] = {}
    for gate in circuit.gates.values():
        cell = library.get(gate.cell)
        result[gate.name] = {
            pin: probs[net] for pin, net in zip(cell.inputs, gate.inputs)
        }
    return result
