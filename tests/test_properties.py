"""Cross-cutting property-based tests on hypothesis-generated circuits.

Each property draws a random (but structurally valid) circuit through
the seeded generator and checks an invariant that must hold for *any*
combinational netlist — the strongest form of integration coverage the
substrates get.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells import LeakageTable, build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.leakage import leakage_for_vector
from repro.netlist import parse_bench, random_logic, write_bench
from repro.sim import constant_vector, evaluate, random_vectors
from repro.sta import ALL_ONE, ALL_ZERO, AgingAnalyzer, analyze
from repro.variation import FastAgedTimer

LIB = build_library()
TABLE = LeakageTable.build(LIB, 400.0)
ANALYZER = AgingAnalyzer()
PROFILE = OperatingProfile.from_ras("1:5", t_standby=350.0)

#: Strategy: seeded random circuits of modest size (fast, diverse).
circuits = st.builds(
    random_logic,
    name=st.just("prop"),
    n_inputs=st.integers(min_value=4, max_value=12),
    n_outputs=st.integers(min_value=1, max_value=4),
    n_gates=st.integers(min_value=20, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
)

_SETTINGS = dict(max_examples=15, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestNetlistProperties:
    @given(circuits)
    @settings(**_SETTINGS)
    def test_bench_roundtrip_preserves_function(self, circuit):
        clone = parse_bench(write_bench(circuit), name=circuit.name)
        for vec in random_vectors(circuit, 8, seed=1):
            a = evaluate(circuit, vec)
            b = evaluate(clone, vec)
            for po in circuit.primary_outputs:
                assert a[po] == b[po]

    @given(circuits)
    @settings(**_SETTINGS)
    def test_structural_invariants(self, circuit):
        circuit.validate(LIB)
        assert circuit.topological_order()
        cone = circuit.transitive_fanin(circuit.primary_outputs)
        assert set(circuit.gates) <= cone
        fanout = circuit.fanout()
        assert all(fanout[pi] for pi in circuit.primary_inputs)


class TestTimingProperties:
    @given(circuits)
    @settings(**_SETTINGS)
    def test_aging_never_speeds_up(self, circuit):
        fresh = analyze(circuit, LIB).circuit_delay
        shifts = ANALYZER.gate_shifts(circuit, PROFILE, TEN_YEARS)
        aged = analyze(circuit, LIB, delta_vth=shifts).circuit_delay
        assert aged >= fresh

    @given(circuits)
    @settings(**_SETTINGS)
    def test_bounding_cases_bound_any_vector(self, circuit):
        worst = ANALYZER.aged_timing(circuit, PROFILE, TEN_YEARS,
                                     standby=ALL_ZERO).aged_delay
        best = ANALYZER.aged_timing(circuit, PROFILE, TEN_YEARS,
                                    standby=ALL_ONE).aged_delay
        vec = ANALYZER.aged_timing(circuit, PROFILE, TEN_YEARS,
                                   standby=constant_vector(circuit, 0)
                                   ).aged_delay
        assert best - 1e-18 <= vec <= worst + 1e-18

    @given(circuits)
    @settings(**_SETTINGS)
    def test_fast_timer_matches_sta(self, circuit):
        shifts = ANALYZER.gate_shifts(circuit, PROFILE, TEN_YEARS)
        fast = FastAgedTimer(circuit, LIB).circuit_delay(shifts)
        full = analyze(circuit, LIB, delta_vth=shifts).circuit_delay
        assert fast == pytest.approx(full, rel=1e-12)

    @given(circuits)
    @settings(**_SETTINGS)
    def test_slack_nonnegative_at_own_delay(self, circuit):
        res = analyze(circuit, LIB)
        assert all(s >= -1e-15 for s in res.slack.values())


class TestLeakageProperties:
    @given(circuits, st.integers(min_value=0, max_value=100))
    @settings(**_SETTINGS)
    def test_leakage_positive_for_any_vector(self, circuit, seed):
        vec = random_vectors(circuit, 1, seed=seed)[0]
        assert leakage_for_vector(circuit, vec, TABLE, LIB) > 0

    @given(circuits)
    @settings(**_SETTINGS)
    def test_gate_count_bounds_leakage(self, circuit):
        """Circuit leakage sits between n_gates x (min, max) cell
        leakage over the library."""
        vec = constant_vector(circuit, 0)
        total = leakage_for_vector(circuit, vec, TABLE, LIB)
        per_cell = [leak for cell in TABLE.entries.values()
                    for leak in cell.values()]
        n = circuit.n_gates()
        assert n * min(per_cell) <= total <= n * max(per_cell)
