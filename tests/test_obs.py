"""Tests for the observability layer (repro.obs).

Covers the tracer (span nesting, decorator, adoption, JSONL export),
the metrics registry (counters, histograms, deterministic merging),
the cache-stats registry (scoping, strong refs, merge-by-scope), and
the RunReport document (schema validation both ways).
"""

import json

import pytest

from repro import obs
from repro.obs.metrics import Counter, Histogram
from repro.obs.report import (
    SCHEMA_VERSION,
    RunReport,
    register_cache_snapshot,
    register_cache_stats,
    reset_cache_registry,
    schema_errors,
    snapshot_cache_stats,
    validate_report,
)
from repro.obs.trace import NULL_TRACER, Span, _NULL_HANDLE


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with collection disabled and no
    leftover cache registrations."""
    obs.set_tracer(None)
    reset_cache_registry()
    yield
    obs.set_tracer(None)
    reset_cache_registry()


class TestSpanTree:
    def test_with_scoping_builds_nesting(self):
        tracer = obs.Tracer()
        with tracer.span("outer", circuit="c17"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        [root] = tracer.roots
        assert root.name == "outer"
        assert root.attributes == {"circuit": "c17"}
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert all(s.duration is not None and s.duration >= 0
                   for s in tracer.iter_spans())

    def test_starts_relative_to_first_span(self):
        tracer = obs.Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert tracer.roots[0].start == 0.0
        assert tracer.roots[1].start >= tracer.roots[0].start

    def test_annotate_targets_innermost(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate(devices=42)
        assert tracer.roots[0].children[0].attributes == {"devices": 42}
        assert "devices" not in tracer.roots[0].attributes

    def test_exception_closes_span_and_records_error(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        [span] = tracer.roots
        assert span.duration is not None
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.current is None  # stack unwound

    def test_find_and_iter_depth_first(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2

    def test_round_trip_through_dicts(self):
        tracer = obs.Tracer()
        with tracer.span("root", k=1):
            with tracer.span("child"):
                pass
        [d] = tracer.span_dicts()
        rebuilt = Span.from_dict(d)
        assert rebuilt.to_dict() == d

    def test_adopt_appends_under_current_span(self):
        worker = obs.Tracer()
        with worker.span("work"):
            pass
        parent = obs.Tracer()
        with parent.span("sweep"):
            parent.adopt(worker.span_dicts(), worker=0)
        [root] = parent.roots
        [adopted] = root.children
        assert adopted.name == "work"
        assert adopted.attributes["worker"] == 0


class TestModuleHelpers:
    def test_span_routes_to_installed_tracer(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("kernel", batch=8):
                obs.annotate(engine="compiled")
        [span] = tracer.roots
        assert span.attributes == {"batch": 8, "engine": "compiled"}

    def test_disabled_span_is_shared_null_handle(self):
        assert obs.get_tracer() is NULL_TRACER
        assert not obs.tracing_enabled()
        # No per-call allocation: every disabled call returns the
        # single shared handle instance.
        assert obs.span("x") is obs.span("y")
        assert obs.span("x") is _NULL_HANDLE
        with obs.span("x", k=1):
            obs.annotate(ignored=True)  # must not raise

    def test_use_tracer_restores_previous(self):
        inner = obs.Tracer()
        with obs.use_tracer(inner):
            assert obs.get_tracer() is inner
            assert obs.tracing_enabled()
        assert obs.get_tracer() is NULL_TRACER

    def test_traced_decorator_bare_and_named(self):
        @obs.traced
        def plain(x):
            """Doc."""
            return x + 1

        @obs.traced("custom.name", kind="test")
        def named(x):
            """Doc."""
            return x * 2

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assert plain(1) == 2
            assert named(2) == 4
        names = [s.name for s in tracer.iter_spans()]
        assert any("plain" in n for n in names)
        assert "custom.name" in names
        assert tracer.find("custom.name")[0].attributes == {"kind": "test"}
        # Disabled: calls straight through.
        assert plain(5) == 6

    def test_write_jsonl_flat_paths(self, tmp_path):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("repro.age"):
                with obs.span("aging.gate_shifts", circuit="c17"):
                    pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [l["path"] for l in lines] == \
            ["repro.age", "repro.age/aging.gate_shifts"]
        assert [l["depth"] for l in lines] == [0, 1]
        assert lines[1]["attributes"] == {"circuit": "c17"}


class TestCounters:
    def test_labeled_series(self):
        c = Counter("sta.analyze.engine")
        c.inc(label="compiled")
        c.inc(label="compiled")
        c.inc(label="scalar")
        assert c.value("compiled") == 2
        assert c.value("scalar") == 1
        assert c.value("missing") == 0
        assert c.total() == 3

    def test_snapshot_merge_round_trip(self):
        a = Counter("n")
        a.inc(3)
        b = Counter("n")
        b.inc(4, label="x")
        a.merge_snapshot(b.snapshot())
        assert a.value() == 3 and a.value("x") == 4

    def test_count_helper_gated_on_collection(self):
        registry = obs.MetricsRegistry()
        with obs.use_metrics(registry):
            obs.count("calls")  # no tracer installed -> dropped
            with obs.use_tracer(obs.Tracer()):
                obs.count("calls", 2)
        assert registry.counter("calls").total() == 2


class TestHistograms:
    def test_bucket_key_power_of_two(self):
        assert Histogram.bucket_key(0) == "le0"
        assert Histogram.bucket_key(-1.5) == "le0"
        assert Histogram.bucket_key(1) == "0"
        assert Histogram.bucket_key(7) == "2"
        assert Histogram.bucket_key(8) == "3"
        assert Histogram.bucket_key(0.25) == "-2"

    def test_observe_stats(self):
        h = Histogram("batch")
        for v in (1, 4, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1.0 and h.max == 100.0
        assert h.mean() == pytest.approx(109 / 4)
        assert h.buckets == {"0": 1, "2": 2, "6": 1}

    def test_merge_snapshot_exact(self):
        a = Histogram("x")
        a.observe(2)
        b = Histogram("x")
        b.observe(16)
        b.observe(0.5)
        a.merge_snapshot(b.snapshot())
        assert a.count == 3
        assert a.min == 0.5 and a.max == 16.0
        assert a.buckets == {"1": 1, "4": 1, "-1": 1}

    def test_merge_into_empty(self):
        a = Histogram("x")
        b = Histogram("x")
        b.observe(3)
        a.merge_snapshot(b.snapshot())
        assert a.snapshot() == b.snapshot()


class TestRegistry:
    def test_get_or_create_and_kind_conflicts(self):
        r = obs.MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        r.histogram("h").observe(1)
        with pytest.raises(TypeError, match="histogram"):
            r.counter("h")
        with pytest.raises(TypeError, match="counter"):
            r.histogram("a")
        assert r.get("missing") is None
        assert r.names() == ["a", "h"]

    def test_merge_order_independent(self):
        def worker_snapshot(seed):
            r = obs.MetricsRegistry()
            r.counter("calls").inc(seed)
            r.histogram("size").observe(seed)
            return r.snapshot()

        snaps = [worker_snapshot(s) for s in (1, 2, 4)]
        forward, backward = obs.MetricsRegistry(), obs.MetricsRegistry()
        for s in snaps:
            forward.merge(s)
        for s in reversed(snaps):
            backward.merge(s)
        assert forward.snapshot() == backward.snapshot()
        assert forward.counter("calls").total() == 7

    def test_merge_rejects_unknown_type(self):
        r = obs.MetricsRegistry()
        with pytest.raises(ValueError, match="unknown type"):
            r.merge({"bad": {"type": "timer"}})


class TestCacheRegistry:
    def test_registration_gated_on_collection(self):
        from repro.context import CacheStats

        stats = CacheStats()
        register_cache_stats("c17", stats)  # disabled -> dropped
        assert snapshot_cache_stats() == []
        with obs.use_tracer(obs.Tracer()):
            register_cache_stats("c17", stats)
        assert len(snapshot_cache_stats()) == 1

    def test_same_scope_entries_merge(self):
        with obs.use_tracer(obs.Tracer()):
            register_cache_snapshot(
                {"scope": "c17",
                 "artifacts": {"probabilities": {"hits": 1, "misses": 2}}})
            register_cache_snapshot(
                {"scope": "c17",
                 "artifacts": {"probabilities": {"hits": 3, "misses": 0},
                               "gate_loads": {"hits": 0, "misses": 1}}})
            register_cache_snapshot(
                {"scope": "c432",
                 "artifacts": {"gate_loads": {"hits": 5, "misses": 5}}})
        merged = snapshot_cache_stats()
        assert [e["scope"] for e in merged] == ["c17", "c432"]
        c17 = merged[0]
        assert c17["artifacts"]["probabilities"] == {"hits": 4, "misses": 2}
        assert c17["hits"] == 4 and c17["misses"] == 3

    def test_cache_scope_isolates_and_captures(self):
        with obs.use_tracer(obs.Tracer()):
            register_cache_snapshot(
                {"scope": "outer", "artifacts": {}})
            captured = []
            with obs.cache_scope(captured):
                register_cache_snapshot(
                    {"scope": "inner",
                     "artifacts": {"x": {"hits": 1, "misses": 0}}})
            assert [e["scope"] for e in captured] == ["inner"]
            # Inner registration did not leak into the outer scope.
            assert [e["scope"] for e in snapshot_cache_stats()] == ["outer"]

    def test_live_stats_survive_context_drop(self):
        # The registry holds strong references on purpose: a context
        # built and dropped inside the traced block must still appear.
        from repro.context import AnalysisContext
        from repro.netlist import load_packaged

        with obs.use_tracer(obs.Tracer()):
            ctx = AnalysisContext(load_packaged("c17"))
            ctx.probabilities()
            del ctx
            [entry] = snapshot_cache_stats()
        assert entry["scope"] == "c17"
        assert entry["misses"] >= 1


class TestRunReport:
    def _report(self):
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            with obs.span("repro.test"):
                obs.count("calls")
                obs.observe("size", 8)
            register_cache_snapshot(
                {"scope": "c17",
                 "artifacts": {"x": {"hits": 1, "misses": 2}}})
            cache = snapshot_cache_stats()
        return RunReport("test run", spans=tracer.span_dicts(),
                         metrics=registry.snapshot(), cache_stats=cache)

    def test_document_is_schema_valid(self):
        doc = self._report().to_dict()
        assert schema_errors(doc) == []
        validate_report(doc)  # must not raise
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["meta"]["repro_version"]
        assert doc["metrics"]["calls"]["type"] == "counter"
        assert doc["cache_stats"][0]["hits"] == 1

    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "report.json"
        self._report().write(str(path))
        doc = json.loads(path.read_text())
        assert schema_errors(doc) == []
        assert doc["label"] == "test run"

    def test_corrupt_documents_rejected(self):
        good = self._report().to_dict()
        assert schema_errors("not a dict")
        bad_version = dict(good, schema_version=99)
        assert any("schema_version" in e
                   for e in schema_errors(bad_version))
        bad_span = dict(good, spans=[{"name": "", "start": -1}])
        errs = schema_errors(bad_span)
        assert any(".name" in e for e in errs)
        assert any(".start" in e for e in errs)
        bad_metric = dict(good, metrics={"m": {"type": "timer"}})
        assert any("counter" in e for e in schema_errors(bad_metric))
        no_values = dict(good, metrics={"m": {"type": "gauge"}})
        assert any("values" in e for e in schema_errors(no_values))
        bad_cache = dict(good, cache_stats=[{"scope": 7}])
        assert schema_errors(bad_cache)
        with pytest.raises(ValueError, match="invalid RunReport"):
            validate_report(bad_version)

    def test_validator_cli(self, tmp_path, capsys):
        from repro.obs.report import main as validate_main

        path = tmp_path / "report.json"
        self._report().write(str(path))
        assert validate_main([str(path)]) == 0
        assert "ok (" in capsys.readouterr().out
        path.write_text("{}")
        assert validate_main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
        assert validate_main([]) == 2
