"""Shared pytest-benchmark configuration for the experiment harness.

Every experiment runs exactly once per benchmark session (these are
analysis workloads, not microbenchmarks), and its paper-style table is
printed so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
full evaluation section.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the experiment a single time under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
