"""Transistor-level standard-cell substrate (S2).

Cells are described as series-parallel pull-up/pull-down transistor
networks, from which logic functions, per-vector leakage (with the
stacking effect), per-PMOS NBTI stress conditions, and alpha-power delay
arcs are all derived consistently.
"""

from repro.cells.network import (
    Dev,
    Series,
    Parallel,
    SPNode,
    conducts,
    devices,
    network_leakage,
    stressed_pmos,
    stress_probabilities,
    max_series_depth,
)
from repro.cells.cell import Cell, Stage
from repro.cells.library import Library, build_library
from repro.cells.leakage import LeakageTable, cell_leakage
from repro.cells.stress import (
    stress_under_vector,
    stress_probabilities_for_cell,
    max_stress_probability,
    worst_case_vector,
    best_case_vector,
)

__all__ = [
    "Dev", "Series", "Parallel", "SPNode",
    "conducts", "devices", "network_leakage",
    "stressed_pmos", "stress_probabilities", "max_series_depth",
    "Cell", "Stage",
    "Library", "build_library",
    "LeakageTable", "cell_leakage",
    "stress_under_vector", "stress_probabilities_for_cell",
    "max_stress_probability", "worst_case_vector", "best_case_vector",
]
