"""Operating profiles: the RAS ratio and mode temperatures.

The paper parameterizes every experiment by

* ``RAS`` — the ratio of active to standby time (written "1:5", "9:1"),
* ``T_active`` / ``T_standby`` — steady-state mode temperatures,

plus, per PMOS device, the active-mode stress duty (from signal
probabilities) and the standby parked state (from the standby vector).
:class:`OperatingProfile` bundles the circuit-level knobs;
:class:`DeviceStress` the per-device ones.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.temperature import ModeTimes

_RAS_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*[:/]\s*(\d+(?:\.\d+)?)\s*$")


@dataclass(frozen=True)
class OperatingProfile:
    """Circuit operating conditions.

    Attributes:
        active_fraction: fraction of wall-clock time in active mode
            (RAS = 1:9 -> 0.1, RAS = 9:1 -> 0.9).
        t_active: active-mode steady-state temperature (K).
        t_standby: standby-mode steady-state temperature (K).
        period: macro-cycle duration in seconds (one active+standby
            round); only the exact-recursion path depends on it.
    """

    active_fraction: float
    t_active: float = 400.0
    t_standby: float = 330.0
    period: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ValueError("active_fraction must be in [0, 1]")
        if self.t_active <= 0 or self.t_standby <= 0:
            raise ValueError("temperatures must be positive kelvin")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @classmethod
    def from_ras(cls, ras: str, t_active: float = 400.0,
                 t_standby: float = 330.0, period: float = 1.0
                 ) -> "OperatingProfile":
        """Build from the paper's RAS notation, e.g. ``"1:5"`` or ``"9/1"``."""
        m = _RAS_RE.match(ras)
        if not m:
            raise ValueError(f"cannot parse RAS ratio {ras!r} (want 'a:s')")
        active, standby = float(m.group(1)), float(m.group(2))
        if active < 0 or standby < 0 or active + standby == 0:
            raise ValueError(f"degenerate RAS ratio {ras!r}")
        return cls(active_fraction=active / (active + standby),
                   t_active=t_active, t_standby=t_standby, period=period)

    @property
    def standby_fraction(self) -> float:
        return 1.0 - self.active_fraction

    def ras_label(self) -> str:
        """Human-readable RAS form, reduced over small integers."""
        a, s = self.active_fraction, self.standby_fraction
        for denom in range(1, 100):
            if (abs(a * denom - round(a * denom)) < 1e-9
                    and abs(s * denom - round(s * denom)) < 1e-9):
                return f"{round(a * denom)}:{round(s * denom)}"
        return f"{a:.2f}:{s:.2f}"

    def isothermal(self) -> bool:
        """True when active and standby share one temperature."""
        return self.t_active == self.t_standby


@dataclass(frozen=True)
class DeviceStress:
    """Per-PMOS stress description.

    Attributes:
        active_stress_duty: fraction of active time with gate at 0 and
            source at Vdd (signal-probability product for stacked
            devices).
        standby_stressed: standby-mode stress fraction.  ``True``/
            ``False`` (a single parked state) or a float in [0, 1] — the
            fraction of standby periods the device is parked stressed,
            which is how Abella-style MLV alternation [23] spreads
            degradation across devices.
    """

    active_stress_duty: float
    standby_stressed: "float | bool"

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_stress_duty <= 1.0:
            raise ValueError("active_stress_duty must be in [0, 1]")
        if not 0.0 <= float(self.standby_stressed) <= 1.0:
            raise ValueError("standby stress fraction must be in [0, 1]")

    @property
    def standby_fraction(self) -> float:
        """Standby stress fraction as a float."""
        return float(self.standby_stressed)

    def mode_times(self, profile: OperatingProfile) -> ModeTimes:
        """Expand into one macro-cycle's stress/recovery split (seconds)."""
        t_act = profile.active_fraction * profile.period
        t_st = profile.standby_fraction * profile.period
        frac = self.standby_fraction
        return ModeTimes(
            stress_active=self.active_stress_duty * t_act,
            recovery_active=(1.0 - self.active_stress_duty) * t_act,
            stress_standby=frac * t_st,
            recovery_standby=(1.0 - frac) * t_st,
        )


#: The paper's default device condition: SP = 0.5 while active, parked
#: at 0 (worst case) during standby.
WORST_CASE_DEVICE = DeviceStress(active_stress_duty=0.5, standby_stressed=True)

#: Best case: same activity, parked at 1 (relaxing) during standby.
BEST_CASE_DEVICE = DeviceStress(active_stress_duty=0.5, standby_stressed=False)
