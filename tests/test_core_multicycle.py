"""Tests for the multicycle AC stress model (eqs. 7-11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ac_to_dc_ratio,
    cycles_to_converge,
    delta_factor,
    s_closed_form,
    s_first,
    s_sequence,
)


class TestDeltaFactor:
    def test_dc_has_no_recovery_factor(self):
        assert delta_factor(1.0) == 0.0

    def test_zero_duty_maximum(self):
        assert delta_factor(0.0) == pytest.approx(np.sqrt(0.5))

    def test_half_duty(self):
        assert delta_factor(0.5) == pytest.approx(0.5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            delta_factor(1.5)
        with pytest.raises(ValueError):
            delta_factor(-0.1)


class TestSequence:
    def test_first_element_matches_eq9(self):
        seq = s_sequence(0.5, 5)
        assert seq[0] == pytest.approx(s_first(0.5))

    def test_monotone_nondecreasing(self):
        seq = s_sequence(0.3, 500)
        assert np.all(np.diff(seq) >= -1e-15)

    def test_dc_equals_n_quarter(self):
        # c = 1: no recovery, S_n = n^(1/4) exactly.
        seq = s_sequence(1.0, 100)
        expected = np.arange(1, 101) ** 0.25
        np.testing.assert_allclose(seq, expected, rtol=1e-12)

    def test_zero_duty_stays_zero(self):
        seq = s_sequence(0.0, 10)
        assert np.all(seq == 0.0)

    def test_converges_to_closed_form(self):
        duty = 0.4
        seq = s_sequence(duty, 20000)
        closed = s_closed_form(duty, 20000)
        assert seq[-1] == pytest.approx(closed, rel=1e-3)

    def test_first_order_update_tracks_quartic(self):
        """The paper's literal eq. (10) update vs the stable quartic form."""
        exact = s_sequence(0.5, 2000, exact_quartic=True)
        linear = s_sequence(0.5, 2000, exact_quartic=False)
        assert abs(exact[-1] - linear[-1]) / exact[-1] < 1e-3

    def test_needs_cycles(self):
        with pytest.raises(ValueError):
            s_sequence(0.5, 0)

    @given(st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_property_higher_duty_more_degradation(self, duty):
        lo = s_sequence(duty * 0.9, 200)[-1]
        hi = s_sequence(duty, 200)[-1]
        assert hi >= lo


class TestClosedForm:
    def test_dc_identity(self):
        assert s_closed_form(1.0, 256.0) == pytest.approx(4.0)

    def test_quarter_power_in_time(self):
        assert (s_closed_form(0.5, 1600.0)
                == pytest.approx(2 * s_closed_form(0.5, 100.0)))

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            s_closed_form(0.5, -1.0)

    def test_ac_dc_ratio_half_duty(self):
        # (0.5/1.5)^(1/4) ~ 0.76: AC at 50 % duty is ~3/4 of DC.
        assert ac_to_dc_ratio(0.5) == pytest.approx((0.5 / 1.5) ** 0.25)
        assert 0.7 < ac_to_dc_ratio(0.5) < 0.8

    def test_ac_dc_ratio_limits(self):
        assert ac_to_dc_ratio(1.0) == pytest.approx(1.0)
        assert ac_to_dc_ratio(0.0) == 0.0

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=50)
    def test_property_bounded_by_dc(self, duty, n):
        assert s_closed_form(duty, n) <= s_closed_form(1.0, n) + 1e-12


class TestConvergence:
    def test_converges_quickly_at_high_duty(self):
        assert cycles_to_converge(0.9, rel_tol=0.01) < 100

    def test_zero_duty_trivial(self):
        assert cycles_to_converge(0.0) == 1

    def test_tighter_tolerance_needs_more_cycles(self):
        loose = cycles_to_converge(0.5, rel_tol=0.05)
        tight = cycles_to_converge(0.5, rel_tol=0.005)
        assert tight >= loose
