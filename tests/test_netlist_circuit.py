"""Tests for the circuit DAG model."""

import pytest

from repro.cells import build_library
from repro.netlist import Circuit, CircuitError, Gate


def c17():
    """The classic ISCAS c17: 5 inputs, 2 outputs, 6 NAND2 gates."""
    return Circuit(
        "c17",
        primary_inputs=["1", "2", "3", "6", "7"],
        primary_outputs=["22", "23"],
        gates=[
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


class TestConstruction:
    def test_c17_builds(self):
        c = c17()
        assert c.n_gates() == 6
        assert c.stats() == {"inputs": 5, "outputs": 2, "gates": 6, "depth": 3}

    def test_duplicate_gate_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Circuit("x", ["a"], ["g"], [Gate("g", "INV", ["a"]),
                                        Gate("g", "INV", ["a"])])

    def test_gate_shadowing_pi_rejected(self):
        with pytest.raises(CircuitError, match="collides"):
            Circuit("x", ["a"], ["a"], [Gate("a", "INV", ["a"])])

    def test_undriven_input_rejected(self):
        with pytest.raises(CircuitError, match="undriven"):
            Circuit("x", ["a"], ["g"], [Gate("g", "NAND2", ["a", "phantom"])])

    def test_undriven_output_rejected(self):
        with pytest.raises(CircuitError, match="undriven"):
            Circuit("x", ["a"], ["nothere"], [Gate("g", "INV", ["a"])])

    def test_duplicate_pi_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Circuit("x", ["a", "a"], ["g"], [Gate("g", "INV", ["a"])])

    def test_gate_needs_inputs(self):
        with pytest.raises(ValueError):
            Gate("g", "INV", [])


class TestTopology:
    def test_topological_order_respects_dependencies(self):
        c = c17()
        order = c.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for gate in c.gates.values():
            for net in gate.inputs:
                if net in c.gates:
                    assert pos[net] < pos[gate.name]

    def test_cycle_detected(self):
        c = Circuit("loop", ["a"], ["g1"], [
            Gate("g1", "NAND2", ["a", "g2"]),
            Gate("g2", "INV", ["g1"]),
        ])
        with pytest.raises(CircuitError, match="cycle"):
            c.topological_order()

    def test_levels(self):
        lv = c17().levels()
        assert lv["1"] == 0
        assert lv["10"] == 1
        assert lv["16"] == 2
        assert lv["22"] == 3

    def test_fanout(self):
        fo = c17().fanout()
        assert sorted(fo["11"]) == ["16", "19"]
        assert fo["22"] == []

    def test_transitive_fanin(self):
        c = c17()
        cone = c.transitive_fanin(["22"])
        assert cone == {"22", "10", "16", "1", "3", "2", "11", "6"}

    def test_nets(self):
        assert c17().nets == {"1", "2", "3", "6", "7", "10", "11", "16", "19", "22", "23"}


class TestValidation:
    def test_c17_validates_against_library(self):
        c17().validate(build_library())

    def test_unknown_cell(self):
        c = Circuit("x", ["a", "b"], ["g"], [Gate("g", "MAJ3", ["a", "b", "a"])])
        with pytest.raises(CircuitError, match="unknown cell"):
            c.validate(build_library())

    def test_arity_mismatch(self):
        c = Circuit("x", ["a", "b"], ["g"], [Gate("g", "NAND3", ["a", "b"])])
        with pytest.raises(CircuitError, match="expects"):
            c.validate(build_library())

    def test_cell_histogram(self):
        assert c17().cell_histogram() == {"NAND2": 6}
