"""End-to-end tests for the analysis service (live HTTP server).

The acceptance gate of the serve PR: a cold ``submit`` and a warm
``submit`` of the same (circuit, scenario) return byte-identical
result payloads, the warm path never spawns a worker or lowers a
circuit (it is a pure result-cache hit, visible in ``/metrics``), and
a served result renders byte-identically to ``repro age --store``.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.artifacts import ArtifactStore
from repro.cli import main
from repro.obs import schema_errors
from repro.serve import AgeScenario, ServeConfig, make_server

CIRCUIT = "c432"


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _wait_done(url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _get(f"{url}/status/{job_id}")
        assert status == 200
        doc = json.loads(body)
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def _counter(report, name):
    entry = report["metrics"].get(name)
    if not entry:
        return 0
    return sum(entry.get("values", {}).values()) if "values" in entry \
        else entry.get("total", 0)


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serve_store")
    httpd = make_server(ArtifactStore(store_dir),
                        ServeConfig(max_workers=2, timeout_s=120.0))
    httpd.service.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield url, str(store_dir), httpd.service
    httpd.service.stop()
    httpd.shutdown()
    thread.join(timeout=10.0)


def _metrics(url):
    status, body = _get(f"{url}/metrics")
    assert status == 200
    return json.loads(body)


class TestCacheEquivalence:
    """Cold vs warm submissions of the same (circuit, scenario)."""

    def test_cold_then_warm_byte_identical(self, live_server):
        url, _store, _service = live_server
        payload = {"circuit": CIRCUIT, "scenario": {}}

        status, body = _post(f"{url}/submit", payload)
        assert status == 202  # queued: nothing cached yet
        cold = json.loads(body)
        assert cold["state"] == "queued" and not cold["cached"]
        assert _wait_done(url, cold["job_id"])["state"] == "done"
        status, cold_body = _get(f"{url}/result/{cold['job_id']}")
        assert status == 200

        before = _metrics(url)

        status, body = _post(f"{url}/submit", payload)
        assert status == 200  # answered on the spot
        warm = json.loads(body)
        assert warm["state"] == "done" and warm["cached"]
        assert warm["job_id"] != cold["job_id"]
        status, warm_body = _get(f"{url}/result/{warm['job_id']}")
        assert status == 200

        cold_numbers = json.loads(cold_body)["numbers"]
        warm_numbers = json.loads(warm_body)["numbers"]
        assert json.dumps(cold_numbers, sort_keys=True) == \
            json.dumps(warm_numbers, sort_keys=True)

        after = _metrics(url)
        # The warm path is cache-only: no worker, no lowering.
        assert (_counter(after, "serve.cache_answers")
                == _counter(before, "serve.cache_answers") + 1)
        assert (_counter(after, "serve.workers_spawned")
                == _counter(before, "serve.workers_spawned"))
        assert (_counter(after, "serve.bundle_builds")
                == _counter(before, "serve.bundle_builds"))

        def store_entry(report):
            entries = [e for e in report["cache_stats"]
                       if e["scope"].startswith("store:")]
            assert entries
            return entries[-1]

        result_before = store_entry(before)["artifacts"].get(
            "result", {"hits": 0, "misses": 0})
        result_after = store_entry(after)["artifacts"]["result"]
        assert result_after["hits"] >= result_before["hits"] + 1
        assert result_after["misses"] == result_before["misses"]

    def test_metrics_is_valid_run_report(self, live_server):
        url, _store, _service = live_server
        report = _metrics(url)
        assert schema_errors(report) == []
        assert report["label"] == "repro serve"

    def test_result_matches_cli_age_output(self, live_server, capsys):
        url, store_dir, _service = live_server
        status, body = _post(f"{url}/submit",
                             {"circuit": CIRCUIT, "scenario": {}})
        assert status in (200, 202)
        job_id = json.loads(body)["job_id"]
        _wait_done(url, job_id)

        assert main(["result", job_id, "--url", url]) == 0
        served = capsys.readouterr().out
        assert main(["age", CIRCUIT, "--store", store_dir]) == 0
        local = capsys.readouterr().out
        assert served == local
        assert f"circuit        : {CIRCUIT}" in served

    def test_submit_wait_renders_age_report(self, live_server, capsys):
        url, _store, _service = live_server
        assert main(["submit", CIRCUIT, "--url", url, "--wait"]) == 0
        out = capsys.readouterr().out
        assert "fresh delay" in out and "worst gate dVth" in out


class TestEndpoints:
    def test_healthz(self, live_server):
        url, _store, _service = live_server
        status, body = _get(f"{url}/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert set(doc["jobs"]) == {"queued", "running", "done", "failed"}

    def test_unknown_job_404(self, live_server):
        url, _store, _service = live_server
        assert _get(f"{url}/status/nope")[0] == 404
        assert _get(f"{url}/result/nope")[0] == 404

    def test_unknown_endpoint_404(self, live_server):
        url, _store, _service = live_server
        assert _get(f"{url}/bogus")[0] == 404

    def test_bad_submit_400(self, live_server):
        url, _store, _service = live_server
        assert _post(f"{url}/submit", {})[0] == 400
        assert _post(f"{url}/submit",
                     {"circuit": "c17",
                      "scenario": {"standby": "sideways"}})[0] == 400
        assert _post(f"{url}/submit",
                     {"circuit": "no-such-circuit"})[0] == 400

    def test_fault_rejected_without_allow_faults(self, live_server):
        url, _store, _service = live_server
        status, body = _post(f"{url}/submit",
                             {"circuit": "c17", "fault": {"delay": 1}})
        assert status == 400
        assert "allow-faults" in json.loads(body)["error"]

    def test_result_pending_is_202(self, live_server):
        url, _store, service = live_server
        record = service.submit("c17", AgeScenario(years=3.5))
        # Small race: the job may finish before we poll; both shapes ok.
        status, body = _get(f"{url}/result/{record.job_id}")
        assert status in (200, 202)
        _wait_done(url, record.job_id)

    def test_duplicate_submit_coalesces(self, live_server):
        url, _store, _service = live_server
        payload = {"circuit": "c17",
                   "scenario": {"years": 7.25, "ras": "1:5"}}
        status1, body1 = _post(f"{url}/submit", payload)
        status2, body2 = _post(f"{url}/submit", payload)
        id1 = json.loads(body1)["job_id"]
        id2 = json.loads(body2)["job_id"]
        # Either the first finished already (cache answer: fresh id) or
        # the in-flight job was reused.
        if json.loads(body2)["cached"]:
            assert id1 != id2
        else:
            assert id1 == id2
        _wait_done(url, id1)
