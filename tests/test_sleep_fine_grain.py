"""Tests for fine-grain sleep-transistor insertion (FGSTI)."""

import pytest

from repro.netlist import iscas85, random_logic
from repro.sleep import (
    SleepStyle,
    design_fine_grain,
    design_sleep_transistor,
    uniform_fine_grain_area,
)
from repro.sleep.fine_grain import _drop_for_slowdown
from repro.sta import analyze


@pytest.fixture(scope="module")
def circuit():
    return random_logic("fg", n_inputs=14, n_outputs=4, n_gates=110, seed=9)


class TestDropInversion:
    def test_roundtrip(self):
        od, alpha = 0.78, 2.0
        for s in (0.01, 0.05, 0.2):
            drop = _drop_for_slowdown(s, od, alpha)
            factor = (od / (od - drop)) ** alpha
            assert factor == pytest.approx(1.0 + s, rel=1e-12)

    def test_zero_slowdown_zero_drop(self):
        assert _drop_for_slowdown(0.0, 0.78, 2.0) == 0.0


class TestDesign:
    def test_meets_timing_budget(self, circuit):
        for beta in (0.05, 0.02):
            fg = design_fine_grain(circuit, beta)
            assert fg.delay_penalty <= beta * (1 + 1e-6)

    def test_every_gate_has_st(self, circuit):
        fg = design_fine_grain(circuit, 0.05)
        assert set(fg.v_st) == set(circuit.gates)
        assert all(v > 0 for v in fg.v_st.values())
        assert all(a > 0 for a in fg.aspect_ratio.values())

    def test_slack_rich_gates_get_bigger_drops(self, circuit):
        fg = design_fine_grain(circuit, 0.05)
        base = analyze(circuit)
        # The max-slack gate tolerates at least the min-slack gate's drop.
        slackest = max(circuit.gates, key=lambda g: base.slack[g])
        tightest = min(circuit.gates, key=lambda g: base.slack[g])
        assert fg.v_st[slackest] >= fg.v_st[tightest]

    def test_bigger_drop_smaller_st(self, circuit):
        """Within the design, drop and ST size move inversely for gates
        of comparable drive."""
        fg = design_fine_grain(circuit, 0.05)
        base = analyze(circuit)
        slackest = max(circuit.gates, key=lambda g: base.slack[g])
        tightest = min(circuit.gates, key=lambda g: base.slack[g])
        if fg.v_st[slackest] > fg.v_st[tightest] * 1.5:
            # Normalize by current demand: area * drop ~ i_on.
            demand_s = fg.aspect_ratio[slackest] * fg.v_st[slackest]
            assert fg.aspect_ratio[slackest] < demand_s / fg.v_st[tightest]

    def test_slack_aware_saves_area_vs_uniform(self, circuit):
        fg = design_fine_grain(circuit, 0.05)
        uniform = uniform_fine_grain_area(circuit, 0.05)
        assert fg.total_aspect < uniform
        assert fg.slack_share > 0.5

    def test_bbsti_far_smaller_total_area(self, circuit):
        """Current sharing makes the block-level ST much smaller than
        the per-cell sum — the classic BBSTI-vs-FGSTI tradeoff."""
        fg = design_fine_grain(circuit, 0.05)
        bb = design_sleep_transistor(circuit, SleepStyle.HEADER, 0.05)
        assert bb.aspect_ratio < 0.2 * fg.total_aspect

    def test_tighter_beta_more_area(self, circuit):
        loose = design_fine_grain(circuit, 0.05)
        tight = design_fine_grain(circuit, 0.01)
        assert tight.total_aspect > loose.total_aspect

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            design_fine_grain(circuit, 0.0)
        with pytest.raises(ValueError):
            design_fine_grain(circuit, 0.05, vth_st=1.1)

    def test_works_on_benchmarks(self):
        fg = design_fine_grain(iscas85.load("c432"), 0.03)
        assert fg.delay_penalty <= 0.03 * (1 + 1e-6)
        assert fg.slack_share > 0.0
