"""Shared memoized evaluation layer: the :class:`AnalysisContext`.

The paper's Fig. 6 platform is an *iterative* loop: the MLV search and
the NBTI-aware selection re-evaluate leakage and aged timing for dozens
of candidate vectors per circuit.  Every stage of that loop consumes the
same derived artifacts — fanout maps, gate loads, cell truth tables,
signal probabilities, per-cell stress-duty tables, the leakage lookup
table — and, before this layer existed, recomputed them from scratch on
each call.

An :class:`AnalysisContext` binds one ``(Circuit, Library, NbtiModel)``
triple and owns every derived artifact exactly once, behind explicit
cache keys:

========================  =====================================================
artifact                  cache key
========================  =====================================================
``topological_order``     structural (one entry)
``fanout`` / ``levels``   structural (one entry)
``gate_loads``            ``(wire_cap, po_cap)``
``truth_table``           cell name
``probabilities``         ``(method, PI-probability map, n_vectors, seed)``
``stress_duties``         PI-probability map
``standby_states``        standby spec (sentinel or PI bit tuple)
``standby_stress``        ``(cell name, input bits)``
``leakage_table``         one entry (per-context temperature)
``leakage_for_vector``    PI bit tuple
``expected_leakage``      PI-probability map
``fresh_timing``          ``supply_drop``
``compiled_timing``       ``(wire_cap, po_cap)``
``gate_shifts``           ``(profile, lifetime, standby spec, engine)``
``gate_shift_vectors``    ``(profile, lifetime, standby spec, engine)``
``aging_plan``            PI-probability map
``field_factor``          ``vth0``
``packed_simulator``      structural (one entry)
``activity``              ``(n_vectors, seed)``
``content_fingerprints``  structural (one entry)
========================  =====================================================

Persistence story: a context may be given an
:class:`~repro.artifacts.store.ArtifactStore` (``store=``).  On
construction it asks the store for the bundle matching its
content-hash key (:meth:`AnalysisContext.content_key`) and, on a hit,
seeds its caches with the stored compiled artifacts — the expensive
lowerings (compiled timing, packed program, aging plan, leakage table)
are skipped entirely.  :meth:`AnalysisContext.save_to_store` snapshots
the warm state back.  Content keys are structural fingerprints
(:mod:`repro.artifacts.fingerprint`), so a stale store entry is
unreachable rather than wrong.

Batch queries share the per-vector caches: :meth:`population_leakage`
evaluates a whole candidate population through the bit-packed kernel
(:mod:`repro.sim.packed`) but stores and reuses results per distinct
PI bit tuple in the same ``leakage_for_vector`` cache the scalar path
uses, so mixed scalar/batch flows never recompute a vector.

Every lookup is counted: :attr:`AnalysisContext.stats` exposes hit/miss
counters per artifact, so tests and benchmarks can *assert* reuse
instead of guessing from wall clock (see
``benchmarks/test_context_reuse.py``).

Mutation story: the context assumes the bound circuit is structurally
frozen.  Flows that mutate the netlist in place (sizing commits,
cell swaps via :meth:`repro.netlist.circuit.Circuit.replace_gate`,
control-point / sleep-transistor insertion) must call
:meth:`AnalysisContext.invalidate` afterwards; circuit-level structure
caches are dropped by the mutation entry points themselves.

Compatibility story: nothing *requires* a context.  Every pre-existing
free function (``propagate_probabilities``, ``gate_loads``,
``expected_leakage``, ...) keeps its signature and now routes through a
transient context when none is supplied, or accepts ``context=`` to join
a shared one.  :class:`repro.flow.platform.AnalysisPlatform` is a thin
facade that keeps one context per circuit.
"""

from __future__ import annotations

import logging
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.cells.leakage import LeakageTable
from repro.cells.library import Library
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit

#: Default temperature of the leakage lookup tables (the paper
#: characterizes leakage at 400 K).
logger = logging.getLogger(__name__)

DEFAULT_LEAKAGE_TEMPERATURE = 400.0

class CacheStats:
    """Per-artifact hit/miss counters of one :class:`AnalysisContext`.

    A *miss* is an actual recomputation; a *hit* is a reuse.  Counters
    are cumulative across :meth:`AnalysisContext.invalidate` calls (the
    caches empty, the history stays), so a test can measure exactly how
    much work an end-to-end flow performed.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self) -> None:
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    def record_hit(self, name: str) -> None:
        """Count one reuse of the named artifact."""
        self._hits[name] = self._hits.get(name, 0) + 1

    def record_miss(self, name: str) -> None:
        """Count one recomputation of the named artifact."""
        self._misses[name] = self._misses.get(name, 0) + 1

    def hits(self, name: Optional[str] = None) -> int:
        """Reuse count for one artifact, or the total across all."""
        if name is None:
            return sum(self._hits.values())
        return self._hits.get(name, 0)

    def misses(self, name: Optional[str] = None) -> int:
        """Recomputation count for one artifact, or the total."""
        if name is None:
            return sum(self._misses.values())
        return self._misses.get(name, 0)

    def computations(self, name: str) -> int:
        """Alias for :meth:`misses`: how often the artifact was built."""
        return self.misses(name)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """``{artifact: {"hits": n, "misses": m}}`` for reporting."""
        names = sorted(set(self._hits) | set(self._misses))
        return {name: {"hits": self._hits.get(name, 0),
                       "misses": self._misses.get(name, 0)}
                for name in names}

    def reset(self) -> None:
        """Zero every counter (the caches themselves are untouched)."""
        self._hits.clear()
        self._misses.clear()

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits()}, misses={self.misses()}, "
                f"artifacts={sorted(set(self._hits) | set(self._misses))})")


#: Canonical standby-spec cache key: a sentinel string, one PI bit
#: tuple, or a tuple of PI bit tuples (alternation sequences).
StandbyKey = Union[str, Tuple[str, Tuple[Any, ...]]]


class AnalysisContext:
    """Memoized derived state of one ``(Circuit, Library, NbtiModel)``.

    Args:
        circuit: the netlist all artifacts are derived from.
        library: technology binding (defaults to the shared PTM90
            library).
        model: the temperature-aware NBTI model.
        leakage_temperature: temperature the leakage lookup table is
            characterized at.
        leakage_table: optional pre-built :class:`LeakageTable` *or* a
            zero-argument callable returning one — lets an
            :class:`~repro.flow.platform.AnalysisPlatform` share one
            (circuit-independent) table across the contexts of many
            circuits without forcing an eager build.
        store: optional :class:`~repro.artifacts.store.ArtifactStore`;
            when given, construction tries to hydrate the compiled
            artifacts from the store's bundle for this content key.

    All returned artifacts are cached, shared objects: treat them as
    read-only.  The public free functions that wrap this layer hand out
    defensive copies instead.
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None,
                 model: NbtiModel = DEFAULT_MODEL, *,
                 leakage_temperature: float = DEFAULT_LEAKAGE_TEMPERATURE,
                 leakage_table: Union[LeakageTable,
                                      Callable[[], LeakageTable],
                                      None] = None,
                 store: Optional[Any] = None):
        from repro.sim.logic import default_library
        from repro.sta.degradation import AgingAnalyzer

        self.circuit = circuit
        self.library = library or default_library()
        self.model = model
        self.leakage_temperature = leakage_temperature
        self._leakage_source = leakage_table
        self.store = store
        #: The analyzer bound to this context's library and model; its
        #: methods accept ``context=self`` to reuse the memoized state.
        self.analyzer = AgingAnalyzer(library=self.library, model=model)
        self.stats = CacheStats()
        self._caches: Dict[str, Dict[Hashable, Any]] = {}
        obs.register_cache_stats(circuit.name, self.stats)
        if store is not None:
            self._hydrate_from_store()

    # -- cache machinery ---------------------------------------------------

    def _memo(self, name: str, key: Hashable, compute: Callable[[], Any]) -> Any:
        cache = self._caches.setdefault(name, {})
        try:
            value = cache[key]
        except KeyError:
            self.stats.record_miss(name)
            value = compute()
            cache[key] = value
            return value
        self.stats.record_hit(name)
        return value

    def seed_artifact(self, name: str, key: Hashable, value: Any) -> None:
        """Install a pre-built artifact under its cache key.

        The hydration entry point used by
        :meth:`repro.artifacts.bundle.ArtifactBundle.seed`: the value is
        placed where :meth:`_memo` will find it, recording *neither* a
        hit nor a miss — seeded artifacts are free, and the zero-miss
        invariant is what warm-start tests assert.
        """
        self._caches.setdefault(name, {})[key] = value

    def invalidate(self) -> None:
        """Drop every memoized artifact (netlist-mutation hook).

        Also drops the bound circuit's own derived-structure caches, so
        one call is enough after an in-place netlist edit.  Counters are
        *not* reset: invalidation is part of the measured history.
        """
        logger.debug("invalidating context of %s (%d hits / %d misses "
                     "so far)", self.circuit.name, self.stats.hits(),
                     self.stats.misses())
        self._caches.clear()
        self.circuit.invalidate_caches()

    # -- content addressing ------------------------------------------------

    def content_fingerprints(self) -> Dict[str, str]:
        """Structural hashes of the bound circuit, library, and model."""
        return self._memo(
            "content_fingerprints", (),
            lambda: {
                "circuit": self.circuit.content_fingerprint(),
                "library": self.library.content_fingerprint(),
                "model": self.model.content_fingerprint(),
            })

    def content_key(self) -> str:
        """The content-hash bundle key of this context's artifacts."""
        from repro.artifacts.fingerprint import bundle_key

        fps = self.content_fingerprints()
        return bundle_key(fps["circuit"], fps["library"], fps["model"],
                          self.leakage_temperature)

    def _hydrate_from_store(self) -> bool:
        """Seed the caches from the backing store, if it has our bundle."""
        bundle = self.store.load_bundle(self.content_key())
        if bundle is None:
            return False
        bundle.seed(self)
        return True

    def save_to_store(self):
        """Snapshot the compiled artifacts into the backing store.

        Forces the compiled artifacts (so a cold context pays its
        lowerings now, once), then persists the bundle unless the store
        already holds this content key.  Returns the
        :class:`~repro.artifacts.bundle.ArtifactBundle` either way, so
        callers can also ship it to pool workers.

        Raises:
            ValueError: when the context has no backing store.
        """
        from repro.artifacts.bundle import ArtifactBundle

        if self.store is None:
            raise ValueError("context has no backing store")
        bundle = ArtifactBundle.snapshot(self)
        if not self.store.has_bundle(bundle.bundle_key):
            self.store.save_bundle(bundle)
        return bundle

    # -- cache keys --------------------------------------------------------

    def _prob_key(self, pi_one_prob: Optional[Mapping[str, float]]
                  ) -> Optional[Tuple[Tuple[str, float], ...]]:
        if pi_one_prob is None:
            return None
        return tuple(sorted(pi_one_prob.items()))

    def standby_key(self, standby: Any) -> StandbyKey:
        """Canonical, hashable form of a standby specification."""
        from repro.sim.vectors import vector_to_bits

        if isinstance(standby, str):
            return standby
        if isinstance(standby, Mapping):
            return ("vector", vector_to_bits(self.circuit, standby))
        return ("sequence", tuple(vector_to_bits(self.circuit, v)
                                  for v in standby))

    # -- structural artifacts ---------------------------------------------

    def topological_order(self) -> List[str]:
        """Gate names in dependency order (shared list: read-only)."""
        return self._memo("topological_order", (),
                          self.circuit.topological_order)

    def fanout(self) -> Dict[str, List[str]]:
        """Net -> reading gates (shared structure: read-only)."""
        return self._memo("fanout", (), self.circuit.fanout)

    def levels(self) -> Dict[str, int]:
        """Net -> logic level (shared dict: read-only)."""
        return self._memo("levels", (), self.circuit.levels)

    def nets(self) -> FrozenSet[str]:
        """All net names of the bound circuit."""
        return self._memo("nets", (), lambda: frozenset(self.circuit.nets))

    # -- cells -------------------------------------------------------------

    def truth_table(self, cell_name: str) -> Dict[Tuple[int, ...], int]:
        """Truth table of a library cell (shared dict: read-only)."""
        return self._memo(
            "truth_table", cell_name,
            lambda: self.library.get(cell_name).truth_table())

    # -- timing ------------------------------------------------------------

    def gate_loads(self, wire_cap: Optional[float] = None,
                   po_cap: Optional[float] = None) -> Dict[str, float]:
        """Output load per gate, keyed by the parasitic settings."""
        from repro.sta.analysis import PO_CAP, WIRE_CAP, _compute_gate_loads

        wc = WIRE_CAP if wire_cap is None else wire_cap
        pc = PO_CAP if po_cap is None else po_cap
        return self._memo(
            "gate_loads", (wc, pc),
            lambda: _compute_gate_loads(self.circuit, self.library, wc, pc))

    def compiled_timing(self, wire_cap: Optional[float] = None,
                        po_cap: Optional[float] = None):
        """The compiled STA kernel of this (circuit, library, loads).

        One :class:`~repro.sta.compiled.CompiledTiming` per parasitic
        setting — the lowering walks the netlist once; the per-gate
        base delays inside it are additionally memoized per
        ``(supply_drop, temperature)``.  Invalidated (like everything
        else) by :meth:`invalidate` after a netlist mutation.
        """
        from repro.sta.analysis import PO_CAP, WIRE_CAP
        from repro.sta.compiled import CompiledTiming

        wc = WIRE_CAP if wire_cap is None else wire_cap
        pc = PO_CAP if po_cap is None else po_cap
        return self._memo(
            "compiled_timing", (wc, pc),
            lambda: CompiledTiming(self.circuit, self.library,
                                   loads=self.gate_loads(wc, pc)))

    def fresh_timing(self, supply_drop: float = 0.0):
        """Unaged :class:`~repro.sta.analysis.TimingResult`, per rail drop."""
        from repro.sta.analysis import analyze

        return self._memo(
            "fresh_timing", (supply_drop,),
            lambda: analyze(self.circuit, self.library,
                            loads=self.gate_loads(),
                            supply_drop=supply_drop,
                            context=self))

    def fresh_delay(self, supply_drop: float = 0.0) -> float:
        """Unaged circuit delay in seconds."""
        return self.fresh_timing(supply_drop).circuit_delay

    # -- signal probabilities ---------------------------------------------

    def probabilities(self, pi_one_prob: Optional[Mapping[str, float]] = None,
                      *, method: str = "analytic", n_vectors: int = 2048,
                      seed: int = 0) -> Dict[str, float]:
        """P(net = 1) for every net, keyed by the PI-probability setting.

        Args:
            pi_one_prob: P(pi = 1) per primary input; ``None`` is the
                paper's SP = 0.5 active-mode setting.
            method: ``"analytic"`` (topological propagation) or
                ``"monte_carlo"`` (the paper's statistical estimator;
                additionally keyed by ``n_vectors`` and ``seed``).
        """
        key_probs = self._prob_key(pi_one_prob)
        if method == "analytic":
            from repro.sim.probability import _propagate_impl

            return self._memo(
                "probabilities", ("analytic", key_probs),
                lambda: _propagate_impl(self.circuit, pi_one_prob,
                                        self.library))
        if method == "monte_carlo":
            from repro.sim.probability import _estimate_impl

            return self._memo(
                "probabilities",
                ("monte_carlo", key_probs, n_vectors, seed),
                lambda: _estimate_impl(self.circuit, n_vectors, seed,
                                       pi_one_prob, self.library,
                                       simulator=self.packed_simulator()))
        raise ValueError(
            f"method must be 'analytic' or 'monte_carlo', got {method!r}")

    def activity(self, n_vectors: int = 2048, seed: int = 0
                 ) -> Dict[str, float]:
        """Toggle rate per net over a random vector stream.

        Keyed by ``(n_vectors, seed)``; the simulation itself runs
        through :func:`repro.sim.probability.estimate_activity`'s
        implementation against this context's library.
        """
        from repro.sim.probability import _activity_impl

        return self._memo(
            "activity", (n_vectors, seed),
            lambda: _activity_impl(self.circuit, n_vectors, seed,
                                   self.library))

    # -- packed simulation -------------------------------------------------

    def packed_simulator(self):
        """The compiled bit-parallel evaluator of this (circuit, library).

        Built once per context (compilation walks every gate's truth
        table); every batch query — Monte-Carlo probabilities, MLV
        population leakage, sampled bounds — replays the same program.
        """
        from repro.sim.packed import PackedSimulator

        return self._memo(
            "packed_simulator", (),
            lambda: PackedSimulator(self.circuit, self.library))

    def population_leakage(self, population) -> "np.ndarray":
        """Standby leakage (amperes) of every vector in a population.

        Interoperates with the scalar per-vector cache: vectors already
        evaluated (by :meth:`leakage_for_bits` or a previous batch) are
        served from the ``leakage_for_vector`` cache, and fresh ones are
        computed in one bit-packed pass and stored back, each counted as
        one miss.  Results are bit-identical to the scalar path.

        Args:
            population: ``(n_vectors, n_pis)`` 0/1 matrix (or nested
                sequence), PI columns in ``circuit.primary_inputs``
                order.

        Returns:
            float64 array of totals, one per population row.
        """
        import numpy as np

        cache = self._caches.setdefault("leakage_for_vector", {})
        pop = np.asarray(population, dtype=np.uint8)
        if pop.ndim != 2:
            raise ValueError("population must be a 2D bit matrix")
        keys = [tuple(int(b) for b in row) for row in pop]
        missing = [i for i, key in enumerate(keys) if key not in cache]
        if missing:
            sim = self.packed_simulator()
            fresh = sim.population_leakage(pop[missing],
                                           self.leakage_table)
            for i, leak in zip(missing, fresh):
                # A population may repeat a vector: count the first
                # occurrence as the miss, later ones as hits below.
                if keys[i] not in cache:
                    self.stats.record_miss("leakage_for_vector")
                    cache[keys[i]] = float(leak)
        out = np.empty(len(keys), dtype=np.float64)
        miss_set = set(missing)
        for i, key in enumerate(keys):
            if i not in miss_set:
                self.stats.record_hit("leakage_for_vector")
            out[i] = cache[key]
        return out

    def gate_input_probabilities(
            self, pi_one_prob: Optional[Mapping[str, float]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-gate pin -> P(pin = 1) maps over the analytic probabilities."""
        def compute() -> Dict[str, Dict[str, float]]:
            probs = self.probabilities(pi_one_prob)
            result: Dict[str, Dict[str, float]] = {}
            for gate in self.circuit.gates.values():
                cell = self.library.get(gate.cell)
                result[gate.name] = {
                    pin: probs[net]
                    for pin, net in zip(cell.inputs, gate.inputs)
                }
            return result

        return self._memo("gate_input_probabilities",
                          self._prob_key(pi_one_prob), compute)

    def stress_duties(self, pi_one_prob: Optional[Mapping[str, float]] = None
                      ) -> Dict[str, Dict[str, float]]:
        """Active-mode stress duty per PMOS, per gate.

        This is the expensive inner product of probability propagation
        and the per-cell series-parallel stress walk; one entry per
        PI-probability setting serves every aged-timing call.  Gates are
        grouped by cell and each cell's walk runs once over an array
        with one lane per instance — bit-identical per lane to the
        scalar walk, and one Python recursion per *cell* instead of per
        *gate* (the 100k-gate scale axis lives on this).
        """
        import numpy as np

        from repro.cells.stress import stress_probabilities_for_cell_batch

        def compute() -> Dict[str, Dict[str, float]]:
            pin_probs = self.gate_input_probabilities(pi_one_prob)
            by_cell: Dict[str, list] = {}
            for gate in self.circuit.gates.values():
                by_cell.setdefault(gate.cell, []).append(gate.name)
            # Each gate owns its duty dict (aging plans may hold them).
            result: Dict[str, Dict[str, float]] = {}
            for cell_name, names in by_cell.items():
                cell = self.library.get(cell_name)
                lanes = {
                    pin: np.fromiter(
                        (pin_probs[name][pin] for name in names),
                        dtype=np.float64, count=len(names))
                    for pin in cell.inputs
                }
                duties = stress_probabilities_for_cell_batch(cell, lanes)
                devs = list(duties.items())
                for i, name in enumerate(names):
                    result[name] = {dev: float(col[i])
                                    for dev, col in devs}
            return {gate.name: result[gate.name]
                    for gate in self.circuit.gates.values()}

        return self._memo("stress_duties", self._prob_key(pi_one_prob),
                          compute)

    # -- standby state and per-cell standby stress -------------------------

    def standby_states(self, standby: Any) -> Dict[str, int]:
        """Net -> parked bit for a standby spec (sentinel or PI vector).

        One logic simulation per distinct vector, shared between leakage
        evaluation and aged-timing standby stress — the MLV search
        simulates each candidate once and the NBTI-aware selection reuses
        the very same states.
        """
        from repro.sta.degradation import ALL_ONE, ALL_ZERO
        from repro.sim.logic import evaluate

        key = self.standby_key(standby)
        if isinstance(key, tuple) and key[0] == "sequence":
            raise ValueError("standby_states resolves one vector at a time; "
                             "iterate the sequence")

        def compute() -> Dict[str, int]:
            if standby == ALL_ZERO:
                return {net: 0 for net in self.circuit.nets}
            if standby == ALL_ONE:
                return {net: 1 for net in self.circuit.nets}
            if isinstance(standby, str):
                raise ValueError(f"unknown standby setting {standby!r}")
            return evaluate(self.circuit, dict(standby), self.library)

        return self._memo("standby_states", key, compute)

    def standby_stress(self, cell_name: str, bits: Tuple[int, ...]
                       ) -> FrozenSet[str]:
        """Names of PMOS devices stressed when ``cell_name`` holds ``bits``.

        Keyed per (cell, vector): circuits instantiate the same few cells
        thousands of times, so this table saturates almost immediately.
        """
        from repro.cells.stress import stress_under_vector

        return self._memo(
            "standby_stress", (cell_name, tuple(bits)),
            lambda: frozenset(
                stress_under_vector(self.library.get(cell_name), bits)))

    # -- leakage -----------------------------------------------------------

    @property
    def leakage_table(self) -> LeakageTable:
        """The per-cell leakage lookup table, built (or fetched) once."""
        def compute() -> LeakageTable:
            source = self._leakage_source
            if isinstance(source, LeakageTable):
                return source
            if callable(source):
                return source()
            return LeakageTable.build(self.library, self.leakage_temperature)

        return self._memo("leakage_table", (self.leakage_temperature,),
                          compute)

    def adopt_leakage_table(self, table: LeakageTable) -> None:
        """Bind a caller-supplied table if this context has none yet.

        Lets the free-function wrappers (which take an explicit table
        argument) join the memo without double-building; a context that
        already owns a *different* table is left untouched.
        """
        if (self._leakage_source is None
                and "leakage_table" not in self._caches):
            self._leakage_source = table

    def leakage_for_bits(self, bits: Sequence[int]) -> float:
        """Standby leakage (amperes) with the PIs parked at ``bits``."""
        from repro.leakage.circuit import leakage_for_states
        from repro.sim.vectors import bits_to_vector

        key = tuple(bits)

        def compute() -> float:
            vector = bits_to_vector(self.circuit, key)
            states = self.standby_states(vector)
            return leakage_for_states(self.circuit, states,
                                      self.leakage_table)

        return self._memo("leakage_for_vector", key, compute)

    def leakage_for_vector(self, pi_vector: Mapping[str, int]) -> float:
        """Standby leakage (amperes) for a PI name -> bit assignment."""
        from repro.sim.vectors import vector_to_bits

        return self.leakage_for_bits(vector_to_bits(self.circuit, pi_vector))

    def expected_leakage(self,
                         pi_one_prob: Optional[Mapping[str, float]] = None
                         ) -> float:
        """Probability-weighted circuit leakage, eq. (24)."""
        def compute() -> float:
            probs = self.probabilities(pi_one_prob)
            table = self.leakage_table
            total = 0.0
            for gate in self.circuit.gates.values():
                pin_probs = [probs[net] for net in gate.inputs]
                total += table.expected_leakage(gate.cell, pin_probs)
            return total

        return self._memo("expected_leakage", self._prob_key(pi_one_prob),
                          compute)

    # -- aging -------------------------------------------------------------

    def field_factor(self, vth0: float) -> float:
        """Memoized :meth:`NbtiCalibration.field_factor` (eq. 23).

        Keyed by ``vth0``: flows that repeatedly form HVT/LVT aging
        ratios (dual-Vth assignment inside the co-optimization loop)
        reuse the exponential instead of recomputing it per call.
        """
        return self._memo(
            "field_factor", float(vth0),
            lambda: self.model.calibration.field_factor(vth0))

    def aging_plan(self, pi_one_prob: Optional[Mapping[str, float]] = None):
        """The flattened per-PMOS shift plan of this (circuit, library).

        One :class:`~repro.sta.degradation.CompiledShiftPlan` per
        PI-probability setting — the lowering walks every cell's PMOS
        stack once; each ``engine="compiled"`` gate-shift query then
        reduces to a single vectorized
        :class:`~repro.core.aging_compiled.CompiledNbtiModel` call.
        """
        from repro.sta.degradation import CompiledShiftPlan

        return self._memo(
            "aging_plan", self._prob_key(pi_one_prob),
            lambda: CompiledShiftPlan(self.circuit, self.library,
                                      self.stress_duties(pi_one_prob)))

    def gate_shifts(self, profile: OperatingProfile, t_total: float, *,
                    standby: Any = None,
                    engine: str = "auto") -> Dict[str, float]:
        """Worst-PMOS dVth per gate, keyed by (profile, lifetime,
        standby, resolved engine).

        Uses the memoized stress duties, standby simulations, per-cell
        standby stress tables, and the flattened shift plan; repeated
        queries (internal-node bounding, lifetime sweeps, MLV candidate
        loops) only pay the kernel evaluation once per distinct key.
        The engine sits in the key so an explicit ``engine="scalar"``
        query really runs the oracle loop rather than reusing a
        compiled entry (the two are bit-identical, but differential
        tests must not short-circuit through the cache).
        """
        from repro.sta.degradation import ALL_ZERO

        if engine not in ("auto", "compiled", "scalar"):
            raise ValueError(f"engine must be 'auto', 'compiled' or "
                             f"'scalar', got {engine!r}")
        if standby is None:
            standby = ALL_ZERO
        resolved = "compiled" if engine == "auto" else engine
        key = (profile, float(t_total), self.standby_key(standby), resolved)
        return self._memo(
            "gate_shifts", key,
            lambda: self.analyzer.gate_shifts(
                self.circuit, profile, t_total, standby=standby,
                context=self, engine=resolved))

    def gate_shift_vector(self, profile: OperatingProfile, t_total: float, *,
                          standby: Any = None,
                          engine: str = "auto") -> "np.ndarray":
        """:meth:`gate_shifts` as a read-only ``(n_gates,)`` float64 array.

        Rows follow the compiled kernel's topological gate axis
        (``compiled_timing().gate_names``), so array-native flows
        (batched Monte-Carlo scenarios, lifetime grids) consume the
        memoized shifts without a per-gate dict walk.  Keyed exactly
        like ``gate_shifts``; entries equal the dict's floats.
        """
        from repro.sta.degradation import ALL_ZERO

        if engine not in ("auto", "compiled", "scalar"):
            raise ValueError(f"engine must be 'auto', 'compiled' or "
                             f"'scalar', got {engine!r}")
        if standby is None:
            standby = ALL_ZERO
        resolved = "compiled" if engine == "auto" else engine
        key = (profile, float(t_total), self.standby_key(standby), resolved)

        def compute():
            vec = self.compiled_timing().gate_vector(
                self.gate_shifts(profile, t_total, standby=standby,
                                 engine=engine),
                0.0, batch=False)
            vec.setflags(write=False)
            return vec

        return self._memo("gate_shift_vectors", key, compute)

    def aged_timing(self, profile: OperatingProfile, t_total: float, *,
                    standby: Any = None, supply_drop: float = 0.0):
        """Fresh + aged STA through the memoized substrate."""
        from repro.sta.degradation import ALL_ZERO

        if standby is None:
            standby = ALL_ZERO
        return self.analyzer.aged_timing(
            self.circuit, profile, t_total, standby=standby,
            supply_drop=supply_drop, context=self)

    def aged_delays(self, profile: OperatingProfile, t_total: float, *,
                    standby: Any = None, supply_drop: float = 0.0):
        """Fresh/aged delay summary with no per-net dict assembly.

        Same floats as the matching :meth:`aged_timing` accessors, but
        both STA passes stay on ndarrays (timing surfaces over the
        compiled kernel) — the scale path for 10^5-gate circuits.
        """
        from repro.sta.degradation import ALL_ZERO

        if standby is None:
            standby = ALL_ZERO
        return self.analyzer.aged_delays(
            self.circuit, profile, t_total, standby=standby,
            supply_drop=supply_drop, context=self)

    def __repr__(self) -> str:
        return (f"AnalysisContext({self.circuit.name!r}, "
                f"cells={len(self.library)}, "
                f"hits={self.stats.hits()}, misses={self.stats.misses()})")
