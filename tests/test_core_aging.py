"""Tests for temperature transformation, calibration, and the NbtiModel.

These encode the paper's headline model behaviours: the Fig. 8 anchors,
the Table 1 sign structure, and the Fig. 3/4 monotonicities.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import BOLTZMANN_EV, TEN_YEARS
from repro.core import (
    BEST_CASE_DEVICE,
    DEFAULT_CALIBRATION,
    DEFAULT_MODEL,
    WORST_CASE_DEVICE,
    DeviceStress,
    ModeTimes,
    NbtiModel,
    OperatingProfile,
    calibrate_from_anchors,
    diffusivity_ratio,
    equivalent_duty,
    equivalent_times,
)


class TestDiffusivityRatio:
    def test_identity(self):
        assert diffusivity_ratio(400.0, 400.0, 0.49) == 1.0

    def test_cold_below_one(self):
        assert diffusivity_ratio(330.0, 400.0, 0.49) < 1.0

    def test_arrhenius_value(self):
        expected = math.exp(-(0.49 / BOLTZMANN_EV) * (1 / 330.0 - 1 / 400.0))
        assert diffusivity_ratio(330.0, 400.0, 0.49) == pytest.approx(expected)

    def test_zero_activation_is_flat(self):
        assert diffusivity_ratio(330.0, 400.0, 0.0) == 1.0

    def test_guards(self):
        with pytest.raises(ValueError):
            diffusivity_ratio(-1.0, 400.0, 0.49)
        with pytest.raises(ValueError):
            diffusivity_ratio(330.0, 400.0, -0.1)


class TestEquivalentTimes:
    def test_eq17_standby_stress_shrinks(self):
        times = ModeTimes(stress_active=0.0, recovery_active=0.5,
                          stress_standby=0.5, recovery_standby=0.0)
        t_s, t_r = equivalent_times(times, 400.0, 330.0, 0.49)
        ratio = diffusivity_ratio(330.0, 400.0, 0.49)
        assert t_s == pytest.approx(0.5 * ratio)
        assert t_r == pytest.approx(0.5)

    def test_recovery_unscaled_by_default(self):
        times = ModeTimes(stress_active=0.2, recovery_active=0.0,
                          stress_standby=0.0, recovery_standby=0.8)
        t_s, t_r = equivalent_times(times, 400.0, 330.0, 0.49)
        assert t_r == pytest.approx(0.8)

    def test_recovery_scaled_in_ablation_mode(self):
        times = ModeTimes(stress_active=0.2, recovery_active=0.0,
                          stress_standby=0.0, recovery_standby=0.8)
        _, t_r = equivalent_times(times, 400.0, 330.0, 0.49, scale_recovery=True)
        assert t_r == pytest.approx(0.8 * diffusivity_ratio(330.0, 400.0, 0.49))

    def test_isothermal_identity(self):
        times = ModeTimes(stress_active=0.25, recovery_active=0.25,
                          stress_standby=0.25, recovery_standby=0.25)
        t_s, t_r = equivalent_times(times, 400.0, 400.0, 0.49)
        assert t_s == pytest.approx(0.5)
        assert t_r == pytest.approx(0.5)

    def test_duty_eqs_18_19(self):
        times = ModeTimes(stress_active=0.3, recovery_active=0.1,
                          stress_standby=0.0, recovery_standby=0.6)
        c_eq, tau_eq = equivalent_duty(times, 400.0, 330.0, 0.49)
        assert tau_eq == pytest.approx(1.0)
        assert c_eq == pytest.approx(0.3)

    def test_negative_mode_times_rejected(self):
        with pytest.raises(ValueError):
            ModeTimes(-0.1, 0.5, 0.3, 0.3)

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            ModeTimes(0.0, 0.0, 0.0, 0.0)


class TestOperatingProfile:
    def test_from_ras(self):
        assert OperatingProfile.from_ras("1:9").active_fraction == pytest.approx(0.1)
        assert OperatingProfile.from_ras("9/1").active_fraction == pytest.approx(0.9)
        assert OperatingProfile.from_ras("1:1").active_fraction == pytest.approx(0.5)

    def test_ras_label_roundtrip(self):
        for ras in ("1:9", "1:5", "1:1", "5:1", "9:1"):
            assert OperatingProfile.from_ras(ras).ras_label() == ras

    def test_bad_ras(self):
        with pytest.raises(ValueError):
            OperatingProfile.from_ras("fast:slow")
        with pytest.raises(ValueError):
            OperatingProfile.from_ras("0:0")

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingProfile(active_fraction=1.5)
        with pytest.raises(ValueError):
            OperatingProfile(active_fraction=0.5, t_active=-10)
        with pytest.raises(ValueError):
            OperatingProfile(active_fraction=0.5, period=0.0)

    def test_device_stress_validation(self):
        with pytest.raises(ValueError):
            DeviceStress(active_stress_duty=1.2, standby_stressed=True)


class TestCalibrationAnchors:
    """The model must hit the paper's Fig. 8 endpoints exactly."""

    def test_high_anchor(self):
        p = OperatingProfile.from_ras("9:1")
        dv = DEFAULT_MODEL.sleep_transistor_shift(p, TEN_YEARS, vth0=0.20)
        assert dv == pytest.approx(30.3e-3, rel=1e-6)

    def test_low_anchor(self):
        p = OperatingProfile.from_ras("1:9")
        dv = DEFAULT_MODEL.sleep_transistor_shift(p, TEN_YEARS, vth0=0.40)
        assert dv == pytest.approx(6.7e-3, rel=1e-6)

    def test_dc_magnitude_at_nominal_vth(self):
        # ~30 mV over 10 years of DC stress at 400 K for the 220 mV
        # library device: the right magnitude band for 90 nm NBTI.
        dv = DEFAULT_MODEL.delta_vth_dc(TEN_YEARS, 400.0, vth0=0.22)
        assert 20e-3 < dv < 45e-3

    def test_anchor_solver_guards(self):
        with pytest.raises(ValueError, match="distinct"):
            calibrate_from_anchors(anchor_high=(0.2, 0.9, 0.03),
                                   anchor_low=(0.2, 0.1, 0.007))

    def test_field_factor_monotone_in_vth(self):
        cal = DEFAULT_CALIBRATION
        factors = [cal.field_factor(v) for v in (0.15, 0.2, 0.3, 0.4)]
        assert factors == sorted(factors, reverse=True)

    def test_field_factor_range_check(self):
        with pytest.raises(ValueError):
            DEFAULT_CALIBRATION.field_factor(1.2)

    def test_temperature_factor_below_one_when_cold(self):
        assert DEFAULT_CALIBRATION.temperature_factor(330.0) < 1.0
        assert DEFAULT_CALIBRATION.temperature_factor(400.0) == pytest.approx(1.0)


class TestModelBehaviour:
    MODEL = DEFAULT_MODEL

    def test_fig1_ac_below_dc(self):
        p = OperatingProfile(active_fraction=1.0, t_active=400.0)
        device = DeviceStress(active_stress_duty=0.5, standby_stressed=True)
        ac = self.MODEL.delta_vth(p, device, TEN_YEARS, 0.22)
        dc = self.MODEL.delta_vth_dc(TEN_YEARS, 400.0, 0.22)
        assert 0 < ac < dc

    def test_fig3_worst_case_grows_with_standby_temp(self):
        cold = OperatingProfile.from_ras("1:5", t_standby=330.0)
        hot = OperatingProfile.from_ras("1:5", t_standby=400.0)
        assert (self.MODEL.worst_case_shift(hot, TEN_YEARS, 0.22)
                > self.MODEL.worst_case_shift(cold, TEN_YEARS, 0.22))

    def test_fig4_monotone_in_t_standby(self):
        shifts = []
        for tst in (330.0, 350.0, 370.0, 400.0):
            p = OperatingProfile.from_ras("1:5", t_standby=tst)
            shifts.append(self.MODEL.worst_case_shift(p, TEN_YEARS, 0.22))
        assert shifts == sorted(shifts)

    def test_table1_sign_structure(self):
        """dVth vs standby fraction: rises at T_st=400, falls at 330,
        nearly flat around 370 — the paper's central observation."""
        def grid(tst):
            out = []
            for ras in ("9:1", "1:1", "1:9"):
                p = OperatingProfile.from_ras(ras, t_standby=tst)
                out.append(self.MODEL.worst_case_shift(p, TEN_YEARS, 0.22))
            return out
        hot = grid(400.0)
        assert hot[0] < hot[1] < hot[2]
        cold = grid(330.0)
        assert cold[0] > cold[1] > cold[2]
        mid = grid(370.0)
        spread = (max(mid) - min(mid)) / max(mid)
        assert spread < 0.08

    def test_table1_gap_scale_at_1_9(self):
        """The 330 K vs 400 K gap at RAS = 1:9 is ~10 mV-scale."""
        hot = OperatingProfile.from_ras("1:9", t_standby=400.0)
        cold = OperatingProfile.from_ras("1:9", t_standby=330.0)
        gap = (self.MODEL.worst_case_shift(hot, TEN_YEARS, 0.22)
               - self.MODEL.worst_case_shift(cold, TEN_YEARS, 0.22))
        assert 5e-3 < gap < 20e-3

    def test_best_case_independent_of_standby_temperature(self):
        """Recovery is temperature-insensitive, so the best case (parked
        at 1) must not move with T_standby."""
        shifts = []
        for tst in (330.0, 370.0, 400.0):
            p = OperatingProfile.from_ras("1:9", t_standby=tst)
            shifts.append(self.MODEL.best_case_shift(p, TEN_YEARS, 0.22))
        assert max(shifts) - min(shifts) < 1e-12

    def test_best_below_worst(self):
        p = OperatingProfile.from_ras("1:9", t_standby=330.0)
        assert (self.MODEL.best_case_shift(p, TEN_YEARS, 0.22)
                < self.MODEL.worst_case_shift(p, TEN_YEARS, 0.22))

    def test_ablation_scaled_recovery_changes_best_case(self):
        ablation = NbtiModel(scale_recovery=True)
        p_cold = OperatingProfile.from_ras("1:9", t_standby=330.0)
        p_hot = OperatingProfile.from_ras("1:9", t_standby=400.0)
        cold = ablation.best_case_shift(p_cold, TEN_YEARS, 0.22)
        hot = ablation.best_case_shift(p_hot, TEN_YEARS, 0.22)
        assert cold != pytest.approx(hot)

    def test_no_stress_no_shift(self):
        p = OperatingProfile.from_ras("1:1")
        device = DeviceStress(active_stress_duty=0.0, standby_stressed=False)
        assert self.MODEL.delta_vth(p, device, TEN_YEARS, 0.22) == 0.0

    def test_series_matches_scalar(self):
        p = OperatingProfile.from_ras("1:5")
        times = [1e6, 1e7, 1e8]
        series = self.MODEL.delta_vth_series(p, WORST_CASE_DEVICE, times, 0.22)
        for t, dv in zip(times, series):
            assert dv == pytest.approx(self.MODEL.delta_vth(p, WORST_CASE_DEVICE, t, 0.22))

    def test_recursive_approaches_closed_form(self):
        p = OperatingProfile.from_ras("1:1", period=3600.0)
        seq = self.MODEL.delta_vth_recursive(p, WORST_CASE_DEVICE, 5000, 0.22)
        closed = self.MODEL.delta_vth(p, WORST_CASE_DEVICE, 5000 * 3600.0, 0.22)
        assert seq[-1] == pytest.approx(closed, rel=0.01)

    def test_negative_time_rejected(self):
        p = OperatingProfile.from_ras("1:1")
        with pytest.raises(ValueError):
            self.MODEL.delta_vth(p, WORST_CASE_DEVICE, -1.0)
        with pytest.raises(ValueError):
            self.MODEL.delta_vth_dc(-1.0, 400.0)

    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=330.0, max_value=400.0))
    @settings(max_examples=40, deadline=None)
    def test_property_shift_positive_and_bounded_by_dc(self, frac, tst):
        p = OperatingProfile(active_fraction=frac, t_standby=tst)
        dv = self.MODEL.worst_case_shift(p, TEN_YEARS, 0.22)
        dc = self.MODEL.delta_vth_dc(TEN_YEARS, 400.0, 0.22)
        assert 0.0 < dv <= dc * (1 + 1e-9)

    @given(st.floats(min_value=1e3, max_value=3.15e8))
    @settings(max_examples=40, deadline=None)
    def test_property_monotone_in_time(self, t):
        p = OperatingProfile.from_ras("1:5")
        assert (self.MODEL.delta_vth(p, WORST_CASE_DEVICE, t * 1.1, 0.22)
                >= self.MODEL.delta_vth(p, WORST_CASE_DEVICE, t, 0.22))
