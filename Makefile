# Convenience targets mirroring the CI jobs (see .github/workflows/ci.yml).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench lint all

# Tier-1: the full unit/integration suite (ROADMAP.md gate).
test:
	$(PYTHON) -m pytest -x -q

# The experiment harness: paper tables/figures + extension studies.
# Needs pytest-benchmark; -s shows the paper-style tables.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

lint:
	ruff check src tests benchmarks examples

all: test bench
