"""Table 3 — impact of the IVC technique on circuit performance degradation.

Paper setting: RAS = 1:5, T_standby = 330 K, 10-year horizon; the MLV
set comes from the Fig. 7 probability-based search with the leakage
window at 4 %.  Published structure:

* the minimized degradation with IVC is a few percent of the circuit
  delay (paper average ~4.3 %);
* the spread between different MLVs ("MLV diff") is tiny — ~0.14 % of
  the original delay — i.e. IVC is *not* an effective NBTI mitigation
  knob at cool standby, one of the paper's main conclusions;
* every MLV beats the all-internal-nodes-0 worst case.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.parallel import run_co_optimization_sweep

CIRCUITS = ("c432", "c499", "c880", "c1355")
PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


def run_table3(max_workers=None):
    sweep = run_co_optimization_sweep(
        CIRCUITS, PROFILE, TEN_YEARS, n_vectors=48, max_set_size=6,
        seed=17, max_workers=max_workers)
    return [{
        "name": row.name,
        "fresh_delay": row.fresh_delay,
        "min_degradation": row.min_degradation,
        "mlv_diff": row.mlv_diff,
        "worst_degradation": row.worst_degradation,
        "leakage_reduction": row.leakage_reduction,
        "set_size": row.set_size,
    } for row in sweep]


def check(rows):
    for row in rows:
        # Minimized degradation is a few percent (paper avg ~4.3 %).
        assert 0.01 < row["min_degradation"] < 0.10, row["name"]
        # MLV diff is far smaller than the degradation itself
        # (paper: ~0.14 % of delay).
        assert row["mlv_diff"] < 0.02, row["name"]
        assert row["mlv_diff"] < row["min_degradation"], row["name"]
        # IVC beats the worst bounding case.
        assert row["min_degradation"] <= row["worst_degradation"] + 1e-12
    mean_deg = sum(r["min_degradation"] for r in rows) / len(rows)
    assert 0.02 < mean_deg < 0.08  # paper average: 4.3 %


def report(rows):
    printable = [
        [r["name"], f"{r['fresh_delay'] * 1e9:7.4f}",
         f"{r['min_degradation'] * 100:5.2f}",
         f"{r['mlv_diff'] * 100:6.3f}",
         f"{r['worst_degradation'] * 100:5.2f}",
         f"{r['leakage_reduction'] * 100:5.2f}",
         r["set_size"]]
        for r in rows
    ]
    emit("Table 3 — IVC impact (RAS 1:5, T_standby 330 K, 10 years)",
         ["circuit", "delay (ns)", "min dDelay (%)", "MLV diff (%)",
          "worst-case (%)", "leak saved (%)", "|MLV set|"],
         printable)
    mean_deg = sum(r["min_degradation"] for r in rows) / len(rows) * 100
    print(f"average minimized degradation: {mean_deg:.2f} % "
          "(paper: ~4.3 %)")


def test_table3_ivc(run_once):
    rows = run_once(run_table3)
    check(rows)
    # The parallel sweep must be byte-identical to the serial path:
    # field-for-field float equality across all four circuits.  Force a
    # real process pool (max_workers=2) even on single-CPU hosts, where
    # the default degrades to the serial loop.
    pooled = run_table3(max_workers=2)
    serial = run_table3(max_workers=1)
    assert rows == serial == pooled
    report(rows)


if __name__ == "__main__":
    r = run_table3()
    check(r)
    report(r)
