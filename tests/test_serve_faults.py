"""Fault-injection tests: the service under kills, crashes, restarts.

The hardening gate of the serve PR: SIGKILLed workers cost one attempt
and never hang the queue; exhausted retry budgets end in ``failed``
with a structured error; a restarted server resumes queued and
orphaned-running jobs from the store without recomputing completed
results; SIGTERM drains requeue in-flight work and exit 0.

Jobs here use the ``fault`` hook (honored only under
``allow_faults=True``): ``{"delay": s}`` gives SIGKILL a deterministic
window, ``{"exit": code}`` is a silent worker death, ``{"raise": msg}``
an analysis exception.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.artifacts import ArtifactStore
from repro.serve import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    AgeScenario,
    AnalysisService,
    JobQueue,
    JobRecord,
    ServeConfig,
    new_job_id,
)

def _service(tmp_path, **overrides):
    defaults = dict(max_workers=2, timeout_s=60.0, max_retries=1,
                    backoff_s=0.0, drain_grace_s=0.2,
                    poll_interval_s=0.01, allow_faults=True)
    defaults.update(overrides)
    service = AnalysisService(ArtifactStore(tmp_path / "store"),
                              ServeConfig(**defaults))
    service.start()
    return service


def _wait(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _wait_running_pid(service, job_id, timeout=30.0):
    """Block until the job is RUNNING with a live worker pid."""
    assert _wait(lambda: (service.queue.get(job_id).state == RUNNING
                          and service.queue.get(job_id).pid is not None),
                 timeout), f"job {job_id} never reached RUNNING with a pid"
    return service.queue.get(job_id).pid


class TestWorkerSigkill:
    def test_sigkill_retries_then_fails_structured(self, tmp_path):
        service = _service(tmp_path, max_retries=1)
        try:
            record = service.submit("c17", AgeScenario(),
                                    fault={"delay": 60})
            # Kill attempt 1; the retry re-claims faster than any
            # state poll could observe QUEUED, so wait for the new
            # attempt's worker pid instead.
            first_pid = _wait_running_pid(service, record.job_id)
            os.kill(first_pid, signal.SIGKILL)
            assert _wait(lambda: (lambda r: r.state == RUNNING
                                  and r.pid not in (None, first_pid))(
                service.queue.get(record.job_id)))
            retried = service.queue.get(record.job_id)
            assert retried.attempts == 2
            assert retried.last_error["type"] == "worker-crashed"
            # Kill attempt 2: the retry budget (max_retries=1) is spent.
            os.kill(retried.pid, signal.SIGKILL)
            assert _wait(lambda: service.queue.get(
                record.job_id).state == FAILED)
            final = service.queue.get(record.job_id)
            assert final.attempts == 2
            assert final.error["type"] == "worker-crashed"
            assert final.error["signal"] == signal.SIGKILL
            assert final.error["attempts"] == 2
            assert "message" in final.error
        finally:
            service.stop(drain=False)

    def test_queue_drains_past_a_killed_worker(self, tmp_path):
        service = _service(tmp_path, max_workers=1, max_retries=0)
        try:
            doomed = service.submit("c17", AgeScenario(),
                                    fault={"delay": 60})
            healthy = service.submit("c17", AgeScenario(years=5.0))
            pid = _wait_running_pid(service, doomed.job_id)
            os.kill(pid, signal.SIGKILL)
            assert _wait(lambda: service.queue.get(
                doomed.job_id).state == FAILED)
            assert _wait(lambda: service.queue.get(
                healthy.job_id).state == DONE)
            _, numbers = service.result(healthy.job_id)
            assert numbers is not None
        finally:
            service.stop(drain=False)

    def test_silent_worker_death_is_structured(self, tmp_path):
        service = _service(tmp_path, max_retries=0)
        try:
            record = service.submit("c17", AgeScenario(),
                                    fault={"exit": 3})
            assert _wait(lambda: service.queue.get(
                record.job_id).state == FAILED)
            error = service.queue.get(record.job_id).error
            assert error["type"] == "worker-crashed"
            assert error["exitcode"] == 3
        finally:
            service.stop(drain=False)

    def test_analysis_exception_is_structured(self, tmp_path):
        service = _service(tmp_path, max_retries=0)
        try:
            record = service.submit("c17", AgeScenario(),
                                    fault={"raise": "injected boom"})
            assert _wait(lambda: service.queue.get(
                record.job_id).state == FAILED)
            error = service.queue.get(record.job_id).error
            assert error["type"] == "analysis-error"
            assert "injected boom" in error["message"]
        finally:
            service.stop(drain=False)

    def test_timeout_kills_and_fails(self, tmp_path):
        service = _service(tmp_path, max_retries=0)
        try:
            record = service.submit("c17", AgeScenario(),
                                    fault={"delay": 60}, timeout_s=0.3)
            assert _wait(lambda: service.queue.get(
                record.job_id).state == FAILED)
            error = service.queue.get(record.job_id).error
            assert error["type"] == "timeout"
        finally:
            service.stop(drain=False)


class TestRestartRecovery:
    def _seed_record(self, store, circuit_fp, scenario, state,
                     attempts=0):
        record = JobRecord(
            job_id=new_job_id(), circuit="c17", circuit_name="c17",
            circuit_fp=circuit_fp, scenario=scenario,
            scenario_key=scenario.key(), state=state, attempts=attempts)
        store.save_job(record.job_id, record.to_dict())
        return record

    def test_restart_recovers_without_recomputing(self, tmp_path):
        # Server #1 completes one job, leaves one queued and one
        # orphaned-running, then dies without cleanup.
        service1 = _service(tmp_path)
        done_job = service1.submit("c17", AgeScenario())
        assert _wait(lambda: service1.queue.get(
            done_job.job_id).state == DONE)
        service1.stop(drain=False)

        store = ArtifactStore(tmp_path / "store")
        done_before = store.load_job(done_job.job_id)
        result_path_mtimes = {
            p: p.stat().st_mtime_ns
            for p in (tmp_path / "store" / "results").rglob("*.json")}
        assert result_path_mtimes  # the done job has a stored result

        queued = self._seed_record(store, done_job.circuit_fp,
                                   AgeScenario(years=4.0), QUEUED)
        orphan = self._seed_record(store, done_job.circuit_fp,
                                   AgeScenario(years=6.0), RUNNING,
                                   attempts=1)

        # Server #2 over the same store.
        service2 = _service(tmp_path)
        try:
            counts = {r.job_id: r for r in service2.queue.jobs()}
            assert set(counts) == {done_job.job_id, queued.job_id,
                                   orphan.job_id}
            recovered = service2.queue.get(orphan.job_id)
            assert recovered.last_error["type"] == "orphaned"
            assert recovered.attempts == 1  # preserved, not reset

            assert _wait(lambda: service2.queue.get(
                queued.job_id).state == DONE)
            assert _wait(lambda: service2.queue.get(
                orphan.job_id).state == DONE)
            # The orphan burned one attempt before the crash.
            assert service2.queue.get(orphan.job_id).attempts == 2

            # The completed job was neither recomputed nor rewritten.
            assert store.load_job(done_job.job_id) == done_before
            for path, mtime in result_path_mtimes.items():
                assert path.stat().st_mtime_ns == mtime
        finally:
            service2.stop(drain=False)

    def test_recover_counts_and_invalid_records(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        scenario = AgeScenario()
        self._seed_record(store, "fp0", scenario, QUEUED)
        self._seed_record(store, "fp1", AgeScenario(years=2.0), RUNNING)
        store.save_job("garbage0", {"schema": 999})
        queue = JobQueue(store)
        counts = queue.recover()
        assert counts == {"queued": 1, "recovered": 1, "terminal": 0,
                          "invalid": 1}
        assert queue.pending() == 2

    def test_done_without_result_is_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        queue = JobQueue(store)
        scenario = AgeScenario()
        record = JobRecord(
            job_id=new_job_id(), circuit="c17", circuit_name="c17",
            circuit_fp="fp-none", scenario=scenario,
            scenario_key=scenario.key())
        queue.submit(record)
        claimed = queue.claim()
        with pytest.raises(ValueError, match="no stored result"):
            queue.complete(claimed.job_id)
        # The record is still RUNNING on disk — consistent, resumable.
        on_disk = store.load_job(record.job_id)
        assert on_disk["state"] == RUNNING


class TestDrain:
    def test_in_process_drain_requeues_running(self, tmp_path):
        service = _service(tmp_path, drain_grace_s=0.1)
        record = service.submit("c17", AgeScenario(),
                                fault={"delay": 60})
        _wait_running_pid(service, record.job_id)
        service.stop(drain=True)
        after = service.queue.get(record.job_id)
        assert after.state == QUEUED
        assert after.last_error["type"] == "drained"
        # On-disk record agrees: a successor server would resume it.
        store = ArtifactStore(tmp_path / "store")
        assert store.load_job(record.job_id)["state"] == QUEUED

    def test_sigterm_subprocess_exits_zero(self, tmp_path):
        ready = tmp_path / "ready.json"
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(tmp_path / "store"),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            assert _wait(ready.exists, timeout=30.0)
            info = json.loads(ready.read_text())
            assert info["pid"] == proc.pid
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
            stderr = proc.stderr.read().decode()
            assert "draining" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
