"""Tests for STA and NBTI-aged timing."""

import pytest

from repro.constants import TEN_YEARS
from repro.core import NbtiModel, OperatingProfile
from repro.netlist import Circuit, Gate, iscas85
from repro.sim import constant_vector
from repro.sta import (
    ALL_ONE,
    ALL_ZERO,
    AgingAnalyzer,
    analyze,
    gate_loads,
    standby_net_states,
)
from repro.tech import PTM90


def chain(n=4):
    """An inverter chain i -> g1 -> ... -> gn."""
    gates = [Gate("g1", "INV", ["i"])]
    gates += [Gate(f"g{k}", "INV", [f"g{k-1}"]) for k in range(2, n + 1)]
    return Circuit("chain", ["i"], [f"g{n}"], gates)


def c17():
    return Circuit(
        "c17", ["1", "2", "3", "6", "7"], ["22", "23"],
        [
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


class TestLoads:
    def test_fanout_adds_load(self):
        c = c17()
        loads = gate_loads(c)
        # Gate 11 fans out to two NAND2 pins; gate 22 only drives a PO.
        assert loads["11"] > loads["22"] - 3.0e-15 + 0.0
        assert loads["22"] == pytest.approx(3.0e-15)

    def test_all_gates_have_positive_load(self):
        c = iscas85.load("c432")
        loads = gate_loads(c)
        assert all(v > 0 for v in loads.values())


class TestAnalyze:
    def test_chain_delay_accumulates(self):
        d2 = analyze(chain(2)).circuit_delay
        d4 = analyze(chain(4)).circuit_delay
        assert d4 > d2
        assert d4 == pytest.approx(2 * d2, rel=0.3)

    def test_arrival_monotone_along_path(self):
        c = c17()
        res = analyze(c)
        assert res.arrival["22"]["rise"] > res.arrival["16"]["rise"]
        assert res.arrival["16"]["rise"] > res.arrival["11"]["fall"] - 1e-18

    def test_worst_path_structure(self):
        res = analyze(c17())
        path = res.worst_path()
        # Starts at a PI, ends at the critical PO.
        assert path[0][0] in ("1", "2", "3", "6", "7")
        assert path[-1][0] == res.critical_output
        # Consecutive elements are connected.
        c = c17()
        for (a, _), (b, _) in zip(path, path[1:]):
            assert a in c.gates[b].inputs

    def test_critical_gates_subset(self):
        c = c17()
        res = analyze(c)
        assert set(res.critical_gates()) <= set(c.gates)
        assert res.critical_gates()

    def test_slack_zero_on_critical_path(self):
        res = analyze(c17())
        assert res.slack[res.critical_output] == pytest.approx(0.0, abs=1e-18)
        assert all(s >= -1e-15 for s in res.slack.values())

    def test_required_time_shifts_slack(self):
        c = c17()
        base = analyze(c)
        relaxed = analyze(c, required_time=base.circuit_delay * 2)
        assert (relaxed.slack[relaxed.critical_output]
                == pytest.approx(base.circuit_delay, rel=1e-6))

    def test_gates_with_slack_below(self):
        res = analyze(c17())
        critical = res.gates_with_slack_below(1e-15)
        assert set(res.critical_gates()) <= set(critical)

    def test_aging_slows_circuit(self):
        c = c17()
        fresh = analyze(c).circuit_delay
        shifts = {g: 0.03 for g in c.gates}
        aged = analyze(c, delta_vth=shifts).circuit_delay
        assert aged > fresh
        # Eq. 22 with uniform shifts: relative increase is exactly
        # alpha * dVth / (Vdd - Vth0).
        expected = PTM90.alpha * 0.03 / (PTM90.vdd - PTM90.pmos.vth0)
        assert (aged - fresh) / fresh == pytest.approx(expected, rel=1e-6)

    def test_per_edge_mode_ages_less_than_per_gate(self):
        c = chain(6)
        shifts = {g: 0.03 for g in c.gates}
        per_gate = analyze(c, delta_vth=shifts, aging_mode="per_gate")
        per_edge = analyze(c, delta_vth=shifts, aging_mode="per_edge")
        fresh = analyze(c).circuit_delay
        assert fresh < per_edge.circuit_delay < per_gate.circuit_delay

    def test_bad_aging_mode(self):
        with pytest.raises(ValueError, match="aging_mode"):
            analyze(c17(), aging_mode="magic")

    def test_supply_drop_slows_circuit(self):
        c = c17()
        assert (analyze(c, supply_drop=0.05).circuit_delay
                > analyze(c).circuit_delay)

    def test_realistic_delay_magnitude(self):
        # c432-scale circuits should land in the tens-of-ps to ns band.
        res = analyze(iscas85.load("c432"))
        assert 1e-12 < res.circuit_delay < 1e-8


class TestStandbyStates:
    def test_all_zero_and_one(self):
        c = c17()
        z = standby_net_states(c, ALL_ZERO)
        assert set(z.values()) == {0}
        o = standby_net_states(c, ALL_ONE)
        assert set(o.values()) == {1}

    def test_vector_simulated(self):
        c = c17()
        states = standby_net_states(c, constant_vector(c, 1))
        assert states["1"] == 1
        assert states["10"] == 0  # NAND(1,1)

    def test_unknown_sentinel(self):
        with pytest.raises(ValueError):
            standby_net_states(c17(), "all_x")


class TestAgingAnalyzer:
    AN = AgingAnalyzer()
    PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)

    def test_gate_shifts_positive(self):
        c = c17()
        shifts = self.AN.gate_shifts(c, self.PROFILE, TEN_YEARS)
        assert set(shifts) == set(c.gates)
        assert all(v > 0 for v in shifts.values())

    def test_all_zero_shifts_exceed_all_one(self):
        c = c17()
        worst = self.AN.gate_shifts(c, self.PROFILE, TEN_YEARS, standby=ALL_ZERO)
        best = self.AN.gate_shifts(c, self.PROFILE, TEN_YEARS, standby=ALL_ONE)
        for g in c.gates:
            assert worst[g] > best[g]

    def test_real_vector_between_bounds(self):
        c = c17()
        worst = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS, standby=ALL_ZERO)
        best = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS, standby=ALL_ONE)
        vec = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS,
                                  standby=constant_vector(c, 0))
        assert (best.aged_delay - 1e-18 <= vec.aged_delay
                <= worst.aged_delay + 1e-18)

    def test_aged_timing_result_properties(self):
        c = c17()
        res = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS)
        assert res.aged_delay > res.fresh_delay
        assert res.delay_increase == pytest.approx(res.aged_delay - res.fresh_delay)
        assert 0 < res.relative_degradation < 0.2
        assert res.max_shift > 0

    def test_degradation_grows_with_time(self):
        c = c17()
        early = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS / 100)
        late = self.AN.aged_timing(c, self.PROFILE, TEN_YEARS)
        assert late.relative_degradation > early.relative_degradation

    def test_table4_structure_on_c432(self):
        """Worst rises with T_standby, best is flat, potential grows —
        the paper's Table 4 on our c432 stand-in."""
        c = iscas85.load("c432")
        rows = {}
        for tst in (330.0, 400.0):
            p = OperatingProfile.from_ras("1:9", t_standby=tst)
            worst = self.AN.aged_timing(c, p, TEN_YEARS, standby=ALL_ZERO)
            best = self.AN.aged_timing(c, p, TEN_YEARS, standby=ALL_ONE)
            rows[tst] = (worst.relative_degradation, best.relative_degradation)
        assert rows[400.0][0] > rows[330.0][0]
        assert rows[400.0][1] == pytest.approx(rows[330.0][1], rel=1e-9)
        pot_330 = 1 - rows[330.0][1] / rows[330.0][0]
        pot_400 = 1 - rows[400.0][1] / rows[400.0][0]
        assert pot_400 > pot_330
        # Bands around the paper's numbers (4.05-7.35 % worst,
        # ~3.3 % best, 18->55 % potential).
        assert 0.02 < rows[330.0][0] < 0.06
        assert 0.05 < rows[400.0][0] < 0.10
        assert 0.10 < pot_330 < 0.30
        assert 0.40 < pot_400 < 0.70

    def test_circuit_degradation_below_device_degradation(self):
        """Fig. 5's message: circuit %delay < device %Vth shift."""
        c = iscas85.load("c432")
        p = OperatingProfile.from_ras("1:9", t_standby=330.0)
        res = self.AN.aged_timing(c, p, TEN_YEARS, standby=ALL_ZERO)
        vth_rel = res.max_shift / PTM90.pmos.vth0
        assert res.relative_degradation < vth_rel

    def test_custom_model_injection(self):
        an = AgingAnalyzer(model=NbtiModel(scale_recovery=True))
        c = c17()
        res = an.aged_timing(c, self.PROFILE, TEN_YEARS, standby=ALL_ONE)
        assert res.aged_delay > res.fresh_delay
