"""Task-set power profiles and mode-temperature derivation.

Reproduces the paper's Fig. 2 workload: "the processors temperature
varies in the range from 60 to 110 degree Centigrade" while "executing a
task set, which contains different tasks with random power profile
[that] ranges from 10 to 130 W" (Montecito-class task power 68-126 W).
The same machinery derives the steady-state T_active / T_standby pair
that parameterizes the NBTI model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.profiles import OperatingProfile
from repro.thermal.rc import ThermalRC, simulate_trace


@dataclass(frozen=True)
class Task:
    """One task: name, execution time (s), average power draw (W)."""

    name: str
    duration: float
    power: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"task {self.name}: duration must be positive")
        if self.power < 0:
            raise ValueError(f"task {self.name}: power must be non-negative")


def random_task_set(n_tasks: int = 20, seed: int = 0,
                    power_range: Tuple[float, float] = (10.0, 130.0),
                    duration_range: Tuple[float, float] = (0.05, 0.5),
                    ) -> List[Task]:
    """A seeded random task set in the paper's power band."""
    if n_tasks < 1:
        raise ValueError("need at least one task")
    lo, hi = power_range
    if not 0 <= lo < hi:
        raise ValueError("bad power range")
    rng = random.Random(seed)
    return [
        Task(name=f"task{k}", duration=rng.uniform(*duration_range),
             power=rng.uniform(lo, hi))
        for k in range(n_tasks)
    ]


def task_set_trace(tasks: Sequence[Task], rc: ThermalRC = ThermalRC(),
                   samples_per_phase: int = 20
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Temperature trace of running ``tasks`` back to back (Fig. 2)."""
    schedule = [(t.duration, t.power) for t in tasks]
    return simulate_trace(rc, schedule, samples_per_phase=samples_per_phase)


def mode_temperatures(active_power: float, standby_power: float,
                      rc: ThermalRC = ThermalRC()) -> Tuple[float, float]:
    """Steady-state (T_active, T_standby) for the two mode powers.

    The paper's canonical pair (400 K, 330 K) corresponds to roughly
    170 W and 4 W through the default network.
    """
    t_active = rc.steady_state(active_power)
    t_standby = rc.steady_state(standby_power)
    return t_active, t_standby


def profile_from_powers(active_fraction: float, active_power: float,
                        standby_power: float, rc: ThermalRC = ThermalRC(),
                        period: float = 1.0) -> OperatingProfile:
    """Build an :class:`OperatingProfile` from power levels instead of
    temperatures — the bridge from the thermal substrate into the NBTI
    model."""
    t_active, t_standby = mode_temperatures(active_power, standby_power, rc)
    return OperatingProfile(active_fraction=active_fraction,
                            t_active=t_active, t_standby=t_standby,
                            period=period)


def trace_statistics(temps: np.ndarray) -> dict:
    """Min/max/mean of a temperature trace in kelvin and Celsius."""
    if len(temps) == 0:
        raise ValueError("empty trace")
    return {
        "min_k": float(np.min(temps)),
        "max_k": float(np.max(temps)),
        "mean_k": float(np.mean(temps)),
        "min_c": float(np.min(temps)) - 273.15,
        "max_c": float(np.max(temps)) - 273.15,
        "mean_c": float(np.mean(temps)) - 273.15,
    }
