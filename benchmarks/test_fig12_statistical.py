"""Fig. 12 — C880 delay distribution under variation + NBTI.

Published structure: with process variation the delay is a distribution;
after 3 years of aging its lower 3-sigma bound already exceeds the fresh
upper 3-sigma bound, so "NBTI degradation is quite serious"; and per
[51] the aged variance is *smaller* than the fresh variance because
low-Vth (fast) devices age hardest.
"""

import numpy as np

from _common import emit
from repro.constants import TEN_YEARS, years
from repro.core import OperatingProfile
from repro.netlist import iscas85
from repro.variation import VariationModel, statistical_aging

TIMES = (0.0, years(3.0), TEN_YEARS)
LABELS = ("fresh", "3 years", "10 years")


def run_fig12():
    circuit = iscas85.load("c880")
    profile = OperatingProfile.from_ras("1:9", t_standby=400.0)
    return statistical_aging(circuit, profile, times=TIMES, n_samples=150,
                             variation=VariationModel(sigma_local=0.010),
                             seed=12)


def check(result):
    means = result.mean()
    assert means[0] < means[1] < means[2]
    # Fig. 12's anecdote: aged mu-3s > fresh mu+3s already at 3 years.
    assert result.aging_dominates_variation(fresh_index=0, aged_index=1)
    # [51]'s compensation: the spread shrinks with age.
    assert result.variance_compression(0, -1) < 1.0


def report(result):
    rows = []
    for k, label in enumerate(LABELS):
        rows.append([
            label,
            f"{result.mean()[k] * 1e9:8.5f}",
            f"{result.std()[k] * 1e12:6.3f}",
            f"{result.lower_3sigma()[k] * 1e9:8.5f}",
            f"{result.upper_3sigma()[k] * 1e9:8.5f}",
        ])
    emit("Fig. 12 — c880 delay distribution vs lifetime "
         "(150 Monte-Carlo dies, sigma(Vth) = 10 mV)",
         ["lifetime", "mean (ns)", "sigma (ps)", "mu-3s (ns)", "mu+3s (ns)"],
         rows)
    print(f"aged(3y) mu-3s > fresh mu+3s: "
          f"{result.aging_dominates_variation(0, 1)} "
          "(the paper's 3.599 ns vs 3.579 ns observation)")
    print(f"variance compression over 10 years: "
          f"{result.variance_compression(0, -1):.3f} (< 1 per [51])")


def test_fig12_statistical(run_once):
    result = run_once(run_fig12)
    check(result)
    report(result)


if __name__ == "__main__":
    r = run_fig12()
    check(r)
    report(r)
