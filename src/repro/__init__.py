"""repro — temperature-aware NBTI modeling and standby-leakage mitigation.

A full Python reproduction of Wang et al., "Temperature-aware NBTI
modeling and the impact of input vector control on performance
degradation" (DATE 2007; TDSC 2011 extended version), including every
substrate the paper depends on: PTM-90nm device models, a transistor-
level standard-cell library, an ISCAS85-profile netlist suite, logic
simulation and signal probabilities, static timing analysis, a lumped
thermal model, leakage tables with the stacking effect, input vector
control, sleep-transistor insertion, and statistical aging.

Quickstart::

    from repro import AnalysisPlatform, OperatingProfile, iscas85
    from repro.constants import TEN_YEARS

    platform = AnalysisPlatform()
    circuit = iscas85.load("c432")
    profile = OperatingProfile.from_ras("1:9", t_standby=330.0)
    report = platform.analyze_scenario(circuit, profile, TEN_YEARS)
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

import logging

from repro import constants, obs
from repro.cells import LeakageTable, Library, build_library
from repro.context import AnalysisContext, CacheStats
from repro.core import (
    DEFAULT_CALIBRATION,
    DEFAULT_MODEL,
    DeviceStress,
    NbtiCalibration,
    NbtiModel,
    OperatingProfile,
)
from repro.flow import AnalysisPlatform, assign_dual_vth
from repro.ivc import (
    compare_alternation,
    exhaustive_mlv_search,
    internal_node_potential,
    probability_based_mlv_search,
    select_mlv_for_nbti,
)
from repro.leakage import expected_leakage, leakage_for_vector
from repro.netlist import Circuit, Gate, iscas85, load_bench, parse_bench
from repro.sim import evaluate, propagate_probabilities
from repro.sleep import (
    SleepStyle,
    design_sleep_transistor,
    fig8_grid,
    fig9_grid,
    gated_aged_delay,
)
from repro.sta import ALL_ONE, ALL_ZERO, AgingAnalyzer, analyze
from repro.tech import PTM90, PTM90_HVT, PTM90_LP, Technology
from repro.thermal import ThermalRC, random_task_set, task_set_trace
from repro.variation import VariationModel, statistical_aging

# Library logging convention: modules log under the "repro" hierarchy;
# the null handler keeps imports silent until an application (or the
# CLI's -v flag) attaches a real one.
logging.getLogger("repro").addHandler(logging.NullHandler())

__version__ = "1.1.0"

__all__ = [
    "constants", "obs",
    "LeakageTable", "Library", "build_library",
    "AnalysisContext", "CacheStats",
    "DEFAULT_CALIBRATION", "DEFAULT_MODEL", "DeviceStress",
    "NbtiCalibration", "NbtiModel", "OperatingProfile",
    "AnalysisPlatform", "assign_dual_vth",
    "compare_alternation", "exhaustive_mlv_search",
    "internal_node_potential", "probability_based_mlv_search",
    "select_mlv_for_nbti",
    "expected_leakage", "leakage_for_vector",
    "Circuit", "Gate", "iscas85", "load_bench", "parse_bench",
    "evaluate", "propagate_probabilities",
    "SleepStyle", "design_sleep_transistor", "fig8_grid", "fig9_grid",
    "gated_aged_delay",
    "ALL_ONE", "ALL_ZERO", "AgingAnalyzer", "analyze",
    "PTM90", "PTM90_HVT", "PTM90_LP", "Technology",
    "ThermalRC", "random_task_set", "task_set_trace",
    "VariationModel", "statistical_aging",
    "__version__",
]
