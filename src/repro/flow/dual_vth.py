"""Dual-Vth assignment as an NBTI/leakage co-knob (extension A4).

Section 4.1 of the paper observes that a higher Vth means both less
leakage *and* less NBTI degradation (eq. 23), so "leakage reduction
techniques that adjust Vth ... may mitigate the circuit performance
degradation due to NBTI".  This module implements the classic greedy
slack-driven dual-Vth assignment [30] and evaluates exactly that joint
benefit.

High-Vth cells are modeled as the same topology with Vth0 raised by
``delta_vth_hvt``: delay scales by the alpha-power overdrive ratio,
subthreshold leakage drops exponentially, and aging shrinks through the
calibration's field factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.cells.library import Library
from repro.constants import TEN_YEARS, thermal_voltage
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sta.analysis import analyze
from repro.sta.degradation import ALL_ZERO, AgingAnalyzer
from repro.variation.statistical import FastAgedTimer


@dataclass(frozen=True)
class DualVthResult:
    """Outcome of a dual-Vth assignment.

    Attributes:
        hvt_gates: gates swapped to the high-Vth flavor.
        fresh_delay_lvt / fresh_delay_dual: unaged delays (s).
        aged_delay_lvt / aged_delay_dual: 10-year delays (s).
        leakage_factor: dual-Vth subthreshold leakage relative to
            all-LVT (< 1).
    """

    circuit_name: str
    hvt_gates: Set[str]
    n_gates: int
    fresh_delay_lvt: float
    fresh_delay_dual: float
    aged_delay_lvt: float
    aged_delay_dual: float
    leakage_factor: float

    @property
    def hvt_fraction(self) -> float:
        return len(self.hvt_gates) / self.n_gates if self.n_gates else 0.0

    @property
    def degradation_lvt(self) -> float:
        return self.aged_delay_lvt / self.fresh_delay_lvt - 1.0

    @property
    def degradation_dual(self) -> float:
        """Aging of the dual-Vth design relative to its own fresh delay."""
        return self.aged_delay_dual / self.fresh_delay_dual - 1.0


def hvt_delay_factor(delta_vth_hvt: float, library: Optional[Library] = None
                     ) -> float:
    """Fresh-delay penalty of an HVT swap: the alpha-power overdrive ratio."""
    library = library or default_library()
    tech = library.tech
    lo = tech.vdd - tech.pmos.vth0
    hi = tech.vdd - tech.pmos.vth0 - delta_vth_hvt
    if hi <= 0:
        raise ValueError("HVT offset exceeds the gate overdrive")
    return (lo / hi) ** tech.alpha


def hvt_leakage_factor(delta_vth_hvt: float, temperature: float = 400.0,
                       library: Optional[Library] = None) -> float:
    """Per-gate subthreshold leakage ratio of an HVT swap (< 1)."""
    library = library or default_library()
    n = library.tech.nmos.subthreshold_swing_factor
    return math.exp(-delta_vth_hvt / (n * thermal_voltage(temperature)))


def assign_dual_vth(circuit: Circuit, *, delta_vth_hvt: float = 0.10,
                    timing_budget: float = 0.0,
                    profile: Optional[OperatingProfile] = None,
                    lifetime: float = TEN_YEARS,
                    model: NbtiModel = DEFAULT_MODEL,
                    library: Optional[Library] = None,
                    context=None,
                    engine: str = "compiled") -> DualVthResult:
    """Greedy slack-driven dual-Vth assignment + joint evaluation.

    Gates are visited in decreasing slack order; each is swapped to HVT
    if the circuit still meets ``fresh_delay_lvt * (1 + timing_budget)``
    afterwards (checked with the fast incremental timer).

    Args:
        delta_vth_hvt: HVT offset above nominal Vth (the PTM90_HVT
            flavor's +100 mV by default).
        timing_budget: allowed fresh-delay increase (0 = no slowdown).
        profile: operating profile for the aging comparison (defaults to
            the paper's RAS = 1:9, T_standby = 330 K).
        context: shared :class:`~repro.context.AnalysisContext`; the
            base STA, gate loads, stress duties, and the compiled
            kernel come from its memo.
        engine: ``"compiled"`` (default) checks each HVT swap trial by
            re-timing only the swapped gate's fanout cone;
            ``"scalar"`` re-runs the full Python arrival walk per
            trial.  Both take identical swap decisions.
    """
    if engine not in ("compiled", "scalar"):
        raise ValueError(f"engine must be 'compiled' or 'scalar', "
                         f"got {engine!r}")
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    if context is not None and (context.circuit is not circuit
                                or context.library is not library):
        context = None
    profile = profile or OperatingProfile.from_ras("1:9", t_standby=330.0)
    factor = hvt_delay_factor(delta_vth_hvt, library)
    timer = FastAgedTimer(circuit, library, context=context, engine=engine)
    factors: Dict[str, float] = {}
    hvt: Set[str] = set()
    if engine == "compiled":
        # Array-native base STA: the fresh delay and the per-gate slack
        # ordering come off the timing surface (no TimingResult dict
        # assembly), and each HVT swap trial re-times only the swapped
        # gate's fanout cone (the factor has no load coupling).
        ct = timer.compiled
        surf = ct.surface()
        fresh_lvt = surf.circuit_delay
        budget_delay = fresh_lvt * (1.0 + timing_budget)
        gate_slack = surf.gate_slacks()
        gate_index = ct.gate_index
        order = sorted(circuit.gates,
                       key=lambda g: gate_slack[gate_index[g]], reverse=True)
        base_d = ct.base_delays()
        inc = ct.incremental(delays=base_d)
        for gate in order:
            if gate_slack[gate_index[gate]] <= 0:
                continue
            i = gate_index[gate]
            changes = {gate: (float(base_d[2 * i] * factor),
                              float(base_d[2 * i + 1] * factor))}
            if inc.trial(changes) <= budget_delay:
                hvt.add(gate)
                factors[gate] = factor
                inc.update(changes)
        fresh_dual = inc.circuit_delay
    else:
        base = analyze(circuit, library, context=context, engine="scalar")
        fresh_lvt = base.circuit_delay
        budget_delay = fresh_lvt * (1.0 + timing_budget)
        order = sorted(circuit.gates, key=lambda g: base.slack[g],
                       reverse=True)
        for gate in order:
            if base.slack[gate] <= 0:
                continue
            factors[gate] = factor
            if timer.circuit_delay(delay_factors=factors) <= budget_delay:
                hvt.add(gate)
            else:
                del factors[gate]
        fresh_dual = timer.circuit_delay(delay_factors=factors)

    # Aging comparison at the lifetime horizon (worst-case standby).
    analyzer = (context.analyzer
                if context is not None and context.model == model
                else AgingAnalyzer(library=library, model=model))
    shifts_lvt = analyzer.gate_shifts(circuit, profile, lifetime,
                                      standby=ALL_ZERO, context=context,
                                      engine=engine)
    vth0 = library.tech.pmos.vth0
    calibration = model.calibration
    if context is not None and context.model == model:
        # Hoisted through the context memo: co-optimization loops call
        # this flow repeatedly with the same Vth pair.
        hvt_scale = (context.field_factor(vth0 + delta_vth_hvt)
                     / context.field_factor(vth0))
    else:
        hvt_scale = (calibration.field_factor(vth0 + delta_vth_hvt)
                     / calibration.field_factor(vth0))
    shifts_dual = {g: dv * (hvt_scale if g in hvt else 1.0)
                   for g, dv in shifts_lvt.items()}
    aged_lvt = timer.circuit_delay(delta_vth=shifts_lvt)
    aged_dual = timer.circuit_delay(delta_vth=shifts_dual,
                                    delay_factors=factors)

    leak_ratio = hvt_leakage_factor(delta_vth_hvt, library=library)
    n = circuit.n_gates()
    leakage_factor = (len(hvt) * leak_ratio + (n - len(hvt))) / n if n else 1.0
    return DualVthResult(
        circuit_name=circuit.name,
        hvt_gates=hvt,
        n_gates=n,
        fresh_delay_lvt=fresh_lvt,
        fresh_delay_dual=fresh_dual,
        aged_delay_lvt=aged_lvt,
        aged_delay_dual=aged_dual,
        leakage_factor=leakage_factor,
    )
