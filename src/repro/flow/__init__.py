"""The Fig. 6 analysis/optimization platform and extensions (S12)."""

from repro.flow.platform import (
    AnalysisPlatform,
    CoOptimizationReport,
    ScenarioReport,
)
from repro.flow.dual_vth import (
    DualVthResult,
    assign_dual_vth,
    hvt_delay_factor,
    hvt_leakage_factor,
)
from repro.flow.sizing import SizingResult, SizingTimer, size_for_aging
from repro.flow.report import format_table, mv, ns, pct, ua
from repro.flow.parallel import (
    CoOptimizationJob,
    PotentialSweepJob,
    ShardedSweepResult,
    SweepRow,
    co_optimize_circuit,
    load_circuit,
    run_co_optimization_sweep,
    run_potential_sweep,
    run_sharded_co_optimization_sweep,
    run_sharded_sweep,
    run_sweep,
    shard_jobs,
)

__all__ = [
    "AnalysisPlatform", "CoOptimizationReport", "ScenarioReport",
    "DualVthResult", "assign_dual_vth", "hvt_delay_factor",
    "hvt_leakage_factor",
    "SizingResult", "SizingTimer", "size_for_aging",
    "format_table", "mv", "ns", "pct", "ua",
    "CoOptimizationJob", "PotentialSweepJob", "ShardedSweepResult",
    "SweepRow", "co_optimize_circuit", "load_circuit",
    "run_co_optimization_sweep", "run_potential_sweep",
    "run_sharded_co_optimization_sweep", "run_sharded_sweep",
    "run_sweep", "shard_jobs",
]
