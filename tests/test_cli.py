"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_circuit


class TestResolveCircuit:
    def test_iscas_name(self):
        assert resolve_circuit("c432").name == "c432"

    def test_packaged_name(self):
        c = resolve_circuit("c17")
        assert c.n_gates() == 6

    def test_bench_path(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        c = resolve_circuit(str(path))
        assert c.name == "mini"

    def test_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            resolve_circuit("c9999")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "c17"]) == 0
        out = capsys.readouterr().out
        assert "c17: 5 inputs, 2 outputs, 6 gates" in out
        assert "NAND2" in out

    def test_age_worst(self, capsys):
        assert main(["age", "c17", "--ras", "1:5", "--years", "10"]) == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "RAS 1:5" in out

    def test_age_best_below_worst(self, capsys):
        main(["age", "c17", "--t-standby", "400", "--standby", "worst"])
        worst = capsys.readouterr().out
        main(["age", "c17", "--t-standby", "400", "--standby", "best"])
        best = capsys.readouterr().out

        def deg(text):
            line = next(l for l in text.splitlines() if "degradation" in l)
            return float(line.split(":")[1].strip().rstrip("%"))

        assert deg(best) < deg(worst)

    def test_mlv(self, capsys):
        assert main(["mlv", "c17", "--vectors", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chosen MLV" in out
        assert "aged degradation" in out

    def test_sleep_header(self, capsys):
        assert main(["sleep", "c17", "--beta", "0.03", "--nbti-aware"]) == 0
        out = capsys.readouterr().out
        assert "header dVth" in out
        assert "NBTI-aware sizing" in out

    def test_sleep_footer_no_header_line(self, capsys):
        assert main(["sleep", "c17", "--style", "footer"]) == 0
        out = capsys.readouterr().out
        assert "header dVth" not in out

    def test_guardband(self, capsys):
        assert main(["guardband", "--t-standby", "400"]) == 0
        out = capsys.readouterr().out
        assert "delay margin" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "330 K" in out and "400 K" in out
        assert "9:1" in out and "1:9" in out

    def test_paths(self, capsys):
        assert main(["paths", "c17", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "longest paths" in out
        assert out.count("->") >= 3

    def test_paths_aged(self, capsys):
        main(["paths", "c17", "-k", "1"])
        fresh = capsys.readouterr().out
        main(["paths", "c17", "-k", "1", "--aged", "--t-standby", "400"])
        aged = capsys.readouterr().out

        def top_delay(text):
            row = text.splitlines()[3]
            return float(row.split("|")[1])

        assert top_delay(aged) > top_delay(fresh)

    def test_table4(self, capsys):
        assert main(["table4", "c17"]) == 0
        out = capsys.readouterr().out
        assert "potential" in out
        assert "330 K" in out and "400 K" in out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for cmd in ("info", "age", "mlv", "sleep", "guardband", "table1",
                    "paths", "table4"):
            assert cmd in help_text
