"""MLV alternation (extension A3, after Abella et al.'s Penelope [23]).

"Any given input would always degrade the same transistors, so they
preferred to alternate several inputs that degrade different PMOS
transistors; thus, the maximum degradation of any PMOS is reduced with
practically no cost."  Rotating a set of standby vectors turns each
device's standby stress into a *fraction* (handled natively by
:class:`repro.core.profiles.DeviceStress`), flattening the worst-case
shift at the price of stressing more devices a little.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.vectors import bits_to_vector
from repro.sta.degradation import AgingAnalyzer


@dataclass(frozen=True)
class AlternationComparison:
    """Single-MLV vs rotating-MLV aged timing for one circuit.

    Attributes:
        single_aged_delay: best single vector's aged circuit delay (s).
        alternating_aged_delay: aged delay when the whole set rotates.
        single_max_shift / alternating_max_shift: worst per-gate dVth.
    """

    circuit_name: str
    fresh_delay: float
    single_aged_delay: float
    alternating_aged_delay: float
    single_max_shift: float
    alternating_max_shift: float

    @property
    def delay_benefit(self) -> float:
        """Aged-delay reduction from alternation, relative to fresh."""
        return ((self.single_aged_delay - self.alternating_aged_delay)
                / self.fresh_delay)

    @property
    def shift_benefit(self) -> float:
        """Relative reduction in the worst device shift."""
        if self.single_max_shift == 0:
            return 0.0
        return 1.0 - self.alternating_max_shift / self.single_max_shift


def compare_alternation(circuit: Circuit, vectors: Sequence[Tuple[int, ...]],
                        profile: OperatingProfile,
                        t_total: float = TEN_YEARS,
                        analyzer: Optional[AgingAnalyzer] = None
                        ) -> AlternationComparison:
    """Compare the best single standby vector against rotating them all.

    Args:
        vectors: candidate standby vectors as bit tuples (e.g. an MLV
            set from :mod:`repro.ivc.mlv`).
    """
    if not vectors:
        raise ValueError("need at least one standby vector")
    analyzer = analyzer or AgingAnalyzer()
    singles = []
    for bits in vectors:
        res = analyzer.aged_timing(circuit, profile, t_total,
                                   standby=bits_to_vector(circuit, bits))
        singles.append(res)
    best_single = min(singles, key=lambda r: r.aged_delay)
    rotating = analyzer.aged_timing(
        circuit, profile, t_total,
        standby=[bits_to_vector(circuit, bits) for bits in vectors])
    return AlternationComparison(
        circuit_name=circuit.name,
        fresh_delay=best_single.fresh_delay,
        single_aged_delay=best_single.aged_delay,
        alternating_aged_delay=rotating.aged_delay,
        single_max_shift=best_single.max_shift,
        alternating_max_shift=rotating.max_shift,
    )
