"""Extension — BBSTI gate clustering policies (Kao [37], Anis [38]).

The BBSTI literature the paper surveys clusters gates so that one
shared sleep transistor serves each block.  Two effects compete:

* splitting a block forfeits current sharing (total device area grows
  with cluster count), while
* *temporal* mutual exclusion — mixing logic depths inside each block —
  keeps every block's simultaneous-switching peak low.

This experiment prices both policies across cluster counts with the
sampled peak-current estimator.
"""

from _common import emit
from repro.netlist import iscas85
from repro.sleep import clustered_design

CIRCUIT = "c880"
COUNTS = (1, 2, 4, 8)
BETA = 0.05


def run_ext():
    circuit = iscas85.load(CIRCUIT)
    rows = []
    for k in COUNTS:
        level = clustered_design(circuit, k, BETA, policy="level", seed=3)
        stripe = clustered_design(circuit, k, BETA, policy="stripe", seed=3)
        rows.append({
            "k": k,
            "level": level.total_aspect,
            "stripe": stripe.total_aspect,
        })
    return rows


def check(rows):
    base = rows[0]
    assert base["level"] == base["stripe"]  # one block: same partition
    for r in rows[1:]:
        # Splitting costs area under either policy...
        assert r["level"] >= base["level"] * 0.99
        assert r["stripe"] >= base["stripe"] * 0.99
        # ...but temporal interleaving is consistently cheaper.
        assert r["stripe"] < r["level"]


def report(rows):
    printable = [
        [r["k"], f"{r['level']:8.0f}", f"{r['stripe']:8.0f}",
         f"{(1 - r['stripe'] / r['level']) * 100:5.1f}"]
        for r in rows
    ]
    emit(f"Extension — {CIRCUIT} BBSTI total ST (W/L) vs clustering "
         f"(beta = {BETA:.0%})",
         ["clusters", "level bands", "striped (temporal mix)",
          "stripe saving (%)"],
         printable)
    print("Mixing logic depths inside each block (mutual exclusion in "
          "time, Kao [37])\nkeeps per-block switching peaks low: striping "
          "recovers much of the area that\nsplitting the shared device "
          "forfeits.")


def test_ext_clustering(run_once):
    rows = run_once(run_ext)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_ext()
    check(r)
    report(r)
