"""Performance-intelligence plane: run history, diffing, timelines.

Covers the PR 10 additions to :mod:`repro.obs`:

* the :class:`~repro.obs.metrics.Gauge` type (last-write-wins merge),
* the Prometheus text exposition of a RunReport,
* run records persisted through the store's ``runs/`` namespace and
  resolved back by id / prefix / path,
* the report diff engine and its tolerance-banded regression verdict,
* canonicalization (the byte-identical repeated-run contract),
* Chrome ``trace_event`` timeline export with pid lanes,
* the ``python -m repro.obs`` validator's stdin and exit codes.
"""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.obs.report import reset_cache_registry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.set_tracer(None)
    reset_cache_registry()
    yield
    obs.set_tracer(None)
    reset_cache_registry()


def _report_doc(label="r", spans=None, metrics=None, cache_stats=None):
    return obs.RunReport(label, spans=spans or [], metrics=metrics or {},
                         cache_stats=cache_stats or []).to_dict()


def _span(name, duration, children=None, **attributes):
    return {"name": name, "start": 0.0, "duration": duration,
            "attributes": attributes, "children": children or []}


# -- Gauge --------------------------------------------------------------------


class TestGauge:
    def test_set_and_snapshot(self):
        g = obs.Gauge("queue_depth")
        g.set(3)
        g.set(5)
        g.set(2.0, label="retries")
        assert g.value() == 5
        assert g.value("retries") == 2.0
        assert g.snapshot() == {"type": "gauge",
                                "values": {"": 5, "retries": 2.0}}

    def test_merge_is_last_write_wins(self):
        reg = obs.MetricsRegistry()
        reg.gauge("depth").set(1)
        reg.merge({"depth": {"type": "gauge", "values": {"": 7}}})
        reg.merge({"depth": {"type": "gauge", "values": {"": 4}}})
        assert reg.gauge("depth").value() == 4

    def test_registry_rejects_kind_clash(self):
        reg = obs.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_module_helper_gated_on_tracing(self):
        reg = obs.MetricsRegistry()
        with obs.use_metrics(reg):
            obs.gauge("depth", 9)  # collection off: must no-op
        assert "depth" not in reg.snapshot()
        tracer = obs.Tracer()
        with obs.use_tracer(tracer), obs.use_metrics(reg):
            obs.gauge("depth", 9)
        assert reg.snapshot()["depth"]["values"][""] == 9

    def test_schema_accepts_gauges(self):
        doc = _report_doc(metrics={
            "depth": {"type": "gauge", "values": {"": 3}}})
        assert obs.schema_errors(doc) == []


# -- Prometheus exposition ----------------------------------------------------


class TestPrometheus:
    def test_counter_gauge_and_cache_lines(self):
        doc = _report_doc(
            metrics={
                "serve.jobs_done": {"type": "counter",
                                    "values": {"": 4, "warm": 1}},
                "serve.queue_depth": {"type": "gauge", "values": {"": 2}},
            },
            cache_stats=[{"scope": "c432", "hits": 3, "misses": 1,
                          "artifacts": {"bundle": {"hits": 3,
                                                   "misses": 1}}}])
        text = obs.to_prometheus(doc)
        assert "# TYPE serve_jobs_done counter" in text
        assert "serve_jobs_done 4" in text
        assert 'serve_jobs_done{series="warm"} 1' in text
        assert "serve_queue_depth 2" in text
        assert ('repro_cache_hits_total{scope="c432",artifact="bundle"} 3'
                in text)
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        h = obs.Histogram("lat")
        for v in (0.5, 0.5, 3.0):
            h.observe(v)
        doc = _report_doc(metrics={"lat": h.snapshot()})
        text = obs.to_prometheus(doc)
        # 0.5 -> exponent -1 -> upper 2^0 = 1.0; 3.0 -> exponent 1 ->
        # upper 2^2 = 4.0; buckets are cumulative.
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="4.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_empty_report(self):
        assert obs.to_prometheus(_report_doc()) == ""


# -- run records & history ----------------------------------------------------


class TestRunRecords:
    def test_record_round_trips_through_store(self, tmp_path):
        from repro.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        report = _report_doc(spans=[_span("repro.age", 1.5)])
        run_id = obs.record_run(store, report, command="repro age c432")
        assert store.list_runs() == [run_id]
        record = store.load_run(run_id)
        assert record["schema_version"] == obs.RUN_SCHEMA
        assert record["command"] == "repro age c432"
        assert record["host"]["id"] == obs.host_fingerprint()["id"]
        assert record["report"]["spans"][0]["name"] == "repro.age"
        [loaded] = obs.load_history(store)
        assert loaded["run_id"] == run_id
        summary = obs.summarize_record(record)
        assert summary["wall_seconds"] == 1.5
        assert summary["spans"] == 1

    def test_resolve_by_id_prefix_and_path(self, tmp_path):
        from repro.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        report = _report_doc(label="stored")
        run_id = obs.record_run(store, report)
        doc, label = obs.resolve_report(run_id, store=store)
        assert doc["label"] == "stored"
        # A unique prefix resolves too, and reports its full id.
        doc, label = obs.resolve_report(run_id[:12], store=store)
        assert label == run_id
        path = tmp_path / "r.json"
        path.write_text(json.dumps(_report_doc(label="on disk")))
        doc, _ = obs.resolve_report(str(path))
        assert doc["label"] == "on disk"

    def test_resolve_errors(self, tmp_path):
        from repro.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="no stored run"):
            obs.resolve_report("nope", store=store)
        with pytest.raises(ValueError, match="not a file"):
            obs.resolve_report("nope", store=None)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="not a valid RunReport"):
            obs.resolve_report(str(bad))

    def test_run_ids_sort_chronologically(self, tmp_path):
        from repro.artifacts import ArtifactStore
        from repro.obs.perf import new_run_id

        store = ArtifactStore(tmp_path / "store")
        early = new_run_id(1000.0)
        late = new_run_id(2000000.0)
        for rid in (late, early):
            obs.record_run(store, _report_doc(), run_id=rid)
        assert store.list_runs() == [early, late]

    def test_history_line_shape(self):
        line = obs.history_line("perf_mlv", wall_seconds=0.5, speedup=12.0,
                                smoke=True, extra={"n": 3})
        assert line["suite"] == "perf_mlv"
        assert line["wall_seconds"] == 0.5
        assert line["speedup"] == 12.0
        assert line["smoke"] is True
        assert line["n"] == 3
        assert line["host"] == obs.host_fingerprint()["id"]


# -- diff engine --------------------------------------------------------------


class TestDiff:
    def test_identical_reports_pass_with_zero_regressions(self):
        doc = _report_doc(
            spans=[_span("repro.age", 1.0,
                         children=[_span("sta.lower", 0.4)])],
            metrics={"calls": {"type": "counter", "values": {"": 2}}})
        diff = obs.diff_reports(doc, doc)
        assert diff.passed
        assert diff.regressions == []
        assert all(e.status == "ok" for e in diff.entries)

    def test_inflated_span_fails_the_gate(self):
        a = _report_doc(spans=[_span("repro.age", 1.0)])
        b = _report_doc(spans=[_span("repro.age", 2.0)])
        diff = obs.diff_reports(a, b)
        assert not diff.passed
        [entry] = diff.regressions
        assert entry.name == "repro.age"
        assert entry.delta == 1.0
        assert "FAIL" in obs.format_diff(diff)

    def test_tolerance_bands_require_both_abs_and_rel(self):
        a = _report_doc(spans=[_span("tiny", 0.001)])
        b = _report_doc(spans=[_span("tiny", 0.01)])
        # 10x slower but under the 20 ms absolute floor: not a
        # regression (scheduler noise on microsecond spans).
        assert obs.diff_reports(a, b).passed
        tight = obs.Tolerance(span_rel=0.5, span_abs_s=0.001)
        assert not obs.diff_reports(a, b, tolerance=tight).passed

    def test_counter_changes_are_drift_not_failure(self):
        a = _report_doc(metrics={
            "store.bundle_misses": {"type": "counter", "values": {"": 1}}})
        b = _report_doc(metrics={
            "store.bundle_hits": {"type": "counter", "values": {"": 1}}})
        diff = obs.diff_reports(a, b)
        assert diff.passed
        statuses = {e.name: e.status for e in diff.entries}
        assert statuses["store.bundle_misses"] == "removed"
        assert statuses["store.bundle_hits"] == "added"

    def test_counter_rel_gate_when_asked(self):
        a = _report_doc(metrics={
            "calls": {"type": "counter", "values": {"": 10}}})
        b = _report_doc(metrics={
            "calls": {"type": "counter", "values": {"": 100}}})
        assert obs.diff_reports(a, b).passed
        tol = obs.Tolerance(counter_rel=0.5)
        assert not obs.diff_reports(a, b, tolerance=tol).passed

    def test_hit_rate_drop_gate_when_asked(self):
        a = _report_doc(cache_stats=[{"scope": "c432", "hits": 9,
                                      "misses": 1, "artifacts": {}}])
        b = _report_doc(cache_stats=[{"scope": "c432", "hits": 1,
                                      "misses": 9, "artifacts": {}}])
        assert obs.diff_reports(a, b).passed
        tol = obs.Tolerance(hit_rate_drop=0.2)
        assert not obs.diff_reports(a, b, tolerance=tol).passed

    def test_added_span_gates_only_with_fail_on_added(self):
        a = _report_doc(spans=[_span("repro.age", 1.0)])
        b = _report_doc(spans=[_span("repro.age", 1.0),
                               _span("surprise", 0.5)])
        assert obs.diff_reports(a, b).passed
        tol = obs.Tolerance(fail_on_added=True)
        assert not obs.diff_reports(a, b, tolerance=tol).passed

    def test_span_totals_aggregates_repeated_paths(self):
        doc = _report_doc(spans=[_span("sweep", 2.0, children=[
            _span("job", 0.5), _span("job", 0.7)])])
        totals = obs.span_totals(doc)
        assert totals["sweep/job"] == (2, pytest.approx(1.2))

    def test_to_dict_round_trips_as_json(self):
        a = _report_doc(spans=[_span("s", 1.0)])
        diff = obs.diff_reports(a, a, label_a="x", label_b="y")
        doc = json.loads(json.dumps(diff.to_dict()))
        assert doc["verdict"] == "pass"
        assert doc["a"] == "x" and doc["b"] == "y"


class TestCanonicalize:
    def test_scrubs_volatile_values(self):
        doc = _report_doc(
            spans=[_span("serve.worker.age", 1.25, pid=4242, job="j-1")],
            metrics={
                "serve.job.attempt_seconds": obs_histogram_snapshot(),
                "serve.uptime_seconds": {"type": "gauge",
                                         "values": {"": 55.2}},
                "serve.worker.gates": {"type": "gauge",
                                       "values": {"": 160}},
            })
        doc["meta"]["uptime_s"] = 12.5
        canon = obs.canonicalize_report(doc)
        span = canon["spans"][0]
        assert span["duration"] == 0.0
        assert span["attributes"]["pid"] == "*"
        assert span["attributes"]["job"] == "*"
        assert canon["metrics"]["serve.job.attempt_seconds"] == {
            "type": "histogram", "count": 2}
        assert canon["metrics"]["serve.uptime_seconds"] == {
            "type": "gauge", "series": [""]}
        # Non-timing gauges keep their (deterministic) values.
        assert canon["metrics"]["serve.worker.gates"]["values"][""] == 160
        assert "uptime_s" not in canon["meta"]
        # The original document is untouched.
        assert doc["spans"][0]["duration"] == 1.25

    def test_canonical_json_is_deterministic(self):
        doc = _report_doc(spans=[_span("a", 1.0, pid=1)])
        other = _report_doc(spans=[_span("a", 2.0, pid=999)])
        assert obs.canonical_json(doc) == obs.canonical_json(other)


def obs_histogram_snapshot():
    h = obs.Histogram("t")
    h.observe(0.1)
    h.observe(0.2)
    return h.snapshot()


# -- timeline export ----------------------------------------------------------


class TestTimeline:
    def test_nested_spans_get_pid_lanes(self):
        spans = [_span("flow.run_sweep", 2.0, children=[
            _span("worker.compute", 0.5, worker=0, pid=111,
                  children=[_span("inner", 0.2)]),
            _span("worker.compute", 0.6, worker=1, pid=222),
        ])]
        trace = obs.chrome_trace(
            *__import__("repro.obs.timeline",
                        fromlist=["events_from_span_dicts"]
                        ).events_from_span_dicts(spans))
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        assert by_name["flow.run_sweep"]["pid"] == 1
        assert by_name["inner"]["pid"] == 111  # inherits its parent lane
        assert {e["pid"] for e in events} == {1, 111, 222}
        meta = {e["pid"]: e["args"]["name"]
                for e in trace["traceEvents"] if e["ph"] == "M"}
        assert meta[1] == "main"
        assert meta[111] == "worker 0 (pid 111)"

    def test_convert_sniffs_runreport_and_jsonl(self):
        doc = _report_doc(spans=[_span("root", 1.0)])
        from_report = obs.convert(json.dumps(doc))
        assert any(e["name"] == "root"
                   for e in from_report["traceEvents"])
        jsonl = "\n".join([
            json.dumps({"name": "root", "path": "root", "depth": 0,
                        "start": 0.0, "duration": 1.0, "attributes": {}}),
            json.dumps({"name": "child", "path": "root/child", "depth": 1,
                        "start": 0.1, "duration": 0.5,
                        "attributes": {"worker": 2, "pid": 777}}),
        ])
        from_jsonl = obs.convert(jsonl)
        child = [e for e in from_jsonl["traceEvents"]
                 if e["name"] == "child"][0]
        assert child["pid"] == 777
        assert child["ts"] == pytest.approx(0.1e6)
        assert child["dur"] == pytest.approx(0.5e6)

    def test_convert_run_record_unwraps(self):
        from repro.obs.perf import make_run_record

        record = make_run_record(_report_doc(spans=[_span("r", 1.0)]))
        trace = obs.convert(json.dumps(record))
        assert any(e["name"] == "r" for e in trace["traceEvents"])

    def test_convert_rejects_spanless_json(self):
        with pytest.raises(ValueError, match="no 'spans'"):
            obs.convert(json.dumps({"hello": 1}))

    def test_worker_only_spans_get_synthetic_lanes(self):
        from repro.obs.timeline import WORKER_PID_BASE, events_from_span_dicts

        spans = [_span("w", 0.1, worker=3)]
        events, lanes = events_from_span_dicts(spans)
        assert events[0]["pid"] == WORKER_PID_BASE + 3
        assert lanes[WORKER_PID_BASE + 3] == "worker 3"


# -- the validator CLI --------------------------------------------------------


def _run_validator(args, stdin=""):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", *args], input=stdin,
        capture_output=True, text=True)
    return proc


class TestValidatorCli:
    def test_valid_file_exits_zero(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(_report_doc()))
        proc = _run_validator([str(path)])
        assert proc.returncode == 0
        assert "ok" in proc.stdout

    def test_stdin_dash(self):
        proc = _run_validator(["-"], stdin=json.dumps(_report_doc()))
        assert proc.returncode == 0
        assert "<stdin>" in proc.stdout

    def test_invalid_reports_all_violations(self, tmp_path):
        doc = _report_doc()
        doc["schema_version"] = 999
        doc["spans"] = [{"name": 3}]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        proc = _run_validator([str(path)])
        assert proc.returncode == 1
        assert "INVALID" in proc.stdout
        # Both violations listed, not just the first.
        assert "schema_version" in proc.stdout
        assert proc.stdout.count("\n  ") >= 2

    def test_no_args_is_usage_error(self):
        proc = _run_validator([])
        assert proc.returncode == 2
        assert "usage" in proc.stderr
