"""Fig. 2 — thermal profile of running a task set on a typical processor.

Reproduces the substrate behind the paper's temperature assumption: a
random task set with 10-130 W power through an air-cooled lumped-RC
network produces a die-temperature trace inside the 60-110 degC band.
"""

import numpy as np

from _common import emit
from repro.thermal import ThermalRC, random_task_set, task_set_trace, trace_statistics


def run_fig02():
    rc = ThermalRC()
    tasks = random_task_set(n_tasks=30, seed=7)
    times, temps = task_set_trace(tasks, rc, samples_per_phase=25)
    return {"rc": rc, "tasks": tasks, "times": times, "temps": temps,
            "stats": trace_statistics(temps)}


def check(data):
    stats = data["stats"]
    # The paper's corridor: 60-110 degC.
    assert 55.0 < stats["min_c"] < 70.0
    assert 95.0 < stats["max_c"] < 115.0
    # Settling is millisecond-scale, far below the task durations, so
    # the trace actually reaches the per-task steady states.
    rc = data["rc"]
    assert rc.settling_time() < min(t.duration for t in data["tasks"])


def report(data):
    stats = data["stats"]
    temps = data["temps"]
    times = data["times"]
    # Decimate the trace into a printable series (every ~5 % of run).
    idx = np.linspace(0, len(times) - 1, 21).astype(int)
    rows = [[f"{times[i]:7.3f}", f"{temps[i] - 273.15:6.1f}"] for i in idx]
    emit("Fig. 2 — die temperature while executing the task set",
         ["time (s)", "T (degC)"], rows)
    emit("Fig. 2 — trace statistics",
         ["min (degC)", "max (degC)", "mean (degC)"],
         [[f"{stats['min_c']:.1f}", f"{stats['max_c']:.1f}",
           f"{stats['mean_c']:.1f}"]])


def test_fig02_thermal_profile(run_once):
    data = run_once(run_fig02)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig02()
    check(d)
    report(d)
