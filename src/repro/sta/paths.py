"""Critical-path enumeration.

The paper repeatedly reasons about "the critical paths and near-critical
paths" (internal node control targets them; FGSTI budgets depend on
them).  This module enumerates the K longest register-free paths of the
timing graph exactly, using the standard best-first (lazy-Yen) scheme on
the DAG: partial paths are expanded backward from the worst endpoints,
ranked by arrival + remaining potential.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sta.analysis import _EDGES, _input_edges_for, analyze, gate_loads


@dataclass(frozen=True)
class TimingPath:
    """One structural path from a primary input to a primary output.

    Attributes:
        nodes: (net, edge) pairs from PI to PO.
        delay: total path delay in seconds.
    """

    nodes: Tuple[Tuple[str, str], ...]
    delay: float

    @property
    def gates(self) -> Tuple[str, ...]:
        return tuple(net for net, _ in self.nodes[1:])

    def __len__(self) -> int:
        return len(self.nodes)


def enumerate_paths(circuit: Circuit, k: int = 10, *,
                    library: Optional[Library] = None,
                    delta_vth: Optional[Dict[str, float]] = None,
                    context=None) -> List[TimingPath]:
    """The ``k`` longest PI-to-PO paths, descending by delay.

    Args:
        delta_vth: per-gate aged shifts; paths are ranked by *aged*
            delay when given (per-gate eq. 22 mode).
        context: shared :class:`~repro.context.AnalysisContext`
            supplying the memoized loads and STA.

    The search is exact: a max-heap of partial paths grown backward from
    every PO endpoint, keyed by (accumulated delay + arrival upper bound
    of the frontier node), so paths pop in true delay order.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if context is not None and library is None:
        library = context.library
    library = library or default_library()
    if context is not None and (context.circuit is not circuit
                                or context.library is not library):
        context = None
    if context is not None:
        loads = context.gate_loads()
        base = (context.fresh_timing() if delta_vth is None
                else analyze(circuit, library, delta_vth=delta_vth,
                             context=context))
    else:
        loads = gate_loads(circuit, library)
        base = analyze(circuit, library, delta_vth=delta_vth, loads=loads)
    delta_vth = delta_vth or {}

    # Aged per-gate delays per output edge off the kernel's memoized
    # base-delay vector (matching analyze(): same eq. 22 operand order,
    # so the path delays recompose the arrivals bit-for-bit).
    if context is not None:
        ct = context.compiled_timing()
    else:
        from repro.sta.compiled import CompiledTiming
        ct = CompiledTiming(circuit, library, loads=loads)
    aged = ct.delay_vector(delta_vth)
    gate_delay: Dict[Tuple[str, str], float] = {}
    for i, name in enumerate(ct.gate_names):
        for e, edge in enumerate(_EDGES):
            gate_delay[(name, edge)] = float(aged[2 * i + e])

    arrival = base.arrival

    # Heap entries:
    #   (-quantized_estimate, -suffix_len, counter, estimate,
    #    suffix_delay, node, suffix)
    # suffix = nodes from `node` (exclusive) to the PO, already fixed.
    # Balanced structures (adder arrays) contain exponentially many
    # paths whose delays differ only at float-ulp scale; ordering by the
    # raw estimate degenerates into breadth-first over that swarm.
    # Quantizing the ordering key onto a 1e-9-relative grid turns
    # near-ties into exact ties, and the -suffix_len tie-break then
    # drives the search depth-first so paths actually complete.
    worst_bound = max(arrival[po][edge] for po in circuit.primary_outputs
                      for edge in _EDGES)
    quantum = max(worst_bound, 1e-30) * 1e-9

    def qkey(estimate: float) -> int:
        return int(round(estimate / quantum))

    heap: List[Tuple[int, int, int, float, float, Tuple[str, str],
                     Tuple[Tuple[str, str], ...]]] = []
    counter = 0
    for po in circuit.primary_outputs:
        for edge in _EDGES:
            estimate = arrival[po][edge]
            heapq.heappush(heap, (-qkey(estimate), 0, counter, estimate,
                                  0.0, (po, edge), ()))
            counter += 1

    results: List[TimingPath] = []
    while heap and len(results) < k:
        (_, _, _, estimate, suffix_delay,
         (net, edge), suffix) = heapq.heappop(heap)
        if net not in circuit.gates:
            # Reached a primary input: the path is complete.
            results.append(TimingPath(nodes=((net, edge),) + suffix,
                                      delay=estimate))
            continue
        gate = circuit.gates[net]
        d = gate_delay[(net, edge)]
        new_suffix = ((net, edge),) + suffix
        new_suffix_delay = suffix_delay + d
        for src in gate.inputs:
            for in_edge in _input_edges_for(gate.cell, edge):
                child = arrival[src][in_edge] + new_suffix_delay
                heapq.heappush(heap, (-qkey(child), -len(new_suffix),
                                      counter, child, new_suffix_delay,
                                      (src, in_edge), new_suffix))
                counter += 1
    return results


def path_slack_profile(circuit: Circuit, k: int = 10, *,
                       library: Optional[Library] = None,
                       context=None) -> List[float]:
    """Slack of the k longest paths relative to the critical delay.

    A flat profile (many ~0 slacks) is the "path swarm" that defeats
    single-path optimizations like greedy control points.
    """
    paths = enumerate_paths(circuit, k, library=library, context=context)
    worst = paths[0].delay
    return [worst - p.delay for p in paths]
