"""Process-variation sampling (substrate S11).

Per-gate threshold-voltage variation with two components:

* **local** (random, within-die): independent per gate; averages out
  along long paths;
* **global** (die-to-die): one shared offset per sample.

The paper's Fig. 12 treats the circuit delay as a distribution under
such Vth variation; [51] observes that NBTI *compensates* part of the
static spread because low-Vth devices age faster (higher oxide field),
which our calibration's ``field_factor`` reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class VariationModel:
    """Gaussian Vth0 variation parameters (volts).

    Attributes:
        sigma_local: per-gate independent standard deviation.
        sigma_global: die-wide shared standard deviation.
        truncate_sigmas: samples are clipped to +/- this many sigmas so a
            pathological draw cannot push a device past the rails.
    """

    sigma_local: float = 0.010
    sigma_global: float = 0.0
    truncate_sigmas: float = 4.0

    def __post_init__(self) -> None:
        if self.sigma_local < 0 or self.sigma_global < 0:
            raise ValueError("sigmas must be non-negative")
        if self.truncate_sigmas <= 0:
            raise ValueError("truncation must be positive")

    def _draw(self, rng: random.Random, sigma: float) -> float:
        if sigma == 0.0:
            return 0.0
        bound = self.truncate_sigmas * sigma
        value = rng.gauss(0.0, sigma)
        return max(-bound, min(bound, value))

    def sample(self, circuit: Circuit, rng: random.Random) -> Dict[str, float]:
        """One die: per-gate Vth0 offset (volts)."""
        shared = self._draw(rng, self.sigma_global)
        return {name: shared + self._draw(rng, self.sigma_local)
                for name in circuit.gates}

    def sample_many(self, circuit: Circuit, n_samples: int, seed: int = 0
                    ) -> List[Dict[str, float]]:
        """``n_samples`` independent dies, deterministic in ``seed``."""
        if n_samples < 1:
            raise ValueError("need at least one sample")
        rng = random.Random(seed)
        return [self.sample(circuit, rng) for _ in range(n_samples)]
