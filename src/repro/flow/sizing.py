"""NBTI-aware gate sizing (after Paul et al. [22]).

The paper's related work sizes gates so the circuit still meets timing
at the *end of life* instead of at time 0.  This module implements the
classic TILOS-style greedy on our substrate:

* a load-aware incremental timer: gate delay = (coefficient per farad)
  x (fanout load, which grows when fanout gates are upsized) / (own
  size), times the eq. 22 aging factor;
* greedy upsizing of the gate with the best aged-delay improvement per
  unit area, until the aged circuit meets the fresh-spec target.

The headline experiment (``benchmarks/test_ext_sizing.py``) compares
the area cost of sizing-for-aging against simply reserving a timing
guard-band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cells.library import Library
from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sta.analysis import _EDGES, _input_edges_for, PO_CAP, WIRE_CAP
from repro.sta.degradation import ALL_ZERO, AgingAnalyzer, StandbyStates


class SizingTimer:
    """Load-aware timing with per-gate size factors.

    Sizing a gate by ``s`` divides its own delay by ``s`` (stronger
    drive) and multiplies its input-pin capacitance by ``s`` (heavier
    load on its drivers) — the first-order sizing model every TILOS
    variant uses.
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None):
        self.circuit = circuit
        self.library = library or default_library()
        tech = self.library.tech
        self._order = circuit.topological_order()
        self._slope = tech.alpha / (tech.vdd - tech.pmos.vth0)
        # Affine delay model per edge: d = intercept + slope_per_f * load.
        # The intercept is the internal-stage delay of composed cells; it
        # does not change with sizing (internal drive and internal load
        # scale together), while the load term divides by the size.
        self._intercept: Dict[str, Dict[str, float]] = {}
        self._coeff: Dict[str, Dict[str, float]] = {}
        # Base input-pin cap each gate presents to each driver net.
        self._pin_cap: Dict[str, List[Tuple[str, float]]] = {
            net: [] for net in circuit.nets}
        self._fixed_cap: Dict[str, float] = {}
        po_count: Dict[str, int] = {}
        for po in circuit.primary_outputs:
            po_count[po] = po_count.get(po, 0) + 1
        for name, gate in circuit.gates.items():
            cell = self.library.get(gate.cell)
            self._coeff[name] = {}
            self._intercept[name] = {}
            for edge in _EDGES:
                d1 = cell.delay(tech, 1e-15, edge)
                d2 = cell.delay(tech, 2e-15, edge)
                slope = (d2 - d1) / 1e-15
                self._coeff[name][edge] = slope
                self._intercept[name][edge] = d1 - slope * 1e-15
            for pin, net in zip(cell.inputs, gate.inputs):
                self._pin_cap[net].append(
                    (name, cell.input_capacitance(tech, pin)))
        for name in circuit.gates:
            fanout_wire = WIRE_CAP * len(self._pin_cap[name])
            self._fixed_cap[name] = (fanout_wire
                                     + po_count.get(name, 0) * PO_CAP)
            if not self._pin_cap[name] and name not in po_count:
                self._fixed_cap[name] = WIRE_CAP

    def load(self, net: str, sizes: Dict[str, float]) -> float:
        """Output load of ``net`` under the sizing assignment."""
        total = self._fixed_cap.get(net, 0.0)
        for consumer, cap in self._pin_cap[net]:
            total += cap * sizes.get(consumer, 1.0)
        return total

    def delay_edges(self, name: str, sizes: Dict[str, float],
                    delta_vth: Dict[str, float]) -> Tuple[float, float]:
        """(rise, fall) delay of one gate under sizes + aging.

        The exact expression of the full forward pass — the compiled
        incremental engine rebuilds per-gate delays through this method
        so both engines stay bit-identical.
        """
        s = sizes.get(name, 1.0)
        aging = 1.0 + self._slope * delta_vth.get(name, 0.0)
        load = self.load(name, sizes)
        return tuple(
            (self._intercept[name][edge]
             + self._coeff[name][edge] * load / s) * aging
            for edge in _EDGES)

    def circuit_delay(self, sizes: Optional[Dict[str, float]] = None,
                      delta_vth: Optional[Dict[str, float]] = None
                      ) -> Tuple[float, List[str]]:
        """(delay, critical gate names) under sizes + aging."""
        sizes = sizes or {}
        delta_vth = delta_vth or {}
        circuit = self.circuit
        arrival: Dict[str, Dict[str, float]] = {
            pi: {"rise": 0.0, "fall": 0.0} for pi in circuit.primary_inputs}
        pred: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
        for name in self._order:
            gate = circuit.gates[name]
            s = sizes.get(name, 1.0)
            aging = 1.0 + self._slope * delta_vth.get(name, 0.0)
            load = self.load(name, sizes)
            out: Dict[str, float] = {}
            for edge in _EDGES:
                d = (self._intercept[name][edge]
                     + self._coeff[name][edge] * load / s) * aging
                best, src = 0.0, None
                for net in gate.inputs:
                    for in_edge in _input_edges_for(gate.cell, edge):
                        a = arrival[net][in_edge]
                        if a > best:
                            best, src = a, (net, in_edge)
                out[edge] = best + d
                pred[(name, edge)] = src
            arrival[name] = out
        worst, endpoint = 0.0, None
        for po in circuit.primary_outputs:
            for edge in _EDGES:
                if arrival[po][edge] > worst:
                    worst, endpoint = arrival[po][edge], (po, edge)
        critical: List[str] = []
        node = endpoint
        while node is not None:
            if node[0] in circuit.gates:
                critical.append(node[0])
            node = pred.get(node)
        return worst, critical

    def critical_cone(self, sizes: Optional[Dict[str, float]] = None,
                      delta_vth: Optional[Dict[str, float]] = None,
                      slack_fraction: float = 1e-3) -> List[str]:
        """All gates with slack below ``slack_fraction`` of the delay.

        Balanced circuits carry *swarms* of exactly-tied critical paths;
        single-path moves cannot improve them, so sizing needs the whole
        cone.  Computed with a backward required-time pass mirroring the
        forward evaluation.
        """
        sizes = sizes or {}
        delta_vth = delta_vth or {}
        circuit = self.circuit
        arrival: Dict[str, Dict[str, float]] = {
            pi: {"rise": 0.0, "fall": 0.0} for pi in circuit.primary_inputs}
        delays: Dict[Tuple[str, str], float] = {}
        for name in self._order:
            gate = circuit.gates[name]
            s = sizes.get(name, 1.0)
            aging = 1.0 + self._slope * delta_vth.get(name, 0.0)
            load = self.load(name, sizes)
            arrival[name] = {}
            for edge in _EDGES:
                d = (self._intercept[name][edge]
                     + self._coeff[name][edge] * load / s) * aging
                delays[(name, edge)] = d
                worst = 0.0
                for net in gate.inputs:
                    for in_edge in _input_edges_for(gate.cell, edge):
                        worst = max(worst, arrival[net][in_edge])
                arrival[name][edge] = worst + d
        target = max(arrival[po][edge] for po in circuit.primary_outputs
                     for edge in _EDGES)
        required: Dict[str, Dict[str, float]] = {
            net: {"rise": float("inf"), "fall": float("inf")}
            for net in arrival}
        for po in circuit.primary_outputs:
            for edge in _EDGES:
                required[po][edge] = min(required[po][edge], target)
        for name in reversed(self._order):
            gate = circuit.gates[name]
            for edge in _EDGES:
                req = required[name][edge]
                if req == float("inf"):
                    continue
                d = delays[(name, edge)]
                for net in gate.inputs:
                    for in_edge in _input_edges_for(gate.cell, edge):
                        required[net][in_edge] = min(required[net][in_edge],
                                                     req - d)
        threshold = slack_fraction * target
        cone: List[str] = []
        for name in circuit.gates:
            slack = min((required[name][e] - arrival[name][e]
                         for e in _EDGES
                         if required[name][e] != float("inf")),
                        default=float("inf"))
            if slack <= threshold:
                cone.append(name)
        return cone


def _sizing_delay_vector(timer: SizingTimer, compiled,
                         sizes: Dict[str, float],
                         delta_vth: Dict[str, float]):
    """The ``(2G,)`` per-gate-edge delay vector of one sizing scenario,
    built through :meth:`SizingTimer.delay_edges` so the compiled and
    scalar engines price every gate identically."""
    import numpy as np

    delays = np.empty(2 * compiled.n_gates, dtype=np.float64)
    for i, name in enumerate(compiled.gate_names):
        delays[2 * i], delays[2 * i + 1] = timer.delay_edges(
            name, sizes, delta_vth)
    return delays


class _CompiledSizingState:
    """Incremental cone-retiming state for the compiled sizing engine.

    Resizing one gate changes exactly its own delay (the ``load / s``
    term) and the delay of every *gate* driving one of its input nets
    (their load includes the resized input-pin capacitance) — a handful
    of gates, recomputed through :meth:`SizingTimer.delay_edges` and
    pushed through :class:`~repro.sta.compiled.IncrementalTimer`'s
    fanout-cone propagation instead of a full forward pass.
    """

    def __init__(self, timer: SizingTimer, compiled, sizes: Dict[str, float],
                 delta_vth: Dict[str, float]):
        self.timer = timer
        self.compiled = compiled
        self.delta_vth = delta_vth
        self.inc = compiled.incremental(
            delays=_sizing_delay_vector(timer, compiled, sizes, delta_vth))

    def affected(self, gate: str) -> List[str]:
        """Gates whose delay moves when ``gate`` is resized."""
        gates = self.timer.circuit.gates
        result = [gate]
        for net in gates[gate].inputs:
            if net in gates and net not in result:
                result.append(net)
        return result

    def _changes(self, gates: List[str], sizes: Dict[str, float]
                 ) -> Dict[str, Tuple[float, float]]:
        return {g: self.timer.delay_edges(g, sizes, self.delta_vth)
                for g in gates}

    def trial(self, gate: str, sizes: Dict[str, float]) -> float:
        """Circuit delay if ``sizes`` (with ``gate`` resized) applied."""
        return self.inc.trial(self._changes(self.affected(gate), sizes))

    def commit(self, gates: List[str], sizes: Dict[str, float]
               ) -> Tuple[float, List[str]]:
        """Apply resized ``gates``; return (delay, critical gate list)."""
        affected: List[str] = []
        for gate in gates:
            for g in self.affected(gate):
                if g not in affected:
                    affected.append(g)
        delay = self.inc.update(self._changes(affected, sizes))
        return delay, self.inc.critical_gates()

    def evaluate(self) -> Tuple[float, List[str]]:
        """(delay, critical gate list) of the current committed state."""
        return self.inc.circuit_delay, self.inc.critical_gates()

    def critical_cone(self, slack_fraction: float = 1e-3) -> List[str]:
        """The zero-slack cone of the committed state (scalar order)."""
        ct = self.compiled
        arr = self.inc.arrival_rows()
        target = float(arr[ct.po_rows].max())
        req = ct.required(arr, self.inc.delay_rows(), target)
        threshold = slack_fraction * target
        cone: List[str] = []
        for name in self.timer.circuit.gates:
            row = 2 * ct.node_index[name]
            slack = min(req[row] - arr[row], req[row + 1] - arr[row + 1])
            if slack <= threshold:
                cone.append(name)
        return cone


@dataclass(frozen=True)
class SizingResult:
    """Outcome of NBTI-aware sizing.

    Attributes:
        sizes: final per-gate size factors (1.0 = unsized).
        target_delay: the aged-delay target (seconds).
        achieved_delay: aged delay after sizing.
        area_factor: total sized area over the unsized area.
        met: whether the target was reached within the area cap.
    """

    circuit_name: str
    sizes: Dict[str, float]
    target_delay: float
    achieved_delay: float
    area_factor: float
    met: bool

    @property
    def area_overhead(self) -> float:
        return self.area_factor - 1.0


def size_for_aging(circuit: Circuit, profile: OperatingProfile,
                   t_total: float = TEN_YEARS, *,
                   standby: StandbyStates = ALL_ZERO,
                   slack_target: float = 0.0,
                   step: float = 1.2,
                   max_size: float = 4.0,
                   max_area_factor: float = 2.0,
                   library: Optional[Library] = None,
                   analyzer: Optional[AgingAnalyzer] = None,
                   context=None,
                   engine: str = "compiled") -> SizingResult:
    """Greedy sizing until the *aged* circuit meets the fresh target.

    Args:
        slack_target: extra margin below the fresh delay (0 sizes the
            aged circuit back to the original fresh delay).
        step: multiplicative upsize per move.
        max_size: per-gate size cap.
        max_area_factor: stop when total area exceeds this factor.
        context: shared :class:`~repro.context.AnalysisContext`; the
            aging shifts (probability propagation + stress duties) come
            from its memo, the load-aware sizing timer stays local.
        engine: ``"compiled"`` (default) re-times only the resized
            gate's fanout cone per trial through the incremental STA
            kernel; ``"scalar"`` runs a full Python forward pass per
            trial.  Both take the identical move sequence and return
            bit-identical results.

    The aging shifts are held fixed during sizing (sizing changes
    loads, not stress states), which matches [22]'s formulation.
    """
    if engine not in ("compiled", "scalar"):
        raise ValueError(f"engine must be 'compiled' or 'scalar', "
                         f"got {engine!r}")
    library = library or (context.library if context is not None
                          else default_library())
    analyzer = analyzer or AgingAnalyzer(library=library)
    timer = SizingTimer(circuit, library)
    compiled = None
    if engine == "compiled":
        if (context is not None and context.circuit is circuit
                and context.library is library):
            compiled = context.compiled_timing()
        else:
            from repro.sta.compiled import CompiledTiming

            compiled = CompiledTiming(circuit, library)
        # Fresh spec off the timing surface: the sizing delay model's
        # forward walk floors every arrival max at 0.0, exactly the
        # propagate/reduceat semantics, so this is bit-identical to the
        # scalar engine's full Python walk.
        fresh_delay = compiled.surface(
            delays=_sizing_delay_vector(timer, compiled, {}, {})
        ).circuit_delay
    else:
        fresh_delay, _ = timer.circuit_delay()
    target = fresh_delay * (1.0 - slack_target)
    if target <= 0:
        raise ValueError("slack_target leaves no positive delay budget")
    shifts = analyzer.gate_shifts(circuit, profile, t_total, standby=standby,
                                  context=context)

    sizes: Dict[str, float] = {}
    n = circuit.n_gates()
    area = float(n)
    max_area = max_area_factor * n
    # A single small step can be a local minimum (the driver-loading
    # penalty beats the self-speedup until the size jump is large
    # enough), so each candidate tries a menu of step factors.
    steps = sorted({step, step ** 2, 2.0})
    state: Optional[_CompiledSizingState] = None
    if engine == "compiled":
        state = _CompiledSizingState(timer, compiled, sizes, shifts)
        delay, critical = state.evaluate()
    else:
        delay, critical = timer.circuit_delay(sizes, shifts)
    while delay > target and area < max_area:
        best_gain = 0.0
        best_move = None  # (gate, new_size, new_delay)
        for gate in critical:
            current = sizes.get(gate, 1.0)
            for factor in steps:
                if current * factor > max_size:
                    continue
                sizes[gate] = current * factor
                if state is not None:
                    new_delay = state.trial(gate, sizes)
                else:
                    new_delay, _ = timer.circuit_delay(sizes, shifts)
                # Restore the trial (unsized gates keep no entry).
                if current == 1.0:
                    del sizes[gate]
                else:
                    sizes[gate] = current
                gain = (delay - new_delay) / (current * (factor - 1.0))
                if gain > best_gain:
                    best_gain = gain
                    best_move = (gate, current * factor, new_delay)
        if best_move is None:
            # Path-swarm fallback: balanced circuits carry many exactly
            # tied critical paths, so no single-gate move can reduce the
            # max.  Upsize the whole zero-slack cone one step.
            if state is not None:
                full_cone = state.critical_cone()
            else:
                full_cone = timer.critical_cone(sizes, shifts)
            cone = [g for g in full_cone
                    if sizes.get(g, 1.0) * step <= max_size]
            if not cone:
                break
            for gate in cone:
                prev = sizes.get(gate, 1.0)
                area += prev * (step - 1.0)
                sizes[gate] = prev * step
            if state is not None:
                new_delay, critical = state.commit(cone, sizes)
            else:
                new_delay, critical = timer.circuit_delay(sizes, shifts)
            if new_delay >= delay * (1 - 1e-9):
                # The swarm move did not help either: give up honestly.
                delay = new_delay
                break
            delay = new_delay
            continue
        gate, new_size, _ = best_move
        area += new_size - sizes.get(gate, 1.0)
        sizes[gate] = new_size
        if state is not None:
            delay, critical = state.commit([gate], sizes)
        else:
            delay, critical = timer.circuit_delay(sizes, shifts)
    return SizingResult(
        circuit_name=circuit.name,
        sizes=dict(sizes),
        target_delay=target,
        achieved_delay=delay,
        area_factor=area / n,
        met=delay <= target,
    )
