"""Long-running analysis service over the artifact plane.

``repro.serve`` turns the batch pipeline into a persistent query
service (ROADMAP item 1): a durable job queue stored through the
content-addressed :class:`~repro.artifacts.store.ArtifactStore`, a
process-pool execution tier that ships pre-lowered circuit bundles to
workers, and a stdlib HTTP front end answering repeat
``(circuit_fingerprint, scenario_key)`` queries straight from the
result cache.

Layering (see docs/SERVICE.md):

* :mod:`repro.serve.protocol` — job records, scenarios, and the
  structured-error envelope (the JSON everything else exchanges);
* :mod:`repro.serve.queue` — the restart-safe durable FIFO;
* :mod:`repro.serve.workers` — per-job process isolation with
  timeouts, crash classification, and bundle shipping;
* :mod:`repro.serve.server` — the scheduler, the service-owned
  observability hub, and the five-endpoint HTTP layer.
"""

from repro.serve.protocol import (
    DONE,
    FAILED,
    JOB_SCHEMA,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    AgeScenario,
    JobRecord,
    new_job_id,
    structured_error,
)
from repro.serve.queue import JobQueue
from repro.serve.server import (
    AnalysisService,
    ServeConfig,
    ServiceHTTPServer,
    ServiceObs,
    make_server,
)
from repro.serve.workers import BundleCache, JobProcess, run_age_analysis

__all__ = [
    "JOB_SCHEMA", "QUEUED", "RUNNING", "DONE", "FAILED",
    "STATES", "TERMINAL_STATES",
    "AgeScenario", "JobRecord", "new_job_id", "structured_error",
    "JobQueue",
    "BundleCache", "JobProcess", "run_age_analysis",
    "AnalysisService", "ServeConfig", "ServiceHTTPServer", "ServiceObs",
    "make_server",
]
