"""Sharded, resumable sweeps (repro.flow.parallel + ArtifactStore).

Contract under test: deterministic shards, atomic per-shard
checkpoints, and resume semantics — a killed or shard-limited sweep
continues from its checkpoints and the assembled results (and the
merged observation payloads) are field-for-field identical to an
uninterrupted run, regardless of shard layout or interruption history.
"""

import json

import pytest

from repro import obs
from repro.artifacts import ArtifactStore
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.parallel import (
    ShardedSweepResult,
    _decode_row,
    _encode_row,
    run_co_optimization_sweep,
    run_sharded_co_optimization_sweep,
    run_sharded_sweep,
    run_sweep,
    shard_jobs,
)

PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


# Module-level workers (picklable, like the real sweep workers).
def _square(x):
    return x * x


def _traced_square(x):
    with obs.span("worker.compute", job=x):
        obs.count("worker.calls")
    return x * x


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestShardJobs:
    def test_round_robin_partition(self):
        assert shard_jobs(7, 3) == [(0, 3, 6), (1, 4), (2, 5)]

    def test_covers_every_index_exactly_once(self):
        shards = shard_jobs(23, 5)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(23))

    def test_more_shards_than_jobs(self):
        assert shard_jobs(2, 4) == [(0,), (1,), (), ()]

    def test_single_shard(self):
        assert shard_jobs(4, 1) == [(0, 1, 2, 3)]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_jobs(4, 0)


class TestShardedSweep:
    def test_complete_in_one_run(self, store):
        res = run_sharded_sweep(_square, range(7), store=store,
                                sweep_key="k1", n_shards=3, max_workers=1)
        assert isinstance(res, ShardedSweepResult)
        assert res.complete
        assert res.rows == [i * i for i in range(7)]
        assert res.ran_shards == (0, 1, 2)
        assert res.resumed_shards == ()
        assert store.list_shards("k1") == [0, 1, 2]

    def test_max_shards_per_run_checkpoints_and_stops(self, store):
        res = run_sharded_sweep(_square, range(6), store=store,
                                sweep_key="k2", n_shards=3,
                                max_shards_per_run=1, max_workers=1)
        assert not res.complete
        assert res.rows is None
        assert res.ran_shards == (0,)
        assert store.list_shards("k2") == [0]

    def test_resume_completes_with_identical_rows(self, store):
        flat = [_square(i) for i in range(6)]
        run_sharded_sweep(_square, range(6), store=store, sweep_key="k3",
                          n_shards=3, max_shards_per_run=1, max_workers=1)
        mid = run_sharded_sweep(_square, range(6), store=store,
                                sweep_key="k3", n_shards=3, resume=True,
                                max_shards_per_run=1, max_workers=1)
        assert not mid.complete
        assert mid.resumed_shards == (0,)
        assert mid.ran_shards == (1,)
        done = run_sharded_sweep(_square, range(6), store=store,
                                 sweep_key="k3", n_shards=3, resume=True,
                                 max_workers=1)
        assert done.complete
        assert done.resumed_shards == (0, 1)
        assert done.ran_shards == (2,)
        assert done.rows == flat

    def test_killed_mid_shard_recomputes_only_missing(self, store, tmp_path):
        run_sharded_sweep(_square, range(6), store=store, sweep_key="k4",
                          n_shards=3, max_workers=1)
        # Simulate a kill mid-shard: the atomic write means the victim
        # shard's checkpoint simply does not exist.
        (store.root / "sweeps" / "k4" / "shard-0001.json").unlink()
        res = run_sharded_sweep(_square, range(6), store=store,
                                sweep_key="k4", n_shards=3, resume=True,
                                max_workers=1)
        assert res.complete
        assert res.ran_shards == (1,)
        assert res.resumed_shards == (0, 2)
        assert res.rows == [_square(i) for i in range(6)]

    def test_no_resume_clears_stale_checkpoints(self, store):
        run_sharded_sweep(_square, range(4), store=store, sweep_key="k5",
                          n_shards=2, max_workers=1)
        res = run_sharded_sweep(_square, range(4), store=store,
                                sweep_key="k5", n_shards=2, max_workers=1)
        assert res.resumed_shards == ()
        assert res.ran_shards == (0, 1)

    def test_stale_schema_checkpoint_recomputed(self, store):
        run_sharded_sweep(_square, range(4), store=store, sweep_key="k6",
                          n_shards=2, max_workers=1)
        path = store.root / "sweeps" / "k6" / "shard-0000.json"
        payload = json.loads(path.read_text())
        payload["total_shards"] = 99  # a different shard layout
        path.write_text(json.dumps(payload))
        res = run_sharded_sweep(_square, range(4), store=store,
                                sweep_key="k6", n_shards=2, resume=True,
                                max_workers=1)
        assert res.complete
        assert res.ran_shards == (0,)
        assert res.rows == [0, 1, 4, 9]

    def test_empty_trailing_shards(self, store):
        res = run_sharded_sweep(_square, range(2), store=store,
                                sweep_key="k7", n_shards=4, max_workers=1)
        assert res.complete
        assert res.rows == [0, 1]
        assert store.list_shards("k7") == [0, 1, 2, 3]

    def test_requires_store(self):
        with pytest.raises(ValueError, match="artifact store"):
            run_sharded_sweep(_square, range(2), store=None,
                              sweep_key="k", n_shards=1)


class TestShardedObservations:
    """Checkpointed observation payloads merge with the pooled==serial
    semantics: job-order adoption, invariant to interruption."""

    def _metrics_of(self, fn):
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            result = fn()
        return result, tracer, registry.snapshot()

    def test_merged_metrics_match_flat_sweep(self, store):
        _, _, flat = self._metrics_of(
            lambda: run_sweep(_traced_square, range(5), max_workers=1))
        res, tracer, sharded = self._metrics_of(
            lambda: run_sharded_sweep(_traced_square, range(5),
                                      store=store, sweep_key="o1",
                                      n_shards=2, max_workers=1))
        assert res.complete
        assert sharded["worker.calls"] == flat["worker.calls"]

    def test_resumed_completion_merges_checkpointed_spans(self, store):
        # Shard 0 runs (and checkpoints its observations) in run A;
        # run B resumes, runs shard 1, and merges BOTH shards' worker
        # spans in job order.
        self._metrics_of(
            lambda: run_sharded_sweep(_traced_square, range(4),
                                      store=store, sweep_key="o2",
                                      n_shards=2, max_shards_per_run=1,
                                      max_workers=1))
        res, tracer, metrics = self._metrics_of(
            lambda: run_sharded_sweep(_traced_square, range(4),
                                      store=store, sweep_key="o2",
                                      n_shards=2, resume=True,
                                      max_workers=1))
        assert res.complete
        assert metrics["worker.calls"]["values"][""] == 4
        adopted = tracer.find("worker.compute")
        assert sorted(s.attributes["job"] for s in adopted) == [0, 1, 2, 3]
        assert [s.attributes["worker"] for s in adopted
                if s.attributes.get("worker") is not None] == [0, 1, 2, 3]


class TestShardedCoOptimization:
    def test_interrupted_resumed_equals_flat(self, store):
        kwargs = dict(n_vectors=8, max_set_size=2, seed=3)
        circuits = ("c17", "c17", "c17")
        flat = run_co_optimization_sweep(circuits, PROFILE, TEN_YEARS,
                                         max_workers=1, **kwargs)
        first = run_sharded_co_optimization_sweep(
            circuits, PROFILE, TEN_YEARS, store=store, n_shards=2,
            max_shards_per_run=1, max_workers=1, **kwargs)
        assert not first.complete
        done = run_sharded_co_optimization_sweep(
            circuits, PROFILE, TEN_YEARS, store=store, n_shards=2,
            resume=True, max_workers=1, **kwargs)
        assert done.complete
        assert done.resumed_shards == (0,)
        assert done.rows == flat

    def test_row_codec_round_trips_exactly(self):
        [row] = run_co_optimization_sweep(("c17",), PROFILE, TEN_YEARS,
                                          n_vectors=8, max_set_size=2,
                                          seed=1, max_workers=1)
        wire = json.loads(json.dumps(_encode_row(row)))
        assert _decode_row(wire) == row
