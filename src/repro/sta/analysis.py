"""Static timing analysis (substrate S7).

Replaces the paper's STA tool [44]: topological arrival-time propagation
over the circuit DAG with rise/fall separation, load-dependent
alpha-power cell delays, per-gate aged PMOS thresholds (the eq. 22
mechanism enters through :meth:`repro.cells.cell.Cell.delay`), required
times, slacks, and critical-path extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library

#: Default parasitic loads (farads): per-fanout wire stub and PO pin.
WIRE_CAP = 0.4e-15
PO_CAP = 3.0e-15

_EDGES = ("rise", "fall")

#: Cell phase: how an output edge relates to input edges.
_INVERTING = {"INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
              "AOI21", "AOI22", "OAI21", "OAI22"}
_NON_INVERTING = {"BUF", "AND2", "AND3", "AND4", "OR2", "OR3", "OR4"}
_BOTH = {"XOR2", "XNOR2"}


def _input_edges_for(cell_name: str, out_edge: str) -> Tuple[str, ...]:
    """Which input edges can launch ``out_edge`` at this cell's output."""
    if cell_name in _INVERTING:
        return ("fall",) if out_edge == "rise" else ("rise",)
    if cell_name in _NON_INVERTING:
        return (out_edge,)
    if cell_name in _BOTH:
        return _EDGES
    raise KeyError(f"unknown cell phase for {cell_name!r}")


def gate_loads(circuit: Circuit, library: Optional[Library] = None,
               wire_cap: float = WIRE_CAP, po_cap: float = PO_CAP, *,
               context=None) -> Dict[str, float]:
    """Output load (farads) per gate: fanout pin caps + wire + PO pins.

    Thin wrapper over the memoized evaluation layer: pass ``context=``
    to reuse an :class:`~repro.context.AnalysisContext`'s cached loads
    (a fresh copy is returned either way).
    """
    if context is None:
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    return dict(context.gate_loads(wire_cap=wire_cap, po_cap=po_cap))


def _compute_gate_loads(circuit: Circuit, library: Library,
                        wire_cap: float, po_cap: float) -> Dict[str, float]:
    """The raw load computation (no caching; see the wrapper above)."""
    tech = library.tech
    loads: Dict[str, float] = {name: 0.0 for name in circuit.gates}
    po_set: Dict[str, int] = {}
    for po in circuit.primary_outputs:
        po_set[po] = po_set.get(po, 0) + 1
    for gate in circuit.gates.values():
        cell = library.get(gate.cell)
        for pin, net in zip(cell.inputs, gate.inputs):
            if net in loads:
                loads[net] += cell.input_capacitance(tech, pin) + wire_cap
    for name in loads:
        loads[name] += po_set.get(name, 0) * po_cap
        if loads[name] == 0.0:
            # Dangling gates still drive their own drain parasitics.
            loads[name] = wire_cap
    return loads


@dataclass
class TimingResult:
    """Output of one STA run.

    Attributes:
        circuit_delay: worst arrival over the primary outputs (seconds).
        arrival: net -> {edge -> arrival seconds}.
        slack: net -> worst slack against ``required_time``.
        critical_output / critical_edge: where the worst path lands.
        gate_delay_used: gate -> {edge -> propagation delay} for reuse.
    """

    circuit_delay: float
    arrival: Dict[str, Dict[str, float]]
    slack: Dict[str, float]
    critical_output: str
    critical_edge: str
    required_time: float
    _pred: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = field(repr=False,
                                                                    default_factory=dict)

    def worst_path(self) -> List[Tuple[str, str]]:
        """The critical path as (net, edge) pairs, PI/PO inclusive."""
        path: List[Tuple[str, str]] = []
        node: Optional[Tuple[str, str]] = (self.critical_output, self.critical_edge)
        while node is not None:
            path.append(node)
            node = self._pred.get(node)
        path.reverse()
        return path

    # populated by analyze(); mapping net -> is-gate flag.
    _is_gate: Dict[str, bool] = field(default_factory=dict, repr=False)

    def critical_gates(self) -> List[str]:
        """Gate names along the critical path (PIs excluded)."""
        return [net for net, _ in self.worst_path()
                if self._is_gate.get(net, False)]

    def gates_with_slack_below(self, threshold: float) -> List[str]:
        """Near-critical gate set: slack under ``threshold`` seconds."""
        return [net for net, s in self.slack.items()
                if self._is_gate.get(net, False) and s <= threshold]


def analyze(circuit: Circuit, library: Optional[Library] = None, *,
            delta_vth: Optional[Dict[str, float]] = None,
            supply_drop: float = 0.0,
            temperature: float = 300.0,
            required_time: Optional[float] = None,
            loads: Optional[Dict[str, float]] = None,
            aging_mode: str = "per_gate",
            context=None,
            engine: str = "auto") -> TimingResult:
    """Run STA.

    Args:
        delta_vth: per-gate aged PMOS threshold shift (volts); gates not
            listed are fresh.  This is how NBTI enters timing.
        supply_drop: virtual-rail drop applied to every gate (sleep
            transistor insertion, eq. 26).
        required_time: timing constraint for slack; defaults to the
            computed circuit delay (zero worst slack).
        loads: precomputed :func:`gate_loads` (recomputed otherwise).
        aging_mode: how dVth enters delays.  ``"per_gate"`` (default)
            follows the paper's eq. (22): the whole gate delay is scaled
            by ``1 + alpha * dVth / (Vdd - Vth0)`` on both edges.
            ``"per_edge"`` is the physically-finer ablation: only
            pull-up (rising) stages slow down, via the cell model.
        context: an :class:`~repro.context.AnalysisContext` supplying
            the memoized gate loads (and the library, when not given).
        engine: ``"auto"`` (default) routes per-gate runs through the
            context's compiled NumPy kernel
            (:class:`repro.sta.compiled.CompiledTiming`) when one is
            available — one-shot calls without a context stay scalar,
            since compiling costs as much as evaluating once.
            ``"compiled"`` forces the kernel (building a transient one
            if needed); ``"scalar"`` forces the pure-Python oracle.
            Both engines are float-identical.

    Returns:
        :class:`TimingResult`.
    """
    if aging_mode not in ("per_gate", "per_edge"):
        raise ValueError(f"aging_mode must be 'per_gate' or 'per_edge', "
                         f"got {aging_mode!r}")
    if engine not in ("auto", "compiled", "scalar"):
        raise ValueError(f"engine must be 'auto', 'compiled' or 'scalar', "
                         f"got {engine!r}")
    if engine == "compiled" and aging_mode == "per_edge":
        raise ValueError("per_edge aging has no compiled kernel; "
                         "use engine='scalar'")
    if aging_mode == "per_gate" and engine != "scalar":
        compiled = None
        if (context is not None and context.circuit is circuit
                and (library is None or library is context.library)):
            candidate = context.compiled_timing()
            # Caller-supplied loads must match the compiled artifact's
            # (value equality: the kernel's delays are baked from them).
            if loads is None or loads == candidate.loads:
                compiled = candidate
        if compiled is None and engine == "compiled":
            from repro.sta.compiled import CompiledTiming

            compiled = CompiledTiming(circuit, library, loads=loads)
        if compiled is not None:
            obs.count("sta.analyze.engine", label="compiled")
            return compiled.analyze(delta_vth, supply_drop=supply_drop,
                                    temperature=temperature,
                                    required_time=required_time)
    obs.count("sta.analyze.engine", label="scalar")
    if context is not None:
        if library is None:
            library = context.library
        if loads is None and library is context.library:
            loads = context.gate_loads()
    library = library or default_library()
    tech = library.tech
    delta_vth = delta_vth or {}
    loads = loads if loads is not None else gate_loads(circuit, library)

    arrival: Dict[str, Dict[str, float]] = {}
    pred: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
    for pi in circuit.primary_inputs:
        arrival[pi] = {"rise": 0.0, "fall": 0.0}
        pred[(pi, "rise")] = None
        pred[(pi, "fall")] = None

    gate_delay_used: Dict[str, Dict[str, float]] = {}
    for name in circuit.topological_order():
        gate = circuit.gates[name]
        cell = library.get(gate.cell)
        dvth = delta_vth.get(name, 0.0)
        arrival[name] = {}
        gate_delay_used[name] = {}
        for out_edge in _EDGES:
            if aging_mode == "per_gate":
                # Eq. (22): dd/d = alpha * dVth / (Vg - Vth0), applied to
                # the gate delay as a whole, exactly as the paper does.
                d = cell.delay(tech, loads[name], out_edge,
                               supply_drop=supply_drop,
                               temperature=temperature)
                d *= 1.0 + tech.alpha * dvth / (tech.vdd - tech.pmos.vth0)
            else:
                d = cell.delay(tech, loads[name], out_edge,
                               delta_vth_pmos=dvth, supply_drop=supply_drop,
                               temperature=temperature)
            gate_delay_used[name][out_edge] = d
            best_arr = -1.0
            best_src: Optional[Tuple[str, str]] = None
            for net in gate.inputs:
                for in_edge in _input_edges_for(gate.cell, out_edge):
                    a = arrival[net][in_edge]
                    if a > best_arr:
                        best_arr = a
                        best_src = (net, in_edge)
            arrival[name][out_edge] = best_arr + d
            pred[(name, out_edge)] = best_src

    # Worst primary output arrival.
    circuit_delay = 0.0
    critical_output = circuit.primary_outputs[0]
    critical_edge = "rise"
    for po in circuit.primary_outputs:
        for edge in _EDGES:
            if arrival[po][edge] > circuit_delay:
                circuit_delay = arrival[po][edge]
                critical_output = po
                critical_edge = edge

    req_target = circuit_delay if required_time is None else required_time

    # Required-time back-propagation.
    required: Dict[str, Dict[str, float]] = {
        net: {"rise": float("inf"), "fall": float("inf")} for net in arrival
    }
    for po in circuit.primary_outputs:
        for edge in _EDGES:
            required[po][edge] = min(required[po][edge], req_target)
    for name in reversed(circuit.topological_order()):
        gate = circuit.gates[name]
        for out_edge in _EDGES:
            req_out = required[name][out_edge]
            if req_out == float("inf"):
                continue
            d = gate_delay_used[name][out_edge]
            for net in gate.inputs:
                for in_edge in _input_edges_for(gate.cell, out_edge):
                    required[net][in_edge] = min(required[net][in_edge],
                                                 req_out - d)

    slack: Dict[str, float] = {}
    for net, arr in arrival.items():
        worst = float("inf")
        for edge in _EDGES:
            if required[net][edge] != float("inf"):
                worst = min(worst, required[net][edge] - arr[edge])
        if worst == float("inf"):
            # Net reaches no primary output (dangling logic): give it
            # the loosest meaningful bound instead of infinity.
            worst = req_target - max(arr.values())
        slack[net] = worst

    result = TimingResult(
        circuit_delay=circuit_delay,
        arrival=arrival,
        slack=slack,
        critical_output=critical_output,
        critical_edge=critical_edge,
        required_time=req_target,
        _pred=pred,
    )
    result._is_gate = {net: net in circuit.gates for net in arrival}
    return result
