"""Equivalence suite for the bit-packed batch engine (repro.sim.packed).

The packed simulator and the population leakage kernel must be *exact*
drop-ins for the scalar paths: same logic values as ``evaluate`` /
``evaluate_batch`` on every net, and bit-identical leakage floats to
``leakage_for_vector`` — across random generator circuits and every
ISCAS85 netlist.
"""

import gc
import weakref

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests._engines import assert_engines_match
from repro.cells.leakage import LeakageTable
from repro.cells.library import build_library
from repro.context import AnalysisContext
from repro.ivc.mlv import exhaustive_mlv_search, probability_based_mlv_search
from repro.leakage import (
    leakage_bounds_sampled,
    leakage_for_vector,
    leakage_for_vectors,
)
from repro.netlist import iscas85
from repro.netlist.generators import random_logic
from repro.sim import (
    PackedSimulator,
    estimate_activity,
    estimate_probabilities,
    evaluate,
    evaluate_batch,
    pack_matrix,
    unpack_matrix,
)
from repro.sim.logic import _cell_lut, default_library


@pytest.fixture(scope="module")
def table():
    return LeakageTable.build(default_library(), 400.0)


def random_population(circuit, n, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, (n, len(circuit.primary_inputs)),
                        dtype=np.uint8)


def as_pi_matrix(circuit, population):
    return {pi: population[:, i]
            for i, pi in enumerate(circuit.primary_inputs)}


class TestPackingLayout:
    @given(st.integers(1, 5), st.integers(1, 200), st.integers(0, 2 ** 32))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, rows, bits, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, 2, (rows, bits), dtype=np.uint8)
        words = pack_matrix(mat)
        assert words.dtype == np.uint64
        assert words.shape == (rows, -(-bits // 64))
        assert np.array_equal(unpack_matrix(words, bits), mat)

    def test_bit_j_lands_in_word_j_div_64(self):
        mat = np.zeros((1, 130), dtype=np.uint8)
        mat[0, 0] = mat[0, 64] = mat[0, 129] = 1
        words = pack_matrix(mat)[0]
        assert words[0] == 1
        assert words[1] == 1
        assert words[2] == 1 << (129 - 128)


class TestLogicEquivalence:
    @pytest.mark.parametrize("name", iscas85.NAMES)
    def test_iscas85_matches_evaluate_batch(self, name):
        circuit = iscas85.load(name)
        pop = random_population(circuit, 96, seed=7)
        pi_matrix = as_pi_matrix(circuit, pop)
        ref = evaluate_batch(circuit, pi_matrix)
        got = PackedSimulator(circuit).simulate(pi_matrix)
        assert set(ref) == set(got)
        for net in ref:
            assert np.array_equal(ref[net], got[net]), (name, net)

    @pytest.mark.parametrize("name", ["c432", "c880"])
    def test_iscas85_matches_scalar_evaluate(self, name):
        circuit = iscas85.load(name)
        pop = random_population(circuit, 16, seed=11)
        got = PackedSimulator(circuit).simulate(as_pi_matrix(circuit, pop))
        for r in range(pop.shape[0]):
            vector = {pi: int(pop[r, i])
                      for i, pi in enumerate(circuit.primary_inputs)}
            scalar = evaluate(circuit, vector)
            for net, value in scalar.items():
                assert value == got[net][r], (name, net, r)

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_random_circuits(self, seed):
        circuit = random_logic(f"rnd{seed}", n_inputs=9, n_outputs=4,
                               n_gates=60, seed=seed)
        pop = random_population(circuit, 70, seed=seed + 1)
        pi_matrix = as_pi_matrix(circuit, pop)
        ref = evaluate_batch(circuit, pi_matrix)
        got = PackedSimulator(circuit).simulate(pi_matrix)
        for net in ref:
            assert np.array_equal(ref[net], got[net]), net

    def test_population_sizes_beyond_one_word(self):
        # 1, exactly 64, and a partial final word all agree.
        circuit = iscas85.load("c432")
        sim = PackedSimulator(circuit)
        for n in (1, 63, 64, 65, 200):
            pop = random_population(circuit, n, seed=n)
            pi_matrix = as_pi_matrix(circuit, pop)
            ref = evaluate_batch(circuit, pi_matrix)
            got = sim.simulate(pi_matrix)
            for net in ref:
                assert np.array_equal(ref[net], got[net]), (n, net)

    def test_missing_input_raises(self):
        circuit = iscas85.load("c432")
        sim = PackedSimulator(circuit)
        with pytest.raises(KeyError, match="primary input"):
            sim.simulate({"1": np.array([0, 1], dtype=np.uint8)})

    def test_bad_population_shape_raises(self):
        circuit = iscas85.load("c432")
        sim = PackedSimulator(circuit)
        with pytest.raises(ValueError, match="shape"):
            sim.population_leakage(np.zeros((4, 3), dtype=np.uint8),
                                   LeakageTable.build(default_library(),
                                                      400.0))


class TestLeakageEquivalence:
    @pytest.mark.parametrize("name", iscas85.NAMES)
    def test_population_kernel_bit_identical(self, name, table):
        circuit = iscas85.load(name)
        pop = random_population(circuit, 48, seed=3)
        batch = leakage_for_vectors(circuit, pop, table)
        assert batch.shape == (48,)
        for r in range(pop.shape[0]):
            vector = {pi: int(pop[r, i])
                      for i, pi in enumerate(circuit.primary_inputs)}
            scalar = leakage_for_vector(circuit, vector, table)
            assert scalar == batch[r], (name, r)

    def test_accepts_bit_tuples(self, table):
        circuit = iscas85.load("c432")
        pop = random_population(circuit, 5, seed=9)
        rows = [tuple(int(b) for b in row) for row in pop]
        assert np.array_equal(leakage_for_vectors(circuit, rows, table),
                              leakage_for_vectors(circuit, pop, table))

    def test_chunking_matches_single_pass(self, table, monkeypatch):
        import repro.sim.packed as packed_mod

        circuit = iscas85.load("c432")
        pop = random_population(circuit, 100, seed=5)
        whole = leakage_for_vectors(circuit, pop, table)
        monkeypatch.setattr(packed_mod, "_CHUNK", 17)
        chunked = leakage_for_vectors(circuit, pop, table)
        assert np.array_equal(whole, chunked)

    def test_context_shares_scalar_cache(self, table):
        circuit = iscas85.load("c432")
        ctx = AnalysisContext(circuit, leakage_table=table)
        pop = random_population(circuit, 20, seed=1)
        first = ctx.population_leakage(pop)
        assert ctx.stats.misses("leakage_for_vector") == 20
        # Scalar queries for the same vectors are pure cache hits...
        bits = tuple(int(b) for b in pop[4])
        assert ctx.leakage_for_bits(bits) == first[4]
        assert ctx.stats.misses("leakage_for_vector") == 20
        # ... and a repeat batch is all hits, returning equal values.
        again = ctx.population_leakage(pop)
        assert np.array_equal(first, again)
        assert ctx.stats.misses("leakage_for_vector") == 20
        assert ctx.stats.hits("leakage_for_vector") >= 21

    def test_bounds_sampled_unchanged_and_context_joined(self, table):
        circuit = iscas85.load("c432")
        plain = leakage_bounds_sampled(circuit, table, n_vectors=32, seed=0)
        ctx = AnalysisContext(circuit, leakage_table=table)
        joined = leakage_bounds_sampled(circuit, table, n_vectors=32,
                                        seed=0, context=ctx)
        assert plain == joined
        assert ctx.stats.misses("leakage_for_vector") == 32
        assert plain["min"] <= plain["mean"] <= plain["max"]


class TestProbabilityEquivalence:
    def test_mean_ones_exact(self):
        circuit = iscas85.load("c880")
        pop = random_population(circuit, 333, seed=2)
        pi_matrix = as_pi_matrix(circuit, pop)
        ref = evaluate_batch(circuit, pi_matrix)
        means = PackedSimulator(circuit).mean_ones(pi_matrix)
        for net, arr in ref.items():
            assert means[net] == float(arr.mean()), net

    def test_estimate_probabilities_identical_via_context(self):
        # The context's monte-carlo route (packed popcounts) returns the
        # exact floats of the historical evaluate_batch + mean path.
        circuit = iscas85.load("c432")
        from repro.sim.probability import _estimate_impl

        scalar = _estimate_impl(circuit, 512, 4, None, default_library())
        ctx = AnalysisContext(circuit)
        packed = estimate_probabilities(circuit, n_vectors=512, seed=4,
                                        context=ctx)
        assert packed == scalar
        assert ctx.stats.misses("packed_simulator") == 1

    def test_estimate_activity_context_memoizes(self):
        circuit = iscas85.load("c432")
        plain = estimate_activity(circuit, n_vectors=256, seed=3)
        ctx = AnalysisContext(circuit)
        first = estimate_activity(circuit, n_vectors=256, seed=3,
                                  context=ctx)
        second = estimate_activity(circuit, n_vectors=256, seed=3,
                                   context=ctx)
        assert first == plain
        assert second == plain
        assert ctx.stats.misses("activity") == 1
        assert ctx.stats.hits("activity") == 1


class TestMlvEngineEquivalence:
    @pytest.mark.parametrize("name", ["c432", "c880"])
    def test_search_engines_identical(self, name, table):
        circuit = iscas85.load(name)
        assert_engines_match(
            lambda engine: probability_based_mlv_search(
                circuit, table, n_vectors=24, seed=5, engine=engine),
            engines=("packed", "scalar"))

    def test_exhaustive_engines_identical(self, table):
        circuit = random_logic("ex", n_inputs=7, n_outputs=3, n_gates=25,
                               seed=13)
        packed = assert_engines_match(
            lambda engine: exhaustive_mlv_search(circuit, table,
                                                 engine=engine),
            engines=("packed", "scalar"))
        assert packed.evaluated == 2 ** 7

    def test_unknown_engine_rejected(self, table):
        with pytest.raises(ValueError, match="engine"):
            probability_based_mlv_search(iscas85.load("c432"), table,
                                         engine="quantum")

    def test_absolute_window_wider_than_relative(self, table):
        # The paper-literal absolute window (4 % of *total* leakage) is
        # far wider than 4 % of the set minimum, so it keeps at least as
        # many vectors for the same search trajectory.
        circuit = iscas85.load("c432")
        rel = probability_based_mlv_search(circuit, table, n_vectors=24,
                                           seed=5, max_set_size=64)
        ab = probability_based_mlv_search(circuit, table, n_vectors=24,
                                          seed=5, max_set_size=64,
                                          window_policy="absolute")
        assert len(ab.records) >= len(rel.records)
        assert ab.best == rel.best
        with pytest.raises(ValueError, match="window_policy"):
            probability_based_mlv_search(circuit, table,
                                         window_policy="paper")


class TestCellLutCache:
    def test_cache_is_per_library_instance(self):
        lib_a = build_library()
        lib_b = build_library()
        lut_a = _cell_lut(lib_a, "NAND2")
        lut_b = _cell_lut(lib_b, "NAND2")
        assert np.array_equal(lut_a, lut_b)
        assert lut_a is not lut_b               # no cross-instance sharing
        assert _cell_lut(lib_a, "NAND2") is lut_a   # but memoized per lib

    def test_library_is_collectable(self):
        # The old id()-keyed module registry kept every library alive
        # forever (and could serve a stale LUT after id reuse); the
        # per-instance cache dies with its library.
        from repro.netlist import load_packaged

        lib = build_library()
        circuit = load_packaged("c17")
        evaluate(circuit, {pi: 0 for pi in circuit.primary_inputs}, lib)
        ref = weakref.ref(lib)
        del lib
        gc.collect()
        assert ref() is None
