"""Property-based tests of the temperature-aware NBTI model (eqs. 9-22).

Hypothesis draws random operating profiles, device stress descriptions,
and lifetimes, and checks the physical invariants the paper's model must
satisfy regardless of parameters: ΔVth grows with stress time, standby
temperature, and stress duty; recovery keeps AC degradation below the DC
bound; and the worst/best bounding cases of Sec. 3.1 really bound the
per-device shift.  Each invariant is asserted on the scalar oracle and
the vectorized kernel at once (their bit-identity is enforced separately
by ``tests/test_aging_compiled.py``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import TEN_YEARS
from repro.core import DeviceStress, OperatingProfile
from repro.core.aging import DEFAULT_MODEL
from repro.core.aging_compiled import CompiledNbtiModel

KERNEL = CompiledNbtiModel(DEFAULT_MODEL)

_SETTINGS = dict(max_examples=50, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

#: Random but physical operating profiles (active hotter than standby,
#: as in the paper; equality allowed for the isothermal edge case).
profiles = st.builds(
    OperatingProfile,
    active_fraction=st.floats(min_value=0.01, max_value=0.99),
    t_active=st.just(400.0),
    t_standby=st.floats(min_value=280.0, max_value=400.0),
)

devices = st.builds(
    DeviceStress,
    active_stress_duty=st.floats(min_value=0.0, max_value=1.0),
    standby_stressed=st.floats(min_value=0.0, max_value=1.0),
)

lifetimes = st.floats(min_value=1e3, max_value=TEN_YEARS)
vth0s = st.floats(min_value=0.1, max_value=0.5)


def shift(profile, device, t, vth0):
    """Scalar and kernel ΔVth together (sanity: they must agree)."""
    scalar = DEFAULT_MODEL.delta_vth(profile, device, t, vth0)
    batch = KERNEL.delta_vth(profile,
                             np.array([device.active_stress_duty]),
                             np.array([device.standby_fraction]), t, vth0)
    assert batch[0] == scalar
    return scalar


class TestMonotonicity:
    @given(profiles, devices, lifetimes, vth0s)
    @settings(**_SETTINGS)
    def test_monotone_in_time(self, profile, device, t, vth0):
        early = shift(profile, device, t, vth0)
        late = shift(profile, device, t * 2.0, vth0)
        assert late >= early >= 0.0

    @given(profiles, devices, lifetimes, vth0s,
           st.floats(min_value=1.0, max_value=60.0))
    @settings(**_SETTINGS)
    def test_monotone_in_standby_temperature(self, profile, device, t, vth0,
                                             dt):
        """Hotter standby diffuses H faster: more equivalent stress."""
        hotter = OperatingProfile(profile.active_fraction, profile.t_active,
                                  min(profile.t_standby + dt, 400.0),
                                  profile.period)
        assert (shift(hotter, device, t, vth0)
                >= shift(profile, device, t, vth0))

    @given(profiles, lifetimes, vth0s,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(**_SETTINGS)
    def test_monotone_in_duty(self, profile, t, vth0, duty_lo, duty_hi,
                              frac):
        lo, hi = sorted((duty_lo, duty_hi))
        assert (shift(profile, DeviceStress(hi, frac), t, vth0)
                >= shift(profile, DeviceStress(lo, frac), t, vth0))

    @given(profiles, devices, lifetimes, vth0s)
    @settings(**_SETTINGS)
    def test_monotone_in_standby_fraction(self, profile, device, t, vth0):
        parked = DeviceStress(device.active_stress_duty, 1.0)
        relaxed = DeviceStress(device.active_stress_duty, 0.0)
        dv = shift(profile, device, t, vth0)
        assert (shift(profile, parked, t, vth0) >= dv
                >= shift(profile, relaxed, t, vth0))


class TestBounds:
    @given(profiles, devices, lifetimes, vth0s)
    @settings(**_SETTINGS)
    def test_recovery_bounded_by_dc_worst_case(self, profile, device, t,
                                               vth0):
        """Any AC/recovering pattern degrades no more than permanent DC
        stress at the active temperature (the Fig. 1 upper bound)."""
        dc = DEFAULT_MODEL.delta_vth_dc(t, profile.t_active, vth0)
        assert shift(profile, device, t, vth0) <= dc

    @given(profiles, lifetimes, vth0s,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(**_SETTINGS)
    def test_worst_best_case_bracket(self, profile, t, vth0, duty, frac):
        """worst_case_shift >= delta_vth >= best_case_shift at equal
        active duty (Sec. 3.1's bounding standby states)."""
        device = DeviceStress(duty, frac)
        dv = shift(profile, device, t, vth0)
        worst = DEFAULT_MODEL.worst_case_shift(profile, t, vth0,
                                               active_duty=duty)
        best = DEFAULT_MODEL.best_case_shift(profile, t, vth0,
                                             active_duty=duty)
        # The closed form is monotone in the standby fraction, but its
        # float evaluation is not *exactly* so: at frac = 1 - 1ulp the
        # transcendental rounding can land one ulp past the frac = 1.0
        # bound, so the bracket is asserted to ulp-scale tolerance.
        slack = 1e-12
        assert worst >= dv * (1.0 - slack)
        assert dv >= best * (1.0 - slack)
        assert best >= 0.0

    @given(profiles, devices, lifetimes)
    @settings(**_SETTINGS)
    def test_lower_vth_ages_faster(self, profile, device, t):
        """Eq. (23): higher oxide field (lower Vth0) means more shift —
        the Fig. 12 / [51] variance-compensation mechanism."""
        assert (shift(profile, device, t, 0.15)
                >= shift(profile, device, t, 0.35))

    @given(devices, lifetimes, vth0s)
    @settings(**_SETTINGS)
    def test_isothermal_profile_has_no_temperature_discount(self, device, t,
                                                            vth0):
        """At T_standby == T_active the equivalent-time map is identity:
        the shift depends only on the total stress fraction."""
        iso = OperatingProfile(0.3, 400.0, 400.0)
        duty = device.active_stress_duty
        frac = device.standby_fraction
        total = duty * iso.active_fraction + frac * iso.standby_fraction
        flat = OperatingProfile(1.0, 400.0, 400.0)
        merged = DeviceStress(min(total, 1.0), 0.0)
        a = shift(iso, device, t, vth0)
        b = shift(flat, merged, t, vth0)
        assert a == pytest.approx(b, rel=1e-9)
