"""Fig. 5 — C432 performance degradation vs PMOS dVth degradation.

Paper setting: worst-case standby (all internal nodes 0), several
standby temperatures.  Two published observations to reproduce:

* circuit delay degradation (percent) is much smaller than the relative
  device dVth degradation at the same instant, and
* the standby temperature difference produces a clearly visible circuit
  delay difference.
"""

import numpy as np

from _common import emit
from repro.constants import TEN_YEARS, seconds_to_years
from repro.core import DEFAULT_MODEL, WORST_CASE_DEVICE, OperatingProfile
from repro.netlist import iscas85
from repro.sta import ALL_ZERO, AgingAnalyzer
from repro.tech import PTM90

TIMES = np.logspace(6, np.log10(TEN_YEARS), 8)
T_STANDBY = (330.0, 370.0, 400.0)


def run_fig05():
    circuit = iscas85.load("c432")
    analyzer = AgingAnalyzer()
    curves = {}
    for tst in T_STANDBY:
        profile = OperatingProfile.from_ras("1:9", t_standby=tst)
        series = []
        for t in TIMES:
            res = analyzer.aged_timing(circuit, profile, t, standby=ALL_ZERO)
            series.append(res.relative_degradation)
        curves[tst] = series
    # Reference device curve: relative Vth degradation at 330 K standby.
    profile = OperatingProfile.from_ras("1:9", t_standby=330.0)
    vth_rel = [DEFAULT_MODEL.delta_vth(profile, WORST_CASE_DEVICE, t, 0.22)
               / PTM90.pmos.vth0 for t in TIMES]
    return {"times": TIMES, "curves": curves, "vth_rel": vth_rel}


def check(data):
    for tst, series in data["curves"].items():
        assert all(b >= a for a, b in zip(series, series[1:]))
    # Circuit degradation << device degradation at matching condition.
    assert data["curves"][330.0][-1] < data["vth_rel"][-1]
    # Hotter standby -> visibly more delay degradation.
    assert data["curves"][400.0][-1] > data["curves"][330.0][-1] * 1.3


def report(data):
    rows = []
    for k, t in enumerate(data["times"]):
        rows.append(
            [f"{seconds_to_years(t):8.3f}"]
            + [f"{data['curves'][tst][k] * 100:5.2f}" for tst in T_STANDBY]
            + [f"{data['vth_rel'][k] * 100:5.2f}"])
    emit("Fig. 5 — c432 delay degradation (%) vs device dVth/Vth0 (%)",
         ["years"] + [f"delay@{t:.0f}K" for t in T_STANDBY]
         + ["dVth/Vth0@330K"], rows)


def test_fig05_c432_degradation(run_once):
    data = run_once(run_fig05)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig05()
    check(d)
    report(d)
