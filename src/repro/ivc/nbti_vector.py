"""Direct search for the minimum-degradation standby vector.

The paper co-optimizes by picking the best-aging vector *inside* the
minimum-leakage set.  Its own remark that the probability-based MLV
algorithm "can be easily modified to target at NBTI mitigation or
leakage and NBTI co-optimization" (Sec. 4.3.1) invites the dual:
run the same Fig. 7 probability loop with the *aged circuit delay* as
the objective, unconstrained by leakage, and measure what the leakage
bill of the NBTI-optimal vector is.  Together with the MLV search this
traces both ends of the leakage/aging trade-off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cells.leakage import LeakageTable
from repro.constants import TEN_YEARS
from repro.core.profiles import OperatingProfile
from repro.leakage.circuit import leakage_for_vector
from repro.netlist.circuit import Circuit
from repro.sim.vectors import bits_to_vector
from repro.sta.degradation import AgingAnalyzer


@dataclass(frozen=True)
class VectorObjectiveRecord:
    """One evaluated standby vector under an arbitrary objective."""

    bits: Tuple[int, ...]
    objective: float


@dataclass
class VectorSearchResult:
    """Outcome of a probability-based vector search.

    ``records`` ascend by objective; ``evaluated`` counts distinct
    vectors scored.
    """

    records: List[VectorObjectiveRecord]
    iterations: int
    converged: bool
    evaluated: int

    @property
    def best(self) -> VectorObjectiveRecord:
        return self.records[0]


def probability_search(circuit: Circuit,
                       objective: Callable[[Tuple[int, ...]], float], *,
                       n_vectors: int = 24,
                       max_iterations: int = 12,
                       keep_fraction: float = 0.25,
                       convergence_margin: float = 0.05,
                       max_set_size: int = 8,
                       seed: int = 0) -> VectorSearchResult:
    """The Fig. 7 probability loop for an arbitrary minimization target.

    Identical structure to the leakage version: evaluate a population,
    keep the elite ``keep_fraction``, learn per-PI probabilities from
    it, resample, stop when every probability saturates.
    """
    if n_vectors < 2:
        raise ValueError("need at least two vectors per round")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    rng = random.Random(seed)
    pis = circuit.primary_inputs
    seen: Dict[Tuple[int, ...], float] = {}

    def score(bits: Tuple[int, ...]) -> None:
        if bits not in seen:
            seen[bits] = objective(bits)

    for _ in range(n_vectors):
        score(tuple(rng.randint(0, 1) for _ in pis))

    iterations = 0
    converged = False
    keep = max(2, int(n_vectors * keep_fraction))
    for iterations in range(1, max_iterations + 1):
        elite = sorted(seen.items(), key=lambda kv: (kv[1], kv[0]))[:keep]
        probs = [sum(bits[k] for bits, _ in elite) / len(elite)
                 for k in range(len(pis))]
        if all(p <= convergence_margin or p >= 1.0 - convergence_margin
               for p in probs):
            converged = True
            break
        for _ in range(n_vectors):
            score(tuple(1 if rng.random() < p else 0 for p in probs))

    final = sorted(seen.items(), key=lambda kv: (kv[1], kv[0]))[:max_set_size]
    return VectorSearchResult(
        records=[VectorObjectiveRecord(bits=b, objective=v)
                 for b, v in final],
        iterations=iterations,
        converged=converged,
        evaluated=len(seen),
    )


def search_min_degradation_vector(circuit: Circuit,
                                  profile: OperatingProfile,
                                  t_total: float = TEN_YEARS, *,
                                  analyzer: Optional[AgingAnalyzer] = None,
                                  n_vectors: int = 16,
                                  max_iterations: int = 8,
                                  seed: int = 0) -> VectorSearchResult:
    """Probability search minimizing the aged circuit delay."""
    analyzer = analyzer or AgingAnalyzer()

    def objective(bits: Tuple[int, ...]) -> float:
        vector = bits_to_vector(circuit, bits)
        return analyzer.aged_timing(circuit, profile, t_total,
                                    standby=vector).aged_delay

    return probability_search(circuit, objective, n_vectors=n_vectors,
                              max_iterations=max_iterations, seed=seed)


@dataclass(frozen=True)
class TradeoffPoint:
    """One corner of the leakage/aging standby-vector trade-off."""

    label: str
    bits: Tuple[int, ...]
    leakage: float
    degradation: float


def leakage_aging_tradeoff(circuit: Circuit, profile: OperatingProfile,
                           table: LeakageTable,
                           t_total: float = TEN_YEARS, *,
                           analyzer: Optional[AgingAnalyzer] = None,
                           seed: int = 0) -> List[TradeoffPoint]:
    """Evaluate both single-objective optima under both metrics.

    Returns the leakage-optimal vector (from the Fig. 7 MLV search) and
    the aging-optimal vector (from :func:`search_min_degradation_vector`)
    each scored on *both* axes — the two ends the paper's co-selection
    interpolates between.
    """
    from repro.ivc.mlv import probability_based_mlv_search
    analyzer = analyzer or AgingAnalyzer()
    mlv = probability_based_mlv_search(circuit, table, seed=seed,
                                       n_vectors=32, max_set_size=4)
    aging = search_min_degradation_vector(circuit, profile, t_total,
                                          analyzer=analyzer, seed=seed)

    def point(label: str, bits: Tuple[int, ...]) -> TradeoffPoint:
        vector = bits_to_vector(circuit, bits)
        res = analyzer.aged_timing(circuit, profile, t_total, standby=vector)
        return TradeoffPoint(
            label=label, bits=bits,
            leakage=leakage_for_vector(circuit, vector, table),
            degradation=res.relative_degradation)

    return [point("leakage-optimal", mlv.best.bits),
            point("aging-optimal", aging.best.bits)]
