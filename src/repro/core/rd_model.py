"""Reaction-diffusion (R-D) NBTI device model (paper eqs. 1-6).

The paper adopts the Stathis/Zafar R-D picture [3]: negative gate bias
dissociates Si-H bonds at the Si/SiO2 interface (rate ``k_f``), freed
hydrogen diffuses into the oxide (coefficient ``D_H``), and some hydrogen
re-passivates traps (rate ``k_r``).  Under quasi-equilibrium with an
effectively infinite oxide the trap density grows as

    N_it(t) = 1.16 * sqrt(k_f N_0 / k_r) * (D_H t)^(1/4)          (eq. 5)

and when stress is removed after ``t_stress`` it relaxes as

    N_it(t) = N_it0 / (1 + sqrt(t / t_stress))                    (eq. 6)

All three rates are Arrhenius in temperature (eqs. 13-15); because
``E_f ~ E_r``, the overall activation reduces to the H-diffusion term,
``E_A ~ E_D / 4`` (eq. 16, [47]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import BOLTZMANN_EV


@dataclass(frozen=True)
class RDParameters:
    """Physical parameters of the reaction-diffusion system.

    Attributes:
        n0: initial interface Si-H bond density (cm^-2).
        kf0 / ef: bond-dissociation rate pre-factor (1/s) and activation
            energy (eV).
        kr0 / er: re-passivation rate pre-factor and activation (eV).
        dh0 / ed: H diffusion pre-factor (cm^2/s) and activation (eV).
            ``ed`` carries essentially all the temperature dependence of
            N_it (eq. 16); 0.49 eV is the molecular-hydrogen value [47].
    """

    n0: float = 5.0e12
    kf0: float = 3.0e2
    ef: float = 0.20
    kr0: float = 2.0e-2
    er: float = 0.20
    dh0: float = 1.0e-3
    ed: float = 0.49

    def kf(self, temperature: float) -> float:
        """Dissociation rate at ``temperature`` (1/s)."""
        return self.kf0 * math.exp(-self.ef / (BOLTZMANN_EV * temperature))

    def kr(self, temperature: float) -> float:
        """Annealing (re-passivation) rate at ``temperature`` (1/s)."""
        return self.kr0 * math.exp(-self.er / (BOLTZMANN_EV * temperature))

    def dh(self, temperature: float) -> float:
        """H diffusion coefficient at ``temperature`` (cm^2/s)."""
        return self.dh0 * math.exp(-self.ed / (BOLTZMANN_EV * temperature))

    def activation_energy(self) -> float:
        """Overall N_it activation energy, eq. (16): E_D/4 + (E_f-E_r)/2."""
        return 0.25 * self.ed + 0.5 * (self.ef - self.er)


#: Default parameter set used throughout the library.
DEFAULT_RD = RDParameters()


def nit_prefactor(temperature: float, params: RDParameters = DEFAULT_RD) -> float:
    """The ``A`` in ``N_it = A t^(1/4)`` (cm^-2 s^-1/4), eq. (5)."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    return 1.16 * math.sqrt(params.kf(temperature) * params.n0 /
                            params.kr(temperature)) * params.dh(temperature) ** 0.25


def interface_traps_dc(t: float, temperature: float,
                       params: RDParameters = DEFAULT_RD) -> float:
    """DC-stress interface trap density after ``t`` seconds, eq. (5)."""
    if t < 0:
        raise ValueError("time must be non-negative")
    return nit_prefactor(temperature, params) * t ** 0.25


def recovery_fraction(t_recovery: float, t_stress: float) -> float:
    """Surviving fraction of traps after recovery, eq. (6).

    ``N_it(t)/N_it0 = 1 / (1 + sqrt(t_recovery / t_stress))``.
    """
    if t_stress <= 0:
        raise ValueError("stress time must be positive")
    if t_recovery < 0:
        raise ValueError("recovery time must be non-negative")
    return 1.0 / (1.0 + math.sqrt(t_recovery / t_stress))


def interface_traps_after_recovery(t_recovery: float, t_stress: float,
                                   temperature: float,
                                   params: RDParameters = DEFAULT_RD) -> float:
    """One stress phase followed by one relaxation phase (eqs. 5 + 6)."""
    return (interface_traps_dc(t_stress, temperature, params)
            * recovery_fraction(t_recovery, t_stress))
