"""Process-pool execution tier: one isolated process per job attempt.

Each claimed job runs in its own child process (:class:`JobProcess`),
spawned through the platform's default multiprocessing start method —
the same isolation model as :mod:`repro.flow.parallel`, sharpened for
fault injection: a worker that is SIGKILLed, times out, or raises only
ever costs *its* job one attempt; the queue keeps draining.

Bundle shipping reuses the artifact plane end to end: the parent
lowers each distinct circuit **once** (:func:`prepare_bundle`, served
from / persisted to the content-addressed store, deduplicated
in-process per fingerprint), and ships the compiled
:class:`~repro.artifacts.bundle.ArtifactBundle` to the child, which
hydrates a warm :class:`~repro.context.AnalysisContext` — workers
never re-lower a circuit, and hydrated results are bit-identical to
rebuilt ones (the PR 6 invariant).

The child runs under fresh per-process observability state (exactly
like the sweep runner's ``_ObservedWorker``) and ships its spans,
metric snapshot, and cache stats back through the result pipe, so the
service's ``/metrics`` RunReport shows worker-side kernel activity
merged deterministically in claim order.

Result protocol over the pipe (one message, then EOF):

* ``{"ok": True, "numbers": {...}, "spans": [...], "metrics": {...},
  "cache_stats": [...]}`` — analysis succeeded; the parent persists
  ``numbers`` to the result cache *before* marking the job done.
* ``{"ok": False, "error": {...}}`` — the analysis raised; structured
  error attached.
* no message + dead process — the worker crashed (or was killed); the
  parent synthesizes a ``worker-crashed`` error from the exit code.

Fault injection (``JobRecord.fault``, honored only when the service
runs with ``allow_faults``) deterministically reproduces the failure
modes the hardening suite needs: ``{"delay": s}`` sleeps before the
analysis (a killable window), ``{"exit": code}`` dies without a
message (a crash), ``{"raise": msg}`` raises inside the analysis.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.serve.protocol import AgeScenario, structured_error


def run_age_analysis(bundle: Any, scenario: AgeScenario) -> Dict[str, Any]:
    """The job payload: aged-delay numbers for one (circuit, scenario).

    Hydrates the shipped bundle (no lowering) and runs the same
    summary-path analysis as ``repro age``, so the persisted numbers
    are float-for-float identical to the CLI's — the cache-equivalence
    acceptance test depends on this.
    """
    from repro.sta import ALL_ONE, ALL_ZERO

    context = bundle.hydrate()
    obs.gauge("serve.worker.gates", context.circuit.n_gates())
    standby = {"worst": ALL_ZERO, "best": ALL_ONE}[scenario.standby]
    res = context.aged_delays(scenario.profile(),
                              scenario.lifetime_seconds(),
                              standby=standby)
    return {"fresh_delay": res.fresh_delay,
            "aged_delay": res.aged_delay,
            "degradation": res.relative_degradation,
            "max_shift": res.max_shift}


def _apply_fault(fault: Optional[Dict[str, Any]]) -> None:
    """Deterministic failure modes for the fault-injection suite."""
    if not fault:
        return
    delay = fault.get("delay")
    if delay:
        time.sleep(float(delay))
    exit_code = fault.get("exit")
    if exit_code is not None:
        os._exit(int(exit_code))
    message = fault.get("raise")
    if message is not None:
        raise RuntimeError(str(message))


def _job_child(conn, bundle: Any, scenario: AgeScenario,
               fault: Optional[Dict[str, Any]]) -> None:
    """Child-process entry point: analyze, ship one message, exit."""
    try:
        _apply_fault(fault)
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        captured: list = []
        with obs.use_tracer(tracer), obs.use_metrics(registry), \
                obs.cache_scope(captured):
            with obs.span("serve.worker.age",
                          circuit=bundle.circuit_name,
                          pid=os.getpid()):
                numbers = run_age_analysis(bundle, scenario)
        conn.send({"ok": True, "numbers": numbers,
                   "spans": tracer.span_dicts(),
                   "metrics": registry.snapshot(),
                   "cache_stats": captured})
    except BaseException as exc:  # ship *any* failure as data
        try:
            conn.send({"ok": False, "error": structured_error(
                "analysis-error", str(exc) or exc.__class__.__name__,
                exception=exc.__class__.__name__)})
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class JobProcess:
    """One job attempt running in its own process, with a deadline.

    The parent polls :meth:`outcome`; terminal outcomes are
    ``("ok", payload)``, ``("error", error_dict)``,
    ``("crashed", error_dict)``, or ``("timeout", error_dict)``.
    """

    def __init__(self, job_id: str, bundle: Any, scenario: AgeScenario,
                 *, timeout_s: float,
                 fault: Optional[Dict[str, Any]] = None,
                 mp_context=None) -> None:
        ctx = mp_context or multiprocessing.get_context()
        self.job_id = job_id
        self._parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._process = ctx.Process(
            target=_job_child,
            args=(child_conn, bundle, scenario, fault),
            daemon=True)
        self._process.start()
        child_conn.close()  # the child owns its end now
        self.started = time.monotonic()
        self.deadline = self.started + timeout_s
        #: Adoption slot assigned by the scheduler at launch (see
        #: ServiceObs.alloc_seq); None outside a service.
        self.seq: Optional[int] = None
        self._payload: Optional[Dict[str, Any]] = None

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def _drain_pipe(self) -> None:
        if self._payload is None and self._parent_conn.poll():
            try:
                self._payload = self._parent_conn.recv()
            except (EOFError, OSError):
                pass

    def outcome(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """The attempt's terminal outcome, or ``None`` while running.

        Checks the result pipe *before* liveness so a worker that sent
        its message and exited between polls is never misread as a
        crash.  A worker past its deadline is killed and reported as a
        ``timeout``.
        """
        self._drain_pipe()
        if self._payload is not None:
            self._process.join(timeout=5.0)
            if self._payload.get("ok"):
                return ("ok", self._payload)
            return ("error", self._payload.get(
                "error", structured_error("analysis-error",
                                          "worker sent no error detail")))
        if not self._process.is_alive():
            self._drain_pipe()  # message raced the exit
            if self._payload is not None:
                return self.outcome()
            code = self._process.exitcode
            detail: Dict[str, Any] = {"exitcode": code}
            if code is not None and code < 0:
                detail["signal"] = -code
                message = (f"worker killed by signal {-code} "
                           f"({signal.Signals(-code).name})"
                           if -code in signal.Signals.__members__.values()
                           else f"worker killed by signal {-code}")
            else:
                message = f"worker exited with code {code} and no result"
            return ("crashed", structured_error("worker-crashed", message,
                                                **detail))
        if time.monotonic() >= self.deadline:
            self.kill()
            return ("timeout", structured_error(
                "timeout", "worker exceeded its per-job timeout",
                pid=self.pid))
        return None

    def kill(self) -> None:
        """Terminate the worker (SIGTERM, then SIGKILL) and reap it."""
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=1.0)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)

    def close(self) -> None:
        """Release the pipe and process handles."""
        try:
            self._parent_conn.close()
        except OSError:
            pass
        self._process.close()


class BundleCache:
    """Per-circuit compiled-bundle preparation, deduplicated twice.

    In-process: one build per circuit fingerprint, serialized by a
    lock (concurrent submissions of the same circuit lower it once).
    Cross-process: the build goes through the content-addressed store,
    whose per-key ``.lock`` path serializes same-key writers between
    *servers* sharing one store — together, N concurrent submissions
    of one circuit produce exactly one stored bundle.
    """

    def __init__(self, store: Any, observer: Any = None) -> None:
        self.store = store
        self.obs = observer
        self._lock = None
        self._bundles: Dict[str, Any] = {}
        import threading

        self._lock = threading.Lock()

    def bundle_for(self, circuit_source: str, circuit_fp: str) -> Any:
        """The compiled bundle of one circuit (build-once semantics)."""
        from repro.context import AnalysisContext
        from repro.flow.parallel import load_circuit

        with self._lock:
            bundle = self._bundles.get(circuit_fp)
            if bundle is not None:
                if self.obs is not None:
                    self.obs.count("serve.bundle_reuses")
                return bundle
            circuit = load_circuit(circuit_source)
            context = AnalysisContext(circuit, store=self.store)
            bundle = context.save_to_store()
            self._bundles[circuit_fp] = bundle
            if self.obs is not None:
                self.obs.count("serve.bundle_builds")
            return bundle
