"""Perf harness — compiled STA kernel vs the scalar oracle.

Two measurements, both asserting bit-identical results in-run:

* **Batched Monte-Carlo** (the Fig. 12 shape): per-die aged circuit
  delays for a ``(gates, samples)`` ΔVth matrix, timed as one batched
  ``CompiledTiming.delays_batch`` call (matrix assembly included)
  against the historic one-STA-per-die scalar loop.
* **Incremental sizing** (the Sec. 4.2 loop): ``size_for_aging`` with
  ``engine="compiled"`` (fanout-cone re-timing per trial) against
  ``engine="scalar"`` (full forward pass per trial), on a shared
  pre-primed context so the aging-model work is excluded from both.

Default configuration is the acceptance-criterion run (c7552 with 200
Monte-Carlo dies, >= 5x; c880 sizing, >= 2x).  Set ``BENCH_SMOKE=1``
for a seconds-scale CI smoke run (c432, 32 dies, speedup merely > 0.5x)
that still exercises the whole harness and emits ``BENCH_sta.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import emit, record_history
from repro import AnalysisContext
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow.sizing import size_for_aging
from repro.netlist import iscas85
from repro.variation.statistical import FastAgedTimer

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
MC_CIRCUIT = "c432" if SMOKE else "c7552"
MC_SAMPLES = 32 if SMOKE else 200
MIN_SPEEDUP_MC = 0.5 if SMOKE else 5.0
SIZING_CIRCUIT = "c432" if SMOKE else "c880"
MIN_SPEEDUP_SIZING = 0.5 if SMOKE else 2.0
PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
ARTIFACT = Path(__file__).with_name("BENCH_sta.json")


def run_perf_mc():
    """Per-die delays of a Monte-Carlo ΔVth population, both engines."""
    circuit = iscas85.load(MC_CIRCUIT)
    ctx = AnalysisContext(circuit)
    compiled = ctx.compiled_timing()
    scalar_timer = FastAgedTimer(circuit, engine="scalar")

    # Per-die ΔVth: the nominal 10-year shift modulated per die/gate,
    # the shape statistical_aging feeds the timer at each Fig. 12 point.
    # The compiled engine assembles its (gates, dies) matrix with
    # vectorized ops (as statistical_aging does); the scalar loop takes
    # the same population as per-die dicts, bit-identical entry-wise.
    nominal = ctx.gate_shifts(PROFILE, TEN_YEARS)
    names = compiled.gate_names
    nominal_vec = np.array([nominal[g] for g in names])
    rng = np.random.default_rng(12)
    spread = rng.normal(1.0, 0.15, (len(names), MC_SAMPLES))
    dies = [{g: float(nominal[g] * spread[i, k])
             for i, g in enumerate(names)} for k in range(MC_SAMPLES)]

    compiled.base_delays()  # warm the shared fresh-delay cache
    scalar_timer.circuit_delay(delta_vth=dies[0])

    start = time.perf_counter()
    matrix = nominal_vec[:, None] * spread
    batched = compiled.delays_batch(matrix)
    t_batched = time.perf_counter() - start

    start = time.perf_counter()
    looped = np.array([scalar_timer.circuit_delay(delta_vth=die)
                       for die in dies])
    t_scalar = time.perf_counter() - start

    return {
        "circuit": MC_CIRCUIT,
        "n_samples": MC_SAMPLES,
        "scalar_seconds": t_scalar,
        "batched_seconds": t_batched,
        "speedup": t_scalar / t_batched,
        "scalar_stas_per_second": MC_SAMPLES / t_scalar,
        "batched_stas_per_second": MC_SAMPLES / t_batched,
        "identical": bool(np.array_equal(batched, looped)),
    }


def run_perf_sizing():
    """Greedy aging-driven sizing, incremental-cone vs full re-walk."""
    circuit = iscas85.load(SIZING_CIRCUIT)
    ctx = AnalysisContext(circuit)
    ctx.gate_shifts(PROFILE, TEN_YEARS)  # prime: exclude model work

    start = time.perf_counter()
    fast = size_for_aging(circuit, PROFILE, context=ctx, engine="compiled")
    t_fast = time.perf_counter() - start

    start = time.perf_counter()
    slow = size_for_aging(circuit, PROFILE, context=ctx, engine="scalar")
    t_slow = time.perf_counter() - start

    return {
        "circuit": SIZING_CIRCUIT,
        "n_gates": circuit.n_gates(),
        "scalar_seconds": t_slow,
        "incremental_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "resized_gates": len(fast.sizes),
        "identical": (fast.sizes == slow.sizes
                      and fast.achieved_delay == slow.achieved_delay
                      and fast.area_factor == slow.area_factor
                      and fast.met == slow.met),
    }


def run_perf_sta():
    return {"smoke": SMOKE, "monte_carlo": run_perf_mc(),
            "sizing": run_perf_sizing()}


def check(row):
    mc, sz = row["monte_carlo"], row["sizing"]
    assert mc["identical"], \
        "batched kernel diverged from the scalar per-die loop"
    assert sz["identical"], \
        "incremental sizing diverged from the scalar engine"
    assert mc["speedup"] >= MIN_SPEEDUP_MC, (
        f"batched MC only {mc['speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_MC:.1f}x)")
    assert sz["speedup"] >= MIN_SPEEDUP_SIZING, (
        f"incremental sizing only {sz['speedup']:.1f}x faster "
        f"(bar: {MIN_SPEEDUP_SIZING:.1f}x)")


def report(row):
    mc, sz = row["monte_carlo"], row["sizing"]
    emit(f"Monte-Carlo aged STA — {mc['circuit']}, "
         f"{mc['n_samples']} dies",
         ["engine", "wall (s)", "STAs/s"],
         [["scalar loop", f"{mc['scalar_seconds']:.3f}",
           f"{mc['scalar_stas_per_second']:,.0f}"],
          ["batched kernel", f"{mc['batched_seconds']:.3f}",
           f"{mc['batched_stas_per_second']:,.0f}"]])
    print(f"MC speedup: {mc['speedup']:.1f}x (bar: {MIN_SPEEDUP_MC:.1f}x), "
          f"bit-identical: {mc['identical']}")
    emit(f"Aging-driven sizing — {sz['circuit']}, "
         f"{sz['n_gates']} gates",
         ["engine", "wall (s)"],
         [["scalar re-walk", f"{sz['scalar_seconds']:.3f}"],
          ["incremental cone", f"{sz['incremental_seconds']:.3f}"]])
    print(f"sizing speedup: {sz['speedup']:.1f}x "
          f"(bar: {MIN_SPEEDUP_SIZING:.1f}x), identical result: "
          f"{sz['identical']}")
    ARTIFACT.write_text(json.dumps(row, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    record_history("perf_sta", wall_seconds=mc["batched_seconds"],
                   speedup=mc["speedup"], smoke=row["smoke"],
                   extra={"sizing_speedup": sz["speedup"]})


def test_perf_sta(run_once):
    row = run_once(run_perf_sta)
    check(row)
    report(row)


if __name__ == "__main__":
    r = run_perf_sta()
    check(r)
    report(r)
