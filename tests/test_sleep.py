"""Tests for sleep-transistor sizing and insertion (Figs. 8-11)."""

import pytest

from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.netlist import iscas85, random_logic
from repro.sleep import (
    SleepStyle,
    design_sleep_transistor,
    estimate_block_current,
    fig8_grid,
    fig9_grid,
    gated_aged_delay,
    max_virtual_rail_drop,
    nbti_aware_aspect_ratio,
    size_increase_fraction,
    st_aspect_ratio,
    st_vth_shift,
)
from repro.sta import ALL_ZERO, AgingAnalyzer
from repro.tech import PTM90


@pytest.fixture(scope="module")
def circuit():
    return random_logic("blk", n_inputs=16, n_outputs=4, n_gates=120, seed=21)


class TestFig8:
    def test_paper_endpoints_exact(self):
        grid = fig8_grid()
        assert grid[(0.20, "9:1")] == pytest.approx(30.3e-3, rel=1e-6)
        assert grid[(0.40, "1:9")] == pytest.approx(6.7e-3, rel=1e-6)

    def test_shift_decreases_with_initial_vth(self):
        grid = fig8_grid()
        for ras in ("1:9", "9:1"):
            col = [grid[(v, ras)] for v in (0.20, 0.25, 0.30, 0.35, 0.40)]
            assert col == sorted(col, reverse=True)

    def test_shift_increases_with_active_fraction(self):
        grid = fig8_grid()
        for vth in (0.20, 0.40):
            row = [grid[(vth, r)] for r in ("1:9", "1:5", "1:1", "5:1", "9:1")]
            assert row == sorted(row)

    def test_standby_temperature_irrelevant(self):
        """The header relaxes in standby; recovery is temperature-
        insensitive, so T_standby must not matter (paper's observation)."""
        a = st_vth_shift(0.25, "1:5", t_standby=330.0)
        b = st_vth_shift(0.25, "1:5", t_standby=400.0)
        assert a == pytest.approx(b, rel=1e-12)


class TestFig9:
    def test_paper_endpoints(self):
        grid = fig9_grid()
        assert grid[(0.20, "9:1")] == pytest.approx(0.0394, abs=5e-4)
        assert grid[(0.40, "1:9")] == pytest.approx(0.0113, abs=5e-4)

    def test_monotone_in_shift(self):
        assert (size_increase_fraction(0.030, 0.20)
                > size_increase_fraction(0.010, 0.20))

    def test_eq31_formula(self):
        # Delta(W/L)/(W/L) = dVth / (Vdd - Vth0 - dVth).
        dv, vth = 0.0303, 0.20
        assert size_increase_fraction(dv, vth) == pytest.approx(
            dv / (1.0 - vth - dv))

    def test_guards(self):
        with pytest.raises(ValueError):
            size_increase_fraction(-0.01, 0.2)
        with pytest.raises(ValueError):
            size_increase_fraction(0.5, 0.6)


class TestSizing:
    def test_drop_bound_scales_with_beta(self):
        assert (max_virtual_rail_drop(0.05)
                == pytest.approx(5 * max_virtual_rail_drop(0.01)))

    def test_drop_bound_guard(self):
        with pytest.raises(ValueError):
            max_virtual_rail_drop(0.0)

    def test_aspect_ratio_inverse_in_drop(self):
        a = st_aspect_ratio(1e-3, 0.02, 0.22)
        b = st_aspect_ratio(1e-3, 0.04, 0.22)
        assert a == pytest.approx(2 * b)

    def test_aspect_ratio_guards(self):
        with pytest.raises(ValueError):
            st_aspect_ratio(0.0, 0.02, 0.22)
        with pytest.raises(ValueError):
            st_aspect_ratio(1e-3, 0.02, 1.2)

    def test_nbti_aware_is_larger(self):
        base = st_aspect_ratio(1e-3, 0.02, 0.22)
        aware = nbti_aware_aspect_ratio(1e-3, 0.02, 0.22, 0.02)
        assert aware > base

    def test_block_current_positive_and_scales(self, circuit):
        base = estimate_block_current(circuit)
        assert base > 0
        # Linear in the assumed switching simultaneity.
        double = estimate_block_current(circuit, simultaneity=0.4)
        assert double == pytest.approx(2 * base)

    def test_simultaneity_guard(self, circuit):
        with pytest.raises(ValueError):
            estimate_block_current(circuit, simultaneity=0.0)


class TestInsertion:
    PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)

    def test_design_fields(self, circuit):
        d = design_sleep_transistor(circuit, SleepStyle.HEADER, beta=0.05)
        assert d.v_st == pytest.approx(max_virtual_rail_drop(0.05))
        assert d.aspect_ratio > 0
        assert d.nbti_margin == 0.0

    def test_time0_penalty_close_to_beta(self, circuit):
        an = AgingAnalyzer()
        fresh = an.aged_timing(circuit, self.PROFILE, 0.0).fresh_delay
        for beta in (0.05, 0.01):
            d = design_sleep_transistor(circuit, SleepStyle.HEADER, beta)
            pt = gated_aged_delay(circuit, d, self.PROFILE, 0.0)
            penalty = pt.circuit_delay / fresh - 1.0
            assert penalty == pytest.approx(beta, rel=0.25)

    def test_lower_beta_lower_lifetime_delay(self, circuit):
        points = []
        for beta in (0.05, 0.03, 0.01):
            d = design_sleep_transistor(circuit, SleepStyle.HEADER, beta)
            points.append(gated_aged_delay(circuit, d, self.PROFILE,
                                           TEN_YEARS).circuit_delay)
        assert points == sorted(points, reverse=True)

    def test_header_ages_footer_does_not(self, circuit):
        header = design_sleep_transistor(circuit, SleepStyle.HEADER, 0.03)
        footer = design_sleep_transistor(circuit, SleepStyle.FOOTER, 0.03)
        pt_h = gated_aged_delay(circuit, header, self.PROFILE, TEN_YEARS)
        pt_f = gated_aged_delay(circuit, footer, self.PROFILE, TEN_YEARS)
        assert pt_h.st_delta_vth > 0
        assert pt_f.st_delta_vth == 0.0
        assert pt_h.v_st > footer.v_st - 1e-12
        assert pt_f.v_st == pytest.approx(footer.v_st)

    def test_nbti_aware_sizing_caps_drop(self, circuit):
        margin = st_vth_shift(0.22, "1:9")
        aware = design_sleep_transistor(circuit, SleepStyle.HEADER, 0.03,
                                        nbti_margin=margin)
        plain = design_sleep_transistor(circuit, SleepStyle.HEADER, 0.03)
        assert aware.aspect_ratio > plain.aspect_ratio
        pt_aware = gated_aged_delay(circuit, aware, self.PROFILE, TEN_YEARS)
        pt_plain = gated_aged_delay(circuit, plain, self.PROFILE, TEN_YEARS)
        assert pt_aware.v_st <= pt_plain.v_st + 1e-12
        assert pt_aware.circuit_delay <= pt_plain.circuit_delay + 1e-15

    def test_fig11_crossover(self, circuit):
        """The paper's Fig. 11 headline: at hot standby, a beta = 1 %
        sleep transistor yields a *faster* 10-year circuit than no ST."""
        an = AgingAnalyzer()
        hot = OperatingProfile.from_ras("1:9", t_standby=400.0)
        no_st = an.aged_timing(circuit, hot, TEN_YEARS, standby=ALL_ZERO)
        d = design_sleep_transistor(circuit, SleepStyle.HEADER, beta=0.01)
        with_st = gated_aged_delay(circuit, d, hot, TEN_YEARS)
        assert with_st.circuit_delay < no_st.aged_delay

    def test_gated_standby_matches_best_case_shifts(self, circuit):
        """Internal aging under any ST style equals the all-PMOS-at-1
        best case (Vgs ~ 0 for every internal PMOS in standby)."""
        an = AgingAnalyzer()
        from repro.sta import ALL_ONE
        best = an.aged_timing(circuit, self.PROFILE, TEN_YEARS,
                              standby=ALL_ONE)
        d = design_sleep_transistor(circuit, SleepStyle.FOOTER, 0.03)
        pt = gated_aged_delay(circuit, d, self.PROFILE, TEN_YEARS)
        # Same internal shifts; only the rail drop differs.
        base = an.aged_timing(circuit, self.PROFILE, 0.0).fresh_delay
        assert pt.circuit_delay > best.aged_delay  # pays the drop
        assert pt.circuit_delay < best.aged_delay * (1 + 0.05)
