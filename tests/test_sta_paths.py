"""Tests for K-longest-path enumeration."""

import pytest

from repro.netlist import Circuit, Gate, iscas85, load_packaged, random_logic
from repro.sta import analyze, enumerate_paths, path_slack_profile


@pytest.fixture(scope="module")
def c17():
    return load_packaged("c17")


class TestEnumeration:
    def test_top_path_matches_sta(self, c17):
        paths = enumerate_paths(c17, 1)
        assert paths[0].delay == pytest.approx(analyze(c17).circuit_delay,
                                               rel=1e-12)

    def test_descending_order(self, c17):
        paths = enumerate_paths(c17, 10)
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_paths_are_connected(self, c17):
        for path in enumerate_paths(c17, 6):
            nodes = path.nodes
            assert nodes[0][0] in c17.primary_inputs
            assert nodes[-1][0] in c17.primary_outputs
            for (a, _), (b, _) in zip(nodes, nodes[1:]):
                assert a in c17.gates[b].inputs

    def test_paths_unique(self, c17):
        paths = enumerate_paths(c17, 12)
        assert len({p.nodes for p in paths}) == len(paths)

    def test_k_limits_output(self, c17):
        assert len(enumerate_paths(c17, 3)) == 3

    def test_exhausts_small_circuit(self):
        c = Circuit("chain", ["a"], ["g2"], [
            Gate("g1", "INV", ["a"]),
            Gate("g2", "INV", ["g1"]),
        ])
        # Exactly 2 structural paths (rise and fall endpoints).
        paths = enumerate_paths(c, 10)
        assert len(paths) == 2

    def test_k_guard(self, c17):
        with pytest.raises(ValueError):
            enumerate_paths(c17, 0)

    def test_aged_paths_longer(self, c17):
        fresh = enumerate_paths(c17, 1)[0].delay
        shifts = {g: 0.03 for g in c17.gates}
        aged = enumerate_paths(c17, 1, delta_vth=shifts)[0].delay
        assert aged > fresh

    def test_aged_top_path_matches_aged_sta(self):
        c = iscas85.load("c432")
        shifts = {g: 0.001 * (i % 7) for i, g in enumerate(c.gates)}
        top = enumerate_paths(c, 1, delta_vth=shifts)[0].delay
        sta = analyze(c, delta_vth=shifts).circuit_delay
        assert top == pytest.approx(sta, rel=1e-12)

    def test_benchmark_scale(self):
        paths = enumerate_paths(iscas85.load("c880"), 50)
        assert len(paths) == 50
        assert paths[0].delay >= paths[-1].delay


class TestSlackProfile:
    def test_first_slack_zero(self, c17):
        profile = path_slack_profile(c17, 5)
        assert profile[0] == pytest.approx(0.0, abs=1e-18)
        assert all(s >= -1e-18 for s in profile)

    def test_path_swarm_on_balanced_circuit(self):
        """The multiplier's adder array has many near-equal paths — the
        swarm that defeats single-path optimization."""
        c = iscas85.load("c6288")
        profile = path_slack_profile(c, 20)
        worst = enumerate_paths(c, 1)[0].delay
        assert profile[-1] < 0.05 * worst
