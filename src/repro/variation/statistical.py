"""Statistical aging timing: delay distributions over lifetime (Fig. 12).

For each Monte-Carlo die:

* every gate gets a Vth0 offset (process variation),
* its NBTI shift is the nominal shift scaled by the calibration's
  oxide-field factor at the offset threshold — low-Vth gates age faster,
  the [51] compensation effect,
* the circuit delay is re-evaluated.

A fast timer caches the fresh per-gate delays once and re-runs only the
arrival propagation with the eq. (22) multiplicative factors, so
hundreds of samples per lifetime point stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.cells.library import Library
from repro.constants import TEN_YEARS, years
from repro.core.aging_compiled import CompiledNbtiModel
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sta.analysis import _EDGES, _input_edges_for
from repro.sta.compiled import CompiledTiming
from repro.sta.degradation import ALL_ZERO, AgingAnalyzer, StandbyStates
from repro.variation.sampling import VariationModel


class FastAgedTimer:
    """Arrival-only STA with cached fresh delays (kernel shim).

    Valid for the paper's ``per_gate`` aging mode, where an aged gate's
    delay is its fresh delay times ``1 + alpha dVth/(Vdd - Vth0)`` on
    both edges.  Historically this class carried its own copy of the
    arrival propagation; it is now a thin facade over
    :class:`repro.sta.compiled.CompiledTiming` (sharing the context's
    memoized artifact when one is supplied), with the legacy dict-walk
    retained behind ``engine="scalar"`` as the equivalence oracle.
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None,
                 *, context=None, engine: str = "compiled"):
        if engine not in ("compiled", "scalar"):
            raise ValueError(f"engine must be 'compiled' or 'scalar', "
                             f"got {engine!r}")
        self.circuit = circuit
        if library is None and context is not None:
            library = context.library
        self.library = library or default_library()
        self.engine = engine
        if (context is not None and context.library is self.library
                and context.circuit is circuit):
            self.compiled = context.compiled_timing()
        else:
            self.compiled = CompiledTiming(circuit, self.library)

    def circuit_delay(self, delta_vth: Optional[Dict[str, float]] = None,
                      delay_factors: Optional[Dict[str, float]] = None
                      ) -> float:
        """Worst PO arrival with per-gate eq. (22) scaling applied.

        ``delay_factors`` optionally multiplies each gate's fresh delay
        by an arbitrary factor *before* the aging term — used by the
        dual-Vth extension to model high-Vth cell swaps.
        """
        if self.engine == "compiled":
            return self.compiled.delay(delta_vth, delay_factors)
        return self._scalar_delay(delta_vth, delay_factors)

    def delays_batch(self, delta_vth=None, delay_factors=None) -> "np.ndarray":
        """Circuit delay per scenario for ``(n_gates, B)`` batch inputs.

        Delegates to :meth:`CompiledTiming.delays_batch` regardless of
        ``engine`` — the batch axis only exists in the kernel.
        """
        return self.compiled.delays_batch(delta_vth, delay_factors)

    def _scalar_delay(self, delta_vth: Optional[Dict[str, float]] = None,
                      delay_factors: Optional[Dict[str, float]] = None
                      ) -> float:
        """The legacy per-gate Python walk (oracle for the kernel)."""
        delta_vth = delta_vth or {}
        delay_factors = delay_factors or {}
        circuit = self.circuit
        tech = self.library.tech
        overdrive = tech.vdd - tech.pmos.vth0
        fresh = self.compiled.base_delays()
        arrival: Dict[str, Dict[str, float]] = {
            pi: {"rise": 0.0, "fall": 0.0} for pi in circuit.primary_inputs
        }
        for i, name in enumerate(self.compiled.gate_names):
            gate = circuit.gates[name]
            # Eq. (22) in the canonical operand order of analyze().
            factor = delay_factors.get(name, 1.0) * (
                1.0 + (tech.alpha * delta_vth.get(name, 0.0)) / overdrive)
            out: Dict[str, float] = {}
            for e, edge in enumerate(_EDGES):
                d = fresh[2 * i + e] * factor
                worst = 0.0
                for net in gate.inputs:
                    for in_edge in _input_edges_for(gate.cell, edge):
                        a = arrival[net][in_edge]
                        if a > worst:
                            worst = a
                out[edge] = worst + d
            arrival[name] = out
        return max(arrival[po][edge]
                   for po in circuit.primary_outputs for edge in _EDGES)


@dataclass
class StatisticalAgingResult:
    """Delay distributions at several lifetime points.

    Attributes:
        times: lifetime sample instants (seconds).
        delays: array of shape (n_times, n_samples), seconds.
    """

    circuit_name: str
    times: np.ndarray
    delays: np.ndarray

    def mean(self) -> np.ndarray:
        """Mean delay per lifetime point (seconds)."""
        return self.delays.mean(axis=1)

    def std(self) -> np.ndarray:
        """Delay standard deviation per lifetime point (seconds)."""
        return self.delays.std(axis=1)

    def lower_3sigma(self) -> np.ndarray:
        """mu - 3 sigma bound per lifetime point."""
        return self.mean() - 3.0 * self.std()

    def upper_3sigma(self) -> np.ndarray:
        """mu + 3 sigma bound per lifetime point."""
        return self.mean() + 3.0 * self.std()

    def aging_dominates_variation(self, fresh_index: int = 0,
                                  aged_index: int = -1) -> bool:
        """Fig. 12's observation: the aged lower 3-sigma bound exceeds
        the fresh upper 3-sigma bound."""
        return bool(self.lower_3sigma()[aged_index]
                    > self.upper_3sigma()[fresh_index])

    def variance_compression(self, fresh_index: int = 0,
                             aged_index: int = -1) -> float:
        """sigma_aged / sigma_fresh; < 1 reproduces [51]'s compensation."""
        fresh = self.std()[fresh_index]
        if fresh == 0:
            return 1.0
        return float(self.std()[aged_index] / fresh)

    def quantile(self, q: float, index: int = -1) -> float:
        """Empirical delay quantile at one lifetime point (seconds)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return float(np.quantile(self.delays[index], q))

    def fit_normal(self, index: int = -1) -> tuple:
        """Gaussian MLE fit of one lifetime point's delay distribution.

        Returns:
            (mu, sigma, ks_pvalue): the fitted parameters and the
            Kolmogorov-Smirnov p-value against that fit.  A healthy
            p-value justifies the mu +/- 3 sigma bounds Fig. 12 quotes;
            a tiny one warns the tails are non-Gaussian and quantiles
            should be used instead.
        """
        from scipy import stats

        sample = self.delays[index]
        mu = float(sample.mean())
        sigma = float(sample.std(ddof=1))
        if sigma <= abs(mu) * 1e-12:
            # Degenerate sample (e.g. zero variation): numerically one
            # repeated value; a KS test against it is meaningless.
            return mu, 0.0, 1.0
        _, pvalue = stats.kstest(sample, "norm", args=(mu, sigma))
        return mu, sigma, float(pvalue)


#: Fig. 12's lifetime sample points: fresh, 3 years, 10 years.
FIG12_TIMES = (0.0, years(3.0), TEN_YEARS)

#: Default Monte-Carlo working-set budget (bytes): the compiled engine
#: streams the die population in sample chunks sized so the transient
#: (gates, chunk) matrices stay under this.  ISCAS-scale populations fit
#: in one chunk; a 100k-gate circuit with thousands of dies streams.
DEFAULT_MC_BUDGET = 256 * 2 ** 20


def _mc_chunk_samples(n_gates: int, n_samples: int,
                      memory_budget: int) -> int:
    """Samples per chunk under the byte budget.

    The compiled evaluation holds ~10 float64s per (gate, sample) at its
    peak — the offset/scale/total matrices plus the kernel's per-edge
    delay and arrival rows — so one sample costs ~80 * n_gates bytes.
    """
    per_sample = 80 * max(1, n_gates)
    return max(1, min(n_samples, int(memory_budget) // per_sample))


def statistical_aging(circuit: Circuit, profile: OperatingProfile,
                      times: Sequence[float] = FIG12_TIMES, *,
                      n_samples: int = 100,
                      variation: VariationModel = VariationModel(),
                      standby: StandbyStates = ALL_ZERO,
                      analyzer: Optional[AgingAnalyzer] = None,
                      seed: int = 0,
                      context=None,
                      engine: str = "compiled",
                      memory_budget: int = DEFAULT_MC_BUDGET
                      ) -> StatisticalAgingResult:
    """Monte-Carlo delay distribution across lifetime points.

    Args:
        times: lifetime instants (seconds); include 0.0 for the fresh
            distribution.
        n_samples: Monte-Carlo dies.
        variation: the Vth0 spread model.
        standby: standby state for the aging shifts (worst case default).
        context: shared :class:`~repro.context.AnalysisContext`; the
            per-lifetime nominal shifts and the timer's loads come from
            its memo (the per-die sampling itself stays Monte-Carlo).
        engine: ``"compiled"`` (default) streams the die population in
            (gates, chunk) ΔVth matrices and times each chunk in one
            batched kernel call; ``"scalar"`` keeps the historic
            one-STA-per-die Python loop.  Both produce bit-identical
            delay matrices, for any chunking.
        memory_budget: compiled-engine working-set budget in bytes; the
            sample axis is chunked so the transient matrices stay under
            it (:data:`DEFAULT_MC_BUDGET` holds ISCAS populations in a
            single chunk).  Results do not depend on the budget.

    Returns:
        :class:`StatisticalAgingResult` with shape (len(times), n_samples).
    """
    if n_samples < 2:
        raise ValueError("need at least two samples for a distribution")
    if engine not in ("compiled", "scalar"):
        raise ValueError(f"engine must be 'compiled' or 'scalar', "
                         f"got {engine!r}")
    if analyzer is None:
        analyzer = context.analyzer if context is not None else AgingAnalyzer()
    with obs.span("variation.statistical_aging", circuit=circuit.name,
                  engine=engine, samples=n_samples, points=len(times)):
        library = analyzer.library or default_library()
        calibration = analyzer.model.calibration
        vth0 = library.tech.pmos.vth0
        if context is not None and context.model == analyzer.model:
            base_field = context.field_factor(vth0)
        else:
            base_field = calibration.field_factor(vth0)

        timer = FastAgedTimer(circuit, library, context=context,
                              engine=engine)

        delays = np.empty((len(times), n_samples))
        if engine == "compiled":
            # Fully array-native and streamed: the offset population
            # arrives as (gates, chunk) matrices aligned to the kernel's
            # gate axis (chunked by the memory budget; the RNG stream
            # cuts at die boundaries, so chunking never changes a
            # value), the nominal shifts as memoized (n_gates,) vectors
            # — no per-die or per-gate dict walk anywhere.  The
            # per-element arithmetic keeps the scalar operand order
            # (offset + base * scale), so every matrix entry is
            # bit-identical to the per-die dict math; the field-factor
            # scale is one vectorized kernel call per offset chunk
            # (same ufunc loops as the scalar calibration after the
            # numerics unification).
            ct = timer.compiled
            use_ctx = context is not None and analyzer is context.analyzer
            base_vecs = []
            for t in times:
                if t <= 0:
                    base_vecs.append(np.zeros(ct.n_gates))
                elif use_ctx:
                    base_vecs.append(context.gate_shift_vector(
                        profile, t, standby=standby, engine=engine))
                else:
                    shifts = analyzer.gate_shifts(circuit, profile, t,
                                                  standby=standby,
                                                  context=context,
                                                  engine=engine)
                    base_vecs.append(ct.gate_vector(shifts, 0.0,
                                                    batch=False))
            kernel = CompiledNbtiModel(analyzer.model)
            chunk = _mc_chunk_samples(ct.n_gates, n_samples, memory_budget)
            for s0, offv in variation.iter_sample_matrix(
                    circuit, n_samples, seed, chunk_samples=chunk,
                    gate_order=ct.gate_names):
                count = offv.shape[1]
                with obs.span("variation.mc_chunk", start=s0,
                              samples=count):
                    scalev = kernel.field_factors(vth0 + offv) / base_field
                    for k in range(len(times)):
                        with obs.span("variation.lifetime_point", index=k):
                            total = offv + base_vecs[k][:, None] * scalev
                            delays[k, s0:s0 + count] = \
                                timer.delays_batch(total)
        else:
            # No inner spans: the scalar oracle runs one STA per die
            # per point (thousands of calls on real sample counts).
            base_shifts = [
                analyzer.gate_shifts(circuit, profile, t, standby=standby,
                                     context=context, engine=engine)
                if t > 0 else {g: 0.0 for g in circuit.gates}
                for t in times
            ]
            offsets = variation.sample_many(circuit, n_samples, seed)
            for s, offset in enumerate(offsets):
                scale = {g: calibration.field_factor(vth0 + off)
                         / base_field for g, off in offset.items()}
                for k in range(len(times)):
                    total = {g: offset[g] + base_shifts[k][g] * scale[g]
                             for g in circuit.gates}
                    delays[k, s] = timer.circuit_delay(total)
    return StatisticalAgingResult(circuit_name=circuit.name,
                                  times=np.asarray(list(times), dtype=float),
                                  delays=delays)
