"""The temperature-aware NBTI aging model (facade over eqs. 5-19).

:class:`NbtiModel` turns an operating profile (RAS + mode temperatures),
a per-device stress description, and a lifetime into a threshold shift:

1. expand the macro-cycle into stress/recovery times per mode
   (:class:`~repro.core.profiles.DeviceStress`),
2. map standby-mode stress onto equivalent active-temperature stress via
   the diffusivity ratio (eq. 17; recovery unscaled per the paper),
3. form the equivalent duty cycle and period (eqs. 18-19),
4. evaluate the multicycle model — closed form by default, exact
   recursion on request (eqs. 9-12).

The model is deliberately independent of the circuit machinery: the STA
layer feeds it per-gate duties; Fig. 3/4 and Table 1 use it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.calibration import DEFAULT_CALIBRATION, NbtiCalibration
from repro.core.multicycle import s_closed_form, s_sequence
from repro.core.numerics import quarter_root
from repro.core.profiles import DeviceStress, OperatingProfile
from repro.core.temperature import equivalent_duty, equivalent_times


@dataclass(frozen=True)
class NbtiModel:
    """Temperature-aware NBTI threshold-shift model.

    Attributes:
        calibration: the constants of eq. (12)/(23); defaults to the
            Fig. 8-anchored set.
        scale_recovery: ablation switch A1 — also scale recovery time by
            the diffusivity ratio (the paper does not).
    """

    calibration: NbtiCalibration = DEFAULT_CALIBRATION
    scale_recovery: bool = False

    def content_fingerprint(self) -> str:
        """Structural content hash of the calibration + recovery flag."""
        from repro.artifacts.fingerprint import model_fingerprint

        return model_fingerprint(self)

    # -- core evaluations ---------------------------------------------------

    def delta_vth_dc(self, t: float, temperature: float,
                     vth0: Optional[float] = None) -> float:
        """DC-stress shift ``K_V(T) t^(1/4)`` (volts): the Fig. 1 upper
        bound and the static-NBTI comparison curve."""
        if t < 0:
            raise ValueError("time must be non-negative")
        vth0 = self.calibration.vth_ref if vth0 is None else vth0
        return self.calibration.kv(vth0, temperature) * quarter_root(t)

    def equivalent_duty(self, profile: OperatingProfile,
                        device: DeviceStress) -> tuple:
        """(c_eq, tau_eq seconds) for one macro-cycle, eqs. (17)-(19)."""
        times = device.mode_times(profile)
        return equivalent_duty(times, profile.t_active, profile.t_standby,
                               self.calibration.ed,
                               scale_recovery=self.scale_recovery)

    def delta_vth(self, profile: OperatingProfile, device: DeviceStress,
                  t_total: float, vth0: Optional[float] = None) -> float:
        """Threshold shift (volts) after ``t_total`` seconds of the
        active/standby pattern — the closed-form path used everywhere.

        The closed form depends only on the *total equivalent stress
        time* and the equivalent duty cycle, not on the macro-period.
        """
        if t_total < 0:
            raise ValueError("time must be non-negative")
        vth0 = self.calibration.vth_ref if vth0 is None else vth0
        c_eq, tau_eq = self.equivalent_duty(profile, device)
        if c_eq <= 0.0 or tau_eq <= 0.0:
            return 0.0
        n_cycles = t_total / profile.period
        # S in units of tau_eq^(1/4): dVth = K_V * S * tau_eq^(1/4).
        s = s_closed_form(c_eq, n_cycles)
        kv = self.calibration.kv(vth0, profile.t_active)
        return kv * s * quarter_root(tau_eq)

    def delta_vth_series(self, profile: OperatingProfile, device: DeviceStress,
                         times: Sequence[float],
                         vth0: Optional[float] = None) -> np.ndarray:
        """Vectorized :meth:`delta_vth` over sample instants (volts)."""
        return np.array([self.delta_vth(profile, device, t, vth0)
                         for t in times])

    def delta_vth_recursive(self, profile: OperatingProfile,
                            device: DeviceStress, n_cycles: int,
                            vth0: Optional[float] = None) -> np.ndarray:
        """Cycle-exact shift after each of ``n_cycles`` macro-cycles.

        Uses the eq. (10) recursion on the equivalent duty/period; this
        is the reference the closed form is checked against (A2).
        """
        vth0 = self.calibration.vth_ref if vth0 is None else vth0
        c_eq, tau_eq = self.equivalent_duty(profile, device)
        if c_eq <= 0.0 or tau_eq <= 0.0:
            return np.zeros(n_cycles)
        s = s_sequence(c_eq, n_cycles)
        kv = self.calibration.kv(vth0, profile.t_active)
        return kv * s * quarter_root(tau_eq)

    # -- convenience wrappers used by the experiments -----------------------

    def worst_case_shift(self, profile: OperatingProfile, t_total: float,
                         vth0: Optional[float] = None,
                         active_duty: float = 0.5) -> float:
        """Paper's worst case: SP-``active_duty`` activity, parked at 0."""
        device = DeviceStress(active_stress_duty=active_duty,
                              standby_stressed=True)
        return self.delta_vth(profile, device, t_total, vth0)

    def best_case_shift(self, profile: OperatingProfile, t_total: float,
                        vth0: Optional[float] = None,
                        active_duty: float = 0.5) -> float:
        """Paper's best case: same activity, parked at 1 (relaxing)."""
        device = DeviceStress(active_stress_duty=active_duty,
                              standby_stressed=False)
        return self.delta_vth(profile, device, t_total, vth0)

    def sleep_transistor_shift(self, profile: OperatingProfile,
                               t_total: float, vth0: float) -> float:
        """PMOS header sleep transistor: gate at 0 whenever the circuit
        is active (DC stress at T_active), gate at 1 in standby.  The
        Fig. 8 configuration."""
        device = DeviceStress(active_stress_duty=1.0, standby_stressed=False)
        return self.delta_vth(profile, device, t_total, vth0)


#: Shared default model instance.
DEFAULT_MODEL = NbtiModel()
