"""Helpers shared by the experiment benchmarks."""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.flow.report import format_table
from repro.obs.perf import history_line

#: Append-only trajectory of benchmark results (one JSON line per
#: suite run), next to the per-suite BENCH_*.json point snapshots.
HISTORY = Path(__file__).with_name("BENCH_history.jsonl")


def emit(title: str, headers, rows) -> None:
    """Print one paper-style table (visible with ``pytest -s``)."""
    print()
    print(format_table(headers, rows, title=title))
    sys.stdout.flush()


def record_history(suite: str, *, wall_seconds: float,
                   speedup=None, smoke: bool = False,
                   extra=None) -> None:
    """Append one summary line for this suite run to BENCH_history.jsonl.

    Each line carries the headline wall time/speedup plus the host
    fingerprint and git revision, so regressions are attributable to a
    machine or a commit rather than guessed at from overwritten
    snapshots.
    """
    line = history_line(suite, wall_seconds=wall_seconds,
                        speedup=speedup, smoke=smoke, extra=extra)
    with HISTORY.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"history += {suite} (wall {wall_seconds:.3f}s)")
