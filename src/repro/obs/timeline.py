"""Trace timeline export: spans as Chrome ``trace_event`` JSON.

Converts either trace format the stack emits — the flat JSONL of
``--trace FILE`` (one span per line with ``path``/``depth``) or the
nested span trees inside a RunReport / run record — into the Chrome
trace-event format that Perfetto and ``chrome://tracing`` load
(``{"traceEvents": [...]}`` with complete ``"ph": "X"`` events,
microsecond timestamps).

Lane assignment puts cross-process spans on their own tracks: the
parent process renders as pid 1 ("main"); a span carrying a ``pid``
attribute (shipped by pool workers via
:class:`~repro.flow.parallel.WorkerObservation` and stamped by serve
workers on their root span) claims that OS pid's lane, and its
children inherit it.  Spans with only a ``worker`` index (older
payloads) get synthetic per-worker lanes.  Each lane opens with a
``process_name`` metadata event, so the Perfetto track names read
``main`` / ``worker 3 (pid 12345)``.

Span starts are relative to each tracer's own epoch, so cross-lane
alignment is per-lane-consistent rather than globally synchronized —
compare durations across lanes, orderings within one.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: The synthetic pid of the parent (non-worker) lane.
MAIN_PID = 1

#: Synthetic lane base for spans that carry only a worker index.
WORKER_PID_BASE = 100_000


def _span_lane(attributes: Dict[str, Any],
               inherited: Tuple[int, str]) -> Tuple[int, str]:
    """The (pid, label) lane of one span given its parent's lane."""
    pid = attributes.get("pid")
    worker = attributes.get("worker")
    if isinstance(pid, int) and not isinstance(pid, bool):
        if isinstance(worker, int) and not isinstance(worker, bool):
            return pid, f"worker {worker} (pid {pid})"
        return pid, f"pid {pid}"
    if isinstance(worker, int) and not isinstance(worker, bool):
        return WORKER_PID_BASE + worker, f"worker {worker}"
    return inherited


def _event(name: str, start: float, duration: Optional[float],
           attributes: Dict[str, Any], pid: int) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "X",
        "ts": float(start) * 1e6,
        "dur": float(duration or 0.0) * 1e6,
        "pid": pid,
        "tid": 1,
        "args": {str(k): v for k, v in attributes.items()},
    }


def _metadata_events(lanes: Dict[int, str]) -> List[Dict[str, Any]]:
    out = []
    for pid in sorted(lanes):
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "tid": 1, "args": {"name": lanes[pid]}})
    return out


def events_from_span_dicts(spans: List[Dict[str, Any]]
                           ) -> Tuple[List[Dict[str, Any]],
                                      Dict[int, str]]:
    """Trace events + lane names from nested span dicts (RunReport)."""
    events: List[Dict[str, Any]] = []
    lanes: Dict[int, str] = {MAIN_PID: "main"}

    def walk(span: Dict[str, Any], inherited: Tuple[int, str]) -> None:
        attributes = span.get("attributes") or {}
        lane = _span_lane(attributes, inherited)
        lanes[lane[0]] = lane[1]
        events.append(_event(str(span.get("name", "")),
                             float(span.get("start") or 0.0),
                             span.get("duration"), attributes, lane[0]))
        for child in span.get("children", []):
            if isinstance(child, dict):
                walk(child, lane)

    for span in spans:
        if isinstance(span, dict):
            walk(span, (MAIN_PID, "main"))
    return events, lanes


def events_from_jsonl(text: str) -> Tuple[List[Dict[str, Any]],
                                          Dict[int, str]]:
    """Trace events + lane names from the flat ``--trace`` JSONL.

    Lane inheritance uses the ``depth`` field: lines are depth-first,
    so a stack of (depth, lane) reconstructs each span's ancestry.
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[int, str] = {MAIN_PID: "main"}
    stack: List[Tuple[int, Tuple[int, str]]] = []
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        line = json.loads(raw)
        depth = int(line.get("depth", 0))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        inherited = stack[-1][1] if stack else (MAIN_PID, "main")
        attributes = line.get("attributes") or {}
        lane = _span_lane(attributes, inherited)
        lanes[lane[0]] = lane[1]
        events.append(_event(str(line.get("name", "")),
                             float(line.get("start") or 0.0),
                             line.get("duration"), attributes, lane[0]))
        stack.append((depth, lane))
    return events, lanes


def chrome_trace(events: List[Dict[str, Any]],
                 lanes: Dict[int, str]) -> Dict[str, Any]:
    """The loadable document: metadata events first, then spans."""
    return {"traceEvents": _metadata_events(lanes) + events,
            "displayTimeUnit": "ms"}


def convert(source_text: str) -> Dict[str, Any]:
    """Sniff ``source_text`` (RunReport / run record / JSONL) and
    convert it to one Chrome trace document."""
    try:
        doc = json.loads(source_text)
    except json.JSONDecodeError:
        doc = None  # multiple lines: the JSONL trace format
    if isinstance(doc, dict):
        report = doc.get("report") if "report" in doc else doc
        if isinstance(report, dict) and isinstance(report.get("spans"),
                                                   list):
            return chrome_trace(*events_from_span_dicts(report["spans"]))
        if "path" not in doc:
            raise ValueError(
                "JSON input has no 'spans' (not a RunReport, run "
                "record, or span trace)")
    return chrome_trace(*events_from_jsonl(source_text))


def convert_file(path: str) -> Dict[str, Any]:
    """:func:`convert` on the contents of ``path`` (``-`` = stdin)."""
    import sys

    if path == "-":
        return convert(sys.stdin.read())
    with open(path, "r", encoding="utf-8") as fh:
        return convert(fh.read())
