"""Concurrency regression tests for the store under the service.

The invariant the service leans on: N concurrent writers of the same
circuit — handler threads in one server, worker processes across
servers — produce exactly **one** stored bundle, with no leftover
``.lock`` or temp files.  Serialization comes from the per-key
``.lock`` (O_CREAT|O_EXCL) plus double-checked key existence; stale
locks from dead writers are broken after ``LOCK_STALE_SECONDS``, and a
live foreign lock is only waited on for ``LOCK_WAIT_SECONDS`` before
the (benign, content-addressed) unlocked write proceeds.
"""

import multiprocessing
import os
import threading
import time

from repro.artifacts import ArtifactStore, store as store_mod
from repro.context import AnalysisContext
from repro.netlist import load_packaged
from repro.serve import AgeScenario, AnalysisService, ServeConfig


def _leftovers(root):
    """Stray lock/temp files anywhere under the store root."""
    strays = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".lock") or name.startswith("."):
                strays.append(os.path.join(dirpath, name))
    return strays


def _save_bundle_in_process(store_dir):
    """Child-process entry: lower c17 and persist it (module-level so
    the default start method can pickle it)."""
    store = ArtifactStore(store_dir)
    circuit = load_packaged("c17")
    AnalysisContext(circuit, store=store).save_to_store()


class TestThreadWriters:
    def test_n_threads_one_bundle(self, tmp_path):
        store = ArtifactStore(tmp_path)
        # Build the bundle once outside the store, then race the save.
        from repro.artifacts import ArtifactBundle

        context = AnalysisContext(load_packaged("c17"))
        bundle = ArtifactBundle.snapshot(context)
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            try:
                barrier.wait(timeout=10.0)
                store.save_bundle(bundle)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        assert store.info()["bundles"] == 1
        assert _leftovers(tmp_path) == []

    def test_racing_full_lowering_threads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        barrier = threading.Barrier(4)

        def build_and_save():
            barrier.wait(timeout=10.0)
            circuit = load_packaged("c17")
            AnalysisContext(circuit, store=store).save_to_store()

        threads = [threading.Thread(target=build_and_save)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert store.info()["bundles"] == 1
        assert _leftovers(tmp_path) == []


class TestProcessWriters:
    def test_n_processes_one_bundle(self, tmp_path):
        procs = [multiprocessing.Process(
            target=_save_bundle_in_process, args=(str(tmp_path),))
            for _ in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120.0)
        assert all(p.exitcode == 0 for p in procs)
        store = ArtifactStore(tmp_path)
        assert store.info()["bundles"] == 1
        assert _leftovers(tmp_path) == []


class TestLockPaths:
    def _bundle(self, store):
        circuit = load_packaged("c17")
        context = AnalysisContext(circuit, store=store)
        from repro.artifacts import ArtifactBundle

        return ArtifactBundle.snapshot(context)

    def test_stale_lock_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bundle = self._bundle(store)
        lock = store._bundle_dir(bundle.bundle_key) / \
            f"{bundle.bundle_key}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.touch()
        stale = time.time() - (store_mod.LOCK_STALE_SECONDS + 60.0)
        os.utime(lock, (stale, stale))

        store.save_bundle(bundle)
        assert store.info()["bundles"] == 1
        assert not lock.exists()  # broken, then released

    def test_live_foreign_lock_times_out_but_write_lands(self, tmp_path,
                                                         monkeypatch):
        # A fresh lock owned by someone else: the writer gives up
        # waiting and proceeds unlocked (content-addressed writes make
        # the duplicate benign); the foreign lock is left alone.
        monkeypatch.setattr(store_mod, "LOCK_WAIT_SECONDS", 0.2)
        store = ArtifactStore(tmp_path)
        bundle = self._bundle(store)
        lock = store._bundle_dir(bundle.bundle_key) / \
            f"{bundle.bundle_key}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.touch()

        t0 = time.monotonic()
        store.save_bundle(bundle)
        elapsed = time.monotonic() - t0
        assert elapsed < store_mod.LOCK_STALE_SECONDS
        assert store.info()["bundles"] == 1
        assert lock.exists()  # not ours: never released/broken
        assert store.load_bundle(bundle.bundle_key) is not None


class TestThroughService:
    def test_concurrent_same_circuit_submissions_one_bundle(self,
                                                            tmp_path):
        service = AnalysisService(
            ArtifactStore(tmp_path / "store"),
            ServeConfig(max_workers=4, poll_interval_s=0.01))
        service.start()
        try:
            barrier = threading.Barrier(6)
            records = []
            lock = threading.Lock()

            def submit(idx):
                barrier.wait(timeout=10.0)
                record = service.submit(
                    "c17", AgeScenario(years=float(idx + 1)))
                with lock:
                    records.append(record)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(records) == 6

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                states = {r.job_id: service.queue.get(r.job_id).state
                          for r in records}
                if all(s == "done" for s in states.values()):
                    break
                time.sleep(0.05)
            assert all(service.queue.get(r.job_id).state == "done"
                       for r in records)

            store = ArtifactStore(tmp_path / "store")
            assert store.info()["bundles"] == 1
            assert _leftovers(tmp_path / "store") == []
        finally:
            service.stop(drain=False)
