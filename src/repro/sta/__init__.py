"""Static timing analysis + NBTI-aged timing (S7)."""

from repro.sta.analysis import (
    PO_CAP,
    WIRE_CAP,
    TimingResult,
    analyze,
    gate_loads,
)
from repro.sta.paths import TimingPath, enumerate_paths, path_slack_profile
from repro.sta.degradation import (
    ALL_ONE,
    ALL_ZERO,
    AgedDelaySummary,
    AgedTimingResult,
    AgingAnalyzer,
    standby_net_states,
)

__all__ = [
    "PO_CAP", "WIRE_CAP", "TimingResult", "analyze", "gate_loads",
    "TimingPath", "enumerate_paths", "path_slack_profile",
    "ALL_ONE", "ALL_ZERO", "AgedDelaySummary", "AgedTimingResult",
    "AgingAnalyzer", "standby_net_states",
]
