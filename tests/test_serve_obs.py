"""Service telemetry: torn-read safety, Prometheus exposition, and
deterministic adoption.

Three contracts from the performance-intelligence PR:

* :meth:`ServiceObs.report` assembles the whole document in one locked
  pass — a reader hammered by concurrent writers never sees a counter
  from after a span it does not contain (the ``/metrics`` torn-read
  fix).
* ``GET /metrics.prom`` exposes the live RunReport in Prometheus text
  format, gauges included.
* Worker payloads are adopted in claim order, so two services running
  the same job sequence produce byte-identical *canonical* RunReports
  (wall-clock and pids scrubbed), including the worker-side gauge.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.artifacts import ArtifactStore
from repro.serve import AgeScenario, ServeConfig, make_server
from repro.serve.protocol import DONE, FAILED
from repro.serve.server import AnalysisService, ServiceObs


# -- torn-read safety under concurrent load -----------------------------------


def _span_dict(name, **attributes):
    return {"name": name, "start": 0.0, "duration": 0.001,
            "attributes": attributes, "children": []}


def _paired_payload(i):
    # One atomic payload: one span plus a +1 on BOTH counters.  Any
    # snapshot that separates them (span count vs counter a, or a vs b)
    # caught a torn read.
    metrics = {"hammer.a": {"type": "counter", "values": {"": 1}},
               "hammer.b": {"type": "counter", "values": {"": 1}}}
    return dict(spans=[_span_dict("hammer.work", i=i)], metrics=metrics)


class TestSnapshotAtomicity:
    N_THREADS = 4
    N_ITERS = 100

    def test_report_never_tears_under_concurrent_adopts(self):
        hub = ServiceObs()
        # Parties: the writers, the reader, and this (main) thread.
        start = threading.Barrier(self.N_THREADS + 2)
        stop = threading.Event()
        errors = []

        def writer(worker):
            start.wait()
            for i in range(self.N_ITERS):
                hub.adopt(**_paired_payload(worker * self.N_ITERS + i))

        def reader():
            start.wait()
            while not stop.is_set():
                doc = hub.report("hammer").to_dict()
                a = sum(doc["metrics"].get("hammer.a", {})
                        .get("values", {}).values())
                b = sum(doc["metrics"].get("hammer.b", {})
                        .get("values", {}).values())
                spans = len(doc["spans"])
                if not (a == b == spans):
                    errors.append((spans, a, b))
                if obs.schema_errors(doc):
                    errors.append(("schema", obs.schema_errors(doc)))

        writers = [threading.Thread(target=writer, args=(w,))
                   for w in range(self.N_THREADS)]
        watcher = threading.Thread(target=reader)
        for t in writers:
            t.start()
        watcher.start()
        start.wait()
        for t in writers:
            t.join(timeout=60.0)
        stop.set()
        watcher.join(timeout=60.0)

        assert errors == []
        final = hub.report("hammer").to_dict()
        total = self.N_THREADS * self.N_ITERS
        assert sum(final["metrics"]["hammer.a"]["values"].values()) == total
        assert len(final["spans"]) == total  # under the MAX_SPANS cap

    def test_seq_ordered_adoption_buffers_out_of_order(self):
        hub = ServiceObs()
        first, second, third = (hub.alloc_seq() for _ in range(3))
        hub.adopt(spans=[_span_dict("late")], seq=third)
        assert hub.report("x").to_dict()["spans"] == []  # held back
        hub.adopt(seq=second)  # empty release must not block the flush
        hub.adopt(spans=[_span_dict("early")], seq=first)
        names = [s["name"] for s in hub.report("x").to_dict()["spans"]]
        assert names == ["early", "late"]  # claim order, not arrival


# -- /metrics.prom over live HTTP ---------------------------------------------


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10.0) as resp:
        return resp.status, resp.read()


def _wait_done(url, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = _get(f"{url}/status/{job_id}")
        assert status == 200
        doc = json.loads(body)
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serve_obs_store")
    httpd = make_server(ArtifactStore(store_dir),
                        ServeConfig(max_workers=2, timeout_s=120.0))
    httpd.service.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield url, httpd.service
    httpd.service.stop()
    httpd.shutdown()
    thread.join(timeout=10.0)


class TestPrometheusEndpoint:
    def test_exposition_after_one_job(self, live_server):
        url, _service = live_server
        status, body = _post(f"{url}/submit",
                             {"circuit": "c17", "scenario": {}})
        assert status in (200, 202)
        job = json.loads(body)
        if job["state"] != "done":
            assert _wait_done(url, job["job_id"])["state"] == "done"

        status, body, headers = _get(f"{url}/metrics.prom")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "# TYPE serve_queue_depth gauge" in text
        assert "# TYPE serve_workers_spawned counter" in text
        # The HTTP layer times itself: the submit we just made shows up
        # as a latency histogram with cumulative buckets.
        assert "# TYPE serve_http_submit_seconds histogram" in text
        assert 'serve_http_submit_seconds_bucket{le="+Inf"}' in text
        assert "serve_uptime_seconds" in text

    def test_json_and_prom_agree_on_counters(self, live_server):
        url, _service = live_server
        _, json_body, _ = _get(f"{url}/metrics")
        doc = json.loads(json_body)
        _, prom_body, _ = _get(f"{url}/metrics.prom")
        spawned = sum(doc["metrics"]["serve.workers_spawned"]
                      ["values"].values())
        assert f"serve_workers_spawned {spawned}" in \
            prom_body.decode("utf-8")


# -- deterministic adoption: repeated runs are canonically identical ----------


def _run_service(root):
    """One service, three distinct c17 scenarios, drained to done."""
    store_dir = root / "store"  # same root.name across runs
    service = AnalysisService(ArtifactStore(store_dir),
                              ServeConfig(max_workers=2, timeout_s=120.0))
    for years in (1.0, 2.0, 3.0):  # distinct keys: no coalescing
        service.submit("c17", AgeScenario(years=years))
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        service._poll_workers()
        service._launch_ready()
        counts = service.queue.counts()
        if counts[DONE] + counts[FAILED] >= 3 and not service._workers:
            break
        time.sleep(0.02)
    counts = service.queue.counts()
    assert counts[DONE] == 3 and counts[FAILED] == 0
    return service.metrics_report().to_dict()


class TestDeterministicAdoption:
    def test_repeated_runs_canonically_identical(self, tmp_path):
        docs = [_run_service(tmp_path / f"run{i}") for i in (1, 2)]
        for doc in docs:
            assert obs.schema_errors(doc) == []
            # The worker-side gauge crossed the process boundary.
            gates = doc["metrics"]["serve.worker.gates"]
            assert gates["type"] == "gauge"
            assert gates["values"][""] == 6  # c17
            # Adopted worker spans carry their job attribution and pid.
            worker_spans = [s for s in doc["spans"]
                            if s["name"] == "serve.worker.age"]
            assert len(worker_spans) == 3
            assert all("job" in s["attributes"] and "pid" in s["attributes"]
                       for s in worker_spans)
        assert obs.canonical_json(docs[0]) == obs.canonical_json(docs[1])
