"""Golden regression tests for the headline figure reproductions.

The Fig. 5 and Fig. 12 benchmark drivers are the repo's end-to-end
deliverables; these tests pin their exact numerical output (every float,
exact equality) against checked-in series under ``tests/golden/`` so an
accidental model, calibration, or kernel change cannot silently move a
published curve.  The run configurations mirror
``benchmarks/test_fig05_c432_degradation.py`` and
``benchmarks/test_fig12_statistical.py`` verbatim (the benchmark modules
themselves are not importable from the test tree).

JSON stores floats via ``repr`` round-trip, so ``json.load`` returns the
bit-identical doubles that were dumped — the comparisons below are plain
``==``, never ``approx``.  To regenerate after an *intentional* model
change::

    PYTHONPATH=src python tests/test_golden_outputs.py --regen
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.constants import TEN_YEARS, years
from repro.core import DEFAULT_MODEL, WORST_CASE_DEVICE, OperatingProfile
from repro.netlist import iscas85
from repro.sta import ALL_ZERO, AgingAnalyzer
from repro.tech import PTM90
from repro.variation import VariationModel, statistical_aging

GOLDEN_DIR = Path(__file__).parent / "golden"


def run_fig05():
    """Exact configuration of benchmarks/test_fig05_c432_degradation.py."""
    times = np.logspace(6, np.log10(TEN_YEARS), 8)
    circuit = iscas85.load("c432")
    analyzer = AgingAnalyzer()
    curves = {}
    for tst in (330.0, 370.0, 400.0):
        profile = OperatingProfile.from_ras("1:9", t_standby=tst)
        curves[tst] = [
            analyzer.aged_timing(circuit, profile, t,
                                 standby=ALL_ZERO).relative_degradation
            for t in times
        ]
    profile = OperatingProfile.from_ras("1:9", t_standby=330.0)
    vth_rel = [DEFAULT_MODEL.delta_vth(profile, WORST_CASE_DEVICE, t, 0.22)
               / PTM90.pmos.vth0 for t in times]
    return {
        "times": [float(t) for t in times],
        "curves": {f"{tst:g}": [float(v) for v in series]
                   for tst, series in curves.items()},
        "vth_rel": [float(v) for v in vth_rel],
    }


def run_fig12():
    """Exact configuration of benchmarks/test_fig12_statistical.py."""
    circuit = iscas85.load("c880")
    profile = OperatingProfile.from_ras("1:9", t_standby=400.0)
    result = statistical_aging(circuit, profile,
                               times=(0.0, years(3.0), TEN_YEARS),
                               n_samples=150,
                               variation=VariationModel(sigma_local=0.010),
                               seed=12)
    return {
        "times": [float(t) for t in result.times],
        "mean": [float(v) for v in result.mean()],
        "std": [float(v) for v in result.std()],
        "lower_3sigma": [float(v) for v in result.lower_3sigma()],
        "upper_3sigma": [float(v) for v in result.upper_3sigma()],
        "delays": [[float(v) for v in row] for row in result.delays],
    }


RUNNERS = {"fig05_c432_degradation": run_fig05,
           "fig12_statistical": run_fig12}


def load_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(f"missing golden file {path}; regenerate with "
                    f"'PYTHONPATH=src python tests/test_golden_outputs.py "
                    f"--regen'")
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_golden_exact(name):
    """The figure pipeline reproduces its checked-in series bit-for-bit."""
    got = RUNNERS[name]()
    want = load_golden(name)
    assert got == want, (
        f"{name} drifted from tests/golden/{name}.json — if the model "
        f"change is intentional, regenerate the golden files")


def test_golden_files_round_trip():
    """The checked-in JSON itself survives a dump/load cycle unchanged
    (guards against hand edits that lose the repr round-trip)."""
    for name in RUNNERS:
        want = load_golden(name)
        assert json.loads(json.dumps(want)) == want


def _regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, runner in RUNNERS.items():
        path = GOLDEN_DIR / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(runner(), fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
