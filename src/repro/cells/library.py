"""Construction of the PTM-90nm standard-cell library.

The paper maps ISCAS85 circuits onto a 90 nm standard-cell library and
simulates every cell under every input pattern to build leakage lookup
tables.  This module builds the equivalent library from transistor-level
descriptions: INV, BUF, NAND2-4, NOR2-4, AND2-4, OR2-4, XOR2, XNOR2,
AOI21/22, OAI21/22.

Sizing follows the usual logical-effort convention: series NMOS stacks in
NANDs are widened by the stack depth, series PMOS stacks in NORs likewise,
so every cell has roughly the drive of the unit inverter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cells.cell import Cell, Stage
from repro.cells.network import Dev, Parallel, Series, SPNode
from repro.tech.mosfet import Mosfet
from repro.tech.ptm import PTM90, Technology


class _CellBuilder:
    """Names transistors uniquely while assembling one cell."""

    def __init__(self, tech: Technology):
        self.tech = tech
        self._count = 0

    def _next(self, prefix: str) -> str:
        self._count += 1
        return f"{prefix}{self._count}"

    def nmos(self, pin: str, width_units: float) -> Dev:
        return Dev(Mosfet(
            name=self._next("MN"), polarity="nmos", gate_pin=pin,
            w=width_units * _UNIT_NMOS_W(self.tech), l=self.tech.lmin,
        ))

    def pmos(self, pin: str, width_units: float) -> Dev:
        return Dev(Mosfet(
            name=self._next("MP"), polarity="pmos", gate_pin=pin,
            w=width_units * _UNIT_PMOS_W(self.tech), l=self.tech.lmin,
        ))


def _UNIT_NMOS_W(tech: Technology) -> float:
    return 2.0 * tech.wmin


def _UNIT_PMOS_W(tech: Technology) -> float:
    return 4.0 * tech.wmin


def _inverter_stage(b: _CellBuilder, pin: str, out: str, scale: float = 1.0) -> Stage:
    return Stage(
        output=out,
        pull_up=b.pmos(pin, scale),
        pull_down=b.nmos(pin, scale),
    )


def _nand_stage(b: _CellBuilder, pins: Sequence[str], out: str) -> Stage:
    k = len(pins)
    # Pull-down series ordered rail(GND)-to-output: last pin nearest GND.
    pull_down = Series([b.nmos(p, float(k)) for p in reversed(pins)])
    pull_up = Parallel([b.pmos(p, 1.0) for p in pins])
    return Stage(output=out, pull_up=pull_up, pull_down=pull_down)


def _nor_stage(b: _CellBuilder, pins: Sequence[str], out: str) -> Stage:
    k = len(pins)
    # Pull-up series ordered rail(Vdd)-to-output: first pin nearest Vdd.
    pull_up = Series([b.pmos(p, float(k)) for p in pins])
    pull_down = Parallel([b.nmos(p, 1.0) for p in pins])
    return Stage(output=out, pull_up=pull_up, pull_down=pull_down)


def _make_inv(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    return Cell(
        name="INV", inputs=("A",), output="Y",
        stages=(_inverter_stage(b, "A", "Y"),),
        function="Y = !A",
    )


def _make_buf(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    return Cell(
        name="BUF", inputs=("A",), output="Y",
        stages=(
            _inverter_stage(b, "A", "n1"),
            _inverter_stage(b, "n1", "Y", scale=2.0),
        ),
        function="Y = A",
    )


_PIN_NAMES = ("A", "B", "C", "D")


def _make_nand(tech: Technology, k: int) -> Cell:
    b = _CellBuilder(tech)
    pins = _PIN_NAMES[:k]
    return Cell(
        name=f"NAND{k}", inputs=pins, output="Y",
        stages=(_nand_stage(b, pins, "Y"),),
        function="Y = !(" + " & ".join(pins) + ")",
    )


def _make_nor(tech: Technology, k: int) -> Cell:
    b = _CellBuilder(tech)
    pins = _PIN_NAMES[:k]
    return Cell(
        name=f"NOR{k}", inputs=pins, output="Y",
        stages=(_nor_stage(b, pins, "Y"),),
        function="Y = !(" + " | ".join(pins) + ")",
    )


def _make_and(tech: Technology, k: int) -> Cell:
    b = _CellBuilder(tech)
    pins = _PIN_NAMES[:k]
    return Cell(
        name=f"AND{k}", inputs=pins, output="Y",
        stages=(
            _nand_stage(b, pins, "n1"),
            _inverter_stage(b, "n1", "Y", scale=2.0),
        ),
        function="Y = " + " & ".join(pins),
    )


def _make_or(tech: Technology, k: int) -> Cell:
    b = _CellBuilder(tech)
    pins = _PIN_NAMES[:k]
    return Cell(
        name=f"OR{k}", inputs=pins, output="Y",
        stages=(
            _nor_stage(b, pins, "n1"),
            _inverter_stage(b, "n1", "Y", scale=2.0),
        ),
        function="Y = " + " | ".join(pins),
    )


def _make_xor(tech: Technology) -> Cell:
    """Classic four-NAND XOR."""
    b = _CellBuilder(tech)
    return Cell(
        name="XOR2", inputs=("A", "B"), output="Y",
        stages=(
            _nand_stage(b, ("A", "B"), "n1"),
            _nand_stage(b, ("A", "n1"), "n2"),
            _nand_stage(b, ("B", "n1"), "n3"),
            _nand_stage(b, ("n2", "n3"), "Y"),
        ),
        function="Y = A ^ B",
    )


def _make_xnor(tech: Technology) -> Cell:
    """The NOR-dual of the four-NAND XOR."""
    b = _CellBuilder(tech)
    return Cell(
        name="XNOR2", inputs=("A", "B"), output="Y",
        stages=(
            _nor_stage(b, ("A", "B"), "n1"),
            _nor_stage(b, ("A", "n1"), "n2"),
            _nor_stage(b, ("B", "n1"), "n3"),
            _nor_stage(b, ("n2", "n3"), "Y"),
        ),
        function="Y = !(A ^ B)",
    )


def _make_aoi21(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    pull_down = Parallel([
        Series([b.nmos("B", 2.0), b.nmos("A", 2.0)]),
        b.nmos("C", 1.0),
    ])
    pull_up = Series([
        Parallel([b.pmos("A", 1.0), b.pmos("B", 1.0)]),
        b.pmos("C", 2.0),
    ])
    return Cell(
        name="AOI21", inputs=("A", "B", "C"), output="Y",
        stages=(Stage(output="Y", pull_up=pull_up, pull_down=pull_down),),
        function="Y = !((A & B) | C)",
    )


def _make_aoi22(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    pull_down = Parallel([
        Series([b.nmos("B", 2.0), b.nmos("A", 2.0)]),
        Series([b.nmos("D", 2.0), b.nmos("C", 2.0)]),
    ])
    pull_up = Series([
        Parallel([b.pmos("A", 2.0), b.pmos("B", 2.0)]),
        Parallel([b.pmos("C", 2.0), b.pmos("D", 2.0)]),
    ])
    return Cell(
        name="AOI22", inputs=("A", "B", "C", "D"), output="Y",
        stages=(Stage(output="Y", pull_up=pull_up, pull_down=pull_down),),
        function="Y = !((A & B) | (C & D))",
    )


def _make_oai21(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    pull_down = Series([
        b.nmos("C", 2.0),
        Parallel([b.nmos("A", 2.0), b.nmos("B", 2.0)]),
    ])
    pull_up = Parallel([
        Series([b.pmos("A", 2.0), b.pmos("B", 2.0)]),
        b.pmos("C", 1.0),
    ])
    return Cell(
        name="OAI21", inputs=("A", "B", "C"), output="Y",
        stages=(Stage(output="Y", pull_up=pull_up, pull_down=pull_down),),
        function="Y = !((A | B) & C)",
    )


def _make_oai22(tech: Technology) -> Cell:
    b = _CellBuilder(tech)
    pull_down = Series([
        Parallel([b.nmos("C", 2.0), b.nmos("D", 2.0)]),
        Parallel([b.nmos("A", 2.0), b.nmos("B", 2.0)]),
    ])
    pull_up = Parallel([
        Series([b.pmos("A", 2.0), b.pmos("B", 2.0)]),
        Series([b.pmos("C", 2.0), b.pmos("D", 2.0)]),
    ])
    return Cell(
        name="OAI22", inputs=("A", "B", "C", "D"), output="Y",
        stages=(Stage(output="Y", pull_up=pull_up, pull_down=pull_down),),
        function="Y = !((A | B) & (C | D))",
    )


@dataclass
class Library:
    """A named collection of :class:`Cell` objects plus the technology.

    Access cells with :meth:`get`; membership checks and iteration work
    on cell names.
    """

    tech: Technology
    cells: Dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        """Register a cell; duplicate names are rejected."""
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell

    def get(self, name: str) -> Cell:
        """Look up a cell by name (KeyError lists known cells)."""
        try:
            return self.cells[name]
        except KeyError:
            known = ", ".join(sorted(self.cells))
            raise KeyError(f"no cell {name!r} in library; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def names(self) -> List[str]:
        """Sorted cell names."""
        return sorted(self.cells)

    def content_fingerprint(self) -> str:
        """Structural content hash: technology constants + every cell's
        transistor trees, cells sorted by name.  Two independently built
        libraries on the same technology hash equal (lookups are by
        name; registration order never enters a computation)."""
        from repro.artifacts.fingerprint import library_fingerprint

        return library_fingerprint(self)


def build_library(tech: Technology = PTM90) -> Library:
    """Build the full standard-cell library on ``tech``.

    This is the reproduction of the paper's "standard cell library
    constructed using the PTM 90-nm bulk CMOS model".
    """
    lib = Library(tech=tech)
    lib.add(_make_inv(tech))
    lib.add(_make_buf(tech))
    for k in (2, 3, 4):
        lib.add(_make_nand(tech, k))
        lib.add(_make_nor(tech, k))
        lib.add(_make_and(tech, k))
        lib.add(_make_or(tech, k))
    lib.add(_make_xor(tech))
    lib.add(_make_xnor(tech))
    lib.add(_make_aoi21(tech))
    lib.add(_make_aoi22(tech))
    lib.add(_make_oai21(tech))
    lib.add(_make_oai22(tech))
    return lib
