"""Tests for the leakage-thermal feedback solver."""

import pytest

from repro.netlist import random_logic
from repro.thermal import ThermalRC, solve_standby_temperature


@pytest.fixture(scope="module")
def circuit():
    return random_logic("fb", n_inputs=10, n_outputs=3, n_gates=50, seed=2)


RC = ThermalRC()


class TestFeedback:
    def test_converges(self, circuit):
        res = solve_standby_temperature(circuit, RC, other_power=1.0)
        assert res.converged
        assert res.temperature > RC.t_ambient
        assert res.leakage_current > 0

    def test_single_block_close_to_naive(self, circuit):
        """One small block's leakage barely moves the die temperature."""
        res = solve_standby_temperature(circuit, RC, other_power=2.0)
        naive = RC.steady_state(2.0)
        assert abs(res.temperature - naive) < 1.0

    def test_scaled_die_visibly_hotter(self, circuit):
        small = solve_standby_temperature(circuit, RC, other_power=2.0,
                                          scale=1.0)
        big = solve_standby_temperature(circuit, RC, other_power=2.0,
                                        scale=200000.0)
        assert big.temperature > small.temperature + 2.0
        assert big.leakage_power > small.leakage_power

    def test_leakage_power_consistent(self, circuit):
        res = solve_standby_temperature(circuit, RC, other_power=0.0,
                                        scale=1000.0)
        # The converged temperature must equal the steady state of its
        # own converged power.
        assert res.temperature == pytest.approx(
            RC.steady_state(res.leakage_power), abs=0.2)

    def test_thermal_runaway_detected(self, circuit):
        hot_rc = ThermalRC(r_th=5.0, c_th=0.02)
        with pytest.raises(RuntimeError, match="runaway"):
            solve_standby_temperature(circuit, hot_rc, other_power=30.0,
                                      scale=5e6, damping=1.0)

    def test_guards(self, circuit):
        with pytest.raises(ValueError):
            solve_standby_temperature(circuit, RC, scale=0.0)
        with pytest.raises(ValueError):
            solve_standby_temperature(circuit, RC, damping=0.0)
        with pytest.raises(ValueError):
            solve_standby_temperature(circuit, RC, other_power=-1.0)
