"""Unit tests for the analytical device models in repro.tech."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech import (
    PTM90,
    PTM90_HVT,
    PTM90_LP,
    Mosfet,
    alpha_power_delay,
    drive_current,
    gate_leakage_current,
    get_technology,
    subthreshold_current,
    threshold_at_temperature,
)

NMOS = PTM90.nmos
PMOS = PTM90.pmos


class TestTechnologyRegistry:
    def test_lookup_known(self):
        assert get_technology("ptm90") is PTM90
        assert get_technology("ptm90_hvt") is PTM90_HVT
        assert get_technology("ptm90_lp") is PTM90_LP

    def test_lookup_unknown_raises_with_candidates(self):
        with pytest.raises(KeyError, match="ptm90"):
            get_technology("tsmc7")

    def test_paper_operating_point(self):
        # Vdd = 1.0 V and |Vth| = 220 mV as set in the paper's Section 3.
        assert PTM90.vdd == pytest.approx(1.0)
        assert PTM90.nmos.vth0 == pytest.approx(0.220)
        assert PTM90.pmos.vth0 == pytest.approx(0.220)

    def test_cox_positive_and_thickness_ordered(self):
        assert PTM90.cox > 0
        # LP flavor has a thicker oxide hence smaller Cox.
        assert PTM90_LP.cox < PTM90.cox

    def test_params_accessor(self):
        assert PTM90.params("nmos") is NMOS
        assert PTM90.params("pmos") is PMOS
        with pytest.raises(ValueError):
            PTM90.params("jfet")


class TestThreshold:
    def test_reference_point(self):
        assert threshold_at_temperature(NMOS, 300.0) == pytest.approx(NMOS.vth0)

    def test_decreases_with_temperature(self):
        assert threshold_at_temperature(NMOS, 400.0) < NMOS.vth0

    def test_clamped_at_zero(self):
        assert threshold_at_temperature(NMOS, 5000.0) == 0.0

    @given(st.floats(min_value=250.0, max_value=450.0))
    def test_monotone_decreasing(self, t):
        assert threshold_at_temperature(NMOS, t) >= threshold_at_temperature(NMOS, t + 1.0)


class TestSubthresholdCurrent:
    W, L = 240e-9, 90e-9

    def leak(self, **kw):
        defaults = dict(w=self.W, l=self.L, vgs=0.0, vds=1.0, temperature=300.0)
        defaults.update(kw)
        return subthreshold_current(NMOS, **defaults)

    def test_positive_off_state(self):
        assert self.leak() > 0

    def test_zero_at_zero_vds(self):
        assert self.leak(vds=0.0) == 0.0

    def test_increases_with_temperature(self):
        # Both the pre-factor and the Vth reduction push leakage up.
        assert self.leak(temperature=400.0) > 10.0 * self.leak(temperature=300.0)

    def test_increases_with_vgs(self):
        assert self.leak(vgs=0.05) > self.leak(vgs=0.0)

    def test_negative_vgs_suppresses(self):
        # The stacking effect: source above ground -> negative Vgs.
        assert self.leak(vgs=-0.1) < 0.1 * self.leak(vgs=0.0)

    def test_dibl_increases_with_vds(self):
        assert self.leak(vds=1.0) > self.leak(vds=0.5)

    def test_aged_vth_reduces_leakage(self):
        # NBTI raises |Vth| which exponentially cuts subthreshold leakage.
        assert self.leak(delta_vth=0.03) < self.leak(delta_vth=0.0)

    def test_scales_with_width(self):
        assert self.leak(w=2 * self.W) == pytest.approx(2 * self.leak(), rel=1e-9)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            self.leak(w=-1e-9)

    @given(st.floats(min_value=0.1, max_value=1.0),
           st.floats(min_value=300.0, max_value=420.0))
    @settings(max_examples=50)
    def test_monotone_in_vds(self, vds, temperature):
        lo = self.leak(vds=vds * 0.9, temperature=temperature)
        hi = self.leak(vds=vds, temperature=temperature)
        assert hi >= lo


class TestGateLeakage:
    def test_nmos_much_larger_than_pmos(self):
        # Electron conduction-band tunneling >> hole valence-band tunneling.
        i_n = gate_leakage_current(NMOS, w=240e-9, l=90e-9, vox=1.0)
        i_p = gate_leakage_current(PMOS, w=240e-9, l=90e-9, vox=1.0)
        assert i_n > 5.0 * i_p

    def test_zero_at_zero_vox(self):
        assert gate_leakage_current(NMOS, w=240e-9, l=90e-9, vox=0.0) == 0.0

    def test_exponential_in_vox(self):
        full = gate_leakage_current(NMOS, w=240e-9, l=90e-9, vox=1.0)
        off = gate_leakage_current(NMOS, w=240e-9, l=90e-9, vox=0.3)
        assert off < 0.2 * full

    def test_scales_with_area(self):
        base = gate_leakage_current(NMOS, w=240e-9, l=90e-9, vox=1.0)
        assert gate_leakage_current(NMOS, w=480e-9, l=90e-9, vox=1.0) == pytest.approx(2 * base)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            gate_leakage_current(NMOS, w=0.0, l=90e-9, vox=1.0)


class TestDriveAndDelay:
    def test_drive_zero_below_threshold(self):
        assert drive_current(PTM90, "nmos", w=240e-9, l=90e-9, vgs=0.1) == 0.0

    def test_drive_positive_above_threshold(self):
        assert drive_current(PTM90, "nmos", w=240e-9, l=90e-9, vgs=1.0) > 0.0

    def test_nmos_stronger_than_pmos_same_size(self):
        i_n = drive_current(PTM90, "nmos", w=240e-9, l=90e-9, vgs=1.0)
        i_p = drive_current(PTM90, "pmos", w=240e-9, l=90e-9, vgs=1.0)
        assert i_n > i_p

    def test_aging_reduces_drive(self):
        fresh = drive_current(PTM90, "pmos", w=480e-9, l=90e-9, vgs=1.0)
        aged = drive_current(PTM90, "pmos", w=480e-9, l=90e-9, vgs=1.0, delta_vth=0.03)
        assert aged < fresh

    def test_delay_increases_with_vth(self):
        kw = dict(load_cap=2e-15, w=480e-9, l=90e-9)
        d0 = alpha_power_delay(PTM90, "pmos", vth=0.22, **kw)
        d1 = alpha_power_delay(PTM90, "pmos", vth=0.25, **kw)
        assert d1 > d0

    def test_delay_eq22_small_shift_linearization(self):
        # d ~ (Vdd - Vth)^-alpha, so dd/d = alpha dVth / (Vdd - Vth):
        # the basis of the paper's eq. (22).
        kw = dict(load_cap=2e-15, w=480e-9, l=90e-9)
        vth0, dvth = 0.22, 1e-4
        d0 = alpha_power_delay(PTM90, "pmos", vth=vth0, **kw)
        d1 = alpha_power_delay(PTM90, "pmos", vth=vth0 + dvth, **kw)
        expected = PTM90.alpha * dvth / (PTM90.vdd - vth0)
        assert (d1 - d0) / d0 == pytest.approx(expected, rel=1e-3)

    def test_delay_scales_with_load(self):
        kw = dict(w=480e-9, l=90e-9, vth=0.22)
        d1 = alpha_power_delay(PTM90, "pmos", load_cap=1e-15, **kw)
        d2 = alpha_power_delay(PTM90, "pmos", load_cap=2e-15, **kw)
        assert d2 == pytest.approx(2 * d1)

    def test_delay_series_stack_slower(self):
        kw = dict(load_cap=2e-15, w=480e-9, l=90e-9, vth=0.22)
        d1 = alpha_power_delay(PTM90, "nmos", series_stack=1, **kw)
        d2 = alpha_power_delay(PTM90, "nmos", series_stack=2, **kw)
        assert d2 == pytest.approx(2 * d1)

    def test_delay_supply_drop_slows_gate(self):
        # Eq. (26): a sleep-transistor virtual-rail drop raises delay.
        kw = dict(load_cap=2e-15, w=480e-9, l=90e-9, vth=0.22)
        d0 = alpha_power_delay(PTM90, "nmos", supply_drop=0.0, **kw)
        d1 = alpha_power_delay(PTM90, "nmos", supply_drop=0.05, **kw)
        assert d1 > d0

    def test_delay_collapsed_overdrive_raises(self):
        with pytest.raises(ValueError, match="overdrive"):
            alpha_power_delay(PTM90, "nmos", load_cap=1e-15, w=480e-9,
                              l=90e-9, vth=1.1)

    def test_realistic_inverter_delay_magnitude(self):
        # A unit inverter driving ~4x its input cap should sit in the
        # 1-100 ps band at 90 nm; only the order of magnitude matters.
        d = alpha_power_delay(PTM90, "nmos", load_cap=2e-15, w=240e-9,
                              l=90e-9, vth=0.22)
        assert 1e-13 < d < 1e-10


class TestMosfetDataclass:
    def test_aspect(self):
        m = Mosfet(name="MP1", polarity="pmos", gate_pin="A", w=480e-9, l=90e-9)
        assert m.aspect == pytest.approx(480.0 / 90.0)

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            Mosfet(name="MX", polarity="cmos", gate_pin="A", w=1e-7, l=1e-7)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Mosfet(name="MN", polarity="nmos", gate_pin="A", w=0.0, l=1e-7)
