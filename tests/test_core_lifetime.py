"""Tests for the lifetime / guard-band solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TEN_YEARS
from repro.core import (
    DEFAULT_MODEL,
    WORST_CASE_DEVICE,
    DeviceStress,
    OperatingProfile,
    bisect_lifetime,
    guard_band,
    time_to_degradation,
    time_to_vth_shift,
)

PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)


class TestTimeToShift:
    def test_roundtrip_with_forward_model(self):
        target = 10e-3
        t = time_to_vth_shift(target, PROFILE, WORST_CASE_DEVICE, 0.22)
        back = DEFAULT_MODEL.delta_vth(PROFILE, WORST_CASE_DEVICE, t, 0.22)
        assert back == pytest.approx(target, rel=1e-9)

    def test_larger_target_takes_longer(self):
        t1 = time_to_vth_shift(5e-3, PROFILE, WORST_CASE_DEVICE, 0.22)
        t2 = time_to_vth_shift(10e-3, PROFILE, WORST_CASE_DEVICE, 0.22)
        # t ~ target^4 under the quarter-power law.
        assert t2 == pytest.approx(16 * t1, rel=1e-9)

    def test_unstressed_device_lives_forever(self):
        idle = DeviceStress(active_stress_duty=0.0, standby_stressed=False)
        assert time_to_vth_shift(5e-3, PROFILE, idle) == float("inf")

    def test_guards(self):
        with pytest.raises(ValueError):
            time_to_vth_shift(0.0, PROFILE, WORST_CASE_DEVICE)

    @given(st.floats(min_value=1e-3, max_value=0.05))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, target):
        t = time_to_vth_shift(target, PROFILE, WORST_CASE_DEVICE, 0.22)
        back = DEFAULT_MODEL.delta_vth(PROFILE, WORST_CASE_DEVICE, t, 0.22)
        assert back == pytest.approx(target, rel=1e-6)


class TestTimeToDegradation:
    def test_roundtrip_with_guard_band(self):
        gb = guard_band(PROFILE, WORST_CASE_DEVICE, lifetime=TEN_YEARS,
                        vth0=0.22)
        t = time_to_degradation(gb.delay_margin, PROFILE, WORST_CASE_DEVICE,
                                vth0=0.22)
        assert t == pytest.approx(TEN_YEARS, rel=1e-6)

    def test_tighter_margin_shorter_life(self):
        t_tight = time_to_degradation(0.02, PROFILE, WORST_CASE_DEVICE, vth0=0.22)
        t_loose = time_to_degradation(0.05, PROFILE, WORST_CASE_DEVICE, vth0=0.22)
        assert t_tight < t_loose

    def test_guards(self):
        with pytest.raises(ValueError):
            time_to_degradation(0.0, PROFILE, WORST_CASE_DEVICE)
        with pytest.raises(ValueError):
            time_to_degradation(0.05, PROFILE, WORST_CASE_DEVICE, vth0=1.5)


class TestGuardBand:
    def test_fields_and_summary(self):
        gb = guard_band(PROFILE, WORST_CASE_DEVICE, vth0=0.22)
        assert gb.vth_shift > 0
        assert 0 < gb.delay_margin < 0.2
        assert "delay margin" in gb.summary()

    def test_margin_grows_with_lifetime(self):
        g3 = guard_band(PROFILE, WORST_CASE_DEVICE, lifetime=TEN_YEARS / 3,
                        vth0=0.22)
        g10 = guard_band(PROFILE, WORST_CASE_DEVICE, lifetime=TEN_YEARS,
                         vth0=0.22)
        assert g10.delay_margin > g3.delay_margin

    def test_hot_standby_needs_more_margin(self):
        hot = OperatingProfile.from_ras("1:9", t_standby=400.0)
        assert (guard_band(hot, WORST_CASE_DEVICE, vth0=0.22).delay_margin
                > guard_band(PROFILE, WORST_CASE_DEVICE, vth0=0.22).delay_margin)

    def test_negative_lifetime_rejected(self):
        with pytest.raises(ValueError):
            guard_band(PROFILE, WORST_CASE_DEVICE, lifetime=-1.0)


class TestBisect:
    def test_finds_threshold(self):
        t = bisect_lifetime(lambda x: x >= 1e6, tolerance=0.001)
        assert t == pytest.approx(1e6, rel=0.01)

    def test_never_fires(self):
        assert bisect_lifetime(lambda x: False) == float("inf")

    def test_fires_immediately(self):
        assert bisect_lifetime(lambda x: True, lo=5.0) == 5.0

    def test_bad_window(self):
        with pytest.raises(ValueError):
            bisect_lifetime(lambda x: True, lo=10.0, hi=5.0)

    def test_matches_analytic_solver(self):
        target = 12e-3
        analytic = time_to_vth_shift(target, PROFILE, WORST_CASE_DEVICE, 0.22)
        numeric = bisect_lifetime(
            lambda t: DEFAULT_MODEL.delta_vth(PROFILE, WORST_CASE_DEVICE,
                                              t, 0.22) >= target,
            tolerance=0.001)
        assert numeric == pytest.approx(analytic, rel=0.01)
