"""Standard-cell data model: stages, logic evaluation, delay arcs.

A :class:`Cell` is one or more static CMOS :class:`Stage` objects.  Simple
gates (INV, NAND, NOR, AOI/OAI) are one stage; composed gates (BUF, AND,
OR, XOR) chain stages through named internal nets.  Keeping the stage
structure explicit — instead of only a truth table — is what lets the
library compute per-PMOS NBTI stress, per-vector leakage with stacking,
and pull-up-network delay arcs from the same description, mirroring how
the paper characterizes its cells from SPICE netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.cells.network import (
    Bit,
    SPNode,
    conducts,
    devices,
    max_series_depth,
)
from repro.tech.mosfet import (
    Mosfet,
    alpha_power_delay,
    alpha_power_delay_denominator,
    threshold_at_temperature,
)
from repro.tech.ptm import Technology


@dataclass(frozen=True)
class Stage:
    """One static CMOS stage (complementary pull-up / pull-down pair).

    Attributes:
        output: name of the net this stage drives.
        pull_up: PMOS series-parallel network (rail = Vdd).
        pull_down: NMOS series-parallel network (rail = GND).
    """

    output: str
    pull_up: SPNode
    pull_down: SPNode

    def input_pins(self) -> List[str]:
        """Gate pins referenced by this stage, in first-seen order."""
        seen: List[str] = []
        for m in devices(self.pull_up) + devices(self.pull_down):
            if m.gate_pin not in seen:
                seen.append(m.gate_pin)
        return seen

    def evaluate(self, values: Dict[str, Bit]) -> Bit:
        """Logic value of the stage output; checks CMOS complementarity."""
        up = conducts(self.pull_up, values)
        down = conducts(self.pull_down, values)
        if up == down:
            state = "float" if not up else "short"
            raise RuntimeError(
                f"stage {self.output!r} is not complementary under {values} ({state})"
            )
        return 1 if up else 0


@dataclass(frozen=True)
class Cell:
    """A library cell.

    Attributes:
        name: library name, e.g. ``"NAND2"``.
        inputs: ordered external pin names.
        output: external output pin name (the last stage's output).
        stages: evaluation-ordered stages; earlier stage outputs may feed
            later stage gate pins.
        function: human-readable logic expression, for documentation.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    stages: Tuple[Stage, ...]
    function: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"cell {self.name}: needs at least one stage")
        if self.stages[-1].output != self.output:
            raise ValueError(
                f"cell {self.name}: last stage drives {self.stages[-1].output!r}, "
                f"not the declared output {self.output!r}"
            )
        internal = {s.output for s in self.stages[:-1]}
        known = set(self.inputs) | internal
        for stage in self.stages:
            missing = [p for p in stage.input_pins() if p not in known]
            if missing:
                raise ValueError(
                    f"cell {self.name}: stage {stage.output!r} references "
                    f"undriven pins {missing}"
                )

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def evaluate(self, bits: Sequence[Bit]) -> Bit:
        """Cell output for an input vector (ordered like ``self.inputs``)."""
        return self.node_values(bits)[self.output]

    def node_values(self, bits: Sequence[Bit]) -> Dict[str, Bit]:
        """Logic value of every pin and internal net for an input vector."""
        if len(bits) != len(self.inputs):
            raise ValueError(
                f"cell {self.name} expects {len(self.inputs)} inputs, got {len(bits)}"
            )
        values: Dict[str, Bit] = dict(zip(self.inputs, bits))
        for stage in self.stages:
            values[stage.output] = stage.evaluate(values)
        return values

    def truth_table(self) -> Dict[Tuple[Bit, ...], Bit]:
        """Exhaustive truth table (cells are small; 2^n rows).

        Memoized per instance: cells are immutable, yet probability
        propagation re-reads the table for every gate of every circuit,
        so the 2^n stage evaluations are paid exactly once.  The cached
        dict is shared — callers must treat it as read-only.
        """
        cached = getattr(self, "_truth_table_cache", None)
        if cached is None:
            cached = {}
            for index in range(2 ** self.n_inputs):
                vec = tuple((index >> k) & 1 for k in range(self.n_inputs))
                cached[vec] = self.evaluate(vec)
            # Frozen dataclass: lazy caches go through object.__setattr__.
            object.__setattr__(self, "_truth_table_cache", cached)
        return cached

    def all_vectors(self) -> List[Tuple[Bit, ...]]:
        """All input vectors in ascending binary order (bit 0 = first pin)."""
        return [
            tuple((index >> k) & 1 for k in range(self.n_inputs))
            for index in range(2 ** self.n_inputs)
        ]

    def pmos_devices(self) -> List[Mosfet]:
        """All PMOS transistors across stages."""
        result = []
        for stage in self.stages:
            result.extend(m for m in devices(stage.pull_up) if m.polarity == "pmos")
        return result

    def input_capacitance(self, tech: Technology, pin: str) -> float:
        """Input pin capacitance: sum of gate caps of transistors on ``pin``."""
        if pin not in self.inputs:
            raise ValueError(f"cell {self.name} has no input pin {pin!r}")
        total = 0.0
        for stage in self.stages:
            for m in devices(stage.pull_up) + devices(stage.pull_down):
                if m.gate_pin == pin:
                    total += tech.gate_cap_per_width * m.w
        if total == 0.0:
            raise ValueError(f"cell {self.name}: pin {pin!r} drives no transistor")
        return total

    def _stage_edge_delay(self, stage: Stage, tech: Technology, load_cap: float,
                          edge: str, delta_vth_pmos: float,
                          supply_drop: float, temperature: float) -> float:
        """Delay of one stage for an output ``edge`` ("rise" or "fall").

        Rising outputs are driven by the pull-up network, so only they see
        the NBTI Vth shift (eq. 22's mechanism); the sleep-transistor
        virtual-rail drop (eq. 26) applies to both edges.
        """
        if edge == "rise":
            net, polarity, aged = stage.pull_up, "pmos", delta_vth_pmos
        elif edge == "fall":
            net, polarity, aged = stage.pull_down, "nmos", 0.0
        else:
            raise ValueError(f"edge must be 'rise' or 'fall', got {edge!r}")
        ds = devices(net)
        width = sum(m.w for m in ds) / len(ds)
        length = ds[0].l
        vth = threshold_at_temperature(
            tech.params(polarity), temperature, tech.reference_temperature
        ) + aged
        return alpha_power_delay(
            tech, polarity, load_cap=load_cap, w=width, l=length, vth=vth,
            series_stack=max_series_depth(net), supply_drop=supply_drop,
        )

    def delay(self, tech: Technology, load_cap: float, edge: str, *,
              delta_vth_pmos: float = 0.0, supply_drop: float = 0.0,
              temperature: float = 300.0, internal_load_cap: float = 2e-16) -> float:
        """Pin-to-output propagation delay for an output ``edge``.

        Multi-stage cells alternate edge polarity stage by stage; internal
        stages see a small fixed internal load, the last stage sees
        ``load_cap``.  ``delta_vth_pmos`` is the worst aged PMOS shift in
        the cell — the paper takes the largest ΔVth in a gate (Sec. 3.3).
        """
        n = len(self.stages)
        total = 0.0
        stage_edge = edge
        # Work backwards: the final stage produces `edge`; each earlier
        # stage (inverting) produced the opposite edge.
        edges: List[str] = []
        for _ in range(n):
            edges.append(stage_edge)
            stage_edge = "fall" if stage_edge == "rise" else "rise"
        edges.reverse()
        for i, stage in enumerate(self.stages):
            cap = load_cap if i == n - 1 else internal_load_cap
            total += self._stage_edge_delay(
                stage, tech, cap, edges[i], delta_vth_pmos, supply_drop, temperature
            )
        return total

    def delay_terms(self, tech: Technology, edge: str, *,
                    delta_vth_pmos: float = 0.0, supply_drop: float = 0.0,
                    temperature: float = 300.0,
                    internal_load_cap: float = 2e-16) -> Tuple[float, float]:
        """``(prefix, denominator)`` of the affine form of :meth:`delay`.

        For any non-negative load,
        ``delay(tech, load, edge, ...) == prefix + load * tech.vdd / denom``
        bit-for-bit: internal stages see the fixed ``internal_load_cap``
        so their delays accumulate into the load-independent ``prefix``
        in the same left-to-right order :meth:`delay` adds them, and the
        final stage contributes the load-proportional term whose
        denominator this returns (see
        :func:`~repro.tech.mosfet.alpha_power_delay_denominator`).  The
        compiled STA lowering evaluates one ``(cell, edge)`` class for a
        whole load vector through this decomposition.
        """
        n = len(self.stages)
        stage_edge = edge
        edges: List[str] = []
        for _ in range(n):
            edges.append(stage_edge)
            stage_edge = "fall" if stage_edge == "rise" else "rise"
        edges.reverse()
        prefix = 0.0
        for i, stage in enumerate(self.stages[:-1]):
            prefix += self._stage_edge_delay(
                stage, tech, internal_load_cap, edges[i], delta_vth_pmos,
                supply_drop, temperature
            )
        final = self.stages[-1]
        if edges[-1] == "rise":
            net, polarity, aged = final.pull_up, "pmos", delta_vth_pmos
        elif edges[-1] == "fall":
            net, polarity, aged = final.pull_down, "nmos", 0.0
        else:
            raise ValueError(f"edge must be 'rise' or 'fall', got {edge!r}")
        ds = devices(net)
        width = sum(m.w for m in ds) / len(ds)
        length = ds[0].l
        vth = threshold_at_temperature(
            tech.params(polarity), temperature, tech.reference_temperature
        ) + aged
        denom = alpha_power_delay_denominator(
            tech, polarity, w=width, l=length, vth=vth,
            series_stack=max_series_depth(net), supply_drop=supply_drop,
        )
        return prefix, denom
