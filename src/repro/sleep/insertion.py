"""Sleep-transistor insertion and its aged-timing impact (Sec. 4.4.2).

Standby semantics per style (the paper's Fig. 10 discussion):

* **footer** (NMOS to ground): internal nodes charge toward Vdd, every
  PMOS sees Vgs ~ 0 — no standby NBTI stress, and the footer itself is
  immune (NBTI is a PMOS effect).
* **header** (PMOS to Vdd): internal nodes discharge toward ground, so
  the virtual supply collapses and again no internal PMOS is negatively
  biased; the *header itself* is stressed whenever the circuit is active
  and ages per Fig. 8.
* **both**: union of the two; no internal stress, header still ages.

In every style the internal circuit behaves like the internal-node-
control best case during standby; the active-mode stress (signal-
probability driven) remains.  Gated delays additionally pay the
virtual-rail drop V_ST (eq. 26), which *grows over time for headers*
unless the NBTI-aware upsizing of eq. (31) is applied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro import obs
from repro.cells.library import Library
from repro.constants import TEN_YEARS
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.profiles import DeviceStress, OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library
from repro.sleep.sizing import (
    K_TRIODE_P,
    max_virtual_rail_drop,
    nbti_aware_aspect_ratio,
    st_aspect_ratio,
)
from repro.sta.analysis import analyze, gate_loads
from repro.sta.degradation import ALL_ONE, AgingAnalyzer


class SleepStyle(enum.Enum):
    """Where the sleep transistor sits (paper Fig. 10)."""

    FOOTER = "footer"
    HEADER = "header"
    BOTH = "both"

    @property
    def has_header(self) -> bool:
        return self in (SleepStyle.HEADER, SleepStyle.BOTH)


@dataclass(frozen=True)
class SleepTransistorDesign:
    """A sized block-level sleep transistor (BBSTI, one block).

    Attributes:
        style: footer / header / both.
        beta: delay-penalty bound used for sizing (eq. 28).
        vth_st: the ST's own threshold magnitude (V).
        i_on: worst-case block current the ST must carry (A).
        v_st: designed virtual-rail drop (V).
        aspect_ratio: (W/L) from eq. (30).
        nbti_margin: end-of-life dVth the sizing absorbed (0 for plain
            sizing; Fig. 8's value for NBTI-aware sizing).
    """

    style: SleepStyle
    beta: float
    vth_st: float
    i_on: float
    v_st: float
    aspect_ratio: float
    nbti_margin: float = 0.0

    def virtual_rail_drop(self, delta_vth_st: float) -> float:
        """V_ST after the header has aged by ``delta_vth_st`` (eq. 29
        re-solved at fixed W/L and I_ON).

        Footers contain no PMOS and never age: the drop stays at the
        design value.  NBTI-aware headers start *below* the design drop
        (they are oversized while young) and reach it at end of life.
        """
        if not self.style.has_header:
            return self.v_st
        if delta_vth_st < 0:
            raise ValueError("threshold shift must be non-negative")
        overdrive = PTM_VDD - self.vth_st - delta_vth_st
        if overdrive <= 0:
            raise ValueError("header aged past its overdrive")
        return self.i_on / (K_TRIODE_P * overdrive * self.aspect_ratio)


PTM_VDD = 1.0


def estimate_block_current(circuit: Circuit,
                           library: Optional[Library] = None,
                           simultaneity: float = 0.2, *,
                           context=None) -> float:
    """Worst-case current the block draws through its sleep transistor.

    Finding the true maximum requires simulating all input pairs, which
    "is impossible for large circuits" (Sec. 4.4.1); like the BBSTI
    literature we estimate it as the charge moved by one full transition
    wave spread over the critical delay, derated by a simultaneity
    factor.  With ``context=`` the loads and the fresh STA come from the
    shared memo.
    """
    if not 0.0 < simultaneity <= 1.0:
        raise ValueError("simultaneity must be in (0, 1]")
    if context is None or (library is not None
                           and context.library is not library):
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    library = context.library
    loads = context.gate_loads()
    delay = context.fresh_timing().circuit_delay
    total_charge = sum(loads.values()) * library.tech.vdd
    return simultaneity * total_charge / delay


def design_sleep_transistor(circuit: Circuit, style: SleepStyle,
                            beta: float, vth_st: float = 0.22, *,
                            nbti_margin: float = 0.0,
                            library: Optional[Library] = None,
                            context=None) -> SleepTransistorDesign:
    """Size a block-level ST for ``circuit`` (eqs. 28-31).

    Args:
        beta: delay-penalty bound (paper uses 0.05, 0.03, 0.01).
        vth_st: ST threshold magnitude.
        nbti_margin: pass the expected end-of-life header dVth (from
            :func:`repro.sleep.sizing.st_vth_shift`) to apply the
            NBTI-aware upsizing of eq. (31).
        context: shared :class:`~repro.context.AnalysisContext` for the
            block-current estimate (loads + fresh STA).
    """
    library = library or (context.library if context is not None
                          else default_library())
    i_on = estimate_block_current(circuit, library, context=context)
    v_st = max_virtual_rail_drop(beta, library.tech)
    if nbti_margin > 0:
        wl = nbti_aware_aspect_ratio(i_on, v_st, vth_st, nbti_margin,
                                     library.tech)
    else:
        wl = st_aspect_ratio(i_on, v_st, vth_st, library.tech)
    return SleepTransistorDesign(style=style, beta=beta, vth_st=vth_st,
                                 i_on=i_on, v_st=v_st, aspect_ratio=wl,
                                 nbti_margin=nbti_margin)


@dataclass(frozen=True)
class GatedTimingPoint:
    """Aged timing of a sleep-gated circuit at one lifetime instant."""

    time: float
    st_delta_vth: float
    v_st: float
    circuit_delay: float


def gated_aged_delay(circuit: Circuit, design: SleepTransistorDesign,
                     profile: OperatingProfile, t_total: float, *,
                     analyzer: Optional[AgingAnalyzer] = None,
                     model: NbtiModel = DEFAULT_MODEL,
                     library: Optional[Library] = None,
                     context=None,
                     engine: str = "auto") -> GatedTimingPoint:
    """Circuit delay after ``t_total`` seconds with the ST inserted.

    Internal gates age only from active-mode stress (standby parks every
    PMOS at Vgs ~ 0 in all three styles); headers additionally raise the
    virtual-rail drop as they age.  With ``context=`` the per-gate
    shifts and loads are memoized across lifetime sweep points.  The
    ``engine`` setting selects the vectorized or oracle shift path (see
    :meth:`~repro.sta.degradation.AgingAnalyzer.gate_shifts`).
    """
    analyzer = analyzer or AgingAnalyzer(library=library, model=model)
    library = library or default_library()
    obs.count("sleep.gated_points")
    with obs.span("sleep.gated_point", t=float(t_total),
                  style=design.style.value):
        shifts = analyzer.gate_shifts(circuit, profile, t_total,
                                      standby=ALL_ONE, context=context,
                                      engine=engine)
        st_shift = 0.0
        if design.style.has_header:
            device = DeviceStress(active_stress_duty=1.0,
                                  standby_stressed=False)
            st_shift = model.delta_vth(profile, device, t_total,
                                       design.vth_st)
        v_st = design.virtual_rail_drop(st_shift)
        # Only the worst-arrival scalar is needed here, so matching
        # contexts read it straight off the compiled kernel instead of
        # paying analyze()'s full slack/arrival-map assembly (the
        # ``sta.compiled.assemble`` span prices what this skips); both
        # routes floor the same propagated PO arrivals at 0.0, so the
        # floats are identical.
        if (context is not None and context.circuit is circuit
                and context.library is library):
            delay = context.compiled_timing().delay(shifts,
                                                    supply_drop=v_st)
        else:
            delay = analyze(circuit, library, delta_vth=shifts,
                            supply_drop=v_st, context=context).circuit_delay
    return GatedTimingPoint(time=t_total, st_delta_vth=st_shift,
                            v_st=v_st, circuit_delay=delay)


def gated_lifetime_series(circuit: Circuit, design: SleepTransistorDesign,
                          profile: OperatingProfile, times, *,
                          analyzer: Optional[AgingAnalyzer] = None,
                          model: NbtiModel = DEFAULT_MODEL,
                          library: Optional[Library] = None,
                          context=None,
                          engine: str = "auto") -> "list[GatedTimingPoint]":
    """Gated aged timing over a whole lifetime grid in one STA batch.

    Bit-identical to calling :func:`gated_aged_delay` once per instant
    with the same shared context, but the final timing step runs as a
    single :meth:`~repro.sta.compiled.CompiledTiming.delays_batch` call
    with a per-column virtual-rail drop — one arrival propagation for
    the whole (year, drop) grid instead of one per point.  The per-gate
    shifts and the header's own aging are still evaluated per instant
    (each lifetime has its own dVth field); those are the cheap part.
    """
    import numpy as np

    analyzer = analyzer or AgingAnalyzer(library=library, model=model)
    library = library or default_library()
    if (context is None or context.circuit is not circuit
            or context.library is not library):
        from repro.context import AnalysisContext

        context = AnalysisContext(circuit, library=library)
    times = [float(t) for t in times]
    with obs.span("sleep.gated_series", points=len(times),
                  style=design.style.value):
        st_shifts = []
        v_sts = []
        columns = []
        ct = context.compiled_timing()
        for t in times:
            obs.count("sleep.gated_points")
            shifts = analyzer.gate_shifts(circuit, profile, t,
                                          standby=ALL_ONE, context=context,
                                          engine=engine)
            st_shift = 0.0
            if design.style.has_header:
                device = DeviceStress(active_stress_duty=1.0,
                                      standby_stressed=False)
                st_shift = model.delta_vth(profile, device, t,
                                           design.vth_st)
            st_shifts.append(st_shift)
            v_sts.append(design.virtual_rail_drop(st_shift))
            columns.append(ct.gate_vector(shifts, 0.0))
        matrix = np.stack(columns, axis=1)
        delays = ct.delays_batch(matrix,
                                 supply_drop=np.asarray(v_sts))
    return [GatedTimingPoint(time=t, st_delta_vth=st, v_st=v,
                             circuit_delay=float(d))
            for t, st, v, d in zip(times, st_shifts, v_sts, delays)]
