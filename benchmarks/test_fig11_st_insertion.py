"""Fig. 11 — C432 degradation with and without sleep-transistor insertion.

Paper setting: RAS = 1:9; without an ST, the worst case is evaluated at
T_standby = 330/370/400 K; with a PMOS header sized for beta = 5/3/1 %,
the time-0 delay pays the beta penalty but standby stress disappears.
Published structure: the no-ST worst case spans ~3.9-7.3 % across the
temperatures, and "there exist conditions that we will have a faster
circuit at time = 10 years even if we inserted STs" — low beta beats
the hot-standby ungated circuit.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.netlist import iscas85
from repro.sleep import (SleepStyle, design_sleep_transistor,
                         gated_lifetime_series)
from repro.sta import ALL_ZERO, AgingAnalyzer

T_STANDBY = (330.0, 370.0, 400.0)
BETAS = (0.05, 0.03, 0.01)


def run_fig11():
    circuit = iscas85.load("c432")
    analyzer = AgingAnalyzer()
    fresh = analyzer.aged_timing(
        circuit, OperatingProfile.from_ras("1:9"), 0.0).fresh_delay
    no_st = {}
    for tst in T_STANDBY:
        profile = OperatingProfile.from_ras("1:9", t_standby=tst)
        res = analyzer.aged_timing(circuit, profile, TEN_YEARS,
                                   standby=ALL_ZERO)
        no_st[tst] = res.relative_degradation
    with_st = {}
    profile = OperatingProfile.from_ras("1:9", t_standby=330.0)
    for beta in BETAS:
        design = design_sleep_transistor(circuit, SleepStyle.HEADER, beta)
        # One batched STA for both lifetime instants (bit-identical to
        # two gated_aged_delay calls).
        t0, t10 = gated_lifetime_series(circuit, design, profile,
                                        (0.0, TEN_YEARS))
        with_st[beta] = (t0.circuit_delay / fresh - 1.0,
                         t10.circuit_delay / fresh - 1.0)
    return {"fresh": fresh, "no_st": no_st, "with_st": with_st}


def check(data):
    no_st = data["no_st"]
    # Ungated worst case rises with T_standby, spanning the paper's band.
    assert no_st[330.0] < no_st[370.0] < no_st[400.0]
    assert 0.025 < no_st[330.0] < 0.06      # paper: 3.87 %
    assert 0.05 < no_st[400.0] < 0.10       # paper: 7.31 %
    for beta, (t0, t10) in data["with_st"].items():
        assert abs(t0 - beta) < beta * 0.5  # time-0 penalty ~ beta
        assert t10 > t0                     # still ages (active stress)
    # The Fig. 11 crossover: a 1 % header beats the hot ungated case.
    assert data["with_st"][0.01][1] < no_st[400.0]


def report(data):
    rows = [[f"{tst:.0f} K", f"{deg * 100:5.2f}"]
            for tst, deg in data["no_st"].items()]
    emit("Fig. 11 — c432 without ST: 10-year worst-case degradation",
         ["T_standby", "dDelay (%)"], rows)
    rows = [[f"{beta * 100:.0f} %", f"{t0 * 100:5.2f}", f"{t10 * 100:5.2f}"]
            for beta, (t0, t10) in data["with_st"].items()]
    emit("Fig. 11 — c432 with PMOS-header ST (T_standby 330 K)",
         ["beta", "penalty @t=0 (%)", "delay vs fresh @10y (%)"], rows)
    print("crossover: beta=1% header at 10 years "
          f"({data['with_st'][0.01][1] * 100:.2f}%) beats no-ST at 400 K "
          f"({data['no_st'][400.0] * 100:.2f}%)")


def test_fig11_st_insertion(run_once):
    data = run_once(run_fig11)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig11()
    check(d)
    report(d)
