"""Table 2 — leakage and NBTI delay degradation per input vector.

Paper setting: leakage characterized at 400 K; NBTI at RAS = 1:9,
T_active = 400 K, T_standby = 330 K, active SP = 0.5, the vector being
the *standby* state.  Published structure to reproduce:

* both leakage and aged delay vary strongly with the input vector;
* for NOR gates the minimum-leakage vector is also the best-case NBTI
  vector, while for NAND/AND/INV the minimum-leakage vector is the
  *worst* NBTI vector [49] — hence leakage and NBTI must be
  co-optimized, not optimized in sequence.
"""

from _common import emit
from repro.cells import build_library, cell_leakage, stress_under_vector
from repro.cells.stress import stress_probabilities_for_cell
from repro.constants import TEN_YEARS
from repro.core import DEFAULT_MODEL, DeviceStress, OperatingProfile

GATES = ("NOR2", "NOR3", "INV", "NAND2")
T_LEAK = 400.0
PROFILE = OperatingProfile.from_ras("1:9", t_active=400.0, t_standby=330.0)


def run_table2():
    library = build_library()
    model = DEFAULT_MODEL
    vth0 = library.tech.pmos.vth0
    alpha = library.tech.alpha
    overdrive = library.tech.vdd - vth0
    table = {}
    for name in GATES:
        cell = library.get(name)
        duties = stress_probabilities_for_cell(
            cell, {pin: 0.5 for pin in cell.inputs})
        per_vector = []
        for vec in cell.all_vectors():
            leak = cell_leakage(cell, vec, library.tech, T_LEAK)
            stressed = stress_under_vector(cell, vec)
            worst = 0.0
            for m in cell.pmos_devices():
                device = DeviceStress(
                    active_stress_duty=duties.get(m.name, 0.0),
                    standby_stressed=m.name in stressed)
                worst = max(worst, model.delta_vth(PROFILE, device,
                                                   TEN_YEARS, vth0))
            ddelay = alpha * worst / overdrive
            per_vector.append((vec, leak, worst, ddelay))
        table[name] = per_vector
    return table


def check(table):
    for name, rows in table.items():
        leaks = [r[1] for r in rows]
        degs = [r[3] for r in rows]
        # Leakage varies with the vector (strongly where stacks exist).
        factor = 1.3 if name != "INV" else 1.05
        assert max(leaks) > factor * min(leaks), name
        assert max(degs) > min(degs), name
        min_leak_deg = min(rows, key=lambda r: r[1])[3]
        if name.startswith("NOR"):
            # Min-leakage vector is (one of) the best NBTI vectors.
            assert min_leak_deg == min(degs), name
        else:
            # NAND/INV: min-leakage vector is the worst NBTI vector.
            assert min_leak_deg == max(degs), name


def report(table):
    for name, rows in table.items():
        printable = [
            ["".join(str(b) for b in vec), f"{leak * 1e9:8.1f}",
             f"{dv * 1e3:5.2f}", f"{dd * 100:5.2f}"]
            for vec, leak, dv, dd in rows
        ]
        emit(f"Table 2 — {name}: leakage (nA @400K) and NBTI delay "
             "degradation per standby vector",
             ["vector", "leakage (nA)", "dVth (mV)", "dDelay (%)"],
             printable)


def test_table2_gate_vectors(run_once):
    table = run_once(run_table2)
    check(table)
    report(table)


if __name__ == "__main__":
    t = run_table2()
    check(t)
    report(t)
