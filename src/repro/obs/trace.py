"""Structured tracing: nested spans with wall time and attributes.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
``with tracer.span("name"):`` block (or per call of a
:func:`traced`-decorated function).  Spans carry wall-clock start /
duration (from :func:`time.perf_counter`, relative to the tracer's
first span) plus arbitrary JSON-serializable attributes, and export as
nested dicts (for :class:`~repro.obs.report.RunReport`) or flat JSONL
(one line per span, depth-first, for grepping).

Disabled-by-default contract
----------------------------
The module-level :func:`span` / :func:`annotate` helpers and the
:func:`traced` decorator check the installed tracer against the
:data:`NULL_TRACER` singleton and return immediately when tracing is
off — no span objects, no clock reads, no allocation beyond the call
itself.  ``benchmarks/test_perf_obs.py`` pins that the per-call cost of
the disabled path stays far below 2 % of the headline kernel runtimes.

The installed tracer is process-global (swap it with
:func:`set_tracer` / :func:`use_tracer`); the design is single-threaded
per process, matching the process-parallel architecture of
:mod:`repro.flow.parallel`, where each worker process installs its own
tracer and ships its span dicts back for :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import functools
import json
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One timed region: name, start, duration, attributes, children.

    ``start`` is relative to the owning tracer's first span (seconds);
    ``duration`` is ``None`` while the span is open.  Treat instances as
    tracer-owned: mutate them only through :meth:`Tracer.annotate`.
    """

    __slots__ = ("name", "start", "duration", "attributes", "children")

    def __init__(self, name: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = start
        self.duration: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, Any]:
        """Nested-dict form (the RunReport / cross-process format)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(str(data.get("name", "")), float(data.get("start") or 0.0),
                   data.get("attributes"))
        duration = data.get("duration")
        span.duration = None if duration is None else float(duration)
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def iter(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def __repr__(self) -> str:
        dur = "open" if self.duration is None else f"{self.duration:.3e}s"
        return (f"Span({self.name!r}, {dur}, "
                f"children={len(self.children)})")


class _SpanHandle:
    """Context manager closing one span on exit (tracer-internal)."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span, t0: float):
        self._tracer = tracer
        self._span = span
        self._t0 = t0

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration = perf_counter() - self._t0
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


class Tracer:
    """Collects a span tree for one run (or one worker process).

    Spans nest by ``with`` scoping: a span opened while another is open
    becomes its child.  All timestamps come from
    :func:`time.perf_counter` and are stored relative to the tracer's
    first span, so span dicts from different processes are individually
    consistent (compare durations, not starts, across processes).
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._epoch: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("x", key=val):``."""
        now = perf_counter()
        if self._epoch is None:
            self._epoch = now
        span = Span(name, now - self._epoch, attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span, now)

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def adopt(self, span_dicts: List[Dict[str, Any]],
              **attributes: Any) -> None:
        """Attach serialized span trees (e.g. from a worker process).

        Each tree is rebuilt via :meth:`Span.from_dict`, given the extra
        ``attributes`` on its root, and appended under the current open
        span (or as a new root).  Order of calls is preserved, so
        merging worker payloads in job order yields a deterministic
        tree.
        """
        container = (self._stack[-1].children if self._stack
                     else self.roots)
        for data in span_dicts:
            span = Span.from_dict(data)
            span.attributes.update(attributes)
            container.append(span)

    # -- export ------------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first over all roots."""
        for root in self.roots:
            yield from root.iter()

    def find(self, name: str) -> List[Span]:
        """All spans with the given name (depth-first order)."""
        return [s for s in self.iter_spans() if s.name == name]

    def span_dicts(self) -> List[Dict[str, Any]]:
        """The root span trees as nested dicts."""
        return [root.to_dict() for root in self.roots]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per span, depth-first, with a ``path`` field.

        Every line is self-contained (``name``, slash-joined ``path``
        from its root, ``depth``, ``start``, ``duration``,
        ``attributes``) so traces can be filtered with grep/jq without
        reassembling the tree.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for root in self.roots:
                self._write_flat(fh, root, "", 0)

    def _write_flat(self, fh, span: Span, prefix: str, depth: int) -> None:
        path = f"{prefix}/{span.name}" if prefix else span.name
        fh.write(json.dumps({
            "name": span.name,
            "path": path,
            "depth": depth,
            "start": span.start,
            "duration": span.duration,
            "attributes": span.attributes,
        }, sort_keys=True) + "\n")
        for child in span.children:
            self._write_flat(fh, child, path, depth + 1)

    def __repr__(self) -> str:
        total = sum(1 for _ in self.iter_spans())
        return f"Tracer(roots={len(self.roots)}, spans={total})"


class _NullHandle:
    """The shared do-nothing context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Do-nothing tracer installed while tracing is disabled.

    Mirrors the :class:`Tracer` API so instrumented code never branches
    on availability; every method is a constant-time no-op and
    :meth:`span` returns one shared context-manager instance (no
    allocation per call).
    """

    enabled = False
    roots: List[Span] = []

    def span(self, name: str = "", **attributes: Any) -> _NullHandle:
        """No-op span: returns the shared null context manager."""
        return _NULL_HANDLE

    def annotate(self, **attributes: Any) -> None:
        """No-op."""

    @property
    def current(self) -> None:
        """Always ``None``."""
        return None

    def adopt(self, span_dicts: List[Dict[str, Any]],
              **attributes: Any) -> None:
        """No-op."""

    def iter_spans(self) -> Iterator[Span]:
        """Empty iterator."""
        return iter(())

    def find(self, name: str) -> List[Span]:
        """Always empty."""
        return []

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


#: The disabled-tracing singleton; identity-compared on every fast path.
NULL_TRACER = NullTracer()

_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The currently installed tracer (the null singleton when off)."""
    return _tracer


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` (``None`` disables); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def tracing_enabled() -> bool:
    """True when a real tracer is installed (collection is active)."""
    return _tracer is not NULL_TRACER


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Install a tracer for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes: Any):
    """Open a span on the installed tracer (shared no-op when disabled).

    This is the instrumentation entry point used across the analysis
    stack::

        with obs.span("sta.compiled.delays_batch", batch=b):
            ...
    """
    tracer = _tracer
    if tracer is NULL_TRACER:
        return _NULL_HANDLE
    return tracer.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the current span (no-op when disabled)."""
    tracer = _tracer
    if tracer is not NULL_TRACER:
        tracer.annotate(**attributes)


def traced(name: Optional[Callable] = None, **attributes: Any):
    """Decorator tracing every call of a function as one span.

    Usable bare (``@traced``, span named after ``__qualname__``) or
    with arguments (``@traced("my.span", key=val)``).  When tracing is
    disabled the wrapper calls straight through after one identity
    check.
    """
    def decorate(fn: Callable, label: Optional[str] = None) -> Callable:
        span_name = label or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _tracer
            if tracer is NULL_TRACER:
                return fn(*args, **kwargs)
            with tracer.span(span_name, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):
        return decorate(name)
    return lambda fn: decorate(fn, name)
