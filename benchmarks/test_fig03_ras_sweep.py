"""Fig. 3 — dVth vs time for different active:standby ratios (RAS).

Paper setting: T_active = 400 K, active-mode signal probability 0.5,
standby input 0 (worst case).  The top curve is the isothermal
T_standby = T_active = 400 K case; the others hold T_standby = 330 K,
where a larger standby share *reduces* degradation.
"""

import numpy as np

from _common import emit
from repro.constants import TEN_YEARS, seconds_to_years
from repro.core import DEFAULT_MODEL, OperatingProfile

TIMES = np.logspace(5, np.log10(TEN_YEARS), 10)
RAS_LIST = ("1:1", "1:5", "1:9")


def run_fig03():
    model = DEFAULT_MODEL
    curves = {}
    hot = OperatingProfile.from_ras("1:1", t_standby=400.0)
    curves["1:1 (T_st=400K)"] = model.delta_vth_series(
        hot, _worst(), TIMES, 0.22)
    for ras in RAS_LIST:
        profile = OperatingProfile.from_ras(ras, t_standby=330.0)
        curves[f"{ras} (T_st=330K)"] = model.delta_vth_series(
            profile, _worst(), TIMES, 0.22)
    return {"times": TIMES, "curves": curves}


def _worst():
    from repro.core import WORST_CASE_DEVICE
    return WORST_CASE_DEVICE


def check(data):
    curves = data["curves"]
    # The isothermal 400 K curve dominates everything at 330 K standby.
    top = curves["1:1 (T_st=400K)"]
    for label, series in curves.items():
        assert np.all(np.diff(series) >= 0), label
        if label != "1:1 (T_st=400K)":
            assert np.all(series <= top + 1e-12), label
    # At cold standby, more standby time means less degradation.
    assert curves["1:1 (T_st=330K)"][-1] > curves["1:5 (T_st=330K)"][-1]
    assert curves["1:5 (T_st=330K)"][-1] > curves["1:9 (T_st=330K)"][-1]


def report(data):
    labels = list(data["curves"])
    rows = []
    for k, t in enumerate(data["times"]):
        rows.append([f"{seconds_to_years(t):8.3f}"]
                    + [f"{data['curves'][l][k] * 1e3:6.2f}" for l in labels])
    emit("Fig. 3 — dVth (mV) vs time for different RAS",
         ["years"] + labels, rows)


def test_fig03_ras_sweep(run_once):
    data = run_once(run_fig03)
    check(data)
    report(data)


if __name__ == "__main__":
    d = run_fig03()
    check(d)
    report(d)
