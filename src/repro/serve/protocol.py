"""Wire and storage protocol of the analysis service.

Everything the service persists or ships over HTTP is defined here as
plain JSON-able data:

* :class:`AgeScenario` — one aged-timing query (RAS split, active and
  standby temperatures, lifetime horizon, bounding standby state).  Its
  :meth:`~AgeScenario.key` is the *same*
  :func:`~repro.artifacts.fingerprint.scenario_key` payload the
  ``repro age --store`` CLI path uses, so the service's result cache
  and the CLI's are one cache: a result computed by either is a warm
  hit for the other, byte for byte (JSON round-trips floats exactly).
* :class:`JobRecord` — the durable job state machine (``queued ->
  running -> done | failed``) persisted as one atomic JSON file per
  job in the :class:`~repro.artifacts.store.ArtifactStore`.  A record
  on disk is always a complete, consistent snapshot: transitions
  rewrite the whole file via the store's atomic-replace write path.
* :func:`structured_error` — the error envelope attached to failed
  attempts (worker crashes, timeouts, analysis exceptions), so a
  failed job explains itself instead of hanging the queue.

State machine invariants (enforced by
:class:`~repro.serve.queue.JobQueue` and pinned by the property and
fault-injection suites):

* ``done`` is only ever written after the result payload is in the
  store's result cache — a ``done`` job always has a readable result.
* ``running`` is a *claim*, not a completion: a crashed or restarted
  server finds ``running`` records and requeues them (attempts
  preserved), never duplicating a ``done`` result.
* ``failed`` is terminal and carries a structured error with the
  attempt count that exhausted the retry budget.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.constants import years

#: Job-record JSON layout version (checked on load; stale-schema
#: records are surfaced as failed loads, never misread).
JOB_SCHEMA = 1

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Every valid state, for validation.
STATES = (QUEUED, RUNNING, DONE, FAILED)

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED)


def new_job_id() -> str:
    """A fresh, collision-resistant job identifier."""
    return uuid.uuid4().hex[:16]


def structured_error(kind: str, message: str, **details: Any
                     ) -> Dict[str, Any]:
    """The error envelope of one failed attempt.

    ``kind`` is machine-matchable (``worker-crashed``, ``timeout``,
    ``analysis-error``, ``drained``); ``message`` is for humans;
    ``details`` carry whatever is known (exit code, signal number,
    exception type).
    """
    payload: Dict[str, Any] = {"type": kind, "message": message}
    payload.update(details)
    return payload


@dataclass(frozen=True)
class AgeScenario:
    """One aged-timing query: the ``repro age`` parameter set.

    The defaults equal the CLI defaults, so a bare ``submit`` asks the
    same question as a bare ``repro age CIRCUIT``.
    """

    ras: str = "1:9"
    t_active: float = 400.0
    t_standby: float = 330.0
    years: float = 10.0
    standby: str = "worst"

    def __post_init__(self) -> None:
        if self.standby not in ("worst", "best"):
            raise ValueError(
                f"standby must be 'worst' or 'best', got {self.standby!r}")

    def payload(self) -> Dict[str, Any]:
        """The canonical scenario-key payload.

        This is byte-compatible with the dict ``repro age --store``
        hashes, which is what makes the service cache and the CLI
        cache interchangeable.  Do not reorder semantics here without
        bumping the fingerprint schema.
        """
        return {"command": "age", "ras": self.ras,
                "t_active": self.t_active, "t_standby": self.t_standby,
                "years": self.years, "standby": self.standby}

    def key(self) -> str:
        """The content-hash result-cache key of this scenario."""
        from repro.artifacts.fingerprint import scenario_key

        return scenario_key(self.payload())

    def profile(self):
        """The :class:`~repro.core.profiles.OperatingProfile`."""
        from repro.core.profiles import OperatingProfile

        return OperatingProfile.from_ras(self.ras, t_active=self.t_active,
                                         t_standby=self.t_standby)

    def lifetime_seconds(self) -> float:
        """The lifetime horizon in seconds."""
        return years(self.years)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the job-record / HTTP representation)."""
        return {"ras": self.ras, "t_active": self.t_active,
                "t_standby": self.t_standby, "years": self.years,
                "standby": self.standby}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AgeScenario":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = {"ras", "t_active", "t_standby", "years", "standby"}
        extra = sorted(set(data) - known)
        if extra:
            raise ValueError(f"unknown scenario field(s): {extra}")
        out = cls(
            ras=str(data.get("ras", "1:9")),
            t_active=float(data.get("t_active", 400.0)),
            t_standby=float(data.get("t_standby", 330.0)),
            years=float(data.get("years", 10.0)),
            standby=str(data.get("standby", "worst")),
        )
        return out


@dataclass
class JobRecord:
    """The durable state of one submitted analysis job.

    Persisted whole on every transition (atomic tmp + replace through
    the artifact store), so any on-disk record is a consistent
    snapshot a restarted server can resume from.
    """

    job_id: str
    circuit: str
    circuit_name: str
    circuit_fp: str
    scenario: AgeScenario
    scenario_key: str
    kind: str = "age"
    state: str = QUEUED
    attempts: int = 0
    max_retries: int = 2
    timeout_s: float = 300.0
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    not_before: float = 0.0
    pid: Optional[int] = None
    cached: bool = False
    error: Optional[Dict[str, Any]] = None
    last_error: Optional[Dict[str, Any]] = None
    fault: Optional[Dict[str, Any]] = None
    schema: int = JOB_SCHEMA

    @property
    def terminal(self) -> bool:
        """Whether the job has reached ``done`` or ``failed``."""
        return self.state in TERMINAL_STATES

    def touch(self) -> "JobRecord":
        """A copy with ``updated_at`` stamped to now."""
        return replace(self, updated_at=time.time())

    def to_dict(self) -> Dict[str, Any]:
        """The persisted / HTTP JSON form."""
        return {
            "schema": self.schema,
            "job_id": self.job_id,
            "kind": self.kind,
            "circuit": self.circuit,
            "circuit_name": self.circuit_name,
            "circuit_fp": self.circuit_fp,
            "scenario": self.scenario.to_dict(),
            "scenario_key": self.scenario_key,
            "state": self.state,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "timeout_s": self.timeout_s,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "not_before": self.not_before,
            "pid": self.pid,
            "cached": self.cached,
            "error": self.error,
            "last_error": self.last_error,
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        """Rebuild from :meth:`to_dict` output; validates the basics."""
        if data.get("schema") != JOB_SCHEMA:
            raise ValueError(f"unsupported job schema "
                             f"{data.get('schema')!r} "
                             f"(expected {JOB_SCHEMA})")
        state = data.get("state")
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        pid = data.get("pid")
        return cls(
            schema=int(data["schema"]),
            job_id=str(data["job_id"]),
            kind=str(data.get("kind", "age")),
            circuit=str(data["circuit"]),
            circuit_name=str(data.get("circuit_name", data["circuit"])),
            circuit_fp=str(data["circuit_fp"]),
            scenario=AgeScenario.from_dict(data["scenario"]),
            scenario_key=str(data["scenario_key"]),
            state=str(state),
            attempts=int(data.get("attempts", 0)),
            max_retries=int(data.get("max_retries", 0)),
            timeout_s=float(data.get("timeout_s", 300.0)),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
            not_before=float(data.get("not_before", 0.0)),
            pid=None if pid is None else int(pid),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
            last_error=data.get("last_error"),
            fault=data.get("fault"),
        )
