"""Control-point insertion: realizing internal node control ([9], [10]).

Table 4 only bounds what internal node control could buy; this module
implements the technique the paper cites so the *realizable* benefit can
be measured.  A control point replaces a gate with a controllable
variant driven by the standby signal:

* forcing a net to **1** in standby: OR the net with SLEEP,
* forcing a net to **0**: AND with !SLEEP.

**Measured finding (see ``benchmarks/test_ext_control_points.py``):** on
the delay metric, naive insertion realizes almost none of the Table 4
potential.  The cause is a conservation effect the potential bound hides:
a net held at 1 is, by definition, driven by an ON PMOS whose own gate
sits at 0 — the forcing gate *absorbs* exactly the stress condition it
removes from its receivers.  Inserted in series on a critical path, the
stressed forcing gate's aging cancels the receivers' relief (and adds
fresh delay).  Control points still pay off for *leakage* (their
original purpose in [9], [10]) and for off-critical stress flattening;
the Table 4 "potential" column is a genuine upper bound that no
output-forcing realization can reach on timing — which is presumably why
the paper reports it only as a reference ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cells.library import Library
from repro.constants import TEN_YEARS
from repro.context import AnalysisContext
from repro.core.profiles import OperatingProfile
from repro.netlist.circuit import Circuit, Gate
from repro.sim.logic import default_library
from repro.sta.analysis import analyze, gate_loads
from repro.sta.degradation import AgingAnalyzer


def insert_control_points(circuit: Circuit, nets: Sequence[str],
                          force_value: int = 1,
                          sleep_net: str = "SLEEP") -> Circuit:
    """Return a new circuit with control points on ``nets``.

    Each selected net ``n`` (a gate output) is renamed ``n__raw`` and a
    forcing gate is inserted under the original name, so all fanout
    (including primary outputs) sees the controlled net:

    * ``force_value=1``: ``n = OR2(n__raw, SLEEP)``,
    * ``force_value=0``: ``n = AND2(n__raw, SLEEP_N)`` with
      ``SLEEP_N = INV(SLEEP)``.

    In functional (active) mode, SLEEP = 0 makes every control point
    transparent.

    Raises:
        ValueError: if a requested net is not a gate output, or the
            sleep net name collides with an existing net.
    """
    if force_value not in (0, 1):
        raise ValueError("force_value must be 0 or 1")
    if sleep_net in circuit.nets:
        raise ValueError(f"sleep net {sleep_net!r} collides with the circuit")
    targets = list(dict.fromkeys(nets))
    for net in targets:
        if net not in circuit.gates:
            raise ValueError(f"net {net!r} is not a gate output")
    gates: List[Gate] = []
    target_set = set(targets)
    need_invert = force_value == 0
    sleep_n = f"{sleep_net}_N"
    if need_invert:
        gates.append(Gate(sleep_n, "INV", [sleep_net]))
    for gate in circuit.gates.values():
        if gate.name in target_set:
            raw = f"{gate.name}__raw"
            gates.append(Gate(raw, gate.cell, gate.inputs))
            if force_value == 1:
                # SLEEP on pin A: the rail side of the forcing gate's
                # internal pull-up stack, so with SLEEP = 1 the stack is
                # blocked at the rail and the raw-input PMOS floats
                # unstressed instead of sitting at Vgs = -Vdd.
                gates.append(Gate(gate.name, "OR2", [sleep_net, raw]))
            else:
                gates.append(Gate(gate.name, "AND2", [sleep_n, raw]))
        else:
            gates.append(gate)
    return Circuit(circuit.name + "_cp",
                   list(circuit.primary_inputs) + [sleep_net],
                   circuit.primary_outputs, gates)


def count_stressed_devices(circuit: Circuit, standby_vector: Dict[str, int],
                           library: Optional[Library] = None) -> int:
    """Total PMOS devices under standby stress for a parked vector.

    The device-level census behind the swap effect: forcing a
    high-fanout net to 1 relaxes several receivers while stressing one
    forcing gate, so this count *does* drop even when the critical-path
    delay does not.
    """
    from repro.cells.stress import stress_under_vector
    from repro.sim.logic import evaluate
    library = library or default_library()
    states = evaluate(circuit, standby_vector, library)
    total = 0
    for gate in circuit.gates.values():
        bits = tuple(states[net] for net in gate.inputs)
        total += len(stress_under_vector(library.get(gate.cell), bits))
    return total


#: Stressed PMOS stages inside one OR-with-SLEEP forcing gate holding
#: its output at 1 (the ON output-stage device).
_FORCER_STRESS_COST = 1


def census_gain(circuit: Circuit, states: Dict[str, int], net: str,
                library: Optional[Library] = None) -> int:
    """Net stressed-device reduction from forcing ``net`` to 1.

    Counts, over the net's receiver gates, how many PMOS devices stop
    being stressed when this one input flips to 1 (other inputs held at
    their standby values), minus the forcing gate's own stressed output
    stage.  Positive means forcing this net shrinks the circuit's
    stressed-device census.
    """
    from repro.cells.stress import stress_under_vector
    library = library or default_library()
    if states.get(net) != 0:
        return -_FORCER_STRESS_COST  # forcing a 1-net relieves nobody
    relieved = 0
    for gate in circuit.gates.values():
        if net not in gate.inputs:
            continue
        cell = library.get(gate.cell)
        before = tuple(states[n] for n in gate.inputs)
        after = tuple(1 if n == net else states[n] for n in gate.inputs)
        relieved += (len(stress_under_vector(cell, before))
                     - len(stress_under_vector(cell, after)))
    return relieved - _FORCER_STRESS_COST


def select_stress_positive_nets(circuit: Circuit,
                                standby_vector: Dict[str, int],
                                library: Optional[Library] = None
                                ) -> List[str]:
    """All gate-output nets whose forcing shrinks the stress census.

    A one-pass (non-interacting) approximation: gains are evaluated
    against the original standby state, which is exact when selected
    nets do not feed the same receivers.
    """
    from repro.sim.logic import evaluate
    library = library or default_library()
    states = evaluate(circuit, standby_vector, library)
    return [g for g in circuit.gates
            if census_gain(circuit, states, g, library) > 0]


def greedy_census_points(circuit: Circuit, standby_vector: Dict[str, int],
                         *, max_points: int = 16, shortlist: int = 8,
                         library: Optional[Library] = None,
                         sleep_net: str = "SLEEP"
                         ) -> Tuple[List[str], int, int]:
    """Greedy stressed-device-census minimization with global re-check.

    Each round ranks candidate nets by the local :func:`census_gain`
    against the *current* controlled circuit's standby state, then
    verifies the top ``shortlist`` candidates with a full re-simulated
    census (catching downstream logic flips the local score misses) and
    commits the best true improvement.  Stops when no candidate helps.

    Returns:
        (selected nets, base census, final census).
    """
    from repro.sim.logic import evaluate
    library = library or default_library()
    if max_points < 0:
        raise ValueError("max_points must be non-negative")
    base_census = count_stressed_devices(circuit, standby_vector, library)
    selected: List[str] = []
    current_census = base_census
    parked = dict(standby_vector)
    parked[sleep_net] = 1
    while len(selected) < max_points:
        current = (insert_control_points(circuit, selected,
                                         sleep_net=sleep_net)
                   if selected else circuit)
        vec = parked if selected else standby_vector
        states = evaluate(current, vec, library)
        candidates = sorted(
            ((census_gain(current, states, g, library), g)
             for g in circuit.gates if g not in selected),
            reverse=True)
        best_net = None
        best_census = current_census
        for local_gain, net in candidates[:shortlist]:
            if local_gain <= 0 and best_net is not None:
                break
            trial = insert_control_points(circuit, selected + [net],
                                          sleep_net=sleep_net)
            census = count_stressed_devices(trial, parked, library)
            if census < best_census:
                best_census = census
                best_net = net
        if best_net is None:
            break
        selected.append(best_net)
        current_census = best_census
    return selected, base_census, current_census


@dataclass(frozen=True)
class ControlPointResult:
    """Outcome of a control-point insertion campaign.

    Attributes:
        controlled: nets given control points, in insertion order.
        base_degradation: aged degradation with no control points.
        best_bound: the all-PMOS-at-1 Table 4 lower bound.
        achieved_degradation: aged degradation of the final circuit
            (relative to its own fresh delay, so the forcing-gate delay
            overhead is separated out below).
        fresh_overhead: fresh-delay cost of the inserted gates,
            relative to the original fresh delay.
        area_overhead_gates: number of gates added.
    """

    circuit_name: str
    controlled: Tuple[str, ...]
    base_degradation: float
    best_bound: float
    achieved_degradation: float
    fresh_overhead: float
    area_overhead_gates: int

    @property
    def potential_realized(self) -> float:
        """Fraction of the Table 4 potential this campaign captured."""
        gap = self.base_degradation - self.best_bound
        if gap <= 0:
            return 0.0
        captured = self.base_degradation - self.achieved_degradation
        return max(0.0, min(1.0, captured / gap))


@dataclass(frozen=True)
class _AgedEval:
    """One circuit variant's fresh + aged evaluation for the greedy loop.

    The compiled engine fills this straight off two
    :class:`~repro.sta.compiled.TimingSurface` passes (no
    ``TimingResult`` dict assembly); the scalar oracle fills it from
    full Python STA.  ``relative_degradation`` mirrors
    :attr:`~repro.sta.degradation.AgedTimingResult.relative_degradation`
    operation-for-operation so both engines return identical floats.
    """

    fresh_delay: float
    aged_delay: float
    shifts: Dict[str, float]
    critical: Tuple[str, ...]

    @property
    def relative_degradation(self) -> float:
        return (self.aged_delay - self.fresh_delay) / self.fresh_delay


def greedy_control_points(circuit: Circuit, profile: OperatingProfile,
                          t_total: float = TEN_YEARS, *,
                          max_points: int = 10,
                          standby_vector: Optional[Dict[str, int]] = None,
                          analyzer: Optional[AgingAnalyzer] = None,
                          sleep_net: str = "SLEEP",
                          engine: str = "compiled") -> ControlPointResult:
    """Greedy insertion targeting the aged critical path.

    The baseline parks the circuit at a *realizable* standby vector
    (default: all primary inputs 0).  Each round ages the current
    circuit (same vector plus SLEEP = 1, so every controlled net is
    forced to 1 and its fanout PMOS gates relax), finds the
    most-stressed gate on the aged critical path that is not yet
    controlled, controls it, and repeats until ``max_points`` or no
    stressed critical gate remains.  The ALL-PMOS-at-1 Table 4 bound is
    reported alongside as the ceiling.

    Args:
        engine: ``"compiled"`` (default) evaluates each circuit variant
            through one shared compiled lowering — shifts from the
            vectorized gate-shift kernel, fresh and aged delays plus the
            aged critical path off a
            :class:`~repro.sta.compiled.TimingSurface`; ``"scalar"``
            runs the pure-Python STA and per-device aging loops.  Both
            take identical decisions and return identical floats.
    """
    if engine not in ("compiled", "scalar"):
        raise ValueError(f"engine must be 'compiled' or 'scalar', "
                         f"got {engine!r}")
    analyzer = analyzer or AgingAnalyzer()
    library = analyzer.library or default_library()
    if max_points < 0:
        raise ValueError("max_points must be non-negative")
    if standby_vector is None:
        standby_vector = {pi: 0 for pi in circuit.primary_inputs}
    from repro.sta.degradation import ALL_ONE

    def evaluate(c: Circuit, standby,
                 ctx: Optional[AnalysisContext] = None) -> _AgedEval:
        if engine == "compiled":
            if ctx is None:
                ctx = AnalysisContext(c, library, analyzer.model)
            shifts = analyzer.gate_shifts(c, profile, t_total,
                                          standby=standby, context=ctx,
                                          engine="compiled")
            ct = ctx.compiled_timing()
            fresh = ct.surface()
            aged = ct.surface(delta_vth=shifts)
            return _AgedEval(fresh.circuit_delay, aged.circuit_delay,
                             shifts, tuple(aged.critical_gates()))
        loads = gate_loads(c, library)
        shifts = analyzer.gate_shifts(c, profile, t_total, standby=standby,
                                      engine="scalar")
        fresh = analyze(c, library, loads=loads, engine="scalar")
        aged = analyze(c, library, delta_vth=shifts, loads=loads,
                       engine="scalar")
        return _AgedEval(fresh.circuit_delay, aged.circuit_delay,
                         shifts, tuple(aged.critical_gates()))

    # The baseline and the Table-4 bound look at the *same* circuit
    # under two standby vectors: one shared context serves both (one
    # lowering, one load pass, one active-probability walk).
    base_ctx = (AnalysisContext(circuit, library, analyzer.model)
                if engine == "compiled" else None)
    base = evaluate(circuit, dict(standby_vector), base_ctx)
    best = evaluate(circuit, ALL_ONE, base_ctx)

    controlled: List[str] = []
    current = circuit
    #: evaluation of `current` (seeded with the uncontrolled baseline,
    #: refreshed whenever a round rebuilds `current`).
    result = base

    def parked_standby(c: Circuit) -> Dict[str, int]:
        vec = dict(standby_vector)
        vec[sleep_net] = 1
        return vec

    while len(controlled) < max_points:
        # Most-stressed original gates on the aged critical path.  A
        # stressed gate relaxes when its *input* nets are forced to 1,
        # so the control points go on its drivers.
        candidates = sorted(
            ((result.shifts.get(g, 0.0), g)
             for g in result.critical
             if g in circuit.gates and result.shifts.get(g, 0.0) > 0),
            reverse=True)
        new_points: List[str] = []
        for _, gate_name in candidates:
            drivers = [net for net in circuit.gates[gate_name].inputs
                       if net in circuit.gates and net not in controlled]
            budget = max_points - len(controlled)
            if drivers:
                new_points = drivers[:budget]
                break
        if not new_points:
            break
        controlled.extend(new_points)
        current = insert_control_points(circuit, controlled, force_value=1,
                                        sleep_net=sleep_net)
        result = evaluate(current, parked_standby(current))

    if controlled:
        achieved = result.relative_degradation
        fresh_overhead = result.fresh_delay / base.fresh_delay - 1.0
        area = current.n_gates() - circuit.n_gates()
    else:
        achieved = base.relative_degradation
        fresh_overhead = 0.0
        area = 0
    return ControlPointResult(
        circuit_name=circuit.name,
        controlled=tuple(controlled),
        base_degradation=base.relative_degradation,
        best_bound=best.relative_degradation,
        achieved_degradation=achieved,
        fresh_overhead=fresh_overhead,
        area_overhead_gates=area,
    )
