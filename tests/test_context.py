"""Tests for the shared memoized evaluation layer (AnalysisContext)."""

import pytest

from repro import AnalysisContext, CacheStats
from repro.cells import build_library
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow import AnalysisPlatform
from repro.leakage import expected_leakage, leakage_for_vector
from repro.netlist import Circuit, CircuitError, Gate, random_logic
from repro.sim import constant_vector, evaluate, propagate_probabilities
from repro.sim.probability import estimate_probabilities
from repro.sta import ALL_ONE, ALL_ZERO, AgingAnalyzer, analyze, gate_loads
from repro.sta.degradation import standby_net_states

PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)


def c17():
    return Circuit(
        "c17",
        primary_inputs=["1", "2", "3", "6", "7"],
        primary_outputs=["22", "23"],
        gates=[
            Gate("10", "NAND2", ["1", "3"]),
            Gate("11", "NAND2", ["3", "6"]),
            Gate("16", "NAND2", ["2", "11"]),
            Gate("19", "NAND2", ["11", "7"]),
            Gate("22", "NAND2", ["10", "16"]),
            Gate("23", "NAND2", ["16", "19"]),
        ],
    )


@pytest.fixture
def ctx():
    return AnalysisContext(c17())


@pytest.fixture(scope="module")
def big_circuit():
    return random_logic("ctxbig", n_inputs=12, n_outputs=4, n_gates=80,
                        seed=7)


class TestMemoization:
    def test_probabilities_computed_once(self, ctx):
        first = ctx.probabilities()
        second = ctx.probabilities()
        assert first is second
        assert ctx.stats.misses("probabilities") == 1
        assert ctx.stats.hits("probabilities") == 1

    def test_probabilities_keyed_by_pi_setting(self, ctx):
        ctx.probabilities()
        ctx.probabilities({pi: 0.9 for pi in ctx.circuit.primary_inputs})
        assert ctx.stats.misses("probabilities") == 2
        # Same mapping, different dict instance: still one cache entry.
        ctx.probabilities({pi: 0.9 for pi in ctx.circuit.primary_inputs})
        assert ctx.stats.misses("probabilities") == 2
        assert ctx.stats.hits("probabilities") == 1

    def test_monte_carlo_keyed_by_vectors_and_seed(self, ctx):
        ctx.probabilities(method="monte_carlo", n_vectors=64, seed=0)
        ctx.probabilities(method="monte_carlo", n_vectors=64, seed=0)
        ctx.probabilities(method="monte_carlo", n_vectors=64, seed=1)
        ctx.probabilities(method="monte_carlo", n_vectors=128, seed=0)
        assert ctx.stats.misses("probabilities") == 3
        assert ctx.stats.hits("probabilities") == 1

    def test_bad_method_rejected(self, ctx):
        with pytest.raises(ValueError, match="method"):
            ctx.probabilities(method="quantum")

    def test_gate_loads_keyed_by_parasitics(self, ctx):
        a = ctx.gate_loads()
        b = ctx.gate_loads()
        assert a is b
        ctx.gate_loads(wire_cap=1e-15)
        assert ctx.stats.misses("gate_loads") == 2

    def test_truth_table_per_cell(self, ctx):
        t1 = ctx.truth_table("NAND2")
        t2 = ctx.truth_table("NAND2")
        assert t1 is t2
        assert t1[(0, 0)] == 1 and t1[(1, 1)] == 0
        assert ctx.stats.misses("truth_table") == 1

    def test_structural_artifacts_cached(self, ctx):
        assert ctx.topological_order() is ctx.topological_order()
        assert ctx.fanout() is ctx.fanout()
        assert ctx.levels() is ctx.levels()
        assert ctx.nets() is ctx.nets()
        assert ctx.nets() == ctx.circuit.nets

    def test_fresh_timing_keyed_by_supply_drop(self, ctx):
        d0 = ctx.fresh_delay()
        assert ctx.fresh_delay() == d0
        assert ctx.stats.misses("fresh_timing") == 1
        assert ctx.fresh_delay(supply_drop=0.05) > d0
        assert ctx.stats.misses("fresh_timing") == 2

    def test_standby_states_sentinels(self, ctx):
        zeros = ctx.standby_states(ALL_ZERO)
        ones = ctx.standby_states(ALL_ONE)
        assert set(zeros.values()) == {0}
        assert set(ones.values()) == {1}
        assert zeros.keys() == ctx.circuit.nets

    def test_standby_states_vector_matches_simulation(self, ctx):
        vec = constant_vector(ctx.circuit, 0)
        states = ctx.standby_states(vec)
        assert states == evaluate(ctx.circuit, vec)
        assert ctx.standby_states(dict(vec)) is states
        assert ctx.stats.misses("standby_states") == 1

    def test_standby_states_rejects_sequences(self, ctx):
        vec = constant_vector(ctx.circuit, 0)
        with pytest.raises(ValueError, match="sequence"):
            ctx.standby_states([vec, vec])

    def test_standby_states_rejects_unknown_sentinel(self, ctx):
        with pytest.raises(ValueError, match="unknown standby"):
            ctx.standby_states("park_high")

    def test_standby_stress_keyed_per_cell_and_vector(self, ctx):
        s1 = ctx.standby_stress("NAND2", (0, 0))
        s2 = ctx.standby_stress("NAND2", (0, 0))
        assert s1 is s2
        assert ctx.stats.misses("standby_stress") == 1
        assert ctx.standby_stress("NAND2", (1, 1)) == frozenset()

    def test_leakage_matches_legacy_path(self, ctx):
        table = ctx.leakage_table
        vec = constant_vector(ctx.circuit, 1)
        legacy = leakage_for_vector(ctx.circuit, vec, table)
        assert ctx.leakage_for_vector(vec) == pytest.approx(legacy)
        legacy_exp = expected_leakage(ctx.circuit, table)
        assert ctx.expected_leakage() == pytest.approx(legacy_exp)

    def test_leakage_table_built_once(self, ctx):
        assert ctx.leakage_table is ctx.leakage_table
        assert ctx.stats.misses("leakage_table") == 1

    def test_gate_shifts_keyed_and_matches_analyzer(self, ctx):
        shifts = ctx.gate_shifts(PROFILE, TEN_YEARS)
        assert ctx.gate_shifts(PROFILE, TEN_YEARS) is shifts
        assert ctx.stats.misses("gate_shifts") == 1
        direct = AgingAnalyzer().gate_shifts(ctx.circuit, PROFILE, TEN_YEARS)
        assert shifts == pytest.approx(direct)

    def test_gate_shifts_keyed_by_standby(self, ctx):
        a = ctx.gate_shifts(PROFILE, TEN_YEARS, standby=ALL_ZERO)
        b = ctx.gate_shifts(PROFILE, TEN_YEARS, standby=ALL_ONE)
        assert ctx.stats.misses("gate_shifts") == 2
        assert a != b

    def test_aged_timing_matches_analyzer(self, ctx):
        aged = ctx.aged_timing(PROFILE, TEN_YEARS)
        direct = AgingAnalyzer().aged_timing(ctx.circuit, PROFILE, TEN_YEARS)
        assert aged.aged_delay == pytest.approx(direct.aged_delay)
        assert aged.fresh_delay == pytest.approx(direct.fresh_delay)


class TestWrapperCompat:
    """The pre-existing free functions keep working, with or without a
    shared context, and hand out defensive copies."""

    def test_propagate_probabilities_matches_context(self, ctx):
        free = propagate_probabilities(ctx.circuit, context=ctx)
        assert free == ctx.probabilities()
        assert free is not ctx.probabilities()
        free["22"] = 99.0  # mutating the copy must not poison the cache
        assert ctx.probabilities()["22"] != 99.0

    def test_estimate_probabilities_through_context(self, ctx):
        free = estimate_probabilities(ctx.circuit, n_vectors=64, context=ctx)
        assert free == ctx.probabilities(method="monte_carlo", n_vectors=64)
        assert ctx.stats.hits("probabilities") == 1

    def test_gate_loads_wrapper_returns_copy(self, ctx):
        loads = gate_loads(ctx.circuit, context=ctx)
        assert loads == ctx.gate_loads()
        assert loads is not ctx.gate_loads()

    def test_evaluate_through_context(self, ctx):
        vec = constant_vector(ctx.circuit, 1)
        states = evaluate(ctx.circuit, vec, context=ctx)
        assert states == ctx.standby_states(vec)
        assert states is not ctx.standby_states(vec)

    def test_standby_net_states_through_context(self, ctx):
        states = standby_net_states(ctx.circuit, ALL_ONE, context=ctx)
        assert set(states.values()) == {1}
        assert ctx.stats.misses("standby_states") == 1

    def test_analyze_uses_context_loads(self, ctx):
        result = analyze(ctx.circuit, context=ctx)
        assert result.circuit_delay == pytest.approx(
            analyze(ctx.circuit).circuit_delay)
        assert ctx.stats.misses("gate_loads") == 1

    def test_mismatched_library_not_silently_reused(self, ctx):
        other = build_library()
        assert other is not ctx.library
        analyzer = AgingAnalyzer(library=other)
        shifts = analyzer.gate_shifts(ctx.circuit, PROFILE, TEN_YEARS,
                                      context=ctx)
        # The foreign-library analyzer must not have populated this
        # context's memo with its own artifacts.
        assert ctx.stats.misses("stress_duties") == 0
        assert shifts == pytest.approx(ctx.gate_shifts(PROFILE, TEN_YEARS))


class TestCacheStats:
    def test_snapshot_and_totals(self, ctx):
        ctx.probabilities()
        ctx.probabilities()
        snap = ctx.stats.snapshot()
        assert snap["probabilities"] == {"hits": 1, "misses": 1}
        assert ctx.stats.hits() == 1
        assert ctx.stats.misses() >= 1
        assert ctx.stats.computations("probabilities") == 1

    def test_reset_zeroes_counters_not_caches(self, ctx):
        first = ctx.probabilities()
        ctx.stats.reset()
        assert ctx.stats.hits() == 0 and ctx.stats.misses() == 0
        assert ctx.probabilities() is first  # cache itself untouched
        assert ctx.stats.hits("probabilities") == 1

    def test_repr_mentions_counts(self, ctx):
        ctx.probabilities()
        assert "probabilities" in repr(ctx.stats)
        assert "c17" in repr(ctx)


class TestInvalidation:
    def test_invalidate_recomputes_but_keeps_history(self, ctx):
        ctx.probabilities()
        ctx.invalidate()
        ctx.probabilities()
        assert ctx.stats.misses("probabilities") == 2
        assert ctx._caches["probabilities"]  # repopulated

    def test_cell_swap_changes_fresh_delay_after_invalidate(self, ctx):
        stale_delay = ctx.fresh_delay()
        # Commit a resize-style netlist edit: swap one critical NAND2
        # for its slower composed AND2 variant, as a sizing flow's
        # commit step would swap cell variants in place.
        ctx.circuit.replace_gate(Gate("16", "AND2", ["2", "11"]))
        assert ctx.fresh_delay() == stale_delay  # stale until told
        ctx.invalidate()
        assert ctx.fresh_delay() != pytest.approx(stale_delay)

    def test_cell_swap_changes_leakage_and_shifts(self, ctx):
        leak = ctx.expected_leakage()
        shifts = ctx.gate_shifts(PROFILE, TEN_YEARS)
        ctx.circuit.replace_gate(Gate("19", "NOR2", ["11", "7"]))
        ctx.invalidate()
        assert ctx.expected_leakage() != pytest.approx(leak)
        assert ctx.gate_shifts(PROFILE, TEN_YEARS) != pytest.approx(shifts)


class TestPlatformFacade:
    def test_one_context_per_circuit(self, big_circuit):
        platform = AnalysisPlatform()
        ctx = platform.context_for(big_circuit)
        assert platform.context_for(big_circuit) is ctx
        other = c17()
        assert platform.context_for(other) is not ctx

    def test_leakage_table_shared_across_contexts(self, big_circuit):
        platform = AnalysisPlatform()
        a = platform.context_for(big_circuit)
        b = platform.context_for(c17())
        assert a.leakage_table is platform.leakage_table
        assert b.leakage_table is platform.leakage_table

    def test_repeat_scenarios_reuse_artifacts(self, big_circuit):
        platform = AnalysisPlatform()
        r1 = platform.analyze_scenario(big_circuit, PROFILE, TEN_YEARS)
        r2 = platform.analyze_scenario(big_circuit, PROFILE, TEN_YEARS)
        assert r1 == r2
        stats = platform.context_for(big_circuit).stats
        assert stats.misses("probabilities") == 1
        assert stats.misses("gate_loads") == 1
        assert stats.misses("gate_shifts") == 1
        assert stats.hits("gate_shifts") >= 1

    def test_facade_results_match_unthreaded_baseline(self, big_circuit):
        platform = AnalysisPlatform()
        report = platform.analyze_scenario(big_circuit, PROFILE, TEN_YEARS)
        direct = AgingAnalyzer().aged_timing(big_circuit, PROFILE, TEN_YEARS)
        assert report.aged_delay == pytest.approx(direct.aged_delay)
        assert report.fresh_delay == pytest.approx(direct.fresh_delay)
        legacy_leak = expected_leakage(big_circuit, platform.leakage_table)
        assert report.active_leakage_expected == pytest.approx(legacy_leak)


class TestCacheStatsStandalone:
    def test_fresh_stats_empty(self):
        stats = CacheStats()
        assert stats.hits() == 0
        assert stats.misses("anything") == 0
        assert stats.snapshot() == {}


class TestCacheStatsReporting:
    """CacheStats feeds the observability registry and the RunReport."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro import obs

        obs.reset_cache_registry()
        yield
        obs.reset_cache_registry()

    def test_accounting_survives_invalidate(self, ctx):
        ctx.probabilities()
        ctx.probabilities()
        ctx.invalidate()
        ctx.probabilities()
        # invalidate() drops the cached artifacts but keeps the running
        # hit/miss history: the recompute shows up as a second miss.
        assert ctx.stats.snapshot()["probabilities"] == \
            {"hits": 1, "misses": 2}
        assert "probabilities" in repr(ctx.stats)

    def test_no_registration_while_disabled(self):
        from repro import obs

        AnalysisContext(c17())
        assert obs.snapshot_cache_stats() == []

    def test_context_registers_when_collecting(self):
        from repro import obs

        with obs.use_tracer(obs.Tracer()):
            context = AnalysisContext(c17())
            context.probabilities()
            context.invalidate()
            context.probabilities()
            [entry] = obs.snapshot_cache_stats()
        assert entry["scope"] == "c17"
        assert entry["artifacts"]["probabilities"] == \
            {"hits": 0, "misses": 2}

    def test_stats_merge_into_run_report(self):
        from repro import obs

        with obs.use_tracer(obs.Tracer()):
            for _ in range(2):  # two contexts on the same circuit
                AnalysisContext(c17()).probabilities()
            entries = obs.snapshot_cache_stats()
        doc = obs.RunReport("ctx run", cache_stats=entries).to_dict()
        assert obs.schema_errors(doc) == []
        [entry] = doc["cache_stats"]
        assert entry["scope"] == "c17"
        assert entry["artifacts"]["probabilities"]["misses"] == 2
        assert entry["misses"] >= 2
