"""Deterministic structural circuit generators.

The paper's workloads are the ISCAS85 benchmarks synthesized onto a 90 nm
library.  The exact netlists are not redistributable, so these generators
produce circuits with the published profile (I/O counts, gate counts,
function family) — see DESIGN.md substitution 1.  Real ``.bench``
netlists can be dropped in through :mod:`repro.netlist.bench` at any
time.

Everything here is deterministic: structural generators are pure, and
:func:`random_logic` derives all choices from an explicit seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit, Gate


class _Netlist:
    """Mutable builder accumulating gates with unique names."""

    def __init__(self, prefix: str = "g"):
        self.gates: List[Gate] = []
        self._prefix = prefix
        self._n = 0

    def add(self, cell: str, inputs: Sequence[str], name: Optional[str] = None) -> str:
        if name is None:
            self._n += 1
            name = f"{self._prefix}{self._n}"
        self.gates.append(Gate(name, cell, inputs))
        return name

    # Convenience wrappers keep generator code readable.
    def inv(self, a, name=None):
        return self.add("INV", [a], name)

    def and2(self, a, b, name=None):
        return self.add("AND2", [a, b], name)

    def or2(self, a, b, name=None):
        return self.add("OR2", [a, b], name)

    def xor2(self, a, b, name=None):
        return self.add("XOR2", [a, b], name)

    def nand2(self, a, b, name=None):
        return self.add("NAND2", [a, b], name)

    def nor2(self, a, b, name=None):
        return self.add("NOR2", [a, b], name)

    def tree(self, cell2: str, cell3: str, cell4: str, nets: Sequence[str]) -> str:
        """Balanced reduction tree over ``nets`` using 2/3/4-input cells."""
        nets = list(nets)
        if not nets:
            raise ValueError("tree over empty net list")
        if len(nets) == 1:
            return nets[0]
        while len(nets) > 1:
            next_level = []
            i = 0
            while i < len(nets):
                chunk = nets[i:i + 4]
                i += 4
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                elif len(chunk) == 2:
                    next_level.append(self.add(cell2, chunk))
                elif len(chunk) == 3:
                    next_level.append(self.add(cell3, chunk))
                else:
                    next_level.append(self.add(cell4, chunk))
            nets = next_level
        return nets[0]

    def or_tree(self, nets):
        return self.tree("OR2", "OR3", "OR4", nets)

    def and_tree(self, nets):
        return self.tree("AND2", "AND3", "AND4", nets)

    def xor_tree(self, nets: Sequence[str]) -> str:
        nets = list(nets)
        if not nets:
            raise ValueError("xor tree over empty net list")
        while len(nets) > 1:
            next_level = []
            for i in range(0, len(nets) - 1, 2):
                next_level.append(self.xor2(nets[i], nets[i + 1]))
            if len(nets) % 2:
                next_level.append(nets[-1])
            nets = next_level
        return nets[0]


def full_adder(nl: _Netlist, a: str, b: str, cin: str) -> Tuple[str, str]:
    """5-gate full adder; returns (sum, carry_out)."""
    axb = nl.xor2(a, b)
    s = nl.xor2(axb, cin)
    c1 = nl.and2(a, b)
    c2 = nl.and2(axb, cin)
    cout = nl.or2(c1, c2)
    return s, cout


def half_adder(nl: _Netlist, a: str, b: str) -> Tuple[str, str]:
    """2-gate half adder; returns (sum, carry_out)."""
    return nl.xor2(a, b), nl.and2(a, b)


def ripple_adder(nl: _Netlist, a: Sequence[str], b: Sequence[str],
                 cin: Optional[str] = None) -> List[str]:
    """Ripple-carry addition of two little-endian buses.

    Returns ``max(len(a), len(b)) + 1`` sum bits (last is carry out).
    """
    width = max(len(a), len(b))
    carry = cin
    out: List[str] = []
    for i in range(width):
        bits = []
        if i < len(a):
            bits.append(a[i])
        if i < len(b):
            bits.append(b[i])
        if carry is not None:
            bits.append(carry)
        if len(bits) == 3:
            s, carry = full_adder(nl, *bits)
        elif len(bits) == 2:
            s, carry = half_adder(nl, *bits)
        else:
            s, carry = bits[0], None
        out.append(s)
    if carry is not None:
        out.append(carry)
    return out


def array_multiplier(bits: int = 16, name: str = "mult") -> Circuit:
    """Unsigned array multiplier (c6288 family: 16x16 -> 32 bits).

    Partial products from AND2 gates, accumulated with ripple-carry rows —
    the same deep, reconvergent adder-array topology that makes c6288 the
    deepest ISCAS85 circuit.
    """
    if bits < 2:
        raise ValueError("multiplier needs at least 2 bits")
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    nl = _Netlist()
    rows = [[nl.and2(a[i], b[j]) for i in range(bits)] for j in range(bits)]
    result: List[str] = [rows[0][0]]
    acc = rows[0][1:]
    for j in range(1, bits):
        summed = ripple_adder(nl, acc, rows[j])
        result.append(summed[0])
        acc = summed[1:]
    result.extend(acc)
    outputs = [f"p{i}" for i in range(2 * bits)]
    for out, net in zip(outputs, result):
        nl.add("BUF", [net], name=out)
    return Circuit(name, a + b, outputs, nl.gates)


def priority_controller(channels: int = 36, name: str = "prio") -> Circuit:
    """Priority interrupt controller (c432 family: 36 in, 7 out).

    Channel i is granted iff it requests and no lower-index channel does;
    outputs are the encoded grant index plus a valid flag.
    """
    if channels < 2:
        raise ValueError("need at least 2 channels")
    reqs = [f"req{i}" for i in range(channels)]
    nl = _Netlist()
    not_req = [nl.inv(r) for r in reqs]
    # none_before[i] = AND(not_req[0..i-1]) as a chain.
    none_before: List[str] = []
    chain = not_req[0]
    none_before.append(chain)
    for i in range(1, channels - 1):
        chain = nl.and2(chain, not_req[i])
        none_before.append(chain)
    grants = [reqs[0]]
    for i in range(1, channels):
        grants.append(nl.and2(reqs[i], none_before[i - 1]))
    n_code_bits = max(1, (channels - 1).bit_length())
    outputs: List[str] = []
    for bit in range(n_code_bits):
        members = [grants[i] for i in range(channels) if (i >> bit) & 1]
        net = nl.or_tree(members) if members else nl.inv(reqs[0])
        outputs.append(nl.add("BUF", [net], name=f"code{bit}"))
    valid = nl.or_tree(grants)
    outputs.append(nl.add("BUF", [valid], name="valid"))
    return Circuit(name, reqs, outputs, nl.gates)


def ecc_circuit(data_bits: int = 32, check_bits: int = 8,
                name: str = "ecc", expand_xor_to_nand: bool = False) -> Circuit:
    """Single-error-correcting code circuit (c499/c1355 family).

    Computes parity trees over data subsets, forms the syndrome against
    received check bits, decodes it, and outputs the corrected data word.
    ``expand_xor_to_nand=True`` mirrors how c1355 is c499 with every XOR
    macro expanded into 4 NAND gates.
    """
    data = [f"d{i}" for i in range(data_bits)]
    checks = [f"c{i}" for i in range(check_bits)]
    control = ["en"]
    nl = _Netlist()
    # Parity tree k covers data positions whose index has bit k set in
    # (index + 1) — the classic Hamming assignment, made total by reuse.
    parities = []
    for k in range(check_bits):
        members = [data[i] for i in range(data_bits) if ((i + 1) >> (k % 6)) & 1]
        if not members:
            members = data[:2]
        parities.append(nl.xor_tree(members))
    syndrome = [nl.xor2(p, c) for p, c in zip(parities, checks)]
    syn_n = [nl.inv(s) for s in syndrome]
    gated = [nl.and2(s, control[0]) for s in syndrome]
    outputs = []
    for i in range(data_bits):
        # Correction term: AND of the syndrome pattern matching bit i.
        lits = []
        for k in range(check_bits):
            lits.append(gated[k] if ((i + 1) >> (k % 6)) & 1 else syn_n[k])
        flip = nl.and_tree(lits[:4])
        corrected = nl.xor2(data[i], flip)
        outputs.append(nl.add("BUF", [corrected], name=f"o{i}"))
    circuit = Circuit(name, data + checks + control, outputs, nl.gates)
    if expand_xor_to_nand:
        circuit = expand_xors(circuit)
    return circuit


def expand_xors(circuit: Circuit) -> Circuit:
    """Replace every XOR2/XNOR2 with its 4-gate NAND/NOR macro.

    This is how c1355 relates to c499 in the original suite.
    """
    gates: List[Gate] = []
    for gate in circuit.gates.values():
        if gate.cell == "XOR2":
            a, b = gate.inputs
            n1 = f"{gate.name}_e1"
            n2 = f"{gate.name}_e2"
            n3 = f"{gate.name}_e3"
            gates.append(Gate(n1, "NAND2", [a, b]))
            gates.append(Gate(n2, "NAND2", [a, n1]))
            gates.append(Gate(n3, "NAND2", [b, n1]))
            gates.append(Gate(gate.name, "NAND2", [n2, n3]))
        elif gate.cell == "XNOR2":
            a, b = gate.inputs
            n1 = f"{gate.name}_e1"
            n2 = f"{gate.name}_e2"
            n3 = f"{gate.name}_e3"
            gates.append(Gate(n1, "NOR2", [a, b]))
            gates.append(Gate(n2, "NOR2", [a, n1]))
            gates.append(Gate(n3, "NOR2", [b, n1]))
            gates.append(Gate(gate.name, "NOR2", [n2, n3]))
        else:
            gates.append(gate)
    return Circuit(circuit.name, circuit.primary_inputs,
                   circuit.primary_outputs, gates)


def alu_circuit(width: int = 16, control_bits: int = 12,
                name: str = "alu", n_outputs: int = 26) -> Circuit:
    """ALU-style circuit (c880 family: arithmetic + logic + select)."""
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    c = [f"c{i}" for i in range(width)]
    sel = [f"s{i}" for i in range(control_bits)]
    nl = _Netlist()
    total = ripple_adder(nl, a, b, cin=sel[0])
    # Subtraction path: a + ~b + 1, sharing the flag logic.
    b_inv = [nl.inv(b[i]) for i in range(width)]
    diff = ripple_adder(nl, a, b_inv, cin=sel[5 % control_bits])
    bit_and = [nl.and2(a[i], c[i]) for i in range(width)]
    bit_or = [nl.or2(b[i], c[i]) for i in range(width)]
    bit_xor = [nl.xor2(a[i], c[i]) for i in range(width)]
    muxed: List[str] = []
    for i in range(width):
        # 2-level select with AOI/OAI for density.
        m1 = nl.add("AOI22", [total[i], sel[1], bit_and[i], sel[2]])
        m2 = nl.add("AOI22", [bit_or[i], sel[3], bit_xor[i], sel[4]])
        m3 = nl.add("OAI21", [diff[i], sel[6 % control_bits], m2])
        muxed.append(nl.nand2(m1, m3))
    zero = nl.inv(nl.or_tree(muxed))
    parity = nl.xor_tree(muxed)
    borrow = diff[-1]
    flags = [zero, parity, total[-1], borrow]
    for k in range(5, min(control_bits, 5 + n_outputs - width - len(flags))):
        flags.append(nl.and2(sel[k], muxed[k % width]))
    outputs = []
    for i, net in enumerate((muxed + flags)[:n_outputs]):
        outputs.append(nl.add("BUF", [net], name=f"y{i}"))
    return Circuit(name, a + b + c + sel, outputs, nl.gates)


#: Default gate mix for random logic: NAND/NOR-dominated like the suite.
DEFAULT_MIX: Dict[str, float] = {
    "NAND2": 0.22, "NAND3": 0.08, "NAND4": 0.04,
    "NOR2": 0.14, "NOR3": 0.05,
    "AND2": 0.10, "OR2": 0.08,
    "INV": 0.15, "BUF": 0.03,
    "XOR2": 0.05, "XNOR2": 0.02,
    "AOI21": 0.02, "OAI21": 0.02,
}

#: XOR-heavy mix for the ECC-flavoured members (c1908).
XOR_HEAVY_MIX: Dict[str, float] = {
    "XOR2": 0.25, "XNOR2": 0.10,
    "NAND2": 0.18, "NOR2": 0.12,
    "AND2": 0.08, "OR2": 0.07,
    "INV": 0.17, "BUF": 0.03,
}

_CELL_ARITY = {
    "INV": 1, "BUF": 1,
    "NAND2": 2, "NOR2": 2, "AND2": 2, "OR2": 2, "XOR2": 2, "XNOR2": 2,
    "NAND3": 3, "NOR3": 3, "AND3": 3, "OR3": 3, "AOI21": 3, "OAI21": 3,
    "NAND4": 4, "NOR4": 4, "AND4": 4, "OR4": 4, "AOI22": 4, "OAI22": 4,
}


def random_logic(name: str, n_inputs: int, n_outputs: int, n_gates: int,
                 seed: int, mix: Optional[Dict[str, float]] = None,
                 locality: float = 64.0, engine: str = "scalar") -> Circuit:
    """Seeded random combinational DAG with a controlled gate mix.

    Args:
        name: circuit name.
        n_inputs / n_outputs / n_gates: target profile.  The gate count
            is met within the few extra gates needed to absorb dangling
            nets into the outputs.
        seed: RNG seed; identical arguments always produce the identical
            netlist.
        mix: cell-name -> weight (defaults to a NAND/NOR-heavy ISCAS mix).
        locality: characteristic distance (in creation order) for input
            selection; small values make deep chains, large values make
            shallow wide circuits.
        engine: ``"scalar"`` (the historic per-gate ``random`` walk) or
            ``"array"`` — an O(n) NumPy construction with no per-gate
            Python RNG calls, for 10^5..10^6-gate circuits.  The two
            engines draw from different RNG streams, so they produce
            *different* (but each fully seed-deterministic) netlists
            with the same statistical profile and invariants.

    Invariants guaranteed: acyclic, every PI feeds some gate, every gate
    is in the transitive fan-in of some PO.
    """
    if n_inputs < 2 or n_outputs < 1:
        raise ValueError("need >= 2 inputs and >= 1 output")
    reserve = max(8, n_outputs)
    if n_gates < n_outputs + reserve:
        raise ValueError(f"n_gates={n_gates} too small for {n_outputs} outputs")
    if engine == "array":
        return _random_logic_array(name, n_inputs, n_outputs, n_gates,
                                   seed, dict(mix or DEFAULT_MIX), locality)
    if engine != "scalar":
        raise ValueError(f"engine must be 'scalar' or 'array', got {engine!r}")
    rng = random.Random(seed)
    weights = dict(mix or DEFAULT_MIX)
    cells = sorted(weights)
    wlist = [weights[c] for c in cells]
    pis = [f"i{k}" for k in range(n_inputs)]
    nl = _Netlist()
    nets: List[str] = list(pis)
    unused_pis = list(pis)

    def pick_input(exclude: set) -> str:
        # Exponential locality bias toward recently created nets.
        for _ in range(20):
            back = int(rng.expovariate(1.0 / locality))
            idx = max(0, len(nets) - 1 - back)
            net = nets[idx]
            if net not in exclude:
                return net
        candidates = [n for n in nets if n not in exclude]
        return rng.choice(candidates)

    main_budget = n_gates - reserve
    while len(nl.gates) < main_budget:
        cell = rng.choices(cells, weights=wlist)[0]
        arity = _CELL_ARITY[cell]
        chosen: List[str] = []
        if unused_pis:
            chosen.append(unused_pis.pop(rng.randrange(len(unused_pis))))
        while len(chosen) < arity:
            chosen.append(pick_input(set(chosen)))
        rng.shuffle(chosen)
        nets.append(nl.add(cell, chosen))
    # Any PI still unused gets a dedicated consumer.
    while unused_pis:
        a = unused_pis.pop()
        b = rng.choice(nets)
        nets.append(nl.and2(a, b))
    # Absorb dangling nets until exactly n_outputs remain.
    def dangling() -> List[str]:
        used = set()
        for g in nl.gates:
            used.update(g.inputs)
        return [g.name for g in nl.gates if g.name not in used]
    hanging = dangling()
    while len(hanging) > n_outputs:
        k = min(len(hanging) - n_outputs + 1, 4, len(hanging))
        chunk = [hanging.pop(rng.randrange(len(hanging))) for _ in range(max(2, k))]
        cell = {2: "OR2", 3: "OR3", 4: "OR4"}[len(chunk)]
        hanging.append(nl.add(cell, chunk))
    while len(hanging) < n_outputs:
        # Duplicate visibility of an internal gate through a buffer.
        src = rng.choice([g.name for g in nl.gates])
        hanging.append(nl.add("BUF", [src]))
    outputs = []
    for k, net in enumerate(hanging):
        outputs.append(nl.add("BUF", [net], name=f"o{k}"))
    return Circuit(name, pis, outputs, nl.gates)


def _random_logic_array(name: str, n_inputs: int, n_outputs: int,
                        n_gates: int, seed: int,
                        weights: Dict[str, float],
                        locality: float) -> Circuit:
    """The O(n) array-native :func:`random_logic` construction.

    Every random choice comes from a handful of bulk
    ``numpy.random.default_rng(seed)`` draws — no per-gate Python RNG
    calls:

    * cell classes by inverse-CDF over the mix weights,
    * fanin back-distances from the same exponential locality law as
      the scalar engine, turned into *distinct* ascending net indices
      per gate with a sort + running-max + clamp pass,
    * PI coverage by construction: gate ``g`` (for ``g < n_inputs``)
      always consumes primary input ``g`` in its first slot, the
      remaining slots drawing from the other nets.

    Dangling nets are absorbed through a deterministic OR reduction to
    exactly ``n_outputs`` BUF-driven outputs, as in the scalar engine.
    """
    import numpy as np

    if n_inputs < 4:
        raise ValueError("engine='array' needs >= 4 inputs "
                         "(the widest cell arity)")
    n_main = n_gates - n_outputs
    if n_main < n_inputs:
        raise ValueError(f"n_gates={n_gates} too small to cover "
                         f"{n_inputs} inputs (engine='array')")
    for cell in weights:
        if cell not in _CELL_ARITY:
            raise ValueError(f"unknown cell {cell!r} in mix")
    cells = sorted(weights)
    wvec = np.asarray([float(weights[c]) for c in cells], dtype=np.float64)
    if (wvec < 0).any() or wvec.sum() <= 0:
        raise ValueError("mix weights must be non-negative, sum > 0")
    arity_of = np.asarray([_CELL_ARITY[c] for c in cells], dtype=np.int64)
    cdf = np.cumsum(wvec)
    cdf /= cdf[-1]

    rng = np.random.default_rng(seed)
    cell_ids = np.minimum(
        np.searchsorted(cdf, rng.random(n_main), side="right"),
        len(cells) - 1)
    arity = arity_of[cell_ids]
    gate_pos = np.arange(n_main, dtype=np.int64)
    forced = gate_pos < n_inputs           # gate g consumes PI g
    k_free = arity - forced                # remaining slots to draw
    # Domain per gate: every net created before it (n_inputs + g), minus
    # the forced PI for covered gates.
    domain = n_inputs + gate_pos - forced
    back = np.floor(-locality
                    * np.log1p(-rng.random((n_main, 4)))).astype(np.int64)

    inputs = np.zeros((n_main, 4), dtype=np.int64)
    col = np.arange(4, dtype=np.int64)
    for k in range(1, 5):
        sel = np.flatnonzero(k_free == k)
        if sel.size == 0:
            continue
        dom = domain[sel]
        # Recent-biased candidates: distance `back` from the newest net,
        # clipped into the domain, then made strictly increasing (hence
        # distinct) by sort + running max + tail clamp.
        raw = np.clip((dom - 1)[:, None] - back[sel, :k], 0, None)
        raw.sort(axis=1)
        t = np.maximum.accumulate(raw - col[:k], axis=1)
        idx = np.minimum(t, (dom - k)[:, None]) + col[:k]
        was_forced = forced[sel]
        if was_forced.any():
            # The forced PI (net index == gate position) was excluded
            # from the domain; map the gap back around it.
            sub = idx[was_forced]
            sub += sub >= sel[was_forced, None]
            idx[was_forced] = sub
        inputs[sel[:, None], was_forced[:, None] + col[:k]] = idx
    inputs[forced, 0] = gate_pos[forced]

    pi_names = [f"i{k}" for k in range(n_inputs)]
    net_names = pi_names + [f"g{i + 1}" for i in range(n_main)]
    cell_list = [cells[c] for c in cell_ids.tolist()]
    arity_list = arity.tolist()
    rows = inputs.tolist()
    gates = [Gate(net_names[n_inputs + i], cell_list[i],
                  [net_names[j] for j in rows[i][:arity_list[i]]])
             for i in range(n_main)]

    consumed = np.zeros(n_inputs + n_main, dtype=bool)
    consumed[inputs[col < arity[:, None]]] = True
    hanging = [net_names[n_inputs + int(i)]
               for i in np.flatnonzero(~consumed[n_inputs:])]
    counter = n_main
    while len(hanging) < n_outputs:
        counter += 1
        src = net_names[n_inputs + (counter * 7919) % n_main]
        gates.append(Gate(f"g{counter}", "BUF", [src]))
        hanging.append(f"g{counter}")
    while len(hanging) > n_outputs:
        k = max(2, min(len(hanging) - n_outputs + 1, 4))
        chunk = hanging[:k]
        del hanging[:k]
        counter += 1
        gates.append(Gate(f"g{counter}",
                          {2: "OR2", 3: "OR3", 4: "OR4"}[k], chunk))
        hanging.append(f"g{counter}")
    outputs = []
    for k, net in enumerate(hanging):
        outputs.append(f"o{k}")
        gates.append(Gate(f"o{k}", "BUF", [net]))
    return Circuit(name, pi_names, outputs, gates)


def scale_circuit(n_gates: int, seed: int = 0,
                  name: Optional[str] = None) -> Circuit:
    """The shared synthetic scale-corpus profile (benchmarks + CLI).

    One canonical (inputs, outputs) shape per gate count — I/O widths
    grow like sqrt(n_gates), the empirically ISCAS-like aspect — so a
    20k-gate circuit generated by ``repro generate`` and one generated
    inside ``benchmarks/test_perf_scale.py`` are the *same* netlist
    (same :func:`~repro.artifacts.fingerprint.circuit_fingerprint`).
    """
    if n_gates < 256:
        raise ValueError("scale corpus starts at 256 gates")
    n_inputs = max(32, int(round(math.sqrt(n_gates))))
    n_outputs = max(8, n_inputs // 4)
    # Locality widens with size so logic depth grows ~sqrt(n_gates),
    # keeping the level count (and the kernel's per-level dispatch
    # overhead) sublinear, like real netlists rather than one long chain.
    locality = max(64.0, math.sqrt(n_gates))
    return random_logic(name or f"scale{n_gates}s{seed}", n_inputs,
                        n_outputs, n_gates, seed, locality=locality,
                        engine="array")
