"""Transcendental primitives shared by the scalar model and the kernels.

The engine-equivalence contract of this repo is *bit*-identity, not
"close": every ``engine="compiled"`` path must reproduce the scalar
oracle float for float.  For plain arithmetic (+, -, *, /) IEEE 754
already guarantees that — the same operands in the same order give the
same bits whether they flow through Python floats or NumPy arrays.
Transcendentals are the exception:

* NumPy's SIMD ``exp`` / ``power`` inner loops are accurate to ~1 ulp
  but are **not** bit-equal to libm (``math.exp`` / ``float.__pow__``),
  and
* NumPy *scalar* power (``np.float64 ** y``) takes the libm path while
  arrays take the SIMD loop, so even staying inside NumPy mixes two
  implementations.

The one rule that makes scalar and vectorized engines agree on every
platform: **route every transcendental through the ufunc inner loop,
whether the input is a scalar or an array.**  A ufunc call on a scalar
(or 0-d array) runs the same inner loop as an n-element array — the
SIMD tail path — so ``uexp(x) == uexp(xs)[i]`` bit-for-bit whenever
``x == xs[i]``, regardless of array length, stride, or alignment.

``sqrt`` needs no wrapper: IEEE 754 requires correctly-rounded square
roots, so ``math.sqrt``, NumPy scalar sqrt, and NumPy array sqrt agree
bit-for-bit already.

The scalar :class:`~repro.core.aging.NbtiModel` closed-form path and
the vectorized :class:`~repro.core.aging_compiled.CompiledNbtiModel`
both call these helpers; the exact-recursion ablation path
(:func:`repro.core.multicycle.s_sequence`) intentionally stays on pure
libm — it is never mirrored by a kernel.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["uexp", "quarter_root"]

ArrayLike = Union[float, np.ndarray]


def uexp(x: ArrayLike) -> ArrayLike:
    """``e**x`` through NumPy's ufunc loop, scalar in -> scalar out.

    Bit-identical to ``np.exp`` applied elementwise to any array
    containing ``x``; *not* necessarily bit-identical to ``math.exp``.
    """
    if isinstance(x, np.ndarray):
        return np.exp(x)
    return float(np.exp(x))


def quarter_root(x: ArrayLike) -> ArrayLike:
    """``x ** 0.25`` through NumPy's ufunc power loop.

    Scalars are routed through :func:`np.power` (the ufunc), never
    ``float.__pow__`` or ``np.float64.__pow__`` — NumPy dispatches
    scalar ``**`` to libm ``pow`` while arrays take the SIMD loop, and
    the two differ in the last bit on a fraction of inputs.
    """
    if isinstance(x, np.ndarray):
        return np.power(x, 0.25)
    return float(np.power(x, 0.25))
