"""Device-level technology models (substrate S1).

This package replaces the paper's PTM 90 nm SPICE models [43] with
analytical BSIM-flavoured equations:

* :mod:`repro.tech.ptm` — named parameter sets for the PTM-90nm-like
  process the paper uses (Vdd = 1.0 V, |Vth| = 220 mV) plus low-power
  and high-Vth variants used by the dual-Vth extension.
* :mod:`repro.tech.mosfet` — subthreshold conduction (with DIBL and
  temperature dependence), gate tunneling leakage (carrier-type
  asymmetric), and alpha-power-law drive current / delay primitives.
"""

from repro.tech.ptm import (
    Technology,
    MosfetParams,
    PTM90,
    PTM90_HVT,
    PTM90_LP,
    get_technology,
)
from repro.tech.mosfet import (
    Mosfet,
    subthreshold_current,
    gate_leakage_current,
    drive_current,
    alpha_power_delay,
    threshold_at_temperature,
)

__all__ = [
    "Technology",
    "MosfetParams",
    "PTM90",
    "PTM90_HVT",
    "PTM90_LP",
    "get_technology",
    "Mosfet",
    "subthreshold_current",
    "gate_leakage_current",
    "drive_current",
    "alpha_power_delay",
    "threshold_at_temperature",
]
