"""Differential tests: the vectorized NBTI kernel vs the scalar oracle.

:class:`repro.core.aging_compiled.CompiledNbtiModel` and the
``engine="compiled"`` gate-shift path must be **bit-identical** to the
scalar :class:`~repro.core.aging.NbtiModel` / per-device Python loop —
every comparison here is exact (``==`` / ``array_equal``), never
``approx``: across the ISCAS85 suite, the paper's Table 1 / Fig. 3
RAS × temperature grid, the DC/AC duty extremes, and per-die Vth0
offset batches.
"""

import numpy as np
import pytest

from tests._engines import assert_engines_match, assert_identical
from repro.constants import TEN_YEARS, years
from repro.context import AnalysisContext
from repro.core import DeviceStress, OperatingProfile
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.aging_compiled import CompiledNbtiModel
from repro.netlist import iscas85
from repro.sta.degradation import ALL_ONE, ALL_ZERO, AgingAnalyzer
from repro.variation.sampling import VariationModel
from repro.variation.statistical import statistical_aging

PROFILE = OperatingProfile.from_ras("1:9", t_standby=330.0)
KERNEL = CompiledNbtiModel(DEFAULT_MODEL)

#: The paper's operating grid: Table 1 RAS ratios x Fig. 3 standby
#: temperatures (active mode fixed at 400 K).
RAS_GRID = ("9:1", "5:1", "1:1", "1:5", "1:9")
T_STANDBY_GRID = (300.0, 330.0, 370.0, 400.0)

_BENCH_CACHE = {}


def bench(name):
    if name not in _BENCH_CACHE:
        _BENCH_CACHE[name] = iscas85.load(name)
    return _BENCH_CACHE[name]


def device_grid(seed=0, n=64):
    """A spread of (duty, standby fraction) pairs incl. the extremes."""
    rng = np.random.default_rng(seed)
    duties = np.concatenate([[0.0, 1.0, 0.0, 1.0, 0.5],
                             rng.uniform(0.0, 1.0, n)])
    fracs = np.concatenate([[0.0, 0.0, 1.0, 1.0, 0.5],
                            rng.choice([0.0, 0.25, 0.5, 1.0], n)])
    return duties, fracs


class TestModelKernel:
    @pytest.mark.parametrize("ras", RAS_GRID)
    @pytest.mark.parametrize("t_standby", T_STANDBY_GRID)
    def test_ras_temperature_grid_bit_identical(self, ras, t_standby):
        profile = OperatingProfile.from_ras(ras, t_standby=t_standby)
        duties, fracs = device_grid()
        for t in (0.0, years(1.0), TEN_YEARS):
            batch = KERNEL.delta_vth(profile, duties, fracs, t, 0.2)
            scalar = np.array([
                DEFAULT_MODEL.delta_vth(profile, DeviceStress(d, f), t, 0.2)
                for d, f in zip(duties, fracs)])
            assert np.array_equal(batch, scalar)

    def test_duty_extremes(self):
        """DC stress (duty=1), full recovery (duty=0), and the parked
        standby states map exactly onto the scalar path."""
        for duty, frac in [(0.0, 0.0), (1.0, 1.0), (0.0, 1.0), (1.0, 0.0)]:
            got = KERNEL.delta_vth(PROFILE, np.array([duty]),
                                   np.array([frac]), TEN_YEARS, 0.2)
            want = DEFAULT_MODEL.delta_vth(PROFILE, DeviceStress(duty, frac),
                                           TEN_YEARS, 0.2)
            assert got[0] == want
        # Stress-free device: both paths report exactly 0.0.
        relaxed = OperatingProfile.from_ras("0:1")
        got = KERNEL.delta_vth(relaxed, np.array([0.0]), np.array([0.0]),
                               TEN_YEARS, 0.2)
        assert got[0] == DEFAULT_MODEL.delta_vth(
            relaxed, DeviceStress(0.0, 0.0), TEN_YEARS, 0.2) == 0.0

    def test_equivalent_duty_matches_scalar(self):
        duties, fracs = device_grid(seed=5)
        c_eq, tau_eq = KERNEL.equivalent_duty(PROFILE, duties, fracs)
        for i, (d, f) in enumerate(zip(duties, fracs)):
            c, tau = DEFAULT_MODEL.equivalent_duty(PROFILE,
                                                   DeviceStress(d, f))
            assert c_eq[i] == c and tau_eq[i] == tau

    def test_dc_shift_series_bit_identical(self):
        times = np.logspace(3, np.log10(TEN_YEARS), 17)
        for temp in T_STANDBY_GRID:
            batch = KERNEL.delta_vth_dc(times, temp, 0.25)
            scalar = np.array([DEFAULT_MODEL.delta_vth_dc(t, temp, 0.25)
                               for t in times])
            assert np.array_equal(batch, scalar)

    def test_lifetime_series_trailing_axis(self):
        times = np.logspace(4, np.log10(TEN_YEARS), 9)
        duties, fracs = device_grid(seed=9, n=16)
        series = KERNEL.delta_vth_series(PROFILE, duties, fracs, times, 0.22)
        assert series.shape == (len(duties), len(times))
        for j, (d, f) in enumerate(zip(duties, fracs)):
            scalar = DEFAULT_MODEL.delta_vth_series(
                PROFILE, DeviceStress(d, f), times, 0.22)
            assert np.array_equal(series[j], scalar)

    def test_field_factors_batch_vs_scalar_loop(self):
        rng = np.random.default_rng(11)
        vth0 = rng.uniform(0.05, 0.8, (37, 13))
        batch = KERNEL.field_factors(vth0)
        for i in range(vth0.shape[0]):
            for j in range(vth0.shape[1]):
                assert batch[i, j] == DEFAULT_MODEL.calibration.field_factor(
                    vth0[i, j])

    def test_scale_recovery_ablation_matches(self):
        model = NbtiModel(scale_recovery=True)
        kernel = CompiledNbtiModel(model)
        duties, fracs = device_grid(seed=21, n=32)
        batch = kernel.delta_vth(PROFILE, duties, fracs, TEN_YEARS, 0.2)
        scalar = np.array([
            model.delta_vth(PROFILE, DeviceStress(d, f), TEN_YEARS, 0.2)
            for d, f in zip(duties, fracs)])
        assert np.array_equal(batch, scalar)

    def test_input_validation_mirrors_scalar(self):
        with pytest.raises(ValueError, match="non-negative"):
            KERNEL.delta_vth(PROFILE, np.array([0.5]), np.array([0.5]), -1.0)
        with pytest.raises(ValueError, match="non-negative"):
            KERNEL.delta_vth_dc(np.array([-1.0]), 400.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            KERNEL.delta_vth(PROFILE, np.array([1.5]), np.array([0.5]), 1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            KERNEL.delta_vth(PROFILE, np.array([0.5]), np.array([-0.1]), 1.0)
        with pytest.raises(ValueError, match="Vdd"):
            KERNEL.field_factors(np.array([0.0]))
        with pytest.raises(ValueError, match="Vdd"):
            KERNEL.field_factors(np.array([1.0]))


class TestGateShiftEngines:
    @pytest.mark.parametrize("name", iscas85.NAMES)
    def test_iscas85_bit_identical(self, name):
        circuit = bench(name)
        ctx = AnalysisContext(circuit)
        assert_engines_match(
            lambda engine: ctx.analyzer.gate_shifts(
                circuit, PROFILE, TEN_YEARS, context=ctx, engine=engine))

    @pytest.mark.parametrize("standby", [ALL_ZERO, ALL_ONE])
    def test_bounding_standby_cases(self, standby):
        circuit = bench("c880")
        ctx = AnalysisContext(circuit)
        assert_engines_match(
            lambda engine: ctx.analyzer.gate_shifts(
                circuit, PROFILE, TEN_YEARS, standby=standby, context=ctx,
                engine=engine))

    def test_standby_vector_and_alternation(self):
        circuit = bench("c432")
        ctx = AnalysisContext(circuit)
        pis = circuit.primary_inputs
        vec_a = {pi: i % 2 for i, pi in enumerate(pis)}
        vec_b = {pi: (i + 1) % 2 for i, pi in enumerate(pis)}
        for standby in (vec_a, [vec_a, vec_b], [vec_a, vec_a, vec_b]):
            assert_engines_match(
                lambda engine: ctx.analyzer.gate_shifts(
                    circuit, PROFILE, TEN_YEARS, standby=standby,
                    context=ctx, engine=engine))

    def test_without_context(self):
        circuit = bench("c432")
        analyzer = AgingAnalyzer()
        assert_engines_match(
            lambda engine: analyzer.gate_shifts(circuit, PROFILE, TEN_YEARS,
                                                engine=engine))

    def test_explicit_active_probs(self):
        circuit = bench("c432")
        analyzer = AgingAnalyzer()
        rng = np.random.default_rng(3)
        probs = {net: float(p) for net, p in
                 zip(circuit.nets, rng.uniform(0.1, 0.9, len(circuit.nets)))}
        assert_engines_match(
            lambda engine: analyzer.gate_shifts(circuit, PROFILE, TEN_YEARS,
                                                active_probs=probs,
                                                engine=engine))

    def test_context_memo_keyed_by_engine(self):
        circuit = bench("c432")
        ctx = AnalysisContext(circuit)
        compiled = ctx.gate_shifts(PROFILE, TEN_YEARS)          # auto
        assert ctx.stats.misses("gate_shifts") == 1
        assert ctx.gate_shifts(PROFILE, TEN_YEARS,
                               engine="compiled") is compiled   # same entry
        assert ctx.stats.hits("gate_shifts") == 1
        scalar = ctx.gate_shifts(PROFILE, TEN_YEARS, engine="scalar")
        assert ctx.stats.misses("gate_shifts") == 2              # oracle ran
        assert scalar is not compiled
        assert_identical(compiled, scalar)
        # The flattened plan was lowered exactly once.
        assert ctx.stats.misses("aging_plan") == 1

    def test_unknown_engine_rejected(self):
        circuit = bench("c432")
        with pytest.raises(ValueError, match="engine"):
            AgingAnalyzer().gate_shifts(circuit, PROFILE, TEN_YEARS,
                                        engine="turbo")
        with pytest.raises(ValueError, match="engine"):
            AnalysisContext(circuit).gate_shifts(PROFILE, TEN_YEARS,
                                                 engine="turbo")


class TestPerDieBatches:
    def test_offset_batch_vs_per_die_scalar_loop(self):
        """A (gates, dies) Vth0 offset matrix through the kernel equals
        die-by-die scalar field factors."""
        circuit = bench("c880")
        vth0 = 0.2
        offsets = VariationModel(sigma_local=0.02).sample_many(circuit, 7,
                                                               seed=17)
        names = list(circuit.gates)
        offv = np.array([[off[g] for off in offsets] for g in names])
        batch = KERNEL.field_factors(vth0 + offv)
        for s, off in enumerate(offsets):
            for i, g in enumerate(names):
                assert batch[i, s] == DEFAULT_MODEL.calibration.field_factor(
                    vth0 + off[g])

    def test_statistical_aging_engines_identical(self):
        circuit = bench("c880")
        ctx = AnalysisContext(circuit)
        assert_engines_match(
            lambda engine: statistical_aging(
                circuit, PROFILE, times=(0.0, years(3.0), TEN_YEARS),
                n_samples=12, variation=VariationModel(sigma_local=0.015),
                seed=8, context=ctx, engine=engine))
