"""API-quality gates: the public surface stays documented and importable.

These meta-tests keep the library honest as it grows: every module under
``repro`` imports cleanly, every ``__all__`` name resolves, and every
public function/class/method carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    # __main__ runs the CLI (and exits) on import, by design.
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name",
                         [m for m in MODULES if m.endswith("__init__") is False])
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def _public_callables():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-exports documented at their home module
            yield module_name, name, obj


def test_every_public_callable_documented():
    undocumented = [
        f"{mod}.{name}"
        for mod, name, obj in _public_callables()
        if not inspect.getdoc(obj)
    ]
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_every_public_method_documented():
    undocumented = []
    for mod, cls_name, obj in _public_callables():
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not inspect.getdoc(member):
                undocumented.append(f"{mod}.{cls_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)
