"""Temperature-aware equivalent-time transformation (paper eqs. 13-19).

The paper's central modeling move: the circuit alternates between an
active mode at ``T_active`` (~400 K) and a standby mode at ``T_standby``
(~330 K).  Because the interface-trap temperature dependence reduces to
the H-diffusion coefficient (eq. 16), stress time spent at ``T_standby``
is equivalent to a *shorter* stress at ``T_active``, scaled by the
diffusivity ratio:

    t'_standby = t_standby * D(T_standby) / D(T_active)           (eq. 17)

Recovery, by contrast, is treated as temperature-insensitive — the paper
observes "the temperature has negligible effect on NBTI relaxation
phase" (Table 4 discussion) — so recovery time enters unscaled.  The
``scale_recovery`` flag exists to run the A1 ablation that drops this
assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.constants import BOLTZMANN_EV


def diffusivity_ratio(t_from: float, t_to: float, ed: float) -> float:
    """``D(t_from) / D(t_to)`` for an Arrhenius diffusivity.

    < 1 when ``t_from`` is the cooler temperature (standby), which is
    what shrinks standby-mode stress.
    """
    if t_from <= 0 or t_to <= 0:
        raise ValueError("temperatures must be positive kelvin")
    if ed < 0:
        raise ValueError("activation energy must be non-negative")
    return math.exp(-(ed / BOLTZMANN_EV) * (1.0 / t_from - 1.0 / t_to))


@dataclass(frozen=True)
class ModeTimes:
    """Stress/recovery split of one macro-cycle, per mode, in seconds
    (or any consistent unit — only ratios and products matter).

    ``stress_active`` is the time the device spends gate-0 while the
    circuit is active (signal-probability driven); ``stress_standby`` is
    its standby-mode stress time (0 or the whole standby interval,
    depending on the parked state).
    """

    stress_active: float
    recovery_active: float
    stress_standby: float
    recovery_standby: float

    def __post_init__(self) -> None:
        for field in ("stress_active", "recovery_active",
                      "stress_standby", "recovery_standby"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.total() <= 0:
            raise ValueError("macro-cycle must have positive duration")

    def total(self) -> float:
        """Macro-cycle duration (sum of all four intervals)."""
        return (self.stress_active + self.recovery_active
                + self.stress_standby + self.recovery_standby)


def equivalent_times(times: ModeTimes, t_active: float, t_standby: float,
                     ed: float, scale_recovery: bool = False
                     ) -> Tuple[float, float]:
    """Map a two-temperature macro-cycle onto equivalent times at
    ``t_active`` (eq. 17 and its recovery analogue).

    Returns:
        (t_eq_stress, t_eq_recovery) in the same unit as ``times``.
    """
    ratio = diffusivity_ratio(t_standby, t_active, ed)
    t_eq_stress = times.stress_active + times.stress_standby * ratio
    if scale_recovery:
        t_eq_recovery = times.recovery_active + times.recovery_standby * ratio
    else:
        t_eq_recovery = times.recovery_active + times.recovery_standby
    return t_eq_stress, t_eq_recovery


def equivalent_duty(times: ModeTimes, t_active: float, t_standby: float,
                    ed: float, scale_recovery: bool = False
                    ) -> Tuple[float, float]:
    """Equivalent duty cycle and period, eqs. (18)-(19).

    Returns:
        (c_eq, tau_eq): ``c_eq = t_eq_stress / (t_eq_stress + t_eq_rec)``
        and the equivalent period ``tau_eq`` (same unit as ``times``).
        A cycle with no stress at all returns ``(0.0, tau_eq)``.
    """
    t_s, t_r = equivalent_times(times, t_active, t_standby, ed, scale_recovery)
    tau_eq = t_s + t_r
    if tau_eq <= 0:
        # Entire cycle was standby stress scaled to ~nothing; treat as
        # a vanishing cycle with zero duty.
        return 0.0, 0.0
    return t_s / tau_eq, tau_eq
