"""Evaluation-layer reuse — the AnalysisContext cache-hit experiment.

The Fig. 6 co-optimization loop evaluates dozens of candidate vectors
per circuit; before the shared :class:`repro.context.AnalysisContext`
existed, every stage recomputed signal probabilities, gate loads, and
the leakage lookup table from scratch.  This experiment *asserts* the
reuse with the context's hit/miss counters instead of guessing from
wall clock: a miss is an actual recomputation, so the invariant

* exactly **one** signal-probability propagation,
* exactly **one** ``gate_loads`` computation,
* exactly **one** ``LeakageTable`` build

per circuit for a full ``co_optimize(n_vectors=64)`` is checked
directly, and the printed table shows how much repeated work the memo
absorbed (the hit counts).

Since the MLV search moved onto the bit-packed batch kernel, the
per-vector counters tell a different story than in the scalar era:
``leakage_for_vector`` misses equal the number of *distinct* candidates
(each computed once, in batches), ``standby_states`` only sees the
final MLV set (the candidates' logic states never materialize
scalar-style), and one ``packed_simulator`` compilation serves every
round.
"""

from _common import emit
from repro.constants import TEN_YEARS
from repro.core import OperatingProfile
from repro.flow import AnalysisPlatform
from repro.flow.dual_vth import assign_dual_vth
from repro.netlist import iscas85

CIRCUITS = ("c432", "c880")
PROFILE = OperatingProfile.from_ras("1:5", t_standby=330.0)


def run_context_reuse():
    platform = AnalysisPlatform()
    rows = []
    for name in CIRCUITS:
        circuit = iscas85.load(name)
        co = platform.co_optimize(circuit, PROFILE, TEN_YEARS, n_vectors=64,
                                  max_set_size=6, seed=17)
        # A repeated dual-Vth pass over the same context: the two
        # field-factor evaluations (nominal and HVT Vth0) are hoisted
        # through the memo, so the second assignment recomputes neither.
        ctx = platform.context_for(circuit)
        assign_dual_vth(circuit, profile=PROFILE, context=ctx)
        assign_dual_vth(circuit, profile=PROFILE, context=ctx)
        snap = ctx.stats.snapshot()
        rows.append({"name": name, "snapshot": snap,
                     "evaluated": co.search.evaluated,
                     "set_size": len(co.selection.records)})
    return rows


def check(rows):
    for row in rows:
        snap = row["snapshot"]
        # The tentpole invariant: one propagation, one load computation,
        # one leakage-table build per circuit for the whole loop.
        assert snap["probabilities"]["misses"] == 1, row["name"]
        assert snap["gate_loads"]["misses"] == 1, row["name"]
        assert snap["leakage_table"]["misses"] == 1, row["name"]
        # One stress-duty table and one fresh STA serve every candidate.
        assert snap["stress_duties"]["misses"] == 1, row["name"]
        assert snap["fresh_timing"]["misses"] == 1, row["name"]
        # One packed-simulator compilation serves every search round.
        assert snap["packed_simulator"]["misses"] == 1, row["name"]
        assert snap["packed_simulator"]["hits"] >= 1, row["name"]
        # Each distinct candidate's leakage is computed exactly once by
        # the batched kernel: misses equal the search's evaluated count.
        leak = snap["leakage_for_vector"]
        assert leak["misses"] == row["evaluated"], row["name"]
        # Only the final MLV set is logic-simulated scalar-style (for
        # the NBTI-aware aged-timing pass) — the batched search itself
        # never touches the per-vector simulation cache.
        sim = snap["standby_states"]
        assert sim["misses"] == row["set_size"], row["name"]
        # The dual-Vth flow's calibration field factors (nominal + HVT)
        # are each computed once; the repeat assignment is pure hits.
        ff = snap["field_factor"]
        assert ff["misses"] == 2, row["name"]
        assert ff["hits"] >= 2, row["name"]
    # The second circuit's context shares the platform's leakage table,
    # so it never *builds* one — fetching the shared table is its one
    # recorded miss, and the build cost is paid once per platform.


def report(rows):
    artifacts = ("probabilities", "stress_duties", "gate_loads",
                 "fresh_timing", "standby_states", "leakage_table",
                 "gate_shifts", "field_factor", "packed_simulator",
                 "leakage_for_vector")
    printable = []
    for row in rows:
        snap = row["snapshot"]
        for art in artifacts:
            entry = snap.get(art, {"hits": 0, "misses": 0})
            printable.append([row["name"], art, entry["misses"],
                              entry["hits"]])
    emit("Evaluation-layer reuse — co_optimize(n_vectors=64)",
         ["circuit", "artifact", "computed", "reused"], printable)


def test_context_reuse(run_once):
    rows = run_once(run_context_reuse)
    check(rows)
    report(rows)


if __name__ == "__main__":
    r = run_context_reuse()
    check(r)
    report(r)
