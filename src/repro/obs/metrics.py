"""Typed metrics: counters, histograms, and gauges, merged exactly.

A :class:`MetricsRegistry` owns named :class:`Counter`,
:class:`Histogram`, and :class:`Gauge` instances.  The instrumented
kernels record through the module-level :func:`count` /
:func:`observe` / :func:`gauge` helpers, which are
no-ops unless collection is active (a tracer installed — see
:func:`repro.obs.trace.tracing_enabled`), keeping the disabled path as
cheap as the tracing one.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain sorted dicts —
picklable, JSON-ready, and mergeable: :meth:`MetricsRegistry.merge`
adds a snapshot into the registry, which is how
:mod:`repro.flow.parallel` folds per-worker metrics into the parent
report.  Counter sums and histogram counts are integer (or
order-independent) arithmetic, and the parallel runner merges in job
order, so a pooled sweep and a serial sweep produce identical metric
snapshots (``tests/test_flow_parallel.py`` pins this).

Histogram buckets are powers of two (the key is ``floor(log2(v))``),
which makes bucket counts exactly reproducible across runs — no
quantile estimation, no float accumulation ordering concerns.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

from repro.obs.trace import tracing_enabled

Number = Union[int, float]


class Counter:
    """A monotonically increasing, optionally labeled counter.

    Labels partition one logical metric (e.g. ``sta.analyze.engine``
    counted per ``label="compiled"`` / ``label="scalar"``); the empty
    label is the default series.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: Dict[str, Number] = {}

    def inc(self, amount: Number = 1, label: str = "") -> None:
        """Add ``amount`` to the series ``label``."""
        self.values[label] = self.values.get(label, 0) + amount

    def value(self, label: str = "") -> Number:
        """Current value of one series (0 if never incremented)."""
        return self.values.get(label, 0)

    def total(self) -> Number:
        """Sum across all labels."""
        return sum(self.values.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"type": "counter", "values": {...}}``."""
        return {"type": "counter",
                "values": {k: self.values[k] for k in sorted(self.values)}}

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Add a :meth:`snapshot` (e.g. from a worker) into this counter."""
        for label, value in snap.get("values", {}).items():
            self.values[label] = self.values.get(label, 0) + value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, total={self.total()})"


class Histogram:
    """Summary stats + power-of-two buckets of an observed value stream.

    Tracks count / sum / min / max and a bucket count per
    ``floor(log2(value))`` exponent (values <= 0 land in the ``"le0"``
    bucket).  Bucketing by exponent keeps merges exact: bucket counts
    are integers, so pooled and serial runs agree bucket for bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    @staticmethod
    def bucket_key(value: Number) -> str:
        """The bucket label of one value (``floor(log2(v))`` as a string)."""
        if value <= 0:
            return "le0"
        return str(math.floor(math.log2(value)))

    def observe(self, value: Number) -> None:
        """Record one value."""
        v = float(value)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        key = self.bucket_key(v)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready form with count/sum/min/max and sorted buckets."""
        return {"type": "histogram", "count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "buckets": {k: self.buckets[k]
                            for k in sorted(self.buckets)}}

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this histogram."""
        self.count += int(snap.get("count", 0))
        self.total += float(snap.get("sum", 0.0))
        for bound in ("min", "max"):
            other = snap.get(bound)
            if other is None:
                continue
            mine = getattr(self, bound)
            if mine is None:
                setattr(self, bound, float(other))
            elif bound == "min":
                self.min = min(mine, float(other))
            else:
                self.max = max(mine, float(other))
        for key, n in snap.get("buckets", {}).items():
            self.buckets[key] = self.buckets.get(key, 0) + n

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean():.3e})")


class Gauge:
    """A point-in-time value: the *latest* set wins, per label.

    Gauges carry level measurements (queue depth, active workers,
    retry backlog) rather than accumulations.  The merge rule is
    last-write-wins per label — exact like the counter/histogram
    merges, and deterministic because every merge path in the stack
    (pooled sweeps, sharded assembly, the serve scheduler's
    sequence-ordered adoption) folds payloads in job order.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: Dict[str, Number] = {}

    def set(self, value: Number, label: str = "") -> None:
        """Set the series ``label`` to ``value`` (replacing it)."""
        self.values[label] = value

    def value(self, label: str = "") -> Number:
        """Current value of one series (0 if never set)."""
        return self.values.get(label, 0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"type": "gauge", "values": {...}}``."""
        return {"type": "gauge",
                "values": {k: self.values[k] for k in sorted(self.values)}}

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot`: its series overwrite this gauge's."""
        for label, value in snap.get("values", {}).items():
            self.values[label] = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, values={self.values})"


class MetricsRegistry:
    """A named collection of counters, histograms, and gauges.

    One registry is installed process-wide (swap with
    :func:`use_metrics`); worker processes build their own and ship
    snapshots back for :meth:`merge`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Histogram, Gauge]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a histogram, not a counter")
        return metric

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a counter, not a histogram")
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is not a gauge")
        return metric

    def get(self, name: str) -> Optional[Union[Counter, Histogram, Gauge]]:
        """The metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as a sorted, JSON-ready dict (picklable)."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Metric types must agree between snapshot and registry; merging
        is pure addition, so folding worker snapshots in job order is
        deterministic regardless of which worker finished first.
        """
        for name in sorted(snapshot):
            snap = snapshot[name]
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).merge_snapshot(snap)
            elif kind == "histogram":
                self.histogram(name).merge_snapshot(snap)
            elif kind == "gauge":
                self.gauge(name).merge_snapshot(snap)
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.names()})"


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The currently installed registry."""
    return _registry


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` -> a fresh one); returns the old."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Install a registry for the duration of a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def count(name: str, amount: Number = 1, label: str = "") -> None:
    """Increment a counter in the installed registry (when collecting)."""
    if not tracing_enabled():
        return
    _registry.counter(name).inc(amount, label)


def observe(name: str, value: Number) -> None:
    """Record a histogram value in the installed registry (when collecting)."""
    if not tracing_enabled():
        return
    _registry.histogram(name).observe(value)


def gauge(name: str, value: Number, label: str = "") -> None:
    """Set a gauge in the installed registry (when collecting)."""
    if not tracing_enabled():
        return
    _registry.gauge(name).set(value, label)
