"""The long-running analysis service: scheduler + HTTP front end.

:class:`AnalysisService` ties the serve package together:

* submissions land in the durable :class:`~repro.serve.queue.JobQueue`
  — unless the ``(circuit_fingerprint, scenario_key)`` result is
  already in the store's result cache, in which case the submission is
  answered as an immediately-``done`` cached job without ever touching
  the queue or a worker;
* a scheduler thread claims eligible jobs into per-job worker
  processes (:class:`~repro.serve.workers.JobProcess`), shipping each
  circuit's compiled bundle (lowered once, via
  :class:`~repro.serve.workers.BundleCache`) so workers never re-lower;
* completed numbers are persisted to the result cache **before** the
  job flips to ``done``; failed attempts are retried with exponential
  backoff until the retry budget runs out, then marked ``failed`` with
  the structured error of the final attempt;
* SIGTERM/SIGINT drain gracefully: no new claims, a grace period for
  running workers, then kill + requeue so a successor server resumes
  exactly where this one stopped.

Observability is service-owned: the process-global tracer is
explicitly single-threaded, so the service keeps its *own*
:class:`ServiceObs` (tracer + metrics registry behind a lock) and
every queue transition, cache answer, and worker payload funnels into
it.  Worker payloads are adopted in **claim order** (sequence slots
handed out at launch), so repeated runs of the same job sequence
produce the same canonical report.  ``GET /metrics`` renders it as a
schema-valid :class:`~repro.obs.report.RunReport` — the same document
``--metrics`` produces for batch runs, validatable with
``python -m repro.obs`` — and ``GET /metrics.prom`` renders the same
snapshot in the Prometheus text format.

The HTTP layer is deliberately thin: a ``ThreadingHTTPServer`` whose
handlers translate six endpoints (``POST /submit``,
``GET /status/<id>``, ``GET /result/<id>``, ``GET /healthz``,
``GET /metrics``, ``GET /metrics.prom``) onto the service object.
See docs/SERVICE.md for the wire protocol.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.serve.protocol import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    AgeScenario,
    JobRecord,
    new_job_id,
    structured_error,
)
from repro.serve.queue import JobQueue
from repro.serve.workers import BundleCache, JobProcess

#: Spans kept in the service tracer (oldest dropped past this), so a
#: long-lived server's /metrics document stays bounded.
MAX_SPANS = 512


class ServiceObs:
    """Thread-safe span/metric hub owned by one service instance.

    The module-global tracer is single-threaded by design (HTTP handler
    threads + the scheduler would corrupt its span stack), so the
    service never installs it; everything reports here instead, under
    one lock.  Spans are flat (no nesting across threads) and capped at
    :data:`MAX_SPANS`.

    Two ordering guarantees:

    * **Snapshot atomicity** — :meth:`report` assembles the whole
      document (spans, metrics, cache entries, store stats) in one
      locked pass, so a reader never sees a counter from after a span
      it does not contain (``tests/test_serve_obs.py`` hammers this).
    * **Deterministic adoption** — worker payloads are admitted through
      monotonically allocated sequence numbers (:meth:`alloc_seq`,
      handed out at claim time) and flushed into the tracer strictly in
      sequence order, regardless of which worker finished first.  Two
      servers running the same job sequence produce the same canonical
      RunReport.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._tracer = obs.Tracer()
        self._metrics = obs.MetricsRegistry()
        #: scope -> merged cache-stats entry (summed artifact by
        #: artifact, so a long-lived server's list stays bounded by
        #: the number of distinct scopes, not completed jobs).
        self._cache_entries: Dict[str, Dict[str, Any]] = {}
        self._next_seq = 0
        self._flush_next = 0
        #: seq -> buffered payload (None = released without one).
        self._pending_payloads: Dict[int, Optional[Dict[str, Any]]] = {}

    def count(self, name: str, amount: int = 1, label: str = "") -> None:
        """Increment the named counter (optionally labelled)."""
        with self._lock:
            self._metrics.counter(name).inc(amount, label)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        with self._lock:
            self._metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float, label: str = "") -> None:
        """Set the named gauge series to ``value``."""
        with self._lock:
            self._metrics.gauge(name).set(value, label)

    def span(self, name: str, **attributes: Any):
        """A flat timed span recorded on exit (thread-safe)."""
        return _LockedSpan(self, name, attributes)

    def alloc_seq(self) -> int:
        """Reserve the next adoption slot (call at claim time)."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def adopt(self, spans: Optional[List[Dict[str, Any]]] = None,
              metrics: Optional[Dict[str, Any]] = None,
              cache_stats: Optional[List[Dict[str, Any]]] = None,
              attributes: Optional[Dict[str, Any]] = None,
              seq: Optional[int] = None) -> None:
        """Merge a worker payload (spans/metrics/cache stats).

        Without ``seq`` the payload merges immediately (one atomic
        step).  With ``seq`` (from :meth:`alloc_seq`) it is buffered
        and flushed strictly in sequence order — an attempt that ends
        without a payload must still call ``adopt(seq=...)`` so later
        sequences are not held back.
        """
        payload = {"spans": spans, "metrics": metrics,
                   "cache_stats": cache_stats, "attributes": attributes}
        empty = not (spans or metrics or cache_stats)
        with self._lock:
            if seq is None:
                self._merge_payload(payload)
            else:
                self._pending_payloads[seq] = None if empty else payload
                while self._flush_next in self._pending_payloads:
                    queued = self._pending_payloads.pop(self._flush_next)
                    self._flush_next += 1
                    if queued is not None:
                        self._merge_payload(queued)
            self._trim()

    def _merge_payload(self, payload: Dict[str, Any]) -> None:
        """Fold one payload into the hub (caller holds the lock)."""
        if payload.get("spans"):
            self._tracer.adopt(payload["spans"],
                               **(payload.get("attributes") or {}))
        if payload.get("metrics"):
            self._metrics.merge(payload["metrics"])
        for entry in payload.get("cache_stats") or []:
            scope = str(entry.get("scope", ""))
            merged = self._cache_entries.setdefault(
                scope, {"scope": scope, "artifacts": {}})
            for name, counts in entry.get("artifacts", {}).items():
                slot = merged["artifacts"].setdefault(
                    name, {"hits": 0, "misses": 0})
                slot["hits"] += int(counts.get("hits", 0))
                slot["misses"] += int(counts.get("misses", 0))

    def _trim(self) -> None:
        del self._tracer.roots[:-MAX_SPANS]

    def report(self, label: str, store: Any = None,
               meta: Optional[Dict[str, Any]] = None,
               gauges: Optional[Dict[str, float]] = None
               ) -> obs.RunReport:
        """The service's RunReport: spans, metrics, store cache stats.

        The **entire** snapshot — gauge refresh, span trees, metric
        registry, merged cache entries, and the store's live counters —
        is taken in one pass under the hub lock, so concurrent
        ``/metrics`` readers never observe a torn document (spans from
        one instant, counters from another).  Gauges passed in are
        level readings the caller gathered *before* taking this lock
        (queue depths come from the queue's own lock; taking it here
        would invert the queue -> obs lock order).

        The store's hit/miss counters become one cache-stats entry
        (same shape ``cache_scope`` produces), so ``/metrics`` exposes
        result-cache hits the e2e suite asserts on.
        """
        with self._lock:
            for name, value in (gauges or {}).items():
                self._metrics.gauge(name).set(value)
            spans = self._tracer.span_dicts()
            metrics = self._metrics.snapshot()
            entries = []
            for merged in self._cache_entries.values():
                artifacts = {name: dict(counts) for name, counts
                             in merged["artifacts"].items()}
                entries.append({
                    "scope": merged["scope"],
                    "hits": sum(a["hits"] for a in artifacts.values()),
                    "misses": sum(a["misses"]
                                  for a in artifacts.values()),
                    "artifacts": artifacts,
                })
            if store is not None:
                snap = store.stats.snapshot()
                entries.append({
                    "scope": f"store:{store.root.name}",
                    "hits": sum(a["hits"] for a in snap.values()),
                    "misses": sum(a["misses"] for a in snap.values()),
                    "artifacts": snap,
                })
        return obs.RunReport(label, spans=spans, metrics=metrics,
                             cache_stats=entries, meta=meta)


class _LockedSpan:
    """A flat span recorded into a :class:`ServiceObs` under its lock."""

    def __init__(self, hub: ServiceObs, name: str,
                 attributes: Dict[str, Any]) -> None:
        self.hub = hub
        self.name = name
        self.attributes = attributes
        self.t0 = 0.0

    def __enter__(self) -> "_LockedSpan":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.t0
        span = obs.Span(self.name, start=0.0, attributes={
            str(k): v for k, v in self.attributes.items()})
        span.duration = duration
        if exc_type is not None:
            span.attributes["error"] = exc_type.__name__
        with self.hub._lock:
            self.hub._tracer.roots.append(span)
            self.hub._trim()
        return False


@dataclass
class ServeConfig:
    """Tunables of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    max_workers: int = 2
    timeout_s: float = 300.0
    max_retries: int = 2
    backoff_s: float = 0.05
    drain_grace_s: float = 5.0
    poll_interval_s: float = 0.02
    allow_faults: bool = False


class AnalysisService:
    """Scheduler + queue + result cache behind one object.

    Drive it directly (the in-process test path) or through
    :func:`serve_http` (the CLI path); the HTTP layer holds no state of
    its own.
    """

    def __init__(self, store: Any,
                 config: Optional[ServeConfig] = None) -> None:
        self.store = store
        self.config = config or ServeConfig()
        self.obs = ServiceObs()
        self.queue = JobQueue(store, observer=self.obs)
        self.bundles = BundleCache(store, observer=self.obs)
        self.started_at = time.time()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        #: job_id -> (JobProcess, shipped bundle) of live claims.
        self._workers: Dict[str, JobProcess] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Dict[str, int]:
        """Recover persisted jobs, then start the scheduler thread."""
        recovered = self.queue.recover()
        self._scheduler = threading.Thread(target=self._run_scheduler,
                                           name="repro-serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        return recovered

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain running claims, stop scheduling.

        No new jobs are claimed; running workers get
        ``drain_grace_s`` to finish, then are killed and their jobs
        requeued (a ``drained`` note in ``last_error``) so a restarted
        server resumes them.  Idempotent.
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        if drain:
            deadline = time.monotonic() + self.config.drain_grace_s
            while self._workers and time.monotonic() < deadline:
                time.sleep(self.config.poll_interval_s)
        self._stopped.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout=10.0)
        for job_id, worker in list(self._workers.items()):
            worker.kill()
            # Release the adoption slot so buffered payloads behind
            # this killed attempt still flush.
            self.obs.adopt(seq=worker.seq)
            try:
                self.queue.requeue(job_id, structured_error(
                    "drained", "server shut down mid-attempt; requeued"))
            except (KeyError, ValueError):
                pass
            worker.close()
            self._workers.pop(job_id, None)
        self.obs.count("serve.drains")

    # -- submission ----------------------------------------------------------

    def submit(self, circuit: str, scenario: AgeScenario,
               *, timeout_s: Optional[float] = None,
               max_retries: Optional[int] = None,
               fault: Optional[Dict[str, Any]] = None) -> JobRecord:
        """Admit one aging query; cache and coalescing short-circuits.

        Order of answers:

        1. result cache — a stored ``(circuit_fp, scenario_key)``
           payload yields an immediately-``done`` record (``cached``
           flag set) without queue or worker involvement;
        2. active-job coalescing — an identical queued/running job is
           returned as-is instead of queuing a duplicate;
        3. a fresh ``queued`` record enters the durable FIFO.
        """
        from repro.flow.parallel import load_circuit

        with self.obs.span("serve.submit", circuit=circuit):
            loaded = load_circuit(circuit)
            from repro.artifacts.fingerprint import circuit_fingerprint

            circuit_fp = circuit_fingerprint(loaded)
            key = scenario.key()
            if fault is not None and not self.config.allow_faults:
                raise ValueError(
                    "fault injection requires --allow-faults")
            if self.store.has_result(circuit_fp, key):
                record = JobRecord(
                    job_id=new_job_id(), circuit=circuit,
                    circuit_name=loaded.name, circuit_fp=circuit_fp,
                    scenario=scenario, scenario_key=key, state=DONE,
                    cached=True)
                self.obs.count("serve.cache_answers")
                return self.queue.admit_terminal(record)
            active = self.queue.active_job_for(circuit_fp, key)
            if active is not None and fault is None:
                self.obs.count("serve.coalesced_submits")
                return active
            record = JobRecord(
                job_id=new_job_id(), circuit=circuit,
                circuit_name=loaded.name, circuit_fp=circuit_fp,
                scenario=scenario, scenario_key=key,
                timeout_s=(self.config.timeout_s if timeout_s is None
                           else timeout_s),
                max_retries=(self.config.max_retries if max_retries is None
                             else max_retries),
                fault=fault)
            return self.queue.submit(record)

    # -- queries -------------------------------------------------------------

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The public status document of one job, or ``None``."""
        record = self.queue.get(job_id)
        if record is None:
            return None
        return record.to_dict()

    def result(self, job_id: str) -> Tuple[Optional[JobRecord],
                                           Optional[Dict[str, Any]]]:
        """``(record, numbers)``; numbers only for ``done`` jobs."""
        record = self.queue.get(job_id)
        if record is None or record.state != DONE:
            return record, None
        numbers = self.store.load_result(record.circuit_fp,
                                         record.scenario_key)
        return record, numbers

    def healthz(self) -> Dict[str, Any]:
        """Liveness document: queue depths and uptime."""
        counts = self.queue.counts()
        return {"status": "draining" if self._draining.is_set() else "ok",
                "uptime_s": time.time() - self.started_at,
                "jobs": counts,
                "workers": len(self._workers)}

    def metrics_report(self) -> obs.RunReport:
        """The service RunReport (see :meth:`ServiceObs.report`).

        Queue-level gauge readings are gathered *before* the obs lock
        (the queue has its own lock; acquiring it inside
        :meth:`ServiceObs.report` would invert the queue -> obs lock
        order the transition spans establish).
        """
        counts = self.queue.counts()
        retry_backlog = self.queue.retry_backlog()
        active_workers = len(self._workers)
        return self.obs.report(
            "repro serve", self.store,
            meta={"jobs_done": counts[DONE], "jobs_failed": counts[FAILED],
                  "jobs_queued": counts[QUEUED],
                  "jobs_running": counts[RUNNING]},
            gauges={"serve.queue_depth": counts[QUEUED],
                    "serve.jobs_running": counts[RUNNING],
                    "serve.active_workers": active_workers,
                    "serve.retry_backlog": retry_backlog,
                    "serve.uptime_seconds": time.time() - self.started_at})

    # -- the scheduler loop --------------------------------------------------

    def _run_scheduler(self) -> None:
        while not self._stopped.is_set():
            progressed = self._poll_workers()
            if not self._draining.is_set():
                progressed |= self._launch_ready()
            if not progressed:
                time.sleep(self.config.poll_interval_s)
        # Final sweep so results that arrived during shutdown land.
        self._poll_workers()

    def _launch_ready(self) -> bool:
        launched = False
        while len(self._workers) < self.config.max_workers:
            record = self.queue.claim()
            if record is None:
                break
            try:
                bundle = self.bundles.bundle_for(record.circuit,
                                                 record.circuit_fp)
                worker = JobProcess(record.job_id, bundle, record.scenario,
                                    timeout_s=record.timeout_s,
                                    fault=record.fault)
            except Exception as exc:
                self.queue.finish_attempt(
                    record.job_id,
                    structured_error("launch-error", str(exc),
                                     exception=exc.__class__.__name__),
                    backoff_s=self.config.backoff_s)
                continue
            # Adoption slot reserved at launch: worker payloads merge
            # in claim order, not completion order.
            worker.seq = self.obs.alloc_seq()
            if record.attempts == 1:
                self.obs.observe("serve.job.queue_wait_seconds",
                                 max(0.0, time.time() - record.created_at))
            if worker.pid is not None:
                self.queue.mark_pid(record.job_id, worker.pid)
            self._workers[record.job_id] = worker
            self.obs.count("serve.workers_spawned")
            launched = True
        return launched

    def _poll_workers(self) -> bool:
        progressed = False
        for job_id, worker in list(self._workers.items()):
            outcome = worker.outcome()
            if outcome is None:
                continue
            progressed = True
            kind, payload = outcome
            record = self.queue.get(job_id)
            self.obs.observe("serve.job.attempt_seconds",
                             time.monotonic() - worker.started)
            if kind == "ok":
                self.obs.adopt(spans=payload.get("spans"),
                               metrics=payload.get("metrics"),
                               cache_stats=payload.get("cache_stats"),
                               attributes={"job": job_id},
                               seq=worker.seq)
                self.store.save_result(record.circuit_fp,
                                       record.scenario_key,
                                       payload["numbers"])
                self.queue.complete(job_id)
            else:
                # Release the slot so later payloads are not held back.
                self.obs.adopt(seq=worker.seq)
                self.obs.count(f"serve.attempts_{kind}")
                self.queue.finish_attempt(job_id, payload,
                                          backoff_s=self.config.backoff_s)
            worker.close()
            self._workers.pop(job_id, None)
        return progressed


# -- HTTP front end ----------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """The JSON endpoints over one :class:`AnalysisService`.

    Every request is timed into a per-endpoint latency histogram
    (``serve.http.<endpoint>.seconds``), which ``/metrics`` and
    ``/metrics.prom`` then expose.
    """

    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the service reports through /metrics, not stderr noise

    # -- plumbing ------------------------------------------------------------

    def _send(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self._send_bytes(code, body, "application/json")

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_bytes(code, text.encode("utf-8"), content_type)

    def _send_bytes(self, code: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        data = json.loads(raw.decode("utf-8") or "{}")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _endpoint_name(self, path: str) -> str:
        if path.startswith("/status/"):
            return "status"
        if path.startswith("/result/"):
            return "result"
        named = {"/submit": "submit", "/healthz": "healthz",
                 "/metrics": "metrics", "/metrics.prom": "metrics_prom"}
        return named.get(path, "unknown")

    # -- routes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.rstrip("/")
        t0 = time.perf_counter()
        try:
            self._post(path)
        finally:
            self.server.service.obs.observe(
                f"serve.http.{self._endpoint_name(path)}.seconds",
                time.perf_counter() - t0)

    def _post(self, path: str) -> None:
        service = self.server.service
        if path != "/submit":
            self._send(404, {"error": "unknown endpoint"})
            return
        try:
            body = self._read_json()
            circuit = body["circuit"]
            scenario = AgeScenario.from_dict(body.get("scenario") or {})
            record = service.submit(
                circuit, scenario,
                timeout_s=body.get("timeout_s"),
                max_retries=body.get("max_retries"),
                fault=body.get("fault"))
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(202 if not record.terminal else 200, record.to_dict())

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.rstrip("/")
        t0 = time.perf_counter()
        try:
            self._get(path)
        finally:
            self.server.service.obs.observe(
                f"serve.http.{self._endpoint_name(path)}.seconds",
                time.perf_counter() - t0)

    def _get(self, path: str) -> None:
        service = self.server.service
        if path == "/healthz":
            self._send(200, service.healthz())
        elif path == "/metrics":
            self._send(200, service.metrics_report().to_dict())
        elif path == "/metrics.prom":
            text = obs.to_prometheus(service.metrics_report().to_dict())
            self._send_text(200, text, "text/plain; version=0.0.4")
        elif path.startswith("/status/"):
            doc = service.status(path[len("/status/"):])
            if doc is None:
                self._send(404, {"error": "unknown job"})
            else:
                self._send(200, doc)
        elif path.startswith("/result/"):
            record, numbers = service.result(path[len("/result/"):])
            if record is None:
                self._send(404, {"error": "unknown job"})
            elif record.state == FAILED:
                self._send(500, {"job": record.to_dict(),
                                 "error": record.error})
            elif record.state != DONE:
                self._send(202, {"job": record.to_dict(),
                                 "status": record.state})
            elif numbers is None:
                # complete() makes this unreachable; still never 200
                # a done job without its payload.
                self._send(500, {"error": "result payload missing"})
            else:
                self._send(200, {"job": record.to_dict(),
                                 "numbers": numbers})
        else:
            self._send(404, {"error": "unknown endpoint"})


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(store: Any, config: Optional[ServeConfig] = None
                ) -> ServiceHTTPServer:
    """An unstarted HTTP server + service over ``store``.

    Binds (an ephemeral port when ``config.port == 0``) but does not
    accept yet; call ``serve_forever()`` (typically on a thread) after
    :meth:`AnalysisService.start`.
    """
    config = config or ServeConfig()
    service = AnalysisService(store, config)
    return ServiceHTTPServer((config.host, config.port), service)
