"""NBTI-aged timing: the paper's circuit-degradation flow (Sec. 3.3).

Combines:

* active-mode stress duties per PMOS from signal probabilities
  (:mod:`repro.sim.probability` + :mod:`repro.cells.stress`),
* standby-mode parked states per PMOS from a standby net-state map
  (logic-simulated MLV, or the paper's bounding all-0 / all-1 settings),
* the temperature-aware :class:`~repro.core.aging.NbtiModel`,

into a per-gate worst-PMOS threshold shift ("there might be several
dVth of different PMOSs in one gate ... we just select the largest one",
Sec. 3.3), then re-runs STA with those shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.cells.library import Library
from repro.cells.stress import (
    stress_probabilities_for_cell,
    stress_under_vector,
)
from repro.core.aging import DEFAULT_MODEL, NbtiModel
from repro.core.aging_compiled import CompiledNbtiModel
from repro.core.profiles import DeviceStress, OperatingProfile
from repro.netlist.circuit import Circuit
from repro.sim.logic import default_library, evaluate
from repro.sim.probability import propagate_probabilities
from repro.sta.analysis import TimingResult, analyze, gate_loads

#: Sentinel standby-state settings matching the paper's bounding cases.
#: They act at the *device* level: ALL_ZERO drives every PMOS gate in
#: every cell with 0 (maximum possible degradation, "there exists no such
#: input vector" — Sec. 3.3), ALL_ONE drives every PMOS with 1 (the
#: internal-node-control ideal, "all PMOS devices are driven by '1'").
ALL_ZERO = "all_zero"
ALL_ONE = "all_one"

StandbyStates = Union[str, Dict[str, int], Sequence[Dict[str, int]]]


def standby_net_states(circuit: Circuit, standby: StandbyStates,
                       library: Optional[Library] = None, *,
                       context=None) -> Dict[str, int]:
    """Resolve a standby specification into a net -> bit map.

    ``ALL_ZERO`` / ``ALL_ONE`` force every net (the bounding cases); a
    dict of primary-input bits is logic-simulated through the circuit.
    Note the bounding cases are additionally special-cased at the device
    level inside :meth:`AgingAnalyzer.gate_shifts`.  With ``context=``
    the simulation is memoized per distinct vector.
    """
    if context is not None:
        return dict(context.standby_states(standby))
    if standby == ALL_ZERO:
        return {net: 0 for net in circuit.nets}
    if standby == ALL_ONE:
        return {net: 1 for net in circuit.nets}
    if isinstance(standby, str):
        raise ValueError(f"unknown standby setting {standby!r}")
    return evaluate(circuit, standby, library)


class CompiledShiftPlan:
    """Flattened device-axis layout for the vectorized gate-shift kernel.

    Lowers one ``(circuit, library, stress-duty table)`` triple into flat
    per-PMOS arrays once, so every subsequent ``gate_shifts`` query —
    any lifetime, profile, or standby spec — is a handful of NumPy calls
    instead of a per-device Python loop.  Devices are laid out in
    ``circuit.gates`` iteration order, ``cell.pmos_devices()`` order
    within a gate (the exact order the scalar loop visits); gates with
    no PMOS devices get one stress-free sentinel slot so the segmented
    max below never sees an empty segment.

    The :class:`~repro.context.AnalysisContext` memoizes one plan per
    PI-probability setting under its ``aging_plan`` artifact.
    """

    def __init__(self, circuit: Circuit, library: Library,
                 duty_table: Dict[str, Dict[str, float]]):
        with obs.span("aging.plan.lower", circuit=circuit.name):
            self.circuit = circuit
            self.library = library
            self.gate_names: List[str] = []
            #: gate name -> {PMOS device name -> flat slot}.
            self.slots: Dict[str, Dict[str, int]] = {}
            duties: List[float] = []
            starts: List[int] = []
            sentinels: List[int] = []
            for gate in circuit.gates.values():
                cell = library.get(gate.cell)
                self.gate_names.append(gate.name)
                starts.append(len(duties))
                table = duty_table[gate.name]
                gate_slots: Dict[str, int] = {}
                for mosfet in cell.pmos_devices():
                    gate_slots[mosfet.name] = len(duties)
                    duties.append(table.get(mosfet.name, 0.0))
                if not gate_slots:
                    sentinels.append(len(duties))
                    duties.append(0.0)
                self.slots[gate.name] = gate_slots
            self.duties = np.asarray(duties, dtype=float)
            self.starts = np.asarray(starts, dtype=np.intp)
            self._sentinels = np.asarray(sentinels, dtype=np.intp)
            self.n_devices = len(duties)
            obs.annotate(devices=self.n_devices)
        obs.count("aging.plan.lowerings")

    def export_state(self) -> Dict[str, object]:
        """The flattened device layout as plain arrays/dicts (picklable)."""
        return {
            "gate_names": list(self.gate_names),
            "slots": {g: dict(s) for g, s in self.slots.items()},
            "duties": np.asarray(self.duties),
            "starts": np.asarray(self.starts),
            "sentinels": np.asarray(self._sentinels),
            "n_devices": self.n_devices,
        }

    @classmethod
    def from_state(cls, circuit: Circuit, library: Library,
                   state) -> "CompiledShiftPlan":
        """Hydrate a plan (duties included) without the lowering walk."""
        self = cls.__new__(cls)
        self.circuit = circuit
        self.library = library
        names = [g.name for g in circuit.gates.values()]
        if list(state["gate_names"]) != names:
            raise ValueError("aging-plan state does not match the circuit "
                             "(gate order differs)")
        self.gate_names = list(state["gate_names"])
        self.slots = {g: {n: int(i) for n, i in s.items()}
                      for g, s in state["slots"].items()}
        self.duties = np.asarray(state["duties"], dtype=float)
        self.starts = np.asarray(state["starts"], dtype=np.intp)
        self._sentinels = np.asarray(state["sentinels"], dtype=np.intp)
        self.n_devices = int(state["n_devices"])
        obs.count("aging.plan.hydrations")
        return self

    def uniform_fractions(self, value: float) -> np.ndarray:
        """Standby stress fractions for the ALL_ZERO / ALL_ONE bounds."""
        frac = np.full(self.n_devices, value)
        frac[self._sentinels] = 0.0
        return frac

    def accumulate_fractions(self, state_maps: Sequence[Dict[str, int]],
                             stressed_lookup) -> np.ndarray:
        """Per-device standby stress fraction over rotated standby maps.

        ``stressed_lookup(cell_name, bits)`` returns the stressed PMOS
        names (the context's memoized table, or a direct
        :func:`stress_under_vector` walk).  Mirrors the scalar loop's
        count-then-divide arithmetic so the fractions are bit-equal.
        """
        frac = np.zeros(self.n_devices)
        for states in state_maps:
            for gate in self.circuit.gates.values():
                bits = tuple(states[net] for net in gate.inputs)
                slots = self.slots[gate.name]
                for name in stressed_lookup(gate.cell, bits):
                    slot = slots.get(name)
                    if slot is not None:
                        frac[slot] += 1.0
        frac /= len(state_maps)
        return frac

    def worst_per_gate(self, dv: np.ndarray) -> np.ndarray:
        """Worst-PMOS reduction (Sec. 3.3), floored at the scalar 0.0."""
        if not self.gate_names:
            return np.empty(0)
        return np.maximum(np.maximum.reduceat(dv, self.starts), 0.0)


@dataclass(frozen=True)
class AgingAnalyzer:
    """Computes per-gate NBTI shifts and aged timing for a circuit.

    Attributes:
        library: cell library (defaults to shared PTM90).
        model: the temperature-aware NBTI model.
    """

    library: Optional[Library] = None
    model: NbtiModel = DEFAULT_MODEL

    def _lib(self) -> Library:
        return self.library or default_library()

    def gate_shifts(self, circuit: Circuit, profile: OperatingProfile,
                    t_total: float, *,
                    standby: StandbyStates = ALL_ZERO,
                    active_probs: Optional[Dict[str, float]] = None,
                    context=None,
                    engine: str = "auto") -> Dict[str, float]:
        """Worst-PMOS dVth (volts) per gate after ``t_total`` seconds.

        Args:
            standby: standby net states — a sentinel, one PI vector
                (see :func:`standby_net_states`), or a *sequence* of PI
                vectors rotated across standby periods (Abella-style MLV
                alternation [23]: each device's standby stress becomes
                the fraction of vectors that stress it).
            active_probs: P(net = 1) during active mode; computed from
                SP = 0.5 inputs when omitted (the paper's setting).
            context: an :class:`~repro.context.AnalysisContext` whose
                memoized probabilities, stress-duty tables, standby
                simulations, per-cell standby-stress sets, and flattened
                shift plan are reused.  Ignored for the probability side
                when an explicit ``active_probs`` is supplied.
            engine: ``"auto"``/``"compiled"`` evaluate every PMOS in one
                :class:`~repro.core.aging_compiled.CompiledNbtiModel`
                call over a :class:`CompiledShiftPlan`; ``"scalar"``
                keeps the historic per-device Python loop, which is the
                bit-identical oracle.
        """
        if engine not in ("auto", "compiled", "scalar"):
            raise ValueError(f"engine must be 'auto', 'compiled' or "
                             f"'scalar', got {engine!r}")
        obs.count("aging.gate_shift_queries", label=engine)
        with obs.span("aging.gate_shifts", circuit=circuit.name,
                      engine=engine):
            library = self._lib()
            if context is not None and context.library is not library:
                # A context bound to a different technology must not feed
                # this analyzer: fall back to direct computation.
                context = None
            vth0 = library.tech.pmos.vth0
            duty_table: Optional[Dict[str, Dict[str, float]]] = None
            if context is not None and active_probs is None:
                duty_table = context.stress_duties()
            elif active_probs is None:
                active_probs = propagate_probabilities(circuit,
                                                       library=library)
            force_all = None
            state_maps: list = []
            if isinstance(standby, str):
                if standby == ALL_ZERO:
                    force_all = True    # every PMOS driven 0 -> stressed
                elif standby == ALL_ONE:
                    force_all = False   # every PMOS driven 1 -> relaxing
                else:
                    raise ValueError(f"unknown standby setting {standby!r}")
            elif isinstance(standby, dict):
                state_maps = [standby_net_states(circuit, standby, library,
                                                 context=context)]
            else:
                if not standby:
                    raise ValueError("empty standby vector sequence")
                state_maps = [standby_net_states(circuit, v, library,
                                                 context=context)
                              for v in standby]
            if engine != "scalar":
                return self._compiled_shifts(circuit, profile, t_total,
                                             vth0, duty_table, active_probs,
                                             force_all, state_maps, context)
            shifts: Dict[str, float] = {}
            for gate in circuit.gates.values():
                cell = library.get(gate.cell)
                if duty_table is not None:
                    duties = duty_table[gate.name]
                else:
                    pin_probs = {pin: active_probs[net]
                                 for pin, net in zip(cell.inputs,
                                                     gate.inputs)}
                    duties = stress_probabilities_for_cell(cell, pin_probs)
                fractions: Dict[str, float] = {}
                if force_all is None:
                    for states in state_maps:
                        standby_bits = tuple(states[net]
                                             for net in gate.inputs)
                        if context is not None:
                            stressed = context.standby_stress(gate.cell,
                                                              standby_bits)
                        else:
                            stressed = stress_under_vector(cell,
                                                           standby_bits)
                        for name in stressed:
                            fractions[name] = fractions.get(name, 0.0) + 1.0
                    for name in fractions:
                        fractions[name] /= len(state_maps)
                elif force_all:
                    fractions = {m.name: 1.0 for m in cell.pmos_devices()}
                worst = 0.0
                for mosfet in cell.pmos_devices():
                    device = DeviceStress(
                        active_stress_duty=duties.get(mosfet.name, 0.0),
                        standby_stressed=fractions.get(mosfet.name, 0.0),
                    )
                    dv = self.model.delta_vth(profile, device, t_total,
                                              vth0)
                    worst = max(worst, dv)
                shifts[gate.name] = worst
            return shifts

    def _compiled_shifts(self, circuit, profile, t_total, vth0, duty_table,
                         active_probs, force_all, state_maps, context
                         ) -> Dict[str, float]:
        """The vectorized gate_shifts body (one kernel call per query)."""
        library = self._lib()
        if context is not None and duty_table is not None:
            plan = context.aging_plan()
        else:
            if duty_table is None:
                duty_table = {}
                for gate in circuit.gates.values():
                    cell = library.get(gate.cell)
                    pin_probs = {pin: active_probs[net]
                                 for pin, net in zip(cell.inputs,
                                                     gate.inputs)}
                    duty_table[gate.name] = stress_probabilities_for_cell(
                        cell, pin_probs)
            plan = CompiledShiftPlan(circuit, library, duty_table)
        if force_all is True:
            fractions = plan.uniform_fractions(1.0)
        elif force_all is False:
            fractions = plan.uniform_fractions(0.0)
        else:
            if context is not None:
                lookup = context.standby_stress
            else:
                def lookup(cell_name, bits):
                    return stress_under_vector(library.get(cell_name), bits)
            fractions = plan.accumulate_fractions(state_maps, lookup)
        kernel = CompiledNbtiModel(self.model)
        dv = kernel.delta_vth(profile, plan.duties, fractions, t_total, vth0)
        worst = plan.worst_per_gate(dv)
        return {name: float(w) for name, w in zip(plan.gate_names, worst)}

    def aged_timing(self, circuit: Circuit, profile: OperatingProfile,
                    t_total: float, *,
                    standby: StandbyStates = ALL_ZERO,
                    active_probs: Optional[Dict[str, float]] = None,
                    supply_drop: float = 0.0,
                    loads: Optional[Dict[str, float]] = None,
                    context=None) -> "AgedTimingResult":
        """Fresh + aged STA in one call.

        With ``context=`` the gate loads, the fresh STA (per rail drop),
        and the per-gate shifts (per standby spec) all come from the
        shared memo; only the aged arrival propagation runs per call.
        """
        library = self._lib()
        if context is not None and context.library is not library:
            context = None
        if context is not None:
            if loads is None:
                loads = context.gate_loads()
            fresh = context.fresh_timing(supply_drop)
            if active_probs is None and context.model == self.model:
                shifts = context.gate_shifts(profile, t_total,
                                             standby=standby)
            else:
                shifts = self.gate_shifts(circuit, profile, t_total,
                                          standby=standby,
                                          active_probs=active_probs,
                                          context=context)
        else:
            loads = loads if loads is not None else gate_loads(circuit,
                                                               library)
            fresh = analyze(circuit, library, loads=loads,
                            supply_drop=supply_drop)
            shifts = self.gate_shifts(circuit, profile, t_total,
                                      standby=standby,
                                      active_probs=active_probs)
        aged = analyze(circuit, library, delta_vth=shifts, loads=loads,
                       supply_drop=supply_drop, context=context)
        return AgedTimingResult(circuit=circuit, fresh=fresh, aged=aged,
                                shifts=shifts)

    def aged_delays(self, circuit: Circuit, profile: OperatingProfile,
                    t_total: float, *,
                    standby: StandbyStates = ALL_ZERO,
                    active_probs: Optional[Dict[str, float]] = None,
                    supply_drop: float = 0.0,
                    context=None) -> "AgedDelaySummary":
        """Fresh/aged circuit delay and worst shift, array path only.

        The scale-friendly sibling of :meth:`aged_timing`: the same
        floats (:class:`~repro.sta.compiled.TimingSurface` reads are
        bit-identical to the assembled :class:`TimingResult` fields),
        but no per-net dict is ever built — both STA passes stay on
        ``(rows,)`` ndarrays, so a 10^5-gate circuit summarizes in
        kernel time.  Use :meth:`aged_timing` when per-net arrivals or
        slacks are actually needed.
        """
        from repro.sta.compiled import CompiledTiming

        library = self._lib()
        if context is not None and context.library is not library:
            context = None
        with obs.span("aging.aged_delays", circuit=circuit.name):
            if (context is not None and active_probs is None
                    and context.model == self.model):
                ct = context.compiled_timing()
                shift_vec = context.gate_shift_vector(profile, t_total,
                                                      standby=standby)
            else:
                ct = CompiledTiming(circuit, library)
                shifts = self.gate_shifts(circuit, profile, t_total,
                                          standby=standby,
                                          active_probs=active_probs,
                                          context=context)
                shift_vec = ct.gate_vector(shifts, 0.0)
            fresh = ct.surface(supply_drop=supply_drop).circuit_delay
            aged = ct.surface(delta_vth=shift_vec,
                              supply_drop=supply_drop).circuit_delay
            max_shift = float(shift_vec.max()) if ct.n_gates else 0.0
        return AgedDelaySummary(circuit_name=circuit.name,
                                fresh_delay=fresh, aged_delay=aged,
                                max_shift=max_shift)


@dataclass(frozen=True)
class AgedTimingResult:
    """Fresh vs aged timing of one circuit under one scenario."""

    circuit: Circuit
    fresh: TimingResult
    aged: TimingResult
    shifts: Dict[str, float]

    @property
    def fresh_delay(self) -> float:
        return self.fresh.circuit_delay

    @property
    def aged_delay(self) -> float:
        return self.aged.circuit_delay

    @property
    def delay_increase(self) -> float:
        """Absolute delay degradation (seconds)."""
        return self.aged.circuit_delay - self.fresh.circuit_delay

    @property
    def relative_degradation(self) -> float:
        """The paper's headline metric: dDelay / Delay (fractional)."""
        return self.delay_increase / self.fresh.circuit_delay

    @property
    def max_shift(self) -> float:
        """Largest per-gate dVth (volts)."""
        return max(self.shifts.values()) if self.shifts else 0.0


@dataclass(frozen=True)
class AgedDelaySummary:
    """Scalar fresh-vs-aged summary with no per-net state.

    Field-for-field equal to the matching :class:`AgedTimingResult`
    accessors (``fresh_delay`` / ``aged_delay`` / ``delay_increase`` /
    ``relative_degradation`` / ``max_shift``) — the value set is the
    same, only the per-net dicts behind them are never materialized.
    """

    circuit_name: str
    fresh_delay: float
    aged_delay: float
    max_shift: float

    @property
    def delay_increase(self) -> float:
        """Absolute delay degradation (seconds)."""
        return self.aged_delay - self.fresh_delay

    @property
    def relative_degradation(self) -> float:
        """The paper's headline metric: dDelay / Delay (fractional)."""
        return self.delay_increase / self.fresh_delay
