"""Compiled STA kernel: batched NumPy arrival propagation (perf tentpole).

:func:`repro.sta.analysis.analyze` walks the circuit gate by gate in
Python, calling :meth:`repro.cells.cell.Cell.delay` (a multi-stage
alpha-power evaluation) twice per gate per scenario.  Every *timing*
consumer — the eq. (22) aged-delay sweeps, the sleep-transistor sizing
loops, the Fig. 12 Monte-Carlo study — repeats that walk once per
scenario over identical topology.

:class:`CompiledTiming` lowers one ``(Circuit, Library, loads)`` triple
into flat NumPy arrays exactly once:

* **node/row layout** — primary inputs get node indices ``0..n_pi-1``,
  gates get ``n_pi + topo_position``; each node owns two *rows* in the
  arrival/required arrays, ``2*node + edge`` with rise = 0, fall = 1;
* **fanin CSR** — for every gate-edge segment ``s = 2*topo_i + edge``,
  the candidate predecessor rows derived from
  :func:`repro.sta.analysis._input_edges_for`, concatenated into
  ``fanin_idx`` with ``seg_ptr`` offsets;
* **levelized schedule** — segments grouped by logic level so each
  level is one gather + ``np.maximum.reduceat`` + add over a **batch
  axis of scenarios**: one call times an entire year-series, RAS sweep,
  or a (gates x samples) Monte-Carlo ΔVth matrix;
* **base-delay memo** — the expensive per-gate ``cell.delay`` results,
  keyed by ``(supply_drop, temperature)`` so lifetime sweeps over a
  changing virtual-rail drop recompute the Python part once per drop.

Exactness contract: every float produced here is **bit-identical** to
the scalar ``analyze()`` path (``aging_mode="per_gate"``).  ``max`` is
exact and associative, each arrival is one ``max + add`` of the same
operands in the same order, and the aging factor is computed as
``1.0 + (alpha * dVth) / (Vdd - Vth0)`` — the literal expression of
eq. (22) in ``analyze()``.  The scalar path is retained as the oracle;
``tests/test_sta_compiled.py`` pins the equivalence across benches,
random circuits, and mutation sequences.

:class:`IncrementalTimer` adds the single-gate-mutation mode used by
the sizing / dual-Vth / FGSTI loops: after a gate's delay changes, only
its downstream fanout cone is re-propagated (level-ordered worklist
with exact-equality pruning), and — under a fixed timing constraint —
only the affected backward cone of required times.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.cells.library import Library
from repro.netlist.circuit import Circuit
from repro.sta.analysis import (
    _EDGES,
    _input_edges_for,
    PO_CAP,
    WIRE_CAP,
    TimingResult,
    _compute_gate_loads,
)

_EDGE_INDEX = {"rise": 0, "fall": 1}

#: Accepted per-gate scenario inputs: nothing, a name->value mapping, a
#: (n_gates,) vector in topological order, or a (n_gates, n_scenarios)
#: batch matrix.
GateValues = Union[None, Mapping[str, float], np.ndarray, Sequence[float]]


class _Level:
    """One levelized forward step (all gate-edges of one logic level)."""

    __slots__ = ("rows", "segs", "fanin", "starts", "counts")

    def __init__(self, rows: np.ndarray, segs: np.ndarray,
                 fanin: np.ndarray, starts: np.ndarray, counts: np.ndarray):
        self.rows = rows        # arrival rows written by this level
        self.segs = segs        # segment ids (delay gather indices)
        self.fanin = fanin      # concatenated candidate rows (gather)
        self.starts = starts    # reduceat starts into `fanin`
        self.counts = counts    # candidates per segment


class CompiledTiming:
    """A (Circuit, Library, loads) triple lowered to flat NumPy arrays.

    Args:
        circuit: the netlist (structurally frozen while this artifact
            lives; rebuild after :meth:`Circuit.replace_gate` — an
            :class:`~repro.context.AnalysisContext` does this through
            its ``compiled_timing`` cache key).
        library: technology binding (defaults to the shared PTM90
            library).
        loads: per-gate output loads; computed from ``wire_cap`` /
            ``po_cap`` when omitted.

    The compile step performs one topological walk; per-gate base
    delays (the Python-expensive part) are computed lazily per
    ``(supply_drop, temperature)`` key by :meth:`base_delays`.
    """

    def __init__(self, circuit: Circuit, library: Optional[Library] = None,
                 *, loads: Optional[Mapping[str, float]] = None,
                 wire_cap: float = WIRE_CAP, po_cap: float = PO_CAP):
        t0 = perf_counter()
        with obs.span("sta.compiled.lower", circuit=circuit.name):
            self._lower(circuit, library, loads, wire_cap, po_cap)
            obs.annotate(gates=self.n_gates,
                         candidates=int(self.fanin_idx.size))
        obs.count("sta.compiled.lowerings")
        obs.observe("sta.compiled.lower_seconds", perf_counter() - t0)

    def _lower(self, circuit: Circuit, library: Optional[Library],
               loads: Optional[Mapping[str, float]],
               wire_cap: float, po_cap: float) -> None:
        """The one-time topological lowering walk (spanned by __init__)."""
        self._bind(circuit, library, loads, wire_cap, po_cap)
        self._build_fanin_csr()
        self._build_schedule()

    def _bind(self, circuit: Circuit, library: Optional[Library],
              loads: Optional[Mapping[str, float]],
              wire_cap: float, po_cap: float) -> None:
        """Cheap identity/layout binding (no cell evaluation)."""
        from repro.sim.logic import default_library

        self.circuit = circuit
        self.library = library or default_library()
        if loads is None:
            loads = _compute_gate_loads(circuit, self.library, wire_cap, po_cap)
        self.loads: Dict[str, float] = dict(loads)

        tech = self.library.tech
        self._alpha = tech.alpha
        self._overdrive = tech.vdd - tech.pmos.vth0

        self.gate_names: List[str] = circuit.topological_order()
        self.n_gates = len(self.gate_names)
        self.n_pi = len(circuit.primary_inputs)
        self.gate_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.gate_names)}
        self.node_index: Dict[str, int] = {
            pi: i for i, pi in enumerate(circuit.primary_inputs)}
        for i, name in enumerate(self.gate_names):
            self.node_index[name] = self.n_pi + i
        self.n_rows = 2 * (self.n_pi + self.n_gates)

        # Cell-class groups for the vectorized base-delay compile: every
        # gate sharing a cell evaluates the alpha-power closed form once
        # per (cell, edge) and broadcasts over its load vector.
        self._loads_vec = np.asarray(
            [self.loads[n] for n in self.gate_names], dtype=np.float64)
        groups: Dict[str, List[int]] = {}
        for i, name in enumerate(self.gate_names):
            groups.setdefault(circuit.gates[name].cell, []).append(i)
        self._cell_groups: List[Tuple[str, np.ndarray]] = [
            (cell, np.asarray(idxs, dtype=np.int64))
            for cell, idxs in groups.items()]

    def _build_fanin_csr(self) -> None:
        """Fanin CSR over gate-edge segments (s = 2*topo_i + edge)."""
        circuit = self.circuit
        fanin: List[int] = []
        ptr: List[int] = [0]
        for name in self.gate_names:
            gate = circuit.gates[name]
            for out_edge in _EDGES:
                for net in gate.inputs:
                    node = self.node_index[net]
                    for in_edge in _input_edges_for(gate.cell, out_edge):
                        fanin.append(2 * node + _EDGE_INDEX[in_edge])
                ptr.append(len(fanin))
        self.fanin_idx = np.asarray(fanin, dtype=np.int64)
        self.seg_ptr = np.asarray(ptr, dtype=np.int64)
        self._seg_counts = np.diff(self.seg_ptr)

    def _build_schedule(self) -> None:
        """Derived traversal structures (recomputable from the CSR)."""
        circuit = self.circuit
        # Levelized schedule: all inputs of a level-L gate sit strictly
        # below L, so one gather/reduceat per level is a valid order.
        levels_map = circuit.levels()
        by_level: Dict[int, List[int]] = {}
        for i, name in enumerate(self.gate_names):
            by_level.setdefault(levels_map[name], []).append(i)
        self._levels: List[_Level] = []
        for level in sorted(by_level):
            gate_ids = by_level[level]
            segs = np.asarray([2 * i + e for i in gate_ids for e in (0, 1)],
                              dtype=np.int64)
            rows = np.asarray(
                [2 * (self.n_pi + i) + e for i in gate_ids for e in (0, 1)],
                dtype=np.int64)
            pieces = [self.fanin_idx[self.seg_ptr[s]:self.seg_ptr[s + 1]]
                      for s in segs]
            counts = np.asarray([len(p) for p in pieces], dtype=np.int64)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            self._levels.append(_Level(rows, segs,
                                       np.concatenate(pieces) if pieces
                                       else np.empty(0, dtype=np.int64),
                                       starts.astype(np.int64), counts))

        # Primary-output rows in the scalar scan order (duplicates kept:
        # the scalar loop iterates primary_outputs as declared).
        self.po_order: List[Tuple[str, str]] = [
            (po, edge) for po in circuit.primary_outputs for edge in _EDGES]
        self.po_rows = np.asarray(
            [2 * self.node_index[po] + _EDGE_INDEX[edge]
             for po, edge in self.po_order], dtype=np.int64)

        # Plain-Python mirrors of the hot incremental-mode structures
        # (fanin lists, fanout adjacency, node levels, PO rows) are
        # built lazily on first incremental/critical-walk use — see
        # :meth:`_list_mirrors`.  The batch evaluation path (lower +
        # propagate/delays_batch/surface) never materializes them, so
        # its footprint stays a few ndarrays even at 10^5..10^6 gates.
        self._mirrors: Optional[Tuple[List[List[int]], List[int],
                                      List[int], List[List[int]]]] = None

        # Reverse CSR (row -> consumer segments), built lazily for the
        # incremental required-time backward cone.
        self._rev: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._base_delays: Dict[Tuple[float, float], np.ndarray] = {}

    def _list_mirrors(self) -> Tuple[List[List[int]], List[int],
                                     List[int], List[List[int]]]:
        """Python-list mirrors for the incremental cone walks.

        The cone walk touches a handful of rows per move, where list
        indexing + float arithmetic beat per-element ufunc dispatch by
        an order of magnitude (same rationale as the big-int packed
        simulator; see docs/PERFORMANCE.md).  These are O(gates) Python
        containers, so they are built on demand (counted by the
        ``sta.compiled.mirror_builds`` metric): only flows that actually
        re-time mutation cones pay for them.
        """
        if self._mirrors is None:
            with obs.span("sta.compiled.mirrors",
                          circuit=self.circuit.name):
                fanin_lists = [
                    [int(r) for r in
                     self.fanin_idx[self.seg_ptr[s]:self.seg_ptr[s + 1]]]
                    for s in range(2 * self.n_gates)]
                po_row_list = [int(r) for r in self.po_rows]
                levels_map = self.circuit.levels()
                node_levels = [0] * (self.n_pi + self.n_gates)
                for i, name in enumerate(self.gate_names):
                    node_levels[self.n_pi + i] = levels_map[name]
                fanout = self.circuit.fanout()
                fanout_nodes: List[List[int]] = [
                    [] for _ in range(self.n_pi + self.n_gates)]
                for net, consumers in fanout.items():
                    fanout_nodes[self.node_index[net]] = [
                        self.node_index[c] for c in consumers]
                self._mirrors = (fanin_lists, po_row_list,
                                 node_levels, fanout_nodes)
            obs.count("sta.compiled.mirror_builds")
        return self._mirrors

    @property
    def fanin_lists(self) -> List[List[int]]:
        """Per-segment candidate rows as Python lists (lazy mirror)."""
        return self._list_mirrors()[0]

    @property
    def po_row_list(self) -> List[int]:
        """Primary-output rows as a Python list (lazy mirror)."""
        return self._list_mirrors()[1]

    @property
    def node_levels(self) -> List[int]:
        """Logic level per node as a Python list (lazy mirror)."""
        return self._list_mirrors()[2]

    @property
    def _fanout_nodes(self) -> List[List[int]]:
        """Node-granular fanout adjacency (lazy mirror)."""
        return self._list_mirrors()[3]

    # -- snapshot / hydrate ------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """The expensive lowering products as plain ndarrays/lists.

        Everything here is picklable and ``.npz``-serializable: the
        fanin CSR (the topological cell walk), the per-gate loads, and
        every memoized base-delay vector.  The memo ships as one
        stacked ``(n_keys, 2 * n_gates)`` ``base_delay_matrix`` (row
        ``k`` is the vector of ``base_delay_keys[k]``) so the artifact
        store serializes a single npz member regardless of how many
        (drop, temperature) keys were warmed.  Cheap derived structures
        (levels, fanout adjacency, Python mirrors) are *not* exported —
        :meth:`from_state` recomputes them from the CSR in microseconds.
        """
        keys = sorted(self._base_delays)
        if keys:
            matrix = np.stack([self._base_delays[k] for k in keys])
        else:
            matrix = np.empty((0, 2 * self.n_gates), dtype=np.float64)
        return {
            "gate_names": list(self.gate_names),
            "n_pi": self.n_pi,
            "load_names": list(self.loads),
            "load_values": np.asarray(
                [self.loads[n] for n in self.loads], dtype=np.float64),
            "fanin_idx": self.fanin_idx,
            "seg_ptr": self.seg_ptr,
            "base_delay_keys": [list(k) for k in keys],
            "base_delay_matrix": matrix,
        }

    @classmethod
    def from_state(cls, circuit: Circuit, library: Optional[Library],
                   state: Mapping[str, Any]) -> "CompiledTiming":
        """Hydrate a warm instance from :meth:`export_state` output.

        Skips the topological cell walk and every exported base-delay
        build; raises :class:`ValueError` when the state's gate order
        does not match ``circuit`` (stale or foreign state).
        """
        t0 = perf_counter()
        self = cls.__new__(cls)
        with obs.span("sta.compiled.hydrate", circuit=circuit.name):
            loads = dict(zip(state["load_names"],
                             (float(v) for v in state["load_values"])))
            self._bind(circuit, library, loads, WIRE_CAP, PO_CAP)
            if list(state["gate_names"]) != self.gate_names:
                raise ValueError(
                    "compiled-timing state does not match the circuit "
                    "(gate order differs)")
            self.fanin_idx = np.asarray(state["fanin_idx"], dtype=np.int64)
            self.seg_ptr = np.asarray(state["seg_ptr"], dtype=np.int64)
            self._seg_counts = np.diff(self.seg_ptr)
            self._build_schedule()
            matrix = np.asarray(state["base_delay_matrix"],
                                dtype=np.float64)
            for key, arr in zip(state["base_delay_keys"], matrix):
                cached = np.array(arr, dtype=np.float64)
                cached.setflags(write=False)
                self._base_delays[(float(key[0]), float(key[1]))] = cached
        obs.count("sta.compiled.hydrations")
        obs.observe("sta.compiled.hydrate_seconds", perf_counter() - t0)
        return self

    # -- delay vectors -----------------------------------------------------

    def base_delays(self, supply_drop: float = 0.0,
                    temperature: float = 300.0) -> np.ndarray:
        """Fresh per-gate-edge delays, shape ``(2 * n_gates,)``.

        Row ``2*i`` is the rise delay of topo-gate ``i``, ``2*i + 1``
        the fall delay — exactly ``cell.delay(tech, load, edge,
        supply_drop=..., temperature=...)``.  Memoized per
        ``(supply_drop, temperature)``; treat the array as read-only.

        The compile is vectorized over the gate axis: the cell delay is
        exactly affine in the load (see
        :meth:`~repro.cells.cell.Cell.delay_terms`), so each
        ``(cell class, edge)`` evaluates the closed form once and
        broadcasts ``prefix + load * Vdd / denom`` over its load vector
        — bit-identical to the historic ``2 * n_gates`` scalar
        ``cell.delay`` loop, which :meth:`_base_delays_oracle` retains
        as the differential-test oracle.
        """
        key = (float(supply_drop), float(temperature))
        cached = self._base_delays.get(key)
        if cached is None:
            t0 = perf_counter()
            with obs.span("sta.compiled.base_delays",
                          supply_drop=key[0], temperature=key[1]):
                tech = self.library.tech
                cached = np.empty(2 * self.n_gates, dtype=np.float64)
                if self.n_gates and float(self._loads_vec.min()) < 0:
                    raise ValueError("load capacitance must be non-negative")
                for cell_name, idxs in self._cell_groups:
                    cell = self.library.get(cell_name)
                    group_loads = self._loads_vec[idxs]
                    for e, edge in enumerate(_EDGES):
                        prefix, denom = cell.delay_terms(
                            tech, edge, supply_drop=supply_drop,
                            temperature=temperature)
                        cached[2 * idxs + e] = (
                            prefix + (group_loads * tech.vdd) / denom)
                cached.setflags(write=False)
                self._base_delays[key] = cached
            obs.count("sta.compiled.base_delay_builds")
            obs.observe("sta.compiled.base_delay_seconds",
                        perf_counter() - t0)
        return cached

    def _base_delays_oracle(self, supply_drop: float = 0.0,
                            temperature: float = 300.0) -> np.ndarray:
        """The historic serial base-delay compile (one ``cell.delay``
        call per gate edge), kept as the oracle for the vectorized
        :meth:`base_delays`; not memoized."""
        tech = self.library.tech
        out = np.empty(2 * self.n_gates, dtype=np.float64)
        for i, name in enumerate(self.gate_names):
            cell = self.library.get(self.circuit.gates[name].cell)
            load = self.loads[name]
            for e, edge in enumerate(_EDGES):
                out[2 * i + e] = cell.delay(
                    tech, load, edge, supply_drop=supply_drop,
                    temperature=temperature)
        return out

    def gate_vector(self, values: GateValues, default: float = 0.0,
                    *, batch: bool = True) -> Optional[np.ndarray]:
        """Normalize a per-gate scenario input to an array (or ``None``).

        Mappings become a ``(n_gates,)`` vector in topological order
        (unknown names ignored, matching the scalar path's ``.get``).
        Arrays pass through as float64, ``(n_gates,)`` or — with
        ``batch`` — ``(n_gates, n_scenarios)``.
        """
        if values is None:
            return None
        if isinstance(values, Mapping):
            vec = np.full(self.n_gates, default, dtype=np.float64)
            index = self.gate_index
            for name, value in values.items():
                i = index.get(name)
                if i is not None:
                    vec[i] = value
            return vec
        vec = np.asarray(values, dtype=np.float64)
        if vec.ndim == 1 and vec.shape[0] == self.n_gates:
            return vec
        if batch and vec.ndim == 2 and vec.shape[0] == self.n_gates:
            return vec
        raise ValueError(
            f"expected ({self.n_gates},)"
            + (f" or ({self.n_gates}, B)" if batch else "")
            + f" gate values, got shape {vec.shape}")

    def aging_factors(self, delta_vth: GateValues,
                      delay_factors: GateValues = None
                      ) -> Optional[np.ndarray]:
        """Per-gate delay multipliers: eq. (22) x optional extra factor.

        ``factor = delay_factors * (1 + alpha * dVth / (Vdd - Vth0))``,
        evaluated in exactly the scalar operand order so results stay
        bit-identical to ``analyze()`` / the legacy ``FastAgedTimer``.
        """
        dvth = self.gate_vector(delta_vth, 0.0)
        extra = self.gate_vector(delay_factors, 1.0)
        factor: Optional[np.ndarray] = None
        if dvth is not None:
            factor = 1.0 + (self._alpha * dvth) / self._overdrive
        if extra is not None:
            factor = extra if factor is None else extra * factor
        return factor

    def delay_vector(self, delta_vth: GateValues = None,
                     delay_factors: GateValues = None, *,
                     supply_drop: Union[float, np.ndarray, Sequence[float]]
                     = 0.0,
                     temperature: float = 300.0) -> np.ndarray:
        """Aged per-gate-edge delays: ``(2G,)`` or ``(2G, B)`` batched.

        ``supply_drop`` may be a per-scenario ``(B,)`` array: column
        ``k`` then uses the memoized base delays of ``supply_drop[k]``,
        so each column is bit-identical to the scalar call with that
        drop (the sleep-transistor lifetime grid batches this way).
        """
        if np.ndim(supply_drop) == 0:
            base = self.base_delays(supply_drop, temperature)
        else:
            base = np.stack([self.base_delays(float(d), temperature)
                             for d in np.asarray(supply_drop)], axis=1)
        factor = self.aging_factors(delta_vth, delay_factors)
        if factor is None:
            return base.copy()
        factor_edges = np.repeat(factor, 2, axis=0)
        if factor_edges.ndim == base.ndim:
            if base.ndim == 2 and factor_edges.shape[1] != base.shape[1]:
                raise ValueError(
                    f"batched supply_drop ({base.shape[1]}) and gate values "
                    f"({factor_edges.shape[1]}) disagree on batch size")
            return base * factor_edges
        if base.ndim == 2:  # 1-D factor against per-scenario drops
            return base * factor_edges[:, None]
        return base[:, None] * factor_edges

    # -- forward / backward kernels ----------------------------------------

    def propagate(self, delays: np.ndarray) -> np.ndarray:
        """Arrival rows for a delay vector; batched along the last axis.

        Returns ``(n_rows,)`` for a ``(2G,)`` input or ``(n_rows, B)``
        for ``(2G, B)``.  Primary-input rows are 0.0 (the scalar
        convention).
        """
        if delays.ndim == 1:
            arr = np.zeros(self.n_rows, dtype=np.float64)
        else:
            arr = np.zeros((self.n_rows, delays.shape[1]), dtype=np.float64)
        for lvl in self._levels:
            cand = arr[lvl.fanin]
            worst = np.maximum.reduceat(cand, lvl.starts, axis=0)
            arr[lvl.rows] = worst + delays[lvl.segs]
        return arr

    def required(self, arrivals: np.ndarray, delays: np.ndarray,
                 required_time: Union[float, np.ndarray]) -> np.ndarray:
        """Required-time rows via the vectorized backward pass.

        ``required_time`` may be a scalar or a per-scenario ``(B,)``
        array.  Rows unreachable from any primary output stay ``+inf``
        (the scalar convention; slack assembly special-cases them).
        """
        req = np.full_like(arrivals, np.inf)
        req[self.po_rows] = required_time
        for lvl in reversed(self._levels):
            contrib = np.repeat(req[lvl.rows] - delays[lvl.segs],
                                lvl.counts, axis=0)
            np.minimum.at(req, lvl.fanin, contrib)
        return req

    def circuit_delays(self, arrivals: np.ndarray
                       ) -> Union[float, np.ndarray]:
        """Worst primary-output arrival (>= 0.0, scalar convention)."""
        if self.po_rows.size == 0:
            return (0.0 if arrivals.ndim == 1
                    else np.zeros(arrivals.shape[1], dtype=np.float64))
        worst = np.max(arrivals[self.po_rows], axis=0)
        worst = np.maximum(worst, 0.0)
        return float(worst) if arrivals.ndim == 1 else worst

    def _critical_endpoint(self, arr: np.ndarray) -> Tuple[float, str, str]:
        """Worst PO arrival and the first strict-max endpoint.

        Scalar scan order: ``np.argmax`` returns the first maximum, and
        nothing beating the 0.0 floor keeps the defaults (first PO,
        rise) — exactly the ``analyze()`` tie-breaks.
        """
        circuit_delay = 0.0
        critical_output = self.circuit.primary_outputs[0]
        critical_edge = "rise"
        if self.po_rows.size:
            po_arr = arr[self.po_rows]
            best = int(np.argmax(po_arr))
            if po_arr[best] > 0.0:
                circuit_delay = float(po_arr[best])
                critical_output, critical_edge = self.po_order[best]
        return circuit_delay, critical_output, critical_edge

    def node_slacks(self, arr: np.ndarray, req: np.ndarray,
                    req_target: float) -> np.ndarray:
        """Worst slack per node (PI nodes first, then topological gates).

        Min over edges with a finite required time; dangling nodes
        (unreachable from any primary output) get the loosest meaningful
        bound ``req_target - worst arrival`` — the scalar convention.
        Entry ``node_index[net]`` equals ``TimingResult.slack[net]``
        bit-for-bit.
        """
        arr2 = arr.reshape(-1, 2)
        diff = (req - arr).reshape(-1, 2)
        worst = diff.min(axis=1)
        dangling = np.isinf(worst)
        if dangling.any():
            worst = worst.copy()
            worst[dangling] = req_target - arr2.max(axis=1)[dangling]
        return worst

    # -- public evaluation entry points ------------------------------------

    def delay(self, delta_vth: GateValues = None,
              delay_factors: GateValues = None, *,
              supply_drop: float = 0.0, temperature: float = 300.0) -> float:
        """Circuit delay of one scenario (seconds)."""
        obs.count("sta.compiled.delay_calls")
        d = self.delay_vector(delta_vth, delay_factors,
                              supply_drop=supply_drop, temperature=temperature)
        if d.ndim != 1:
            raise ValueError("delay() takes one scenario; use delays_batch")
        return float(self.circuit_delays(self.propagate(d)))

    def delays_batch(self, delta_vth: GateValues = None,
                     delay_factors: GateValues = None, *,
                     supply_drop: float = 0.0,
                     temperature: float = 300.0) -> np.ndarray:
        """Circuit delay per scenario for a batched ΔVth/factor matrix.

        Either input may be ``(n_gates, B)``; vectors broadcast against
        the batch.  Returns a float64 ``(B,)`` array whose entries are
        bit-identical to per-scenario :meth:`delay` calls (and hence to
        scalar ``analyze()``).
        """
        d = self.delay_vector(delta_vth, delay_factors,
                              supply_drop=supply_drop, temperature=temperature)
        if d.ndim == 1:
            d = d[:, None]
        batch = int(d.shape[1])
        with obs.span("sta.compiled.delays_batch", batch=batch):
            out = np.asarray(self.circuit_delays(self.propagate(d)))
        obs.count("sta.compiled.batch_calls")
        obs.observe("sta.compiled.batch_size", batch)
        return out

    def analyze(self, delta_vth: GateValues = None, *,
                supply_drop: float = 0.0, temperature: float = 300.0,
                required_time: Optional[float] = None) -> TimingResult:
        """Full single-scenario STA, float-identical to ``analyze()``.

        Same worst path (including tie-breaks: the first strict max in
        input order wins), same slacks, same arrival maps, same dict
        iteration orders.
        """
        obs.count("sta.compiled.analyze_calls")
        with obs.span("sta.compiled.analyze", circuit=self.circuit.name):
            with obs.span("sta.compiled.sweep"):
                d = self.delay_vector(delta_vth, supply_drop=supply_drop,
                                      temperature=temperature)
                arr = self.propagate(d)
                (circuit_delay, critical_output,
                 critical_edge) = self._critical_endpoint(arr)
                req_target = (circuit_delay if required_time is None
                              else required_time)
                req = self.required(arr, d, req_target)
                worst = self.node_slacks(arr, req, req_target)

            with obs.span("sta.compiled.assemble"):
                # Predecessors: first candidate achieving the segment max
                # (the scalar loop starts best at -1.0, so one is always
                # chosen).
                pred: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
                for pi in self.circuit.primary_inputs:
                    pred[(pi, "rise")] = None
                    pred[(pi, "fall")] = None
                if self.n_gates:
                    cand = arr[self.fanin_idx]
                    seg_max = np.maximum.reduceat(cand, self.seg_ptr[:-1])
                    match = cand == np.repeat(seg_max, self._seg_counts)
                    position = np.where(match, np.arange(cand.size),
                                        cand.size)
                    first = np.minimum.reduceat(position, self.seg_ptr[:-1])
                    pred_rows = self.fanin_idx[first]
                    node_names = (list(self.circuit.primary_inputs)
                                  + self.gate_names)
                    for i, name in enumerate(self.gate_names):
                        for e, edge in enumerate(_EDGES):
                            row = int(pred_rows[2 * i + e])
                            pred[(name, edge)] = (node_names[row >> 1],
                                                  _EDGES[row & 1])

                arrival: Dict[str, Dict[str, float]] = {}
                slack: Dict[str, float] = {}
                for pi in self.circuit.primary_inputs:
                    node = self.node_index[pi]
                    arrival[pi] = {"rise": float(arr[2 * node]),
                                   "fall": float(arr[2 * node + 1])}
                for i, name in enumerate(self.gate_names):
                    row = 2 * (self.n_pi + i)
                    arrival[name] = {"rise": float(arr[row]),
                                     "fall": float(arr[row + 1])}
                for net in arrival:
                    slack[net] = float(worst[self.node_index[net]])

                result = TimingResult(
                    circuit_delay=circuit_delay,
                    arrival=arrival,
                    slack=slack,
                    critical_output=critical_output,
                    critical_edge=critical_edge,
                    required_time=req_target,
                    _pred=pred,
                )
                result._is_gate = {net: net in self.circuit.gates
                                   for net in arrival}
        return result

    def surface(self, delta_vth: GateValues = None,
                delay_factors: GateValues = None, *,
                supply_drop: float = 0.0, temperature: float = 300.0,
                required_time: Optional[float] = None,
                delays: Optional[np.ndarray] = None) -> "TimingSurface":
        """A :class:`TimingSurface` for one propagated scenario.

        The array-side alternative to :meth:`analyze`: one forward pass,
        then scalars/ndarrays straight off the propagated rows — no
        per-net dict assembly (the ``sta.compiled.assemble`` span never
        opens).  Pass ``delays`` (a ``(2G,)`` vector) to skip the
        delay-vector build, as the greedy loops do with a mutated copy.
        """
        obs.count("sta.compiled.surface_calls")
        with obs.span("sta.compiled.surface", circuit=self.circuit.name):
            if delays is None:
                delays = self.delay_vector(delta_vth, delay_factors,
                                           supply_drop=supply_drop,
                                           temperature=temperature)
            else:
                delays = np.asarray(delays, dtype=np.float64)
            if delays.ndim != 1:
                raise ValueError("surface() takes one scenario; "
                                 "use delays_batch")
            arr = self.propagate(delays)
        return TimingSurface(self, delays, arr, required_time=required_time)

    def incremental(self, delta_vth: GateValues = None,
                    delay_factors: GateValues = None, *,
                    supply_drop: float = 0.0, temperature: float = 300.0,
                    required_time: Optional[float] = None,
                    delays: Optional[np.ndarray] = None) -> "IncrementalTimer":
        """An :class:`IncrementalTimer` seeded from one scenario.

        Pass ``delays`` (a ``(2G,)`` vector) to seed from an external
        delay model (the sizing timer does); otherwise the vector is
        built from ``delta_vth`` / ``delay_factors`` like :meth:`delay`.
        """
        if delays is None:
            delays = self.delay_vector(delta_vth, delay_factors,
                                       supply_drop=supply_drop,
                                       temperature=temperature)
        else:
            delays = np.array(delays, dtype=np.float64)
        if delays.ndim != 1:
            raise ValueError("incremental mode is single-scenario")
        return IncrementalTimer(self, delays, required_time=required_time)

    # -- reverse adjacency (for the incremental backward cone) -------------

    def _reverse_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Row -> consumer-segment CSR: which gate-edge segments read a
        row as a fanin candidate."""
        if self._rev is None:
            counts = np.zeros(self.n_rows, dtype=np.int64)
            seg_of = np.repeat(np.arange(2 * self.n_gates, dtype=np.int64),
                               self._seg_counts)
            np.add.at(counts, self.fanin_idx, 1)
            ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            data = np.empty(self.fanin_idx.size, dtype=np.int64)
            cursor = ptr[:-1].copy()
            for pos in range(self.fanin_idx.size):
                row = self.fanin_idx[pos]
                data[cursor[row]] = seg_of[pos]
                cursor[row] += 1
            self._rev = (ptr, data)
        return self._rev

    def __repr__(self) -> str:
        return (f"CompiledTiming({self.circuit.name!r}, "
                f"gates={self.n_gates}, levels={len(self._levels)}, "
                f"candidates={self.fanin_idx.size})")


class TimingSurface:
    """Array-side query surface over one propagated STA scenario.

    Wraps the ``(delays, arrivals)`` pair of one forward pass and
    answers the queries the greedy mitigation loops actually make —
    worst arrival, per-gate slacks, the critical-gate walk — as scalars
    and ndarrays read straight off the propagated rows.  Every accessor
    is bit-identical to the matching :class:`TimingResult` field of
    :meth:`CompiledTiming.analyze` (and hence the scalar oracle); the
    per-net dict assembly priced by the ``sta.compiled.assemble`` span
    simply never runs.

    The backward pass (required times and slacks) is computed lazily on
    the first slack query and cached.  Returned arrays are views of
    surface-owned state: treat them as read-only.
    """

    __slots__ = ("_ct", "_delays", "_arr", "_required_time",
                 "_endpoint", "_slacks")

    def __init__(self, compiled: CompiledTiming, delays: np.ndarray,
                 arrivals: np.ndarray, *,
                 required_time: Optional[float] = None):
        self._ct = compiled
        self._delays = delays
        self._arr = arrivals
        self._required_time = required_time
        self._endpoint: Optional[Tuple[float, str, str]] = None
        self._slacks: Optional[np.ndarray] = None

    # -- scalars -----------------------------------------------------------

    def _critical(self) -> Tuple[float, str, str]:
        if self._endpoint is None:
            self._endpoint = self._ct._critical_endpoint(self._arr)
        return self._endpoint

    @property
    def compiled(self) -> CompiledTiming:
        return self._ct

    @property
    def circuit_delay(self) -> float:
        """Worst primary-output arrival (>= 0.0); == the analyze field."""
        return self._critical()[0]

    @property
    def critical_output(self) -> str:
        """First strict-max endpoint net (scalar scan order)."""
        return self._critical()[1]

    @property
    def critical_edge(self) -> str:
        """Edge of the critical endpoint ("rise" / "fall")."""
        return self._critical()[2]

    @property
    def required_time(self) -> float:
        """The slack target: the fixed constraint or the circuit delay."""
        return (self.circuit_delay if self._required_time is None
                else self._required_time)

    # -- arrays ------------------------------------------------------------

    def delay_rows(self) -> np.ndarray:
        """The ``(2G,)`` per-gate-edge delay vector of this scenario."""
        return self._delays

    def arrival_rows(self) -> np.ndarray:
        """All ``(n_rows,)`` arrival rows (PIs included, 0.0)."""
        return self._arr

    def gate_arrivals(self) -> np.ndarray:
        """``(n_gates, 2)`` arrivals, topo order, columns (rise, fall)."""
        return self._arr[2 * self._ct.n_pi:].reshape(-1, 2)

    def node_slacks(self) -> np.ndarray:
        """Worst slack per node (PIs first, then topological gates)."""
        if self._slacks is None:
            target = self.required_time
            req = self._ct.required(self._arr, self._delays, target)
            self._slacks = self._ct.node_slacks(self._arr, req, target)
        return self._slacks

    def gate_slacks(self) -> np.ndarray:
        """``(n_gates,)`` worst slack per gate, topological order."""
        return self.node_slacks()[self._ct.n_pi:]

    # -- point reads / derived sets ----------------------------------------

    def arrival(self, net: str, edge: str) -> float:
        """Arrival time of one net edge (seconds)."""
        row = 2 * self._ct.node_index[net] + _EDGE_INDEX[edge]
        return float(self._arr[row])

    def slack_of(self, net: str) -> float:
        """Worst slack of one net; == ``TimingResult.slack[net]``."""
        return float(self.node_slacks()[self._ct.node_index[net]])

    def critical_gates(self) -> List[str]:
        """Gates on the worst path, PI-to-PO order.

        Same walk as the assembled predecessor maps: from the critical
        endpoint, each step takes the *first* fanin row achieving the
        segment max (running best seeded at -1.0, so one is always
        chosen) — list-identical to ``TimingResult.critical_gates()``.
        """
        ct = self._ct
        arr = self._arr
        _, po, edge = self._critical()
        node = ct.node_index[po]
        e = _EDGE_INDEX[edge]
        critical: List[str] = []
        while node >= ct.n_pi:
            critical.append(ct.gate_names[node - ct.n_pi])
            rows = ct.fanin_lists[2 * (node - ct.n_pi) + e]
            best, best_row = -1.0, None
            for r in rows:
                a = arr[r]
                if a > best:
                    best, best_row = a, r
            if best_row is None:
                break
            node, e = best_row >> 1, best_row & 1
        critical.reverse()
        return critical

    def gates_with_slack_below(self, threshold: float) -> List[str]:
        """Near-critical gates (slack <= threshold), topological order;
        list-identical to ``TimingResult.gates_with_slack_below``."""
        slacks = self.gate_slacks()
        names = self._ct.gate_names
        return [names[i] for i in np.flatnonzero(slacks <= threshold)]

    def __repr__(self) -> str:
        return (f"TimingSurface({self._ct.circuit.name!r}, "
                f"delay={self.circuit_delay:.3e})")


class IncrementalTimer:
    """Single-scenario arrival state with fanout-cone re-timing.

    The mutation loops (TILOS sizing, dual-Vth swaps, FGSTI budgets)
    change one gate's delay per move and re-read the circuit delay.  A
    full forward pass is O(all gates); this timer re-propagates only
    the mutated gate's downstream cone, pruning branches whose arrival
    did not change — with *exact* float equality, so committed state is
    always bit-identical to a from-scratch propagation of the same
    delay vector (the equivalence tests pin this).

    Under a **fixed** ``required_time`` the backward state is likewise
    cone-maintained: a delay change re-derives required times only for
    the mutated gates' fanin cones.  Without a fixed constraint the
    required target floats with the circuit delay (every row shifts),
    so :meth:`required_rows` recomputes through the vectorized backward
    kernel instead.
    """

    def __init__(self, compiled: CompiledTiming, delays: np.ndarray, *,
                 required_time: Optional[float] = None):
        self._ct = compiled
        # State lives in two owned float64 ndarrays (O(gates) footprint,
        # no Python-list copies).  The cone walk does a few dozen scalar
        # reads/writes per move; those go through cached memoryviews,
        # whose scalar indexing is ~2x faster than ndarray item access
        # (and within ~1.5x of a plain list, without the list's memory).
        self._d: np.ndarray = np.array(delays, dtype=np.float64)
        self._arr: np.ndarray = compiled.propagate(self._d)
        self._dv = self._d.data
        self._av = self._arr.data
        self._required_time = required_time
        self._req: Optional[np.ndarray] = None

    # -- state reads -------------------------------------------------------

    @property
    def compiled(self) -> CompiledTiming:
        return self._ct

    @property
    def circuit_delay(self) -> float:
        """Worst primary-output arrival under the current delays."""
        return self._worst_po(self._av)

    def _worst_po(self, arr) -> float:
        rows = self._ct.po_row_list
        if not rows:
            return 0.0
        worst = max(arr[r] for r in rows)
        return worst if worst > 0.0 else 0.0

    def delays_of(self, name: str) -> Tuple[float, float]:
        """Current (rise, fall) delay of one gate."""
        i = self._ct.gate_index[name]
        return self._dv[2 * i], self._dv[2 * i + 1]

    def arrival(self, net: str, edge: str) -> float:
        """Current arrival time of one net edge (seconds)."""
        row = 2 * self._ct.node_index[net] + _EDGE_INDEX[edge]
        return self._av[row]

    def arrival_rows(self) -> np.ndarray:
        """The arrival rows as an array (a fresh copy)."""
        return self._arr.copy()

    def delay_rows(self) -> np.ndarray:
        """The per-gate-edge delay vector as an array (a fresh copy)."""
        return self._d.copy()

    # -- mutation ----------------------------------------------------------

    def trial(self, changes: Mapping[str, Tuple[float, float]]) -> float:
        """Circuit delay if ``changes`` were applied, without committing.

        ``changes`` maps gate name -> (rise delay, fall delay).
        """
        arr = self._arr.copy()
        d = self._d.copy()
        arr_v = arr.data
        self._propagate_changes(changes, arr_v, d.data)
        return self._worst_po(arr_v)

    def update(self, changes: Mapping[str, Tuple[float, float]]) -> float:
        """Apply ``changes`` and return the new circuit delay."""
        touched = self._propagate_changes(changes, self._av, self._dv)
        if self._req is not None:
            if self._required_time is None:
                self._req = None
            else:
                self._update_required(touched)
        return self._worst_po(self._av)

    def _propagate_changes(self, changes: Mapping[str, Tuple[float, float]],
                           arr, d) -> List[int]:
        """Level-ordered cone re-propagation; returns recomputed nodes."""
        ct = self._ct
        n_pi = ct.n_pi
        fanin_lists = ct.fanin_lists
        fanout_nodes = ct._fanout_nodes
        node_levels = ct.node_levels
        heap: List[Tuple[int, int]] = []
        queued = set()
        for name, (d_rise, d_fall) in changes.items():
            i = ct.gate_index[name]
            d[2 * i] = d_rise
            d[2 * i + 1] = d_fall
            node = n_pi + i
            if node not in queued:
                queued.add(node)
                heapq.heappush(heap, (node_levels[node], node))
        touched: List[int] = []
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            i = node - n_pi
            touched.append(node)
            changed = False
            for e in (0, 1):
                seg = 2 * i + e
                worst = -1.0
                for r in fanin_lists[seg]:
                    a = arr[r]
                    if a > worst:
                        worst = a
                value = worst + d[seg]
                row = 2 * node + e
                if value != arr[row]:
                    arr[row] = value
                    changed = True
            if changed:
                for consumer in fanout_nodes[node]:
                    if consumer not in queued:
                        queued.add(consumer)
                        heapq.heappush(heap,
                                       (node_levels[consumer], consumer))
        return touched

    # -- required times / slack --------------------------------------------

    def required_rows(self) -> np.ndarray:
        """Required-time rows against the active timing target.

        With a fixed ``required_time`` the array is cached and cone-
        maintained across :meth:`update` calls; otherwise (target =
        current circuit delay) it is recomputed by the vectorized
        backward kernel.
        """
        if self._required_time is None:
            return self._ct.required(self._arr, self._d, self.circuit_delay)
        if self._req is None:
            self._req = self._ct.required(self._arr, self._d,
                                          self._required_time)
        return self._req

    def _recompute_required_row(self, row: int, req: np.ndarray) -> float:
        """Exact per-row required time: min over consumer segments."""
        ct = self._ct
        ptr, data = ct._reverse_csr()
        value = (self._required_time
                 if row in self._po_row_set() else float("inf"))
        # Row of segment s is 2*(n_pi + i) + e with s = 2*i + e, i.e.
        # 2*n_pi + s.
        base = 2 * ct.n_pi
        d = self._dv
        for s in data[ptr[row]:ptr[row + 1]]:
            contrib = req[base + s] - d[s]
            if contrib < value:
                value = contrib
        return float(value)

    def _po_row_set(self) -> set:
        cached = getattr(self, "_po_rows_cache", None)
        if cached is None:
            cached = set(self._ct.po_row_list)
            self._po_rows_cache = cached
        return cached

    def _update_required(self, touched: List[int]) -> None:
        """Backward-cone maintenance of the fixed-target required times.

        Seeds: every fanin row of a touched gate (their ``req_out - d``
        contributions changed), processed in *decreasing* level order so
        each row settles after all its consumers.
        """
        ct = self._ct
        req = self._req
        assert req is not None
        node_levels = ct.node_levels
        heap: List[Tuple[int, int]] = []
        queued = set()

        def push_row(row: int) -> None:
            if row not in queued:
                queued.add(row)
                heapq.heappush(heap, (-node_levels[row >> 1], row))

        for node in touched:
            i = node - ct.n_pi
            for seg in (2 * i, 2 * i + 1):
                for row in ct.fanin_lists[seg]:
                    push_row(row)
        while heap:
            _, row = heapq.heappop(heap)
            queued.discard(row)
            value = self._recompute_required_row(row, req)
            if value != req[row]:
                req[row] = value
                node = row >> 1
                if node >= ct.n_pi:  # gates have fanins to push further
                    seg = 2 * (node - ct.n_pi) + (row & 1)
                    for child in ct.fanin_lists[seg]:
                        push_row(child)

    def gate_slacks(self) -> np.ndarray:
        """Worst slack per gate (topological order), ``+inf`` dangling.

        Matches the scalar cone logic: min over edges with a finite
        required time of ``required - arrival``.
        """
        req = self.required_rows()
        start = 2 * self._ct.n_pi
        diff = (req[start:] - self._arr[start:]).reshape(-1, 2)
        return diff.min(axis=1)

    def critical_gates(self, *, initial_best: float = 0.0) -> List[str]:
        """Gates on the worst path, endpoint first (scalar walk order).

        ``initial_best`` reproduces the scalar tie-break seed: the
        sizing timer starts its running max at 0.0 (an all-zero fanin
        yields no predecessor), ``analyze()`` at -1.0 (one is always
        chosen).
        """
        ct = self._ct
        arr = self._av
        worst = initial_best
        endpoint: Optional[int] = None
        for k, row in enumerate(ct.po_row_list):
            if arr[row] > worst:
                worst = arr[row]
                endpoint = k
        critical: List[str] = []
        if endpoint is None:
            return critical
        po, edge = ct.po_order[endpoint]
        node = ct.node_index[po]
        e = _EDGE_INDEX[edge]
        while node >= ct.n_pi:
            name = ct.gate_names[node - ct.n_pi]
            critical.append(name)
            rows = ct.fanin_lists[2 * (node - ct.n_pi) + e]
            best, best_row = initial_best, None
            for r in rows:
                a = arr[r]
                if a > best:
                    best, best_row = a, r
            if best_row is None:
                break
            node, e = best_row >> 1, best_row & 1
        return critical

    def __repr__(self) -> str:
        return (f"IncrementalTimer({self._ct.circuit.name!r}, "
                f"delay={self.circuit_delay:.3e})")
