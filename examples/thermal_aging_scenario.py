#!/usr/bin/env python3
"""From watts to wear-out: thermal profiling feeding the aging model.

The paper's key modeling point is that aging depends on the *pair* of
mode temperatures, not a single worst-case number.  This example derives
those temperatures from first principles instead of assuming them:

1. build a processor-class task set (10-130 W, the paper's Fig. 2 band),
2. run it through the lumped-RC air-cooling model and report the
   temperature swing,
3. derive steady-state T_active / T_standby from the mode power draws,
4. sweep the duty ratio (RAS) and show how the naive worst-case-
   temperature analysis overestimates the 10-year degradation.

Run:  python examples/thermal_aging_scenario.py
"""

from repro import OperatingProfile, iscas85
from repro.constants import TEN_YEARS, kelvin_to_celsius
from repro.flow import format_table, pct
from repro.sta import ALL_ZERO, AgingAnalyzer
from repro.thermal import (
    ThermalRC,
    mode_temperatures,
    random_task_set,
    task_set_trace,
    trace_statistics,
)


def main() -> None:
    rc = ThermalRC()
    print(f"Thermal network: R = {rc.r_th} K/W, C = {rc.c_th} J/K, "
          f"ambient {kelvin_to_celsius(rc.t_ambient):.0f} C, "
          f"settles in ~{rc.settling_time() * 1e3:.0f} ms\n")

    tasks = random_task_set(n_tasks=25, seed=7)
    _, temps = task_set_trace(tasks, rc)
    stats = trace_statistics(temps)
    print(f"Task set of {len(tasks)} tasks "
          f"({min(t.power for t in tasks):.0f}-"
          f"{max(t.power for t in tasks):.0f} W): die swings "
          f"{stats['min_c']:.0f}-{stats['max_c']:.0f} C "
          "(the paper's Fig. 2 corridor)\n")

    t_active, t_standby = mode_temperatures(active_power=170.0,
                                            standby_power=4.0, rc=rc)
    print(f"Mode steady states: active {t_active:.0f} K, "
          f"standby {t_standby:.0f} K\n")

    circuit = iscas85.load("c1355")
    analyzer = AgingAnalyzer()
    rows = []
    for ras in ("9:1", "1:1", "1:9"):
        realistic = OperatingProfile.from_ras(ras, t_active=t_active,
                                              t_standby=t_standby)
        pessimistic = OperatingProfile.from_ras(ras, t_active=t_active,
                                                t_standby=t_active)
        real = analyzer.aged_timing(circuit, realistic, TEN_YEARS,
                                    standby=ALL_ZERO)
        pess = analyzer.aged_timing(circuit, pessimistic, TEN_YEARS,
                                    standby=ALL_ZERO)
        margin = pess.relative_degradation - real.relative_degradation
        rows.append([ras, pct(real.relative_degradation),
                     pct(pess.relative_degradation), pct(margin)])
    print(format_table(
        ["RAS", "temperature-aware", "worst-case-temp", "overdesign"],
        rows,
        title=f"{circuit.name}: 10-year degradation, two analysis styles"))
    print("\nThe worst-case-temperature assumption (pre-paper practice) "
          "overstates the\nguard-band most when the circuit is mostly in "
          "cool standby — exactly the\npaper's motivation for "
          "temperature-aware NBTI modeling.")


if __name__ == "__main__":
    main()
